// Ablations of the design choices DESIGN.md §4 calls out.
//
//   1. Adaptive candidate estimator: Eq. 6 hops vs hop-bytes weighting.
//      (§6.4 notes adaptive sometimes mis-ranks candidates — "errors in
//      estimating the relative cost"; hop-bytes is the candidate fix.)
//      Runs as one campaign over the SchedOptions-variant axis of the
//      engine in src/exp.
//   2. Candidate self-inclusion: price candidates with vs without the job's
//      own nodes contributing to leaf contention.
//   3. Process-mapping extension (paper §7 future work): Eq. 6 cost before
//      vs after switch-major reordering + swap hill-climb, on individual
//      probes.
#include <iostream>
#include <utility>
#include <vector>

#include "collectives/comm_cache.hpp"
#include "collectives/schedule.hpp"
#include "core/cost_model.hpp"
#include "exp/campaign.hpp"
#include "exp/emit.hpp"
#include "mapping/reorder.hpp"
#include "metrics/summary.hpp"
#include "sched/individual.hpp"
#include "util/rng.hpp"

namespace {
using namespace commsched;

exp::OptionsVariant estimator_variant(const char* name, CostOptions options) {
  exp::OptionsVariant v;
  v.name = name;
  v.options.cost_options = options;
  return v;
}
}  // namespace

int main() {
  // --- 1 & 2: adaptive estimator variants, one campaign -------------------
  exp::CampaignSpec spec;
  spec.name = "ablation";
  spec.machines.push_back(exp::paper_machine("Theta"));
  spec.mixes.push_back(uniform_mix(Pattern::kRecursiveHalvingVD, 0.9, 0.8));
  spec.allocators = {AllocatorKind::kDefault, AllocatorKind::kAdaptive};
  spec.variants = {
      estimator_variant("hop-bytes pricing (default)",
                        CostOptions{.hop_bytes = true}),
      estimator_variant("pure Eq. 6 hops pricing",
                        CostOptions{.hop_bytes = false}),
      estimator_variant("hop-bytes, no candidate self-inclusion",
                        CostOptions{.hop_bytes = true,
                                    .include_candidate = false}),
  };
  // The default allocator ignores the estimator, so one baseline cell is
  // enough: default runs only under the first variant.
  spec.filter = [](const exp::CampaignSpec& s, const exp::CellCoord& c) {
    return s.allocators[c.allocator] == AllocatorKind::kAdaptive ||
           c.variant == 0;
  };

  exp::CampaignRunner runner(std::move(spec));
  const exp::CampaignResult result = runner.run();
  const exp::CampaignSpec& grid = runner.spec();
  const exp::MachineCase& theta = grid.machines[0];
  const MixSpec& mix = grid.mixes[0];

  TextTable variants;
  variants.set_header({"adaptive variant", "total exec (h)", "total wait (h)",
                       "total cost"});
  const RunSummary& def = result.at(0, 0, 0, 0, 0).summary;
  variants.add_row({"(default allocator baseline)",
                    cell(def.total_exec_hours, 1),
                    cell(def.total_wait_hours, 1), cell(def.total_cost, 0)});
  for (std::size_t v = 0; v < grid.variants.size(); ++v) {
    const RunSummary& s = result.at(0, 0, 1, 0, v).summary;
    variants.add_row({grid.variants[v].name, cell(s.total_exec_hours, 1),
                      cell(s.total_wait_hours, 1), cell(s.total_cost, 0)});
  }
  exp::emit("Ablation — adaptive cost-estimator variants (Theta)",
            variants, "ablation_estimator");

  // --- 3: process-mapping extension on individual probes ------------------
  // Build a prefilled state, allocate probes with the default policy, and
  // compare Eq. 6 costs of the raw rank order vs the remapped order.
  const std::uint64_t seed =
      exp::derive_mix_seed(exp::base_seed(), theta.name, mix.name);
  JobLog probes = theta.base_log;
  apply_mix(probes, mix, seed + 1);
  Rng rng(seed + 2);
  rng.shuffle(probes);
  if (probes.size() > 60) probes.resize(60);

  ClusterState state(theta.tree);
  // Fragment the machine so default allocations interleave leaves.
  Rng fill(seed + 3);
  JobId filler = 1'000'000;
  for (const SwitchId leaf : theta.tree.leaves()) {
    std::vector<NodeId> busy;
    for (const NodeId n : theta.tree.nodes_of_leaf(leaf))
      if (fill.bernoulli(0.45)) busy.push_back(n);
    if (!busy.empty()) state.allocate(filler++, fill.bernoulli(0.5), busy);
  }

  // The policies in this library hand out leaf-contiguous node lists, so
  // there is nothing for rank reordering to recover there. The extension
  // matters when the allocation order itself scatters ranks — e.g. a
  // cyclic/striped distribution, or node lists coming from an external RM.
  // Emulate that worst case: stripe each probe's nodes round-robin across
  // the leaves it touches, then reorder.
  const auto default_alloc = make_allocator(AllocatorKind::kDefault);
  const CostModel model(theta.tree, CostOptions{.hop_bytes = true});
  CommCache schedules(1 << 20);
  double cost_striped = 0.0, cost_major = 0.0, cost_climbed = 0.0;
  int evaluated = 0;
  for (const auto& job : probes) {
    if (!job.comm_intensive || job.num_nodes < 2) continue;
    if (job.num_nodes > state.total_free()) continue;
    AllocationRequest request;
    request.job = job.id;
    request.num_nodes = job.num_nodes;
    request.comm_intensive = true;
    request.pattern = job.pattern;
    const auto nodes = default_alloc->select(state, request);
    if (!nodes) continue;
    // Stripe: group by leaf, then deal nodes out one leaf at a time.
    std::vector<std::vector<NodeId>> per_leaf_nodes;
    {
      std::vector<NodeId> grouped = switch_major_order(theta.tree, *nodes);
      per_leaf_nodes.emplace_back();
      for (std::size_t i = 0; i < grouped.size(); ++i) {
        if (i > 0 && theta.tree.leaf_of(grouped[i]) !=
                         theta.tree.leaf_of(grouped[i - 1]))
          per_leaf_nodes.emplace_back();
        per_leaf_nodes.back().push_back(grouped[i]);
      }
    }
    if (per_leaf_nodes.size() < 2) continue;  // single leaf: nothing to show
    std::vector<NodeId> striped;
    for (std::size_t round = 0; striped.size() < nodes->size(); ++round)
      for (const auto& leaf_nodes : per_leaf_nodes)
        if (round < leaf_nodes.size()) striped.push_back(leaf_nodes[round]);

    const CommSchedule& schedule =
        schedules.schedule(job.pattern, job.num_nodes);
    cost_striped += model.candidate_cost(state, striped, true, schedule);
    const auto major = switch_major_order(theta.tree, striped);
    cost_major += model.candidate_cost(state, major, true, schedule);
    const auto climbed = improve_mapping(state, model, schedule, striped, true);
    cost_climbed += model.candidate_cost(state, climbed, true, schedule);
    ++evaluated;
  }
  TextTable mapping_table;
  mapping_table.set_header({"rank order", "total hop-bytes cost",
                            "reduction %", "probes"});
  mapping_table.add_row({"striped across leaves (worst case)",
                         cell(cost_striped, 0), "-",
                         std::to_string(evaluated)});
  mapping_table.add_row({"switch-major reorder", cell(cost_major, 0),
                         cell(improvement_percent(cost_striped, cost_major), 2),
                         std::to_string(evaluated)});
  mapping_table.add_row(
      {"switch-major + swap hill-climb", cell(cost_climbed, 0),
       cell(improvement_percent(cost_striped, cost_climbed), 2),
       std::to_string(evaluated)});
  exp::emit(
      "Ablation — §7 process-mapping extension (default allocations, Theta)",
      mapping_table, "ablation_mapping");
  std::cout << "\n";
  return 0;
}
