// Runtime cost of the invariant auditor (src/audit/) on an end-to-end
// continuous simulation: the same workload is scheduled with the audit at
// off / cheap / full and the wall-clock per run is compared. DESIGN.md
// "Correctness & analysis" targets cheap <= ~5% over off; full is the
// debugging level and may be arbitrarily slower (it re-validates the whole
// cluster state after every event).
//
// Runs stay serial on purpose — wall-clock timing under a shared worker
// pool would measure scheduling noise, not the auditor.
//
// Environment knobs: COMMSCHED_JOBS, COMMSCHED_SEED (see exp/machines.hpp).
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "audit/level.hpp"
#include "exp/campaign.hpp"
#include "exp/emit.hpp"
#include "metrics/summary.hpp"

namespace {
using namespace std::chrono;
using commsched::AllocatorKind;
using commsched::AuditLevel;
using commsched::MixSpec;
using commsched::Pattern;
using commsched::SchedOptions;
using commsched::SimResult;
using commsched::TextTable;
using commsched::exp::MachineCase;

double timed_run_seconds(const MachineCase& machine, const MixSpec& spec,
                         AllocatorKind kind, AuditLevel level,
                         double* exec_hours) {
  SchedOptions base;
  base.audit = level;
  const auto t0 = steady_clock::now();
  const SimResult r = commsched::exp::run_one(machine, spec, kind, &base);
  const auto t1 = steady_clock::now();
  *exec_hours = commsched::summarize(r).total_exec_hours;
  return duration<double>(t1 - t0).count();
}
}  // namespace

int main() {
  const MachineCase machine = commsched::exp::paper_machine("Theta");
  const MixSpec spec = uniform_mix(Pattern::kRecursiveHalvingVD, 0.9, 0.8);
  const AuditLevel levels[] = {AuditLevel::kOff, AuditLevel::kCheap,
                               AuditLevel::kFull};
  const AllocatorKind kinds[] = {AllocatorKind::kDefault,
                                 AllocatorKind::kAdaptive};

  TextTable table;
  table.set_header({"Alloc", "Level", "Time(s)", "Overhead%", "Exec(h)"});
  for (const AllocatorKind kind : kinds) {
    double base_seconds = 0.0;
    double base_exec = 0.0;
    for (const AuditLevel level : levels) {
      // Warm-up pass on the first level so allocator caches and the page
      // cache do not bias the off-level baseline.
      double exec_hours = 0.0;
      if (level == AuditLevel::kOff)
        (void)timed_run_seconds(machine, spec, kind, level, &exec_hours);
      const double seconds =
          timed_run_seconds(machine, spec, kind, level, &exec_hours);
      if (level == AuditLevel::kOff) {
        base_seconds = seconds;
        base_exec = exec_hours;
      } else if (exec_hours != base_exec) {
        // The auditor must be an observer: any simulated-metric drift
        // between audit levels is itself a bug.
        std::cerr << "audit level changed simulated results: " << base_exec
                  << " vs " << exec_hours << "\n";
        return 1;
      }
      const double overhead =
          base_seconds > 0.0 ? (seconds / base_seconds - 1.0) * 100.0 : 0.0;
      table.add_row({commsched::allocator_kind_name(kind),
                     commsched::audit_level_name(level),
                     commsched::cell(seconds, 3), commsched::cell(overhead, 1),
                     commsched::cell(exec_hours, 0)});
    }
  }
  commsched::exp::emit("Audit overhead (end-to-end continuous run, Theta)",
                       table, "audit_overhead");
  return 0;
}
