// Shared plumbing for the per-table/figure benchmark harnesses.
//
// Each harness regenerates one of the paper's tables or figures: it builds
// (or loads) the three machine workloads, runs the scheduler simulator under
// all four policies, prints a paper-shaped text table, and drops a CSV under
// ./bench_out/ for plotting.
//
// Environment knobs:
//   COMMSCHED_JOBS          jobs per log (default 1000, the paper's slice)
//   COMMSCHED_SEED          base RNG seed (default 20200817, the ICPP date)
//   COMMSCHED_SWF_INTREPID  path to a real SWF log to use instead of the
//   COMMSCHED_SWF_THETA     synthetic Intrepid/Theta/Mira generators
//   COMMSCHED_SWF_MIRA      (cores/node: 4 / 64 / 16)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/allocator_factory.hpp"
#include "sched/simulator.hpp"
#include "topology/tree.hpp"
#include "util/table.hpp"
#include "workload/job.hpp"
#include "workload/mixes.hpp"
#include "workload/synthetic.hpp"

namespace commsched::bench {

/// One machine under evaluation: its topology plus an undecorated job log
/// (communication attributes are applied per experiment by apply_mix).
struct MachineCase {
  std::string name;      // "Intrepid", "Theta", "Mira"
  Tree tree;
  JobLog base_log;       // power-of-two jobs, sorted by submit time
};

int jobs_per_log();
std::uint64_t base_seed();

/// Build the paper's three machine cases (synthetic unless the SWF env vars
/// point at real logs). `n_jobs` <= 0 uses jobs_per_log().
std::vector<MachineCase> paper_machines(int n_jobs = 0);

/// A single machine case by paper name ("Intrepid" / "Theta" / "Mira").
MachineCase paper_machine(const std::string& name, int n_jobs = 0);

/// Decorate a copy of the base log with `spec` and run it under `kind`.
SimResult run_with_mix(const MachineCase& machine, const MixSpec& spec,
                       AllocatorKind kind, const SchedOptions* base = nullptr);

/// Print the table to stdout and write CSV to bench_out/<stem>.csv.
void emit(const std::string& title, const TextTable& table,
          const std::string& stem);

/// "Intrepid" -> header label used across benches.
std::string pattern_row_label(Pattern p);

}  // namespace commsched::bench
