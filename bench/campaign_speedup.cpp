// Campaign-engine scaling check: the Figure 6 grid (machines × experiment
// sets × policies) executed by the src/exp worker pool at 1 worker and at
// N workers (COMMSCHED_BENCH_THREADS, default 8), timing both and checking
// that the long-form per-cell CSV is bit-identical — the determinism
// contract the parity tests enforce, demonstrated at full grid size.
//
// Writes BENCH_campaign.json at the CWD (run from the repo root). The
// recorded speedup is honest wall-clock on the current machine; on a
// single-hardware-thread container the two timings are expected to tie, so
// the JSON also records hardware_concurrency for interpretation.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/emit.hpp"
#include "metrics/summary.hpp"
#include "util/strings.hpp"

namespace {
using namespace commsched;

exp::CampaignSpec fig6_spec(std::vector<exp::MachineCase> machines,
                            int threads) {
  exp::CampaignSpec spec;
  spec.name = "campaign_speedup@" + std::to_string(threads);
  spec.machines = std::move(machines);
  for (const char set : {'A', 'B', 'C', 'D', 'E'})
    spec.mixes.push_back(experiment_set(set));
  spec.threads = threads;
  spec.quiet = true;
  return spec;
}

struct TimedRun {
  double seconds = 0.0;
  std::string csv;
  std::size_t cells = 0;
};

TimedRun timed_run(const std::vector<exp::MachineCase>& machines,
                   int threads) {
  exp::CampaignRunner runner(fig6_spec(machines, threads));
  const auto t0 = std::chrono::steady_clock::now();
  const exp::CampaignResult result = runner.run();
  const auto t1 = std::chrono::steady_clock::now();
  TimedRun r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.csv = exp::campaign_table(result).render_csv();
  r.cells = result.cells.size();
  return r;
}
}  // namespace

int main() {
  const int wide = [] {
    if (const char* v = std::getenv("COMMSCHED_BENCH_THREADS");
        v != nullptr && *v != '\0') {
      const auto parsed = parse_int(v);
      if (parsed && *parsed > 0) return static_cast<int>(*parsed);
    }
    return 8;
  }();
  const unsigned hardware = std::thread::hardware_concurrency();
  const std::vector<exp::MachineCase> machines = exp::paper_machines();

  // Warm-up pass so page-cache and allocator effects do not bias the
  // single-worker baseline, then the two measured passes.
  (void)timed_run(machines, 1);
  const TimedRun serial = timed_run(machines, 1);
  const TimedRun parallel = timed_run(machines, wide);

  const bool identical = serial.csv == parallel.csv;
  const double speedup =
      parallel.seconds > 0.0 ? serial.seconds / parallel.seconds : 0.0;

  TextTable table;
  table.set_header({"workers", "cells", "wall (s)", "speedup",
                    "bit-identical CSV"});
  table.add_row({"1", std::to_string(serial.cells), cell(serial.seconds, 2),
                 "1.00", "-"});
  table.add_row({std::to_string(wide), std::to_string(parallel.cells),
                 cell(parallel.seconds, 2), cell(speedup, 2),
                 identical ? "yes" : "NO"});
  exp::emit("Campaign engine — Figure 6 grid, 1 worker vs " +
                std::to_string(wide),
            table, "campaign_speedup");

  std::ofstream json("BENCH_campaign.json");
  json << "{\n"
       << "  \"campaign\": \"fig6 grid (3 logs x sets A-E x 4 policies)\",\n"
       << "  \"cells\": " << serial.cells << ",\n"
       << "  \"hardware_concurrency\": " << hardware << ",\n"
       << "  \"threads_compared\": [1, " << wide << "],\n"
       << "  \"seconds_1_thread\": " << cell(serial.seconds, 3) << ",\n"
       << "  \"seconds_" << wide << "_threads\": "
       << cell(parallel.seconds, 3) << ",\n"
       << "  \"speedup\": " << cell(speedup, 3) << ",\n"
       << "  \"bit_identical_csv\": " << (identical ? "true" : "false")
       << ",\n"
       << "  \"note\": \"wall-clock on this machine; speedup tracks "
          "min(workers, hardware_concurrency) because cells are "
          "embarrassingly parallel\"\n"
       << "}\n";
  if (!json) std::cerr << "could not write BENCH_campaign.json\n";
  std::cout << "  [json] BENCH_campaign.json\n";

  if (!identical) {
    std::cerr << "FAIL: per-cell CSV differs across thread counts\n";
    return 1;
  }
  return 0;
}
