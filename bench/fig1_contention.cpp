// Figure 1 reproduction: two communication-intensive MPI_Allgather jobs
// sharing two leaf switches on the 50-node department cluster.
//
// J1 (8 nodes, 4 per switch) runs its collective burst back-to-back; J2
// (12 nodes, 6 per switch) launches periodically — the paper ran it every
// 30 minutes over 10 hours.  We keep the geometry and the 1 MB message size
// and compress the idle gaps (period 60 s, horizon 600 s) so the run takes
// seconds: the signal is the *ratio* between contended and solo execution
// times, which does not depend on how long J2 sleeps.
//
// Also reproduces the paper's §5.3 validation: the correlation between the
// Eq. 2/3 contention-based cost and the measured execution time (paper:
// 0.83 on their testbed).
#include <algorithm>
#include <iostream>
#include <utility>
#include <vector>

#include "cluster/state.hpp"
#include "core/cost_model.hpp"
#include "exp/emit.hpp"
#include "netsim/sim.hpp"
#include "topology/builders.hpp"
#include "util/stats.hpp"

namespace {

using namespace commsched;

constexpr double kPeriod = 60.0;
constexpr double kHorizon = 600.0;

bool overlaps(const ExecutionSample& a, const ExecutionSample& b) {
  return a.start < b.start + b.duration && b.start < a.start + a.duration;
}

}  // namespace

int main() {
  const Tree tree = make_department_cluster();
  const FlowNetwork net(tree, LinkConfig{});  // 1G everywhere, as at IITK

  // Default-SLURM-style (communication-oblivious) placement: both jobs
  // interleave their ranks across the two switches.
  RepeatingJob j1;
  j1.name = "J1";
  j1.nodes = {0, 16, 1, 17, 2, 18, 3, 19};
  j1.pattern = Pattern::kRecursiveHalvingVD;  // MPI_Allgather's algorithm
  j1.msize = 1 << 20;                         // 1 MB, as in the paper
  j1.rounds = 30;

  RepeatingJob j2;
  j2.name = "J2";
  j2.nodes = {4, 20, 5, 21, 6, 22, 7, 23, 8, 24, 9, 25};
  j2.pattern = Pattern::kRecursiveHalvingVD;
  j2.msize = 1 << 20;
  j2.rounds = 30;
  j2.period = kPeriod;
  j2.first_start = 10.0;

  LinkUsage usage(net);
  const NetSimResult r = simulate_network(net, {j1, j2}, kHorizon, &usage);
  const auto& e1 = r.per_job[0];
  const auto& e2 = r.per_job[1];
  std::cout << "Figure 1: J1 executions: " << e1.size()
            << ", J2 executions: " << e2.size() << "\n";

  // --- Time series (the figure's two curves) -----------------------------
  TextTable series;
  series.set_header({"t_start_s", "job", "exec_time_s"});
  for (const auto& ex : e1)
    series.add_row({cell(ex.start, 2), "J1", cell(ex.duration, 4)});
  for (const auto& ex : e2)
    series.add_row({cell(ex.start, 2), "J2", cell(ex.duration, 4)});
  const std::string path = "bench_out/fig1_contention.csv";
  std::cout << (series.write_csv(path) ? "  [csv] " + path
                                       : "  [csv] write failed")
            << "\n";

  // --- Solo vs contended J1 executions (the spikes) -----------------------
  std::vector<double> solo, contended;
  std::vector<double> predicted, measured;  // for the correlation check
  // Predicted cost via Eq. 6 with and without J2 in the cluster state.
  ClusterState with_j2(tree), without_j2(tree);
  with_j2.allocate(1, true, j1.nodes);
  with_j2.allocate(2, true, j2.nodes);
  without_j2.allocate(1, true, j1.nodes);
  const CostModel model(tree);
  const auto schedule = make_schedule(j1.pattern, 8, j1.msize);
  const double cost_with = model.allocation_cost(with_j2, j1.nodes, schedule);
  const double cost_without =
      model.allocation_cost(without_j2, j1.nodes, schedule);

  for (const auto& ex : e1) {
    bool hit = false;
    for (const auto& ex2 : e2) hit = hit || overlaps(ex, ex2);
    (hit ? contended : solo).push_back(ex.duration);
    predicted.push_back(hit ? cost_with : cost_without);
    measured.push_back(ex.duration);
  }

  TextTable summary;
  summary.set_header({"metric", "value"});
  summary.add_row({"J1 solo executions", std::to_string(solo.size())});
  summary.add_row({"J1 contended executions", std::to_string(contended.size())});
  summary.add_row({"J1 solo mean exec (s)", cell(mean(solo), 4)});
  summary.add_row({"J1 contended mean exec (s)", cell(mean(contended), 4)});
  summary.add_row(
      {"spike factor (contended/solo)", cell(mean(contended) / mean(solo), 2)});
  summary.add_row({"Eq.6 cost of J1 (J2 idle)", cell(cost_without, 2)});
  summary.add_row({"Eq.6 cost of J1 (J2 active)", cell(cost_with, 2)});
  const double corr = pearson_correlation(predicted, measured);
  summary.add_row({"corr(contention cost, exec time)", cell(corr, 2)});
  summary.add_row({"paper reference correlation", "0.83"});
  commsched::exp::emit("Figure 1 — inter-job contention on shared switches",
                         summary, "fig1_summary");

  // --- Where the contention lives: the shared leaf uplinks ---------------
  TextTable links;
  links.set_header({"link", "GB carried", "busy fraction"});
  std::vector<std::pair<double, int>> by_busy;
  for (int l = 0; l < net.link_count(); ++l)
    if (usage.busy_time(l) > 0.0) by_busy.emplace_back(-usage.bytes(l), l);
  std::sort(by_busy.begin(), by_busy.end());
  for (std::size_t i = 0; i < std::min<std::size_t>(by_busy.size(), 6); ++i) {
    const int l = by_busy[i].second;
    const std::string name =
        l < tree.node_count()
            ? "access:" + tree.node_name(static_cast<NodeId>(l))
            : "uplink:" + tree.switch_name(
                              static_cast<SwitchId>(l - tree.node_count()));
    links.add_row({name, cell(usage.bytes(l) / 1e9, 2),
                   cell(usage.busy_time(l) / kHorizon, 3)});
  }
  commsched::exp::emit(
      "Figure 1 (diagnosis) — busiest links: the shared switch uplinks",
      links, "fig1_links");

  std::cout << "\nShape check: J1 spikes whenever J2 is active (paper Fig. 1)"
            << " -> " << (mean(contended) > 1.2 * mean(solo) ? "OK" : "WEAK")
            << "\n";
  return 0;
}
