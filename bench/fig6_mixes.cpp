// Figure 6 reproduction: % reduction in total execution time for the §6.2
// experiment sets A-E (compute/communication ratios and pattern blends,
// D/E being CMC2D-like) on the Theta log, per proposed policy; plus the
// per-log average improvements the paper quotes in the text for Intrepid
// and Mira.
//
// The whole grid (machines × sets × allocators, plus the Theta-only
// alltoall extension) is one declarative campaign executed by the parallel
// engine in src/exp/; this file only builds the spec and shapes the paper's
// tables from the cells.
//
// Shape targets: gains grow with the communication share (A < B < C, D < E),
// and the RHVD-heavy sets B/C beat the RD+binomial sets D/E at equal
// communication share.
#include <string>
#include <utility>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/emit.hpp"
#include "metrics/summary.hpp"

namespace {
using namespace commsched;

constexpr std::size_t kNumSets = 5;  // A-E; index 5 is the extension mix
}

int main() {
  exp::CampaignSpec spec;
  spec.name = "fig6";
  spec.machines = exp::paper_machines();
  // The paper's four policies plus our search-based extension as a fifth
  // column (sa anneals from the greedy/balanced seeds, so its gains bound
  // the constructive policies from above).
  spec.allocators = {AllocatorKind::kDefault, AllocatorKind::kGreedy,
                     AllocatorKind::kBalanced, AllocatorKind::kAdaptive,
                     AllocatorKind::kSa};
  for (const char set : {'A', 'B', 'C', 'D', 'E'})
    spec.mixes.push_back(experiment_set(set));
  // Extension mix (ours): an MPI_Alltoall-dominated mix — the FFTW/CPMD
  // workload the paper's introduction motivates but does not evaluate.
  // Theta's 512-node cap fits the alltoall schedule limit, so the filter
  // runs it on Theta only.
  MixSpec extension = uniform_mix(Pattern::kPairwiseAlltoall, 0.9, 0.7);
  extension.name = "X (30% compute, 70% Alltoall) [extension]";
  spec.mixes.push_back(std::move(extension));
  spec.filter = [](const exp::CampaignSpec& s, const exp::CellCoord& c) {
    return c.mix < kNumSets || s.machines[c.machine].name == "Theta";
  };

  exp::CampaignRunner runner(std::move(spec));
  const exp::CampaignResult result = runner.run();
  const exp::CampaignSpec& grid = runner.spec();

  TextTable theta_table;
  theta_table.set_header({"Set", "Mix", "Impr%(greedy)", "Impr%(bal)",
                          "Impr%(adap)", "Impr%(sa)", "Impr%(avg)"});
  TextTable others;
  others.set_header({"Log", "Set", "Impr%(avg over algorithms)"});

  // One comparison group per admitted (machine, mix): default vs proposed.
  for (std::size_t m = 0; m < grid.machines.size(); ++m) {
    for (std::size_t x = 0; x < grid.mixes.size(); ++x) {
      const exp::CellResult* def = result.find(m, x, 0);
      if (def == nullptr) continue;  // filtered out
      std::vector<double> gains;
      for (std::size_t a = 1; a < 5; ++a)
        gains.push_back(
            improvement_percent(def->summary.total_exec_hours,
                                result.at(m, x, a).summary.total_exec_hours));
      // The paper's quoted average stays over its three proposed policies;
      // the sa extension gets its own column.
      const double avg = (gains[0] + gains[1] + gains[2]) / 3.0;
      const std::string set_label =
          x < kNumSets ? std::string(1, static_cast<char>('A' + x)) : "X";
      if (def->machine == "Theta")
        theta_table.add_row({set_label, def->mix, cell(gains[0], 2),
                             cell(gains[1], 2), cell(gains[2], 2),
                             cell(gains[3], 2), cell(avg, 2)});
      else if (x < kNumSets)
        others.add_row({def->machine, set_label, cell(avg, 2)});
    }
  }

  exp::emit(
      "Figure 6 — % execution-time reduction, experiment sets A-E, Theta",
      theta_table, "fig6_theta");
  exp::emit(
      "Figure 6 (text) — average improvements for Intrepid and Mira", others,
      "fig6_other_logs");
  exp::emit_campaign("Figure 6 — per-cell campaign summary", result,
                     "fig6_cells");
  return 0;
}
