// Figure 6 reproduction: % reduction in total execution time for the §6.2
// experiment sets A-E (compute/communication ratios and pattern blends,
// D/E being CMC2D-like) on the Theta log, per proposed policy; plus the
// per-log average improvements the paper quotes in the text for Intrepid
// and Mira.
//
// Shape targets: gains grow with the communication share (A < B < C, D < E),
// and the RHVD-heavy sets B/C beat the RD+binomial sets D/E at equal
// communication share.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "metrics/summary.hpp"

namespace {
using namespace commsched;
using commsched::bench::MachineCase;

constexpr char kSets[] = {'A', 'B', 'C', 'D', 'E'};
}

int main() {
  TextTable theta_table;
  theta_table.set_header({"Set", "Mix", "Impr%(greedy)", "Impr%(bal)",
                          "Impr%(adap)", "Impr%(avg)"});
  TextTable others;
  others.set_header({"Log", "Set", "Impr%(avg over algorithms)"});

  for (const MachineCase& machine : commsched::bench::paper_machines()) {
    for (const char set : kSets) {
      const MixSpec spec = experiment_set(set);
      const RunSummary def = summarize(commsched::bench::run_with_mix(
          machine, spec, AllocatorKind::kDefault));
      std::vector<double> gains;
      for (const AllocatorKind kind :
           {AllocatorKind::kGreedy, AllocatorKind::kBalanced,
            AllocatorKind::kAdaptive}) {
        const RunSummary s =
            summarize(commsched::bench::run_with_mix(machine, spec, kind));
        gains.push_back(improvement_percent(def.total_exec_hours,
                                            s.total_exec_hours));
      }
      const double avg = (gains[0] + gains[1] + gains[2]) / 3.0;
      if (machine.name == "Theta")
        theta_table.add_row({std::string(1, set), spec.name, cell(gains[0], 2),
                             cell(gains[1], 2), cell(gains[2], 2),
                             cell(avg, 2)});
      else
        others.add_row({machine.name, std::string(1, set), cell(avg, 2)});
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n";
  // Extension row (ours): an MPI_Alltoall-dominated mix — the FFTW/CPMD
  // workload the paper's introduction motivates but does not evaluate.
  // Theta's 512-node cap fits the alltoall schedule limit.
  {
    const auto theta = commsched::bench::paper_machine("Theta");
    MixSpec spec = uniform_mix(Pattern::kPairwiseAlltoall, 0.9, 0.7);
    spec.name = "X (30% compute, 70% Alltoall) [extension]";
    const RunSummary def = summarize(commsched::bench::run_with_mix(
        theta, spec, AllocatorKind::kDefault));
    std::vector<double> gains;
    for (const AllocatorKind kind :
         {AllocatorKind::kGreedy, AllocatorKind::kBalanced,
          AllocatorKind::kAdaptive}) {
      const RunSummary s =
          summarize(commsched::bench::run_with_mix(theta, spec, kind));
      gains.push_back(
          improvement_percent(def.total_exec_hours, s.total_exec_hours));
      std::cout << "." << std::flush;
    }
    theta_table.add_row({"X", spec.name, cell(gains[0], 2), cell(gains[1], 2),
                         cell(gains[2], 2),
                         cell((gains[0] + gains[1] + gains[2]) / 3.0, 2)});
    std::cout << "\n";
  }

  commsched::bench::emit(
      "Figure 6 — % execution-time reduction, experiment sets A-E, Theta",
      theta_table, "fig6_theta");
  commsched::bench::emit(
      "Figure 6 (text) — average improvements for Intrepid and Mira", others,
      "fig6_other_logs");
  return 0;
}
