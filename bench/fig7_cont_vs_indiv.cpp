// Figure 7 reproduction: per-job execution times for 200 Theta jobs using
// the recursive doubling/halving pattern, under all four policies — once in
// continuous runs (left sub-graph, a four-cell campaign through src/exp)
// and once in individual runs (right sub-graph).  The full series goes to
// CSV; stdout carries decile summaries plus the maximum observed reductions
// (paper: up to 70% continuous, 15% individual for Theta).
#include <algorithm>
#include <iostream>
#include <utility>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/emit.hpp"
#include "metrics/summary.hpp"
#include "sched/individual.hpp"
#include "util/stats.hpp"

namespace {
using namespace commsched;

constexpr int kJobs = 200;
}

int main() {
  exp::CampaignSpec spec;
  spec.name = "fig7";
  spec.machines.push_back(exp::paper_machine("Theta", kJobs));
  spec.mixes.push_back(uniform_mix(Pattern::kRecursiveDoubling, 0.9, 0.8));

  exp::CampaignRunner runner(std::move(spec));
  const exp::CampaignResult result = runner.run();
  const exp::MachineCase& machine = runner.spec().machines[0];
  const MixSpec& mix = runner.spec().mixes[0];

  // --- Continuous runs: the four campaign cells ---------------------------
  std::vector<const SimResult*> cont;
  for (std::size_t a = 0; a < 4; ++a) cont.push_back(&result.at(0, 0, a).sim);

  // --- Individual runs (same decorated log as the campaign cells) ---------
  JobLog probes = machine.base_log;
  apply_mix(probes, mix,
            exp::derive_mix_seed(exp::base_seed(), machine.name, mix.name));
  IndividualOptions iopts;
  iopts.occupancy = 0.5;
  iopts.seed = exp::base_seed() + 41;
  const auto indiv = run_individual(machine.tree, probes, iopts);

  // --- CSV with both series ----------------------------------------------
  TextTable series;
  series.set_header({"job", "mode", "default_s", "greedy_s", "balanced_s",
                     "adaptive_s"});
  for (std::size_t i = 0; i < cont[0]->jobs.size(); ++i)
    series.add_row({std::to_string(cont[0]->jobs[i].id), "continuous",
                    cell(cont[0]->jobs[i].actual_runtime, 1),
                    cell(cont[1]->jobs[i].actual_runtime, 1),
                    cell(cont[2]->jobs[i].actual_runtime, 1),
                    cell(cont[3]->jobs[i].actual_runtime, 1)});
  for (const auto& o : indiv)
    series.add_row({std::to_string(o.id), "individual", cell(o.exec_time[0], 1),
                    cell(o.exec_time[1], 1), cell(o.exec_time[2], 1),
                    cell(o.exec_time[3], 1)});
  const std::string path = "bench_out/fig7_series.csv";
  std::cout << (series.write_csv(path) ? "  [csv] " + path
                                       : "  [csv] write failed")
            << "\n";

  // --- Summary: max per-job reduction in each mode -------------------------
  const auto max_reduction_cont = [&](std::size_t kind) {
    double best = 0.0;
    for (std::size_t i = 0; i < cont[0]->jobs.size(); ++i) {
      const double base = cont[0]->jobs[i].actual_runtime;
      const double ours = cont[kind]->jobs[i].actual_runtime;
      if (base > 0.0) best = std::max(best, (base - ours) / base * 100.0);
    }
    return best;
  };
  const auto max_reduction_indiv = [&](AllocatorKind kind) {
    double best = 0.0;
    for (const auto& o : indiv)
      best = std::max(best, o.improvement_percent(kind));
    return best;
  };

  TextTable summary;
  summary.set_header({"mode", "metric", "greedy", "balanced", "adaptive"});
  summary.add_row({"continuous", "max per-job exec reduction %",
                   cell(max_reduction_cont(1), 1), cell(max_reduction_cont(2), 1),
                   cell(max_reduction_cont(3), 1)});
  summary.add_row({"individual", "max per-job exec reduction %",
                   cell(max_reduction_indiv(AllocatorKind::kGreedy), 1),
                   cell(max_reduction_indiv(AllocatorKind::kBalanced), 1),
                   cell(max_reduction_indiv(AllocatorKind::kAdaptive), 1)});

  // Decile view of the continuous default-vs-adaptive series — the shape a
  // reader compares against the figure.
  std::vector<double> def_series, adap_series;
  for (const auto& j : cont[0]->jobs) def_series.push_back(j.actual_runtime);
  for (const auto& j : cont[3]->jobs) adap_series.push_back(j.actual_runtime);
  for (const double p : {10.0, 50.0, 90.0}) {
    summary.add_row({"continuous",
                     "p" + std::to_string(static_cast<int>(p)) + " exec (s)",
                     "-", cell(percentile(def_series, p), 0) + " (default)",
                     cell(percentile(adap_series, p), 0) + " (adaptive)"});
  }
  exp::emit(
      "Figure 7 — continuous vs individual runs, Theta, RD pattern",
      summary, "fig7_summary");
  return 0;
}
