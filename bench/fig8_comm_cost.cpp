// Figure 8 reproduction: communication cost (Eq. 6) of the allocations,
// binned by job node count, for all three logs under the binomial pattern
// with 90% communication-intensive jobs — one sub-plot per log, one series
// per policy.  Also §6.4's text numbers: the average per-pattern cost
// reduction (RD / RHVD / binomial) per log.
//
// One campaign covers both: machines × {RD, RHVD, binomial} × the four
// policies. The binomial cells' per-job series feed the figure's node-range
// bins; every cell's summary feeds the text numbers.
//
// Shape targets: every proposed policy prices at or below default; balanced
// and adaptive cut more than greedy.
#include <string>
#include <utility>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/emit.hpp"
#include "metrics/summary.hpp"

namespace {
using namespace commsched;

constexpr std::size_t kBinomialMix = 2;  // index into the mixes axis below

int max_exp_for(const std::string& machine) {
  if (machine == "Theta") return 9;
  if (machine == "Mira") return 14;
  return 15;  // Intrepid
}

int min_exp_for(const std::string& machine) {
  if (machine == "Theta") return 5;
  if (machine == "Mira") return 9;
  return 6;
}
}  // namespace

int main() {
  exp::CampaignSpec spec;
  spec.name = "fig8";
  spec.machines = exp::paper_machines();
  for (const Pattern pattern :
       {Pattern::kRecursiveDoubling, Pattern::kRecursiveHalvingVD,
        Pattern::kBinomial})
    spec.mixes.push_back(uniform_mix(pattern, 0.9, 0.8));

  exp::CampaignRunner runner(std::move(spec));
  const exp::CampaignResult result = runner.run();
  const exp::CampaignSpec& grid = runner.spec();

  TextTable bins_table;
  bins_table.set_header({"Log", "node-range", "jobs", "cost(def)",
                         "cost(greedy)", "cost(bal)", "cost(adap)"});
  TextTable reductions;
  reductions.set_header(
      {"Log", "Pattern", "avg cost reduction % (over proposed algorithms)"});

  for (std::size_t m = 0; m < grid.machines.size(); ++m) {
    const std::string& name = grid.machines[m].name;

    // --- The figure: binomial, cost-by-node-range, per policy -------------
    const auto edges =
        power_of_two_bin_edges(min_exp_for(name), max_exp_for(name), 2);
    std::vector<std::vector<double>> means;
    for (std::size_t a = 0; a < 4; ++a)
      means.push_back(
          average_cost_by_node_bin(result.at(m, kBinomialMix, a).sim, edges));
    const auto counts =
        job_count_by_node_bin(result.at(m, kBinomialMix, 0).sim, edges);
    for (std::size_t b = 0; b + 1 < edges.size(); ++b) {
      if (counts[b] == 0) continue;
      const std::string range = cell(edges[b], 0) + "-" + cell(edges[b + 1], 0);
      bins_table.add_row({name, range, std::to_string(counts[b]),
                          cell(means[0][b], 1), cell(means[1][b], 1),
                          cell(means[2][b], 1), cell(means[3][b], 1)});
    }

    // --- §6.4 text: per-pattern average cost reduction ---------------------
    for (std::size_t x = 0; x < grid.mixes.size(); ++x) {
      const double def = result.at(m, x, 0).summary.total_cost;
      double sum = 0.0;
      for (std::size_t a = 1; a < 4; ++a)
        sum += improvement_percent(def, result.at(m, x, a).summary.total_cost);
      reductions.add_row({name, grid.mixes[x].name, cell(sum / 3.0, 2)});
    }
  }

  exp::emit(
      "Figure 8 — communication cost by node range (binomial, 90% comm)",
      bins_table, "fig8_cost_bins");
  exp::emit(
      "Figure 8 / §6.4 — average communication-cost reduction per pattern",
      reductions, "fig8_cost_reductions");
  exp::emit_campaign("Figure 8 — per-cell campaign summary", result,
                     "fig8_cells");
  return 0;
}
