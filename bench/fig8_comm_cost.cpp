// Figure 8 reproduction: communication cost (Eq. 6) of the allocations,
// binned by job node count, for all three logs under the binomial pattern
// with 90% communication-intensive jobs — one sub-plot per log, one series
// per policy.  Also §6.4's text numbers: the average per-pattern cost
// reduction (RD / RHVD / binomial) per log.
//
// Shape targets: every proposed policy prices at or below default; balanced
// and adaptive cut more than greedy.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "metrics/summary.hpp"

namespace {
using namespace commsched;
using commsched::bench::MachineCase;

int max_exp_for(const std::string& machine) {
  if (machine == "Theta") return 9;
  if (machine == "Mira") return 14;
  return 15;  // Intrepid
}

int min_exp_for(const std::string& machine) {
  if (machine == "Theta") return 5;
  if (machine == "Mira") return 9;
  return 6;
}
}  // namespace

int main() {
  TextTable bins_table;
  bins_table.set_header({"Log", "node-range", "jobs", "cost(def)",
                         "cost(greedy)", "cost(bal)", "cost(adap)"});
  TextTable reductions;
  reductions.set_header(
      {"Log", "Pattern", "avg cost reduction % (over proposed algorithms)"});

  for (const MachineCase& machine : commsched::bench::paper_machines()) {
    // --- The figure: binomial, cost-by-node-range, per policy -------------
    const MixSpec binom = uniform_mix(Pattern::kBinomial, 0.9, 0.8);
    std::vector<SimResult> runs;
    for (const AllocatorKind kind : kAllAllocatorKinds) {
      runs.push_back(commsched::bench::run_with_mix(machine, binom, kind));
      std::cout << "." << std::flush;
    }
    const auto edges = power_of_two_bin_edges(min_exp_for(machine.name),
                                              max_exp_for(machine.name), 2);
    std::vector<std::vector<double>> means;
    for (const SimResult& r : runs)
      means.push_back(average_cost_by_node_bin(r, edges));
    const auto counts = job_count_by_node_bin(runs[0], edges);
    for (std::size_t b = 0; b + 1 < edges.size(); ++b) {
      if (counts[b] == 0) continue;
      const std::string range = cell(edges[b], 0) + "-" + cell(edges[b + 1], 0);
      bins_table.add_row({machine.name, range, std::to_string(counts[b]),
                          cell(means[0][b], 1), cell(means[1][b], 1),
                          cell(means[2][b], 1), cell(means[3][b], 1)});
    }

    // --- §6.4 text: per-pattern average cost reduction ---------------------
    for (const Pattern pattern :
         {Pattern::kRecursiveDoubling, Pattern::kRecursiveHalvingVD,
          Pattern::kBinomial}) {
      const MixSpec spec = uniform_mix(pattern, 0.9, 0.8);
      const RunSummary def = summarize(commsched::bench::run_with_mix(
          machine, spec, AllocatorKind::kDefault));
      double sum = 0.0;
      for (const AllocatorKind kind :
           {AllocatorKind::kGreedy, AllocatorKind::kBalanced,
            AllocatorKind::kAdaptive}) {
        const RunSummary s =
            summarize(commsched::bench::run_with_mix(machine, spec, kind));
        sum += improvement_percent(def.total_cost, s.total_cost);
        std::cout << "." << std::flush;
      }
      reductions.add_row(
          {machine.name, pattern_name(pattern), cell(sum / 3.0, 2)});
    }
  }
  std::cout << "\n";
  commsched::bench::emit(
      "Figure 8 — communication cost by node range (binomial, 90% comm)",
      bins_table, "fig8_cost_bins");
  commsched::bench::emit(
      "Figure 8 / §6.4 — average communication-cost reduction per pattern",
      reductions, "fig8_cost_reductions");
  return 0;
}
