// Figure 9 reproduction: average turnaround time (hours) and node-hours on
// the Intrepid log with the RHVD pattern, sweeping the share of
// communication-intensive jobs over {30%, 60%, 90%} — one bar group per
// policy; plus the 90%-case turnaround reductions the paper quotes for
// Theta and Mira.
//
// Shape targets: all proposed policies <= default; gains grow with the
// communication share.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "metrics/summary.hpp"

namespace {
using namespace commsched;
using commsched::bench::MachineCase;
}

int main() {
  const MachineCase intrepid = commsched::bench::paper_machine("Intrepid");

  TextTable table;
  table.set_header({"comm %", "metric", "default", "greedy", "balanced",
                    "adaptive"});
  for (const double percent : {0.3, 0.6, 0.9}) {
    const MixSpec spec =
        uniform_mix(Pattern::kRecursiveHalvingVD, percent, 0.8);
    std::vector<RunSummary> s;
    for (const AllocatorKind kind : kAllAllocatorKinds) {
      s.push_back(
          summarize(commsched::bench::run_with_mix(intrepid, spec, kind)));
      std::cout << "." << std::flush;
    }
    const std::string label = cell(percent * 100, 0);
    table.add_row({label, "avg turnaround (h)", cell(s[0].avg_turnaround_hours, 2),
                   cell(s[1].avg_turnaround_hours, 2),
                   cell(s[2].avg_turnaround_hours, 2),
                   cell(s[3].avg_turnaround_hours, 2)});
    table.add_row({label, "avg node-hours", cell(s[0].avg_node_hours, 1),
                   cell(s[1].avg_node_hours, 1), cell(s[2].avg_node_hours, 1),
                   cell(s[3].avg_node_hours, 1)});
  }

  // §6.5 text: 90%-case turnaround reductions for Theta and Mira, per
  // policy (the paper quotes the cross-policy average; the split shows
  // greedy's Mira regression explicitly).
  TextTable others;
  others.set_header({"Log", "greedy %", "balanced %", "adaptive %", "avg %"});
  for (const char* name : {"Theta", "Mira"}) {
    const MachineCase machine = commsched::bench::paper_machine(name);
    const MixSpec spec = uniform_mix(Pattern::kRecursiveHalvingVD, 0.9, 0.8);
    const RunSummary def = summarize(commsched::bench::run_with_mix(
        machine, spec, AllocatorKind::kDefault));
    std::vector<double> gains;
    for (const AllocatorKind kind :
         {AllocatorKind::kGreedy, AllocatorKind::kBalanced,
          AllocatorKind::kAdaptive}) {
      const RunSummary s =
          summarize(commsched::bench::run_with_mix(machine, spec, kind));
      gains.push_back(improvement_percent(def.avg_turnaround_hours,
                                          s.avg_turnaround_hours));
      std::cout << "." << std::flush;
    }
    others.add_row({name, cell(gains[0], 1), cell(gains[1], 1),
                    cell(gains[2], 1),
                    cell((gains[0] + gains[1] + gains[2]) / 3.0, 1)});
  }
  std::cout << "\n";
  commsched::bench::emit(
      "Figure 9 — turnaround and node-hours vs comm-job share (Intrepid, RHVD)",
      table, "fig9_turnaround");
  commsched::bench::emit(
      "Figure 9 / §6.5 — turnaround reductions for Theta and Mira (90%)",
      others, "fig9_other_logs");
  return 0;
}
