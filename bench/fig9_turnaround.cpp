// Figure 9 reproduction: average turnaround time (hours) and node-hours on
// the Intrepid log with the RHVD pattern, sweeping the share of
// communication-intensive jobs over {30%, 60%, 90%} — one bar group per
// policy; plus the 90%-case turnaround reductions the paper quotes for
// Theta and Mira.
//
// One campaign: all three machines × the three comm-share mixes × four
// policies, with a filter keeping the 30%/60% sweeps Intrepid-only.
//
// Shape targets: all proposed policies <= default; gains grow with the
// communication share.
#include <string>
#include <utility>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/emit.hpp"
#include "metrics/summary.hpp"

namespace {
using namespace commsched;

constexpr double kShares[] = {0.3, 0.6, 0.9};
constexpr std::size_t kFullShareMix = 2;  // the 90% mix index
}

int main() {
  exp::CampaignSpec spec;
  spec.name = "fig9";
  spec.machines = exp::paper_machines();
  for (const double percent : kShares) {
    MixSpec mix = uniform_mix(Pattern::kRecursiveHalvingVD, percent, 0.8);
    mix.name += " " + cell(percent * 100, 0) + "% comm";
    spec.mixes.push_back(std::move(mix));
  }
  // The sweep is Intrepid's sub-figure; Theta/Mira only contribute the
  // paper's 90%-case text numbers.
  spec.filter = [](const exp::CampaignSpec& s, const exp::CellCoord& c) {
    return s.machines[c.machine].name == "Intrepid" ||
           c.mix == kFullShareMix;
  };

  exp::CampaignRunner runner(std::move(spec));
  const exp::CampaignResult result = runner.run();
  const exp::CampaignSpec& grid = runner.spec();

  TextTable table;
  table.set_header({"comm %", "metric", "default", "greedy", "balanced",
                    "adaptive"});
  for (std::size_t x = 0; x < grid.mixes.size(); ++x) {
    std::vector<const RunSummary*> s;
    for (std::size_t a = 0; a < 4; ++a)
      s.push_back(&result.at(0, x, a).summary);  // machine 0 = Intrepid
    const std::string label = cell(kShares[x] * 100, 0);
    table.add_row({label, "avg turnaround (h)",
                   cell(s[0]->avg_turnaround_hours, 2),
                   cell(s[1]->avg_turnaround_hours, 2),
                   cell(s[2]->avg_turnaround_hours, 2),
                   cell(s[3]->avg_turnaround_hours, 2)});
    table.add_row({label, "avg node-hours", cell(s[0]->avg_node_hours, 1),
                   cell(s[1]->avg_node_hours, 1), cell(s[2]->avg_node_hours, 1),
                   cell(s[3]->avg_node_hours, 1)});
  }

  // §6.5 text: 90%-case turnaround reductions for Theta and Mira, per
  // policy (the paper quotes the cross-policy average; the split shows
  // greedy's Mira regression explicitly).
  TextTable others;
  others.set_header({"Log", "greedy %", "balanced %", "adaptive %", "avg %"});
  for (std::size_t m = 1; m < grid.machines.size(); ++m) {
    const double def =
        result.at(m, kFullShareMix, 0).summary.avg_turnaround_hours;
    std::vector<double> gains;
    for (std::size_t a = 1; a < 4; ++a)
      gains.push_back(improvement_percent(
          def, result.at(m, kFullShareMix, a).summary.avg_turnaround_hours));
    others.add_row({grid.machines[m].name, cell(gains[0], 1),
                    cell(gains[1], 1), cell(gains[2], 1),
                    cell((gains[0] + gains[1] + gains[2]) / 3.0, 1)});
  }

  exp::emit(
      "Figure 9 — turnaround and node-hours vs comm-job share (Intrepid, RHVD)",
      table, "fig9_turnaround");
  exp::emit(
      "Figure 9 / §6.5 — turnaround reductions for Theta and Mira (90%)",
      others, "fig9_other_logs");
  exp::emit_campaign("Figure 9 — per-cell campaign summary", result,
                     "fig9_cells");
  return 0;
}
