// §7 future work made runnable: I/O-aware allocation on a mixed
// communication + I/O workload (Theta log; 90% comm jobs at 50% comm time,
// 40% I/O jobs at 30% I/O time). Compares stock SLURM, the paper's adaptive
// policy (communication-only) and the combined io_aware policy on execution
// time, waits, and both cost metrics.
//
// Expected shape: io_aware's per-job weighted score (comm ratio x comm
// share + I/O ratio x I/O share) avoids the placements where packing for
// communication costs more in I/O stacking than it gains, so it ends at or
// below adaptive on execution, wait and turnaround time. The aggregate
// I/O-cost column shows why the trade-off is real: both job-aware policies
// pack communication-heavy jobs onto few leaves, which *concentrates* those
// jobs' I/O relative to default's fragmented placements — io_aware pays
// that price only where the runtime score says it is worth it.
#include <utility>

#include "exp/campaign.hpp"
#include "exp/emit.hpp"
#include "metrics/summary.hpp"

namespace {
using namespace commsched;

double total_io_cost(const SimResult& r) {
  double total = 0.0;
  for (const auto& j : r.jobs) total += j.io_cost;
  return total;
}
}  // namespace

int main() {
  MixSpec mix = uniform_mix(Pattern::kRecursiveHalvingVD, 0.9, 0.5);
  mix.io_percent = 0.4;
  mix.io_fraction = 0.3;

  exp::CampaignSpec spec;
  spec.name = "io_aware";
  spec.machines.push_back(exp::paper_machine("Theta"));
  spec.mixes.push_back(std::move(mix));
  spec.allocators = {AllocatorKind::kDefault, AllocatorKind::kAdaptive,
                     AllocatorKind::kIoAware};

  exp::CampaignRunner runner(std::move(spec));
  const exp::CampaignResult result = runner.run();
  const exp::CampaignSpec& grid = runner.spec();

  TextTable table;
  table.set_header({"policy", "exec (h)", "wait (h)", "avg turnaround (h)",
                    "total Eq.6 cost", "total I/O cost"});
  for (std::size_t a = 0; a < grid.allocators.size(); ++a) {
    const exp::CellResult& c = result.at(0, 0, a);
    const RunSummary& s = c.summary;
    table.add_row({s.allocator, cell(s.total_exec_hours, 1),
                   cell(s.total_wait_hours, 1),
                   cell(s.avg_turnaround_hours, 2), cell(s.total_cost, 0),
                   cell(total_io_cost(c.sim), 0)});
  }
  exp::emit(
      "§7 extension — I/O-aware allocation on a mixed comm+I/O workload "
      "(Theta)",
      table, "io_aware");
  return 0;
}
