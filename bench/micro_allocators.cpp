// Scheduling-decision overhead (paper §5.2: "the proposed algorithms have
// negligible overhead (less than 0.1 second)").  Measures a single select()
// call per policy on machine-scale cluster states at several request sizes,
// with google-benchmark.
#include <benchmark/benchmark.h>

#include <memory>

#include "cluster/state.hpp"
#include "core/allocator_factory.hpp"
#include "topology/builders.hpp"
#include "util/rng.hpp"

namespace {

using namespace commsched;

// Fragment ~45% of the machine so the policies have real sorting to do.
void fragment(ClusterState& state, std::uint64_t seed) {
  Rng rng(seed);
  JobId job = 1;
  for (const SwitchId leaf : state.tree().leaves()) {
    std::vector<NodeId> busy;
    for (const NodeId n : state.tree().nodes_of_leaf(leaf))
      if (rng.bernoulli(0.45)) busy.push_back(n);
    if (!busy.empty()) state.allocate(job++, rng.bernoulli(0.5), busy);
  }
}

struct MachineFixture {
  Tree tree;
  ClusterState state;
  explicit MachineFixture(Tree t) : tree(std::move(t)), state(tree) {
    fragment(state, 4242);
  }
};

MachineFixture& theta_fixture() {
  static MachineFixture f(make_theta());
  return f;
}

MachineFixture& mira_fixture() {
  static MachineFixture f(make_mira());
  return f;
}

void run_select(benchmark::State& bench_state, MachineFixture& machine,
                AllocatorKind kind, int nodes, Pattern pattern) {
  const auto allocator = make_allocator(kind);
  AllocationRequest request;
  request.job = 999'999;
  request.num_nodes = nodes;
  request.comm_intensive = true;
  request.pattern = pattern;
  for (auto _ : bench_state) {
    auto result = allocator->select(machine.state, request);
    benchmark::DoNotOptimize(result);
  }
}

void BM_ThetaSelect(benchmark::State& state) {
  const auto kind = static_cast<AllocatorKind>(state.range(0));
  const int nodes = static_cast<int>(state.range(1));
  run_select(state, theta_fixture(), kind, nodes,
             Pattern::kRecursiveHalvingVD);
}

void BM_MiraSelect(benchmark::State& state) {
  const auto kind = static_cast<AllocatorKind>(state.range(0));
  const int nodes = static_cast<int>(state.range(1));
  run_select(state, mira_fixture(), kind, nodes,
             Pattern::kRecursiveHalvingVD);
}

void ApplyArgs(benchmark::internal::Benchmark* b, int max_nodes) {
  for (int kind = 0; kind < 4; ++kind)
    for (int nodes = 64; nodes <= max_nodes; nodes *= 8)
      b->Args({kind, nodes});
}

BENCHMARK(BM_ThetaSelect)->Apply([](benchmark::internal::Benchmark* b) {
  ApplyArgs(b, 512);
})->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_MiraSelect)->Apply([](benchmark::internal::Benchmark* b) {
  ApplyArgs(b, 16384);
})->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
