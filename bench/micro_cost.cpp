// Micro-benchmark: leaf-aggregated fast cost kernel vs the pair-by-pair
// reference path (Eqs. 5/6), on a Theta-like tree with a realistic
// background load. For each pattern and rank count it times
// candidate_cost (the overlay path AdaptiveAllocator::select exercises)
// through both kernels and reports ns per cost call.
//
// Outputs:
//   bench_out/micro_cost.csv      one row per (pattern, nranks)
//   BENCH_cost_model.json         perf snapshot at the repo root (run from
//                                 there) so future PRs can track regressions
//
// Run from the repo root: ./build/bench/bench_micro_cost
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/state.hpp"
#include "collectives/schedule.hpp"
#include "core/cost_model.hpp"
#include "topology/builders.hpp"
#include "util/rng.hpp"

namespace commsched {
namespace {

// Allocation that stripes across leaves (greedy/balanced picks span leaves
// whenever a job outgrows one), so distinct leaf pairs are actually hit.
std::vector<NodeId> striped_allocation(const Tree& tree, int num_nodes,
                                       const ClusterState& state) {
  std::vector<NodeId> nodes;
  const auto leaves = tree.leaves();
  for (std::size_t round = 0; static_cast<int>(nodes.size()) < num_nodes;
       ++round) {
    bool any = false;
    for (const SwitchId leaf : leaves) {
      const auto attached = tree.nodes_of_leaf(leaf);
      if (round >= attached.size()) continue;
      const NodeId n = attached[round];
      if (!state.is_free(n)) continue;
      nodes.push_back(n);
      any = true;
      if (static_cast<int>(nodes.size()) == num_nodes) break;
    }
    if (!any) break;
  }
  return nodes;
}

struct Row {
  std::string pattern;
  int nranks = 0;
  std::int64_t pair_messages = 0;
  double ref_ns = 0.0;
  double fast_ns = 0.0;
};

template <typename F>
double time_ns_per_call(F&& call, int min_reps) {
  // Warm up (first fast call sizes the scratch), then time enough reps for
  // a stable average.
  volatile double sink = call();
  const auto start = std::chrono::steady_clock::now();
  int reps = 0;
  double elapsed_ns = 0.0;
  do {
    for (int i = 0; i < min_reps; ++i) sink = call();
    reps += min_reps;
    elapsed_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  } while (elapsed_ns < 2e8);  // at least 0.2 s per measurement
  (void)sink;
  return elapsed_ns / reps;
}

int run() {
  // Open both outputs up front so a wrong working directory fails in
  // milliseconds, not after the full measurement sweep.
  std::ofstream csv("bench_out/micro_cost.csv");
  std::ofstream json("BENCH_cost_model.json");
  if (!csv || !json) {
    std::cerr << "cannot open bench_out/micro_cost.csv or "
                 "BENCH_cost_model.json (run from the repo root)\n";
    return 1;
  }

  const Tree tree = make_theta();  // 12 leaves x 366 nodes
  ClusterState state(tree);

  // ~40% background occupancy, half of it communication-intensive, spread
  // over the leaves like a mixed running workload.
  Rng rng(20200817);
  std::vector<NodeId> comm_nodes, quiet_nodes;
  for (NodeId n = 0; n < tree.node_count(); ++n) {
    const double p = rng.uniform_real(0.0, 1.0);
    if (p < 0.2)
      comm_nodes.push_back(n);
    else if (p < 0.4)
      quiet_nodes.push_back(n);
  }
  state.allocate(1, /*comm=*/true, comm_nodes);
  state.allocate(2, /*comm=*/false, quiet_nodes);

  const CostModel model(tree);  // unweighted Eq. 6, candidate overlay on

  constexpr Pattern kPatterns[] = {
      Pattern::kRecursiveDoubling, Pattern::kRecursiveHalvingVD,
      Pattern::kBinomial, Pattern::kRing, Pattern::kPairwiseAlltoall};
  constexpr int kRanks[] = {64, 512, 1024};

  std::vector<Row> rows;
  for (const int nranks : kRanks) {
    const auto nodes = striped_allocation(tree, nranks, state);
    if (static_cast<int>(nodes.size()) < nranks) continue;
    for (const Pattern pattern : kPatterns) {
      const auto schedule = make_schedule(pattern, nranks, 1 << 20);
      Row row;
      row.pattern = pattern_name(pattern);
      row.nranks = nranks;
      row.pair_messages = total_pair_messages(schedule);
      row.ref_ns = time_ns_per_call(
          [&] {
            return model.candidate_cost_reference(state, nodes, true,
                                                  schedule);
          },
          4);
      row.fast_ns = time_ns_per_call(
          [&] { return model.candidate_cost(state, nodes, true, schedule); },
          4);
      rows.push_back(row);
      std::printf("%-22s p=%5d pairs=%9lld ref=%12.1f ns fast=%12.1f ns  %6.1fx\n",
                  row.pattern.c_str(), row.nranks,
                  static_cast<long long>(row.pair_messages), row.ref_ns,
                  row.fast_ns, row.ref_ns / row.fast_ns);
    }
  }

  csv << "pattern,nranks,pair_messages,reference_ns_per_call,fast_ns_per_call,"
         "speedup\n";
  for (const Row& row : rows)
    csv << row.pattern << ',' << row.nranks << ',' << row.pair_messages << ','
        << row.ref_ns << ',' << row.fast_ns << ','
        << row.ref_ns / row.fast_ns << '\n';

  json << "{\n"
       << "  \"bench\": \"micro_cost\",\n"
       << "  \"machine\": \"theta (12 leaves x 366 nodes)\",\n"
       << "  \"metric\": \"ns per candidate_cost call\",\n"
       << "  \"before\": \"pair-by-pair reference kernel "
          "(cost_impl_reference)\",\n"
       << "  \"after\": \"leaf-aggregated fast kernel (cost_impl)\",\n"
       << "  \"cases\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"pattern\": \"" << row.pattern
         << "\", \"nranks\": " << row.nranks
         << ", \"pair_messages\": " << row.pair_messages
         << ", \"before_ns\": " << row.ref_ns
         << ", \"after_ns\": " << row.fast_ns
         << ", \"speedup\": " << row.ref_ns / row.fast_ns << "}"
         << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::cout << "wrote bench_out/micro_cost.csv and BENCH_cost_model.json\n";
  return 0;
}

}  // namespace
}  // namespace commsched

int main() { return commsched::run(); }
