// Micro-benchmark: the three Eq. 5/6 evaluation paths against each other —
// pair-by-pair reference, leaf-aggregated fast kernel (PR 1), and the
// shape-canonicalized LeafCommProfile path through a warm CommCache — on a
// Theta-like tree with a realistic background load.
//
// Two scenarios:
//   striped   allocation striped across all 12 leaves (worst case for leaf
//             dedup), rpn=1; times reference vs fast vs warm-profile;
//   block8    fixed leaf footprint — 8 leaves, block-contiguous, 2 ranks per
//             node — at 512/1024/4096 ranks; times fast vs cold profile
//             build vs warm profile. With the leaf footprint fixed, the
//             warm-profile cost per call should stay roughly flat as ranks
//             grow (the class count depends on the shape, not on p), while
//             the fast kernel still walks every rank pair. The reference
//             path is skipped here (minutes per call at 4096-rank alltoall).
//
// Outputs:
//   bench_out/micro_cost.csv           one row per (pattern, nranks), striped
//   bench_out/micro_cost_profile.csv   one row per (pattern, nranks), block8
//   BENCH_cost_model.json              perf snapshot at the repo root (run
//                                      from there) for regression tracking
//
// Run from the repo root: ./build/bench/bench_micro_cost
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/state.hpp"
#include "collectives/comm_cache.hpp"
#include "collectives/schedule.hpp"
#include "core/cost_model.hpp"
#include "topology/builders.hpp"
#include "util/rng.hpp"

namespace commsched {
namespace {

// Allocation that stripes across leaves (greedy/balanced picks span leaves
// whenever a job outgrows one), so distinct leaf pairs are actually hit.
std::vector<NodeId> striped_allocation(const Tree& tree, int num_nodes,
                                       const ClusterState& state) {
  std::vector<NodeId> nodes;
  const auto leaves = tree.leaves();
  for (std::size_t round = 0; static_cast<int>(nodes.size()) < num_nodes;
       ++round) {
    bool any = false;
    for (const SwitchId leaf : leaves) {
      const auto attached = tree.nodes_of_leaf(leaf);
      if (round >= attached.size()) continue;
      const NodeId n = attached[round];
      if (!state.is_free(n)) continue;
      nodes.push_back(n);
      any = true;
      if (static_cast<int>(nodes.size()) == num_nodes) break;
    }
    if (!any) break;
  }
  return nodes;
}

// Fixed leaf footprint for the flat-scaling scenario: `num_nodes` nodes
// block-contiguous over the first 8 leaves (grow p by adding nodes/ranks to
// the same leaves; the canonical shape keeps exactly 8 slots).
std::vector<NodeId> block8_allocation(const Tree& tree, int num_nodes) {
  std::vector<NodeId> nodes;
  const int per_leaf = num_nodes / 8;
  const auto leaves = tree.leaves();
  for (int l = 0; l < 8; ++l) {
    const auto attached = tree.nodes_of_leaf(leaves[static_cast<std::size_t>(l)]);
    for (int i = 0; i < per_leaf; ++i)
      nodes.push_back(attached[static_cast<std::size_t>(i)]);
  }
  return nodes;
}

struct Row {
  std::string pattern;
  int nranks = 0;
  std::int64_t pair_messages = 0;
  double ref_ns = 0.0;
  double fast_ns = 0.0;
  double profile_warm_ns = 0.0;
};

struct ProfileRow {
  std::string pattern;
  int nranks = 0;
  std::size_t classes = 0;
  std::size_t steps = 0;
  double fast_ns = 0.0;
  double cold_ns = 0.0;
  double warm_ns = 0.0;
};

template <typename F>
double time_ns_per_call(F&& call, int min_reps) {
  // Warm up (first fast call sizes the scratch), then time enough reps for
  // a stable average.
  volatile double sink = call();
  const auto start = std::chrono::steady_clock::now();
  int reps = 0;
  double elapsed_ns = 0.0;
  do {
    for (int i = 0; i < min_reps; ++i) sink = call();
    reps += min_reps;
    elapsed_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  } while (elapsed_ns < 2e8);  // at least 0.2 s per measurement
  (void)sink;
  return elapsed_ns / reps;
}

int run() {
  // Open both outputs up front so a wrong working directory fails in
  // milliseconds, not after the full measurement sweep.
  std::ofstream csv("bench_out/micro_cost.csv");
  std::ofstream profile_csv("bench_out/micro_cost_profile.csv");
  std::ofstream json("BENCH_cost_model.json");
  if (!csv || !profile_csv || !json) {
    std::cerr << "cannot open bench_out/micro_cost*.csv or "
                 "BENCH_cost_model.json (run from the repo root)\n";
    return 1;
  }

  const Tree tree = make_theta();  // 12 leaves x 366 nodes
  ClusterState state(tree);

  // ~40% background occupancy, half of it communication-intensive, spread
  // over the leaves like a mixed running workload.
  Rng rng(20200817);
  std::vector<NodeId> comm_nodes, quiet_nodes;
  for (NodeId n = 0; n < tree.node_count(); ++n) {
    const double p = rng.uniform_real(0.0, 1.0);
    if (p < 0.2)
      comm_nodes.push_back(n);
    else if (p < 0.4)
      quiet_nodes.push_back(n);
  }
  state.allocate(1, /*comm=*/true, comm_nodes);
  state.allocate(2, /*comm=*/false, quiet_nodes);

  const CostModel model(tree);  // unweighted Eq. 6, candidate overlay on
  CommCache cache(1 << 20);
  CostWorkspace workspace;

  constexpr Pattern kPatterns[] = {
      Pattern::kRecursiveDoubling, Pattern::kRecursiveHalvingVD,
      Pattern::kBinomial, Pattern::kRing, Pattern::kPairwiseAlltoall};

  // --- striped scenario: reference vs fast vs warm profile ----------------
  constexpr int kRanks[] = {64, 512, 1024};
  std::vector<Row> rows;
  for (const int nranks : kRanks) {
    const auto nodes = striped_allocation(tree, nranks, state);
    if (static_cast<int>(nodes.size()) < nranks) continue;
    for (const Pattern pattern : kPatterns) {
      const auto schedule = make_schedule(pattern, nranks, 1 << 20);
      Row row;
      row.pattern = pattern_name(pattern);
      row.nranks = nranks;
      row.pair_messages = total_pair_messages(schedule);
      row.ref_ns = time_ns_per_call(
          [&] {
            return model.candidate_cost_reference(state, nodes, true,
                                                  schedule);
          },
          4);
      row.fast_ns = time_ns_per_call(
          [&] { return model.candidate_cost(state, nodes, true, schedule); },
          4);
      // Warm profile path, full caller sequence: canonicalize the shape,
      // hit the cache, evaluate per class.
      row.profile_warm_ns = time_ns_per_call(
          [&] {
            const ShapeKey key = make_shape_key(tree, nodes);
            const LeafCommProfile& profile = cache.profile(pattern, 1, key);
            return model.candidate_cost(state, nodes, true, profile,
                                        workspace);
          },
          16);
      rows.push_back(row);
      std::printf(
          "%-10s p=%5d pairs=%9lld ref=%11.1f fast=%11.1f warm=%9.1f ns  "
          "fast/warm=%6.1fx\n",
          row.pattern.c_str(), row.nranks,
          static_cast<long long>(row.pair_messages), row.ref_ns, row.fast_ns,
          row.profile_warm_ns, row.fast_ns / row.profile_warm_ns);
    }
  }

  // --- block8 scenario: fixed leaf footprint, growing rank count ----------
  constexpr int kBlockRanks[] = {512, 1024, 4096};
  constexpr int kRpn = 2;
  std::vector<ProfileRow> profile_rows;
  for (const int nranks : kBlockRanks) {
    const auto nodes = block8_allocation(tree, nranks / kRpn);
    const auto expanded = expand_ranks_per_node(nodes, kRpn);
    const ShapeKey key = make_shape_key(tree, nodes);
    for (const Pattern pattern : kPatterns) {
      const auto schedule = make_schedule(pattern, nranks, 1 << 20);
      ProfileRow row;
      row.pattern = pattern_name(pattern);
      row.nranks = nranks;
      const LeafCommProfile& warm_profile = cache.profile(pattern, kRpn, key);
      row.classes = warm_profile.classes.size();
      row.steps = warm_profile.steps.size();
      row.fast_ns = time_ns_per_call(
          [&] {
            return model.candidate_cost(state, expanded, true, schedule);
          },
          2);
      row.cold_ns = time_ns_per_call(
          [&] {
            const LeafCommProfile built =
                make_leaf_comm_profile(pattern, 1 << 20, key, kRpn);
            return static_cast<double>(built.steps.size());
          },
          1);
      row.warm_ns = time_ns_per_call(
          [&] {
            const ShapeKey k = make_shape_key(tree, nodes);
            const LeafCommProfile& profile = cache.profile(pattern, kRpn, k);
            return model.candidate_cost(state, nodes, true, profile,
                                        workspace);
          },
          16);
      profile_rows.push_back(row);
      std::printf(
          "%-10s p=%5d classes=%4zu/%4zu fast=%11.1f cold=%11.1f "
          "warm=%9.1f ns  fast/warm=%6.1fx\n",
          row.pattern.c_str(), row.nranks, row.classes, row.steps, row.fast_ns,
          row.cold_ns, row.warm_ns, row.fast_ns / row.warm_ns);
    }
  }

  csv << "pattern,nranks,pair_messages,reference_ns_per_call,fast_ns_per_call,"
         "profile_warm_ns_per_call,speedup_ref_over_fast,"
         "speedup_fast_over_warm\n";
  for (const Row& row : rows)
    csv << row.pattern << ',' << row.nranks << ',' << row.pair_messages << ','
        << row.ref_ns << ',' << row.fast_ns << ',' << row.profile_warm_ns
        << ',' << row.ref_ns / row.fast_ns << ','
        << row.fast_ns / row.profile_warm_ns << '\n';

  profile_csv << "pattern,nranks,classes,steps,fast_ns_per_call,"
                 "profile_cold_ns_per_call,profile_warm_ns_per_call,"
                 "speedup_fast_over_warm\n";
  for (const ProfileRow& row : profile_rows)
    profile_csv << row.pattern << ',' << row.nranks << ',' << row.classes
                << ',' << row.steps << ',' << row.fast_ns << ',' << row.cold_ns
                << ',' << row.warm_ns << ',' << row.fast_ns / row.warm_ns
                << '\n';

  json << "{\n"
       << "  \"bench\": \"micro_cost\",\n"
       << "  \"machine\": \"theta (12 leaves x 366 nodes)\",\n"
       << "  \"metric\": \"ns per candidate_cost call\",\n"
       << "  \"before\": \"pair-by-pair reference kernel "
          "(cost_impl_reference)\",\n"
       << "  \"after\": \"leaf-aggregated fast kernel (cost_impl)\",\n"
       << "  \"cases\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"pattern\": \"" << row.pattern
         << "\", \"nranks\": " << row.nranks
         << ", \"pair_messages\": " << row.pair_messages
         << ", \"before_ns\": " << row.ref_ns
         << ", \"after_ns\": " << row.fast_ns
         << ", \"profile_warm_ns\": " << row.profile_warm_ns
         << ", \"speedup\": " << row.ref_ns / row.fast_ns << "}"
         << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  json << "  ],\n"
       << "  \"profile_block8\": {\n"
       << "    \"scenario\": \"8 leaves, block-contiguous, 2 ranks/node — "
          "fixed leaf footprint\",\n"
       << "    \"before\": \"leaf-aggregated fast kernel (cost_impl)\",\n"
       << "    \"after\": \"warm CommCache LeafCommProfile path "
          "(cost_profile_impl)\",\n"
       << "    \"cases\": [\n";
  for (std::size_t i = 0; i < profile_rows.size(); ++i) {
    const ProfileRow& row = profile_rows[i];
    json << "      {\"pattern\": \"" << row.pattern
         << "\", \"nranks\": " << row.nranks
         << ", \"classes\": " << row.classes << ", \"steps\": " << row.steps
         << ", \"fast_ns\": " << row.fast_ns
         << ", \"profile_cold_ns\": " << row.cold_ns
         << ", \"profile_warm_ns\": " << row.warm_ns
         << ", \"speedup\": " << row.fast_ns / row.warm_ns << "}"
         << (i + 1 < profile_rows.size() ? ",\n" : "\n");
  }
  json << "    ]\n  }\n}\n";
  std::cout << "wrote bench_out/micro_cost.csv, bench_out/micro_cost_profile"
               ".csv and BENCH_cost_model.json\n";
  return 0;
}

}  // namespace
}  // namespace commsched

int main() { return commsched::run(); }
