// Related-work comparison (§2): the interference-free allocation policy of
// Pollard et al. (no two jobs share a leaf switch) against the paper's
// contention-aware policies and stock SLURM, on the Theta workload.
//
// The paper's §2 critique is that full isolation "negatively impact[s] the
// wait time, which has to be compensated by possible speedups in execution
// times". This bench makes that trade-off measurable: exclusive should show
// the lowest communication costs but clearly higher waits than adaptive.
#include <iostream>

#include "bench_util.hpp"
#include "metrics/extended.hpp"
#include "metrics/summary.hpp"

namespace {
using namespace commsched;
}

int main() {
  const auto theta = commsched::bench::paper_machine("Theta");
  const MixSpec spec = uniform_mix(Pattern::kRecursiveHalvingVD, 0.9, 0.8);

  TextTable table;
  table.set_header({"policy", "exec (h)", "wait (h)", "avg turnaround (h)",
                    "mean bounded slowdown", "avg Eq.6 cost"});
  const AllocatorKind kinds[] = {AllocatorKind::kDefault,
                                 AllocatorKind::kGreedy,
                                 AllocatorKind::kBalanced,
                                 AllocatorKind::kAdaptive,
                                 AllocatorKind::kExclusive};
  for (const AllocatorKind kind : kinds) {
    const SimResult r = commsched::bench::run_with_mix(theta, spec, kind);
    const RunSummary s = summarize(r);
    const DistSummary slow = slowdown_summary(r);
    table.add_row({s.allocator, cell(s.total_exec_hours, 1),
                   cell(s.total_wait_hours, 1),
                   cell(s.avg_turnaround_hours, 2), cell(slow.mean, 2),
                   cell(s.avg_cost, 1)});
    std::cout << "." << std::flush;
  }
  std::cout << "\n";
  commsched::bench::emit(
      "Related work — interference-free (exclusive) vs contention-aware "
      "policies (Theta, RHVD, 90% comm)",
      table, "related_work");
  std::cout
      << "Expected shape (paper §2): exclusive minimizes contention/cost but\n"
         "pays for it in wait time; adaptive balances both.\n";
  return 0;
}
