// Related-work comparison (§2) under the dynamic interference model
// (DESIGN.md "Dynamic interference"), three ways:
//
//   isolation   — the interference-free policy of Pollard et al.: the
//                 exclusive allocator guarantees no two jobs share a leaf
//                 switch, so nothing ever degrades, but jobs queue for
//                 whole leaves;
//   contention-aware — the paper's allocators place for low Eq. 6 cost but
//                 admit co-location, so co-located communication load
//                 inflates runtimes at alpha > 0;
//   colocation  — QueuePolicy::kColocation on top of the same allocators:
//                 light loads pack first and admission defers a job while
//                 the external load on its prospective leaves exceeds
//                 coloc_max_external.
//
// The paper's §2 critique is that full isolation "negatively impact[s] the
// wait time, which has to be compensated by possible speedups in execution
// times". The dynamic model makes both sides of that trade measurable in
// one table: exclusive minimizes exec hours but pays wait hours; the
// colocation gate sits between. A second grid sweeps the interference
// coefficient alpha across allocators (the campaign variant axis) to show
// how the trade-off shifts with interference strength.
//
// Writes BENCH_interference.json at the CWD (run from the repo root).
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/emit.hpp"
#include "metrics/extended.hpp"
#include "metrics/summary.hpp"
#include "util/json.hpp"

namespace {
using namespace commsched;

// The admission threshold is a workload parameter: with 90% of jobs at comm
// fraction 0.8 the steady-state external load on a busy leaf is ~0.8 x its
// fill fraction, so the library default of 0.25 (tuned for mixed logs)
// degenerates to near-exclusive queueing here. 0.6 admits co-location up to
// ~75% leaf fill and gates only the worst antagonist pile-ups.
constexpr double kColocGate = 0.6;

SchedOptions dynamic_options(double alpha, QueuePolicy policy) {
  SchedOptions o;
  o.degradation.enabled = true;
  o.degradation.alpha = alpha;
  o.queue_policy = policy;
  o.coloc_max_external = kColocGate;
  return o;
}

std::string row_json(const exp::CellResult& c, double slowdown_mean) {
  const RunSummary& s = c.summary;
  return "{\"regime\": " + json_quote(c.variant) +
         ", \"allocator\": " + json_quote(c.allocator) +
         ", \"exec_hours\": " + json_number(s.total_exec_hours) +
         ", \"wait_hours\": " + json_number(s.total_wait_hours) +
         ", \"avg_turnaround_hours\": " + json_number(s.avg_turnaround_hours) +
         ", \"mean_bounded_slowdown\": " + json_number(slowdown_mean) +
         ", \"makespan_hours\": " + json_number(s.makespan_hours) + "}";
}
}  // namespace

int main() {
  // --- Grid 1: the three regimes, all evaluated under alpha = 1 dynamics
  // so isolation's zero co-location actually buys exec time back. ---
  exp::CampaignSpec spec;
  spec.name = "related_work";
  spec.machines.push_back(exp::paper_machine("Theta"));
  spec.mixes.push_back(uniform_mix(Pattern::kRecursiveHalvingVD, 0.9, 0.8));
  spec.allocators = {AllocatorKind::kDefault, AllocatorKind::kAdaptive,
                     AllocatorKind::kExclusive};
  spec.variants = {
      {"static", SchedOptions{}},
      {"dynamic", dynamic_options(1.0, QueuePolicy::kFifo)},
      {"coloc", dynamic_options(1.0, QueuePolicy::kColocation)},
  };

  exp::CampaignRunner runner(std::move(spec));
  const exp::CampaignResult result = runner.run();
  const exp::CampaignSpec& grid = runner.spec();

  std::vector<std::string> three_way_rows;
  TextTable table;
  table.set_header({"regime", "allocator", "exec (h)", "wait (h)",
                    "avg turnaround (h)", "mean bounded slowdown",
                    "makespan (h)"});
  for (std::size_t v = 0; v < grid.variants.size(); ++v) {
    for (std::size_t a = 0; a < grid.allocators.size(); ++a) {
      const exp::CellResult& c = result.at(0, 0, a, 0, v);
      const RunSummary& s = c.summary;
      const DistSummary slow = slowdown_summary(c.sim);
      table.add_row({c.variant, s.allocator, cell(s.total_exec_hours, 1),
                     cell(s.total_wait_hours, 1),
                     cell(s.avg_turnaround_hours, 2), cell(slow.mean, 2),
                     cell(s.makespan_hours, 1)});
      three_way_rows.push_back(row_json(c, slow.mean));
    }
  }
  exp::emit(
      "Related work — interference-free (exclusive) vs contention-aware vs "
      "colocation policy (Theta, RHVD, 90% comm, alpha=1)",
      table, "related_work");

  // --- Grid 2: interference-sensitivity sweep — alpha x allocator, FIFO
  // vs the colocation gate, default-allocator family only. ---
  exp::CampaignSpec sweep;
  sweep.name = "interference_alpha";
  sweep.machines.push_back(exp::paper_machine("Theta"));
  sweep.mixes.push_back(uniform_mix(Pattern::kRecursiveHalvingVD, 0.9, 0.8));
  sweep.allocators = {AllocatorKind::kDefault, AllocatorKind::kBalanced,
                      AllocatorKind::kAdaptive};
  for (const double alpha : {0.5, 1.0, 2.0, 4.0}) {
    const std::string tag = "a" + cell(alpha, 1);
    sweep.variants.push_back(
        {tag + "/fifo", dynamic_options(alpha, QueuePolicy::kFifo)});
    sweep.variants.push_back(
        {tag + "/coloc", dynamic_options(alpha, QueuePolicy::kColocation)});
  }
  sweep.variants.erase(sweep.variants.begin());  // drop the default "base"

  exp::CampaignRunner sweep_runner(std::move(sweep));
  const exp::CampaignResult sweep_result = sweep_runner.run();
  const exp::CampaignSpec& sweep_grid = sweep_runner.spec();

  std::vector<std::string> sweep_rows;
  TextTable alpha_table;
  alpha_table.set_header({"variant", "allocator", "exec (h)", "wait (h)",
                          "avg turnaround (h)", "makespan (h)"});
  for (std::size_t v = 0; v < sweep_grid.variants.size(); ++v) {
    for (std::size_t a = 0; a < sweep_grid.allocators.size(); ++a) {
      const exp::CellResult& c = sweep_result.at(0, 0, a, 0, v);
      const RunSummary& s = c.summary;
      const DistSummary slow = slowdown_summary(c.sim);
      alpha_table.add_row({c.variant, s.allocator, cell(s.total_exec_hours, 1),
                           cell(s.total_wait_hours, 1),
                           cell(s.avg_turnaround_hours, 2),
                           cell(s.makespan_hours, 1)});
      sweep_rows.push_back(row_json(c, slow.mean));
    }
  }
  exp::emit(
      "Interference sensitivity — alpha sweep x allocator, FIFO vs "
      "colocation gate (Theta, RHVD, 90% comm)",
      alpha_table, "related_work_alpha");

  std::ofstream json("BENCH_interference.json");
  if (!json) {
    std::cerr << "cannot open BENCH_interference.json (run from the repo "
                 "root)\n";
    return 1;
  }
  json << "{\n  \"bench\": \"interference\",\n"
       << "  \"machine\": \"Theta\",\n"
       << "  \"mix\": \"RHVD, 90% comm-intensive, comm fraction 0.8\",\n"
       << "  \"model\": \"dynamic leaf-load degradation "
          "(core/degradation_model), factor = 1 + alpha * intensity * "
          "external\",\n"
       << "  \"three_way\": [\n";
  for (std::size_t i = 0; i < three_way_rows.size(); ++i)
    json << "    " << three_way_rows[i]
         << (i + 1 < three_way_rows.size() ? ",\n" : "\n");
  json << "  ],\n  \"alpha_sweep\": [\n";
  for (std::size_t i = 0; i < sweep_rows.size(); ++i)
    json << "    " << sweep_rows[i]
         << (i + 1 < sweep_rows.size() ? ",\n" : "\n");
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_interference.json\n"
            << "Expected shape (paper §2): exclusive minimizes exec hours "
               "but\npays wait hours; the colocation gate sits between.\n";
  return 0;
}
