// Related-work comparison (§2): the interference-free allocation policy of
// Pollard et al. (no two jobs share a leaf switch) against the paper's
// contention-aware policies and stock SLURM, on the Theta workload.
//
// The paper's §2 critique is that full isolation "negatively impact[s] the
// wait time, which has to be compensated by possible speedups in execution
// times". This bench makes that trade-off measurable: exclusive should show
// the lowest communication costs but clearly higher waits than adaptive.
#include <iostream>
#include <utility>

#include "exp/campaign.hpp"
#include "exp/emit.hpp"
#include "metrics/extended.hpp"
#include "metrics/summary.hpp"

namespace {
using namespace commsched;
}

int main() {
  exp::CampaignSpec spec;
  spec.name = "related_work";
  spec.machines.push_back(exp::paper_machine("Theta"));
  spec.mixes.push_back(uniform_mix(Pattern::kRecursiveHalvingVD, 0.9, 0.8));
  spec.allocators = {AllocatorKind::kDefault, AllocatorKind::kGreedy,
                     AllocatorKind::kBalanced, AllocatorKind::kAdaptive,
                     AllocatorKind::kExclusive};

  exp::CampaignRunner runner(std::move(spec));
  const exp::CampaignResult result = runner.run();
  const exp::CampaignSpec& grid = runner.spec();

  TextTable table;
  table.set_header({"policy", "exec (h)", "wait (h)", "avg turnaround (h)",
                    "mean bounded slowdown", "avg Eq.6 cost"});
  for (std::size_t a = 0; a < grid.allocators.size(); ++a) {
    const exp::CellResult& c = result.at(0, 0, a);
    const RunSummary& s = c.summary;
    const DistSummary slow = slowdown_summary(c.sim);
    table.add_row({s.allocator, cell(s.total_exec_hours, 1),
                   cell(s.total_wait_hours, 1),
                   cell(s.avg_turnaround_hours, 2), cell(slow.mean, 2),
                   cell(s.avg_cost, 1)});
  }
  exp::emit(
      "Related work — interference-free (exclusive) vs contention-aware "
      "policies (Theta, RHVD, 90% comm)",
      table, "related_work");
  std::cout
      << "Expected shape (paper §2): exclusive minimizes contention/cost but\n"
         "pays for it in wait time; adaptive balances both.\n";
  return 0;
}
