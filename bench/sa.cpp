// Search-allocator benchmark (DESIGN.md "Delta-cost evaluation & search
// allocators"), two parts:
//
//   delta     microbenchmark of the move-evaluation refactor: on a
//             fragmented 1024-rank candidate, a warm single-leaf-move
//             cost_delta against a warm full candidate_cost through the
//             same LeafCommProfile. The whole point of the delta kernel is
//             to make thousands of anneal proposals affordable, so the
//             ratio must come out >= 10x for the O(log p)-step collectives
//             (RD/RHVD/binomial/ring). Alltoall is reported but not gated:
//             its Eq. 6 sum walks p-1 profile steps, and that O(p) term is
//             shared by both paths — bit-for-bit exactness forbids
//             regrouping the float sum — so the delta's advantage there is
//             bounded by the removed O(classes x pairs) term alone.
//
//   grid      the Figure 6 fragmented-cluster campaign (machines x
//             experiment sets A-E) with the sa policy against its greedy
//             seed: per-cell average Eq. 6 communication cost, improvement
//             percentages, and the count of cells where sa came out worse
//             than greedy (expected 0: sa starts from the better of the
//             greedy/balanced seeds and keeps the best placement seen).
//
// Outputs:
//   bench_out/sa_grid.csv   one row per admitted (machine, set) cell
//   BENCH_sa.json           perf + grid snapshot at the repo root
//
// Environment knobs (CI smoke caps):
//   COMMSCHED_SA_JOBS     jobs per log for the grid (default COMMSCHED_JOBS)
//   COMMSCHED_SA_BUDGET   anneal proposals per select (default SaOptions)
//
// Run from the repo root: ./build/bench/bench_sa
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cluster/state.hpp"
#include "collectives/comm_cache.hpp"
#include "core/cost_model.hpp"
#include "core/sa_allocator.hpp"
#include "exp/campaign.hpp"
#include "exp/emit.hpp"
#include "metrics/summary.hpp"
#include "topology/builders.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "workload/mixes.hpp"

namespace commsched {
namespace {

int env_int(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const auto v = parse_int(raw);
  if (!v) {
    std::cerr << name << ": not an integer: '" << raw << "'\n";
    std::exit(1);
  }
  return static_cast<int>(*v);
}

template <typename F>
double time_ns_per_call(F&& call, int min_reps) {
  volatile double sink = call();  // warm up (sizes the scratch)
  const auto start = std::chrono::steady_clock::now();
  int reps = 0;
  double elapsed_ns = 0.0;
  do {
    for (int i = 0; i < min_reps; ++i) sink = call();
    reps += min_reps;
    elapsed_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  } while (elapsed_ns < 2e8);  // at least 0.2 s per measurement
  (void)sink;
  return elapsed_ns / reps;
}

struct DeltaCase {
  std::string pattern;
  int nranks = 0;
  bool gated = true;  ///< counts toward the >=10x criterion (see header)
  double full_ns = 0.0;
  double delta_ns = 0.0;
  double speedup() const { return full_ns / delta_ns; }
};

// A fragmented 1024-rank candidate on a Theta-scale machine (32 leaves x
// 64 nodes): round-robin over 24 of the 32 leaves, mirroring how a loaded
// cluster splinters a large job, with free leaves left for the benchmarked
// reassignment move to target. A single-leaf move then touches 23 of the
// 276 slot pairs — the asymmetry the delta kernel exists to exploit.
std::vector<DeltaCase> run_delta_bench() {
  const Tree tree = make_two_level_tree(32, 64);
  ClusterState state(tree);

  constexpr int kRanks = 1024;
  constexpr std::size_t kSpannedLeaves = 24;
  const auto leaves = tree.leaves();
  std::vector<NodeId> nodes;
  for (std::size_t round = 0; static_cast<int>(nodes.size()) < kRanks;
       ++round)
    for (std::size_t l = 0;
         l < kSpannedLeaves && static_cast<int>(nodes.size()) < kRanks; ++l)
      nodes.push_back(tree.nodes_of_leaf(leaves[l])[round]);

  // ~40% background occupancy on the spanned leaves' remaining nodes, half
  // communication-intensive, so the session base prices a realistic
  // overlay, not an empty machine.
  Rng rng(20200817);
  std::vector<NodeId> comm_nodes, quiet_nodes;
  for (std::size_t l = 0; l < kSpannedLeaves; ++l) {
    const auto attached = tree.nodes_of_leaf(leaves[l]);
    for (std::size_t i = 1 + (kRanks - 1) / kSpannedLeaves;
         i < attached.size(); ++i) {
      const double p = rng.uniform_real(0.0, 1.0);
      if (p < 0.2)
        comm_nodes.push_back(attached[i]);
      else if (p < 0.4)
        quiet_nodes.push_back(attached[i]);
    }
  }
  state.allocate(1, /*comm=*/true, comm_nodes);
  state.allocate(2, /*comm=*/false, quiet_nodes);

  const CostModel model(tree, CostOptions{.hop_bytes = true});
  CommCache cache(double{1 << 20});
  std::vector<DeltaCase> cases;
  for (const Pattern pattern :
       {Pattern::kRecursiveDoubling, Pattern::kRecursiveHalvingVD,
        Pattern::kBinomial, Pattern::kRing, Pattern::kPairwiseAlltoall}) {
    const ShapeKey key = make_shape_key(tree, nodes);
    const LeafCommProfile& profile = cache.profile(pattern, 1, key);

    CostWorkspace full_ws;
    DeltaCase c;
    c.pattern = pattern_name(pattern);
    c.nranks = kRanks;
    c.gated = pattern != Pattern::kPairwiseAlltoall;
    c.full_ns = time_ns_per_call(
        [&] {
          return model.candidate_cost(state, nodes, true, profile, full_ws);
        },
        4);

    CostWorkspace delta_ws;
    (void)model.delta_begin(state, nodes, true, profile, delta_ws);
    // The anneal's inner loop: price one slot's reassignment to an
    // unoccupied leaf, tentatively (no commit), over and over.
    const SlotMove move{0, leaves[kSpannedLeaves + 2]};
    c.delta_ns = time_ns_per_call(
        [&] {
          return model.cost_delta(state, std::span<const SlotMove>(&move, 1),
                                  delta_ws);
        },
        64);
    cases.push_back(c);
    std::printf("%-10s p=%5d full=%11.1f delta=%9.1f ns  full/delta=%6.1fx\n",
                c.pattern.c_str(), c.nranks, c.full_ns, c.delta_ns,
                c.speedup());
  }
  return cases;
}

struct GridRow {
  std::string machine;
  std::string set;
  double greedy_avg_cost = 0.0;
  double sa_avg_cost = 0.0;
  double greedy_exec_hours = 0.0;
  double sa_exec_hours = 0.0;
  double improvement_pct = 0.0;
};

std::vector<GridRow> run_grid(int n_jobs, int budget) {
  exp::CampaignSpec spec;
  spec.name = "sa_grid";
  spec.machines = exp::paper_machines(n_jobs);
  for (const char set : {'A', 'B', 'C', 'D', 'E'})
    spec.mixes.push_back(experiment_set(set));
  spec.allocators = {AllocatorKind::kGreedy, AllocatorKind::kSa};
  spec.variants[0].options.sa.budget = budget;

  exp::CampaignRunner runner(std::move(spec));
  const exp::CampaignResult result = runner.run();
  const exp::CampaignSpec& grid = runner.spec();

  std::vector<GridRow> rows;
  for (std::size_t m = 0; m < grid.machines.size(); ++m) {
    for (std::size_t x = 0; x < grid.mixes.size(); ++x) {
      const RunSummary& greedy = result.at(m, x, 0).summary;
      const RunSummary& sa = result.at(m, x, 1).summary;
      GridRow row;
      row.machine = grid.machines[m].name;
      row.set = std::string(1, static_cast<char>('A' + x));
      row.greedy_avg_cost = greedy.avg_cost;
      row.sa_avg_cost = sa.avg_cost;
      row.greedy_exec_hours = greedy.total_exec_hours;
      row.sa_exec_hours = sa.total_exec_hours;
      row.improvement_pct =
          improvement_percent(greedy.avg_cost, sa.avg_cost);
      rows.push_back(row);
    }
  }
  return rows;
}

int run() {
  std::ofstream csv("bench_out/sa_grid.csv");
  std::ofstream json("BENCH_sa.json");
  if (!csv || !json) {
    std::cerr << "cannot open bench_out/sa_grid.csv or BENCH_sa.json (run "
                 "from the repo root)\n";
    return 1;
  }

  const std::vector<DeltaCase> delta = run_delta_bench();
  double min_speedup = 0.0;
  bool first_gated = true;
  for (const DeltaCase& c : delta) {
    if (!c.gated) continue;
    min_speedup = first_gated ? c.speedup()
                              : std::min(min_speedup, c.speedup());
    first_gated = false;
  }

  const int n_jobs = env_int("COMMSCHED_SA_JOBS", 0);
  const int budget = env_int("COMMSCHED_SA_BUDGET", SaOptions{}.budget);
  const std::vector<GridRow> rows = run_grid(n_jobs, budget);

  int worse = 0;
  for (const GridRow& row : rows)
    if (row.sa_avg_cost > row.greedy_avg_cost) ++worse;

  TextTable table;
  table.set_header({"Log", "Set", "AvgCost(greedy)", "AvgCost(sa)",
                    "Impr%", "Exec(greedy)", "Exec(sa)"});
  csv << "machine,set,greedy_avg_cost,sa_avg_cost,improvement_pct,"
         "greedy_exec_hours,sa_exec_hours\n";
  for (const GridRow& row : rows) {
    table.add_row({row.machine, row.set, cell(row.greedy_avg_cost, 3),
                   cell(row.sa_avg_cost, 3), cell(row.improvement_pct, 2),
                   cell(row.greedy_exec_hours, 0),
                   cell(row.sa_exec_hours, 0)});
    csv << row.machine << ',' << row.set << ',' << row.greedy_avg_cost << ','
        << row.sa_avg_cost << ',' << row.improvement_pct << ','
        << row.greedy_exec_hours << ',' << row.sa_exec_hours << '\n';
  }
  exp::emit("SA vs greedy — average job communication cost, Fig. 6 grid",
            table, "sa_grid");

  json << "{\n"
       << "  \"bench\": \"sa\",\n"
       << "  \"delta\": {\n"
       << "    \"scenario\": \"32x64 tree, 1024-rank candidate striped over "
          "24 leaves, 40% background load\",\n"
       << "    \"before\": \"warm full candidate_cost via LeafCommProfile\",\n"
       << "    \"after\": \"warm single-leaf-move cost_delta (tentative)\",\n"
       << "    \"gate\": \"min speedup over the O(log p)-step collectives; "
          "alltoall's O(p) step sum is shared by both paths (bit-for-bit "
          "exactness forbids regrouping it) and is reported ungated\",\n"
       << "    \"min_speedup\": " << min_speedup << ",\n"
       << "    \"cases\": [\n";
  for (std::size_t i = 0; i < delta.size(); ++i) {
    const DeltaCase& c = delta[i];
    json << "      {\"pattern\": \"" << c.pattern
         << "\", \"nranks\": " << c.nranks
         << ", \"gated\": " << (c.gated ? "true" : "false")
         << ", \"full_ns\": " << c.full_ns << ", \"delta_ns\": " << c.delta_ns
         << ", \"speedup\": " << c.speedup() << "}"
         << (i + 1 < delta.size() ? ",\n" : "\n");
  }
  json << "    ]\n  },\n"
       << "  \"grid\": {\n"
       << "    \"jobs_per_log\": " << (n_jobs > 0 ? n_jobs : exp::jobs_per_log())
       << ",\n"
       << "    \"sa_budget\": " << budget << ",\n"
       << "    \"cells_sa_worse_than_greedy\": " << worse << ",\n"
       << "    \"cells\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const GridRow& row = rows[i];
    json << "      {\"machine\": \"" << row.machine << "\", \"set\": \""
         << row.set << "\", \"greedy_avg_cost\": " << row.greedy_avg_cost
         << ", \"sa_avg_cost\": " << row.sa_avg_cost
         << ", \"improvement_pct\": " << row.improvement_pct << "}"
         << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  json << "    ]\n  }\n}\n";

  std::cout << "min delta speedup " << min_speedup << "x; " << worse
            << " cells with sa worse than greedy\n"
            << "wrote bench_out/sa_grid.csv and BENCH_sa.json\n";
  if (min_speedup < 10.0) {
    std::cerr << "FAIL: delta evaluation must be >= 10x cheaper than the "
                 "full recompute on the log-step collectives\n";
    return 1;
  }
  if (worse > 0) {
    std::cerr << "FAIL: sa must match or beat greedy on every cell\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace commsched

int main() { return commsched::run(); }
