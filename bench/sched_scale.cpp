// Event-loop scaling bench: jobs/sec of the simulator core vs log size,
// 10^3 -> 10^6 jobs, per allocator x backfill on/off (DESIGN.md
// "Million-job event loop").
//
// Each cell replays an undecorated synthetic log (comm_percent = 0, so no
// pricing — this measures the scheduler core, not the cost model) through
// SimEngine::kFast; the same log also runs through SimEngine::kReference
//   - at every size up to 10^4 for a full bit-identity check of the two
//     engines across all cells, and
//   - at the largest size <= 10^5 for the fast/reference speedup figure
//     (the reference loop's per-event queue sort makes 10^6 impractical,
//     which is the point of the rebuild).
//
// Environment knobs (both used by the CI smoke leg):
//   COMMSCHED_SCHED_SCALE_JOBS_MAX   cap the largest log size (default 10^6)
//   COMMSCHED_SCHED_SCALE_FLOOR     minimum fast-engine jobs/sec across all
//                                    cells; below it the bench exits 1
//
// Exits nonzero on any engine divergence or floor violation. Writes
// BENCH_sched_scale.json at the cwd (run from the repo root).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/allocator_factory.hpp"
#include "sched/simulator.hpp"
#include "topology/builders.hpp"
#include "workload/synthetic.hpp"

namespace commsched {
namespace {

bool results_identical(const SimResult& a, const SimResult& b) {
  if (a.jobs.size() != b.jobs.size() || a.makespan != b.makespan)
    return false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const JobResult& x = a.jobs[i];
    const JobResult& y = b.jobs[i];
    if (x.id != y.id || x.num_nodes != y.num_nodes ||
        x.comm_intensive != y.comm_intensive || x.pattern != y.pattern ||
        x.submit_time != y.submit_time || x.start_time != y.start_time ||
        x.end_time != y.end_time ||
        x.original_runtime != y.original_runtime ||
        x.actual_runtime != y.actual_runtime || x.cost != y.cost ||
        x.cost_default != y.cost_default || x.io_cost != y.io_cost ||
        x.io_cost_default != y.io_cost_default ||
        x.hit_walltime != y.hit_walltime)
      return false;
  }
  return true;
}

struct Cell {
  int jobs = 0;
  std::string allocator;
  std::string policy;
  bool backfill = true;
  double fast_seconds = 0.0;
  double fast_jobs_per_sec = 0.0;
  double ref_seconds = 0.0;  ///< 0 when the reference engine was not timed
  double speedup = 0.0;      ///< 0 when the reference engine was not timed
  int identical = -1;        ///< 1/0 checked, -1 not checked at this size
};

long long env_int(const char* name, long long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoll(v);
}

int run() {
  std::ofstream json("BENCH_sched_scale.json");
  if (!json) {
    std::cerr << "cannot open BENCH_sched_scale.json (run from the repo "
                 "root)\n";
    return 1;
  }

  const long long jobs_max =
      env_int("COMMSCHED_SCHED_SCALE_JOBS_MAX", 1'000'000);
  const long long floor_jps = env_int("COMMSCHED_SCHED_SCALE_FLOOR", 0);

  // 512 nodes: big enough that allocators have real placement freedom,
  // small enough that a million-job replay stays minutes, not hours. The
  // Theta profile shrunk onto it keeps the paper's job-size mix including
  // its backlogged 1.35 offered load, so the pending queue deepens with the
  // log — the regime (real backlogged archives) the indexed engine exists
  // for, and the one where the reference loop's O(queue) per-event work
  // blows up.
  const Tree tree = make_two_level_tree(/*leaves=*/16, /*nodes_per_leaf=*/32);
  const LogProfile profile =
      scale_profile(theta_profile(), tree.node_count());

  std::vector<int> sizes;
  for (const int n : {1'000, 10'000, 100'000, 1'000'000})
    if (n <= jobs_max) sizes.push_back(n);
  if (sizes.empty()) sizes.push_back(static_cast<int>(jobs_max));
  const int identity_max = 10'000;     // full matrix diffed up to here
  int speedup_size = sizes.front();    // largest size the reference runs at
  for (const int n : sizes)
    if (n <= 100'000) speedup_size = n;

  // The grid: every allocator x backfill under FIFO (the paper's policy),
  // plus the sorted queue policies for the default allocator. FIFO never
  // re-sorts the pending queue, so there the seed loop's per-event cost is
  // already flat and the two engines track each other; the sorted policies
  // are where the reference loop's full-queue stable_sort per event turns
  // a backlogged replay quadratic, and where the indexed engine's O(log n)
  // pending structure shows its headline speedup.
  struct Config {
    AllocatorKind kind;
    bool backfill;
    QueuePolicy policy;
  };
  std::vector<Config> grid;
  for (const AllocatorKind kind : kAllAllocatorKinds)
    for (const bool backfill : {true, false})
      grid.push_back({kind, backfill, QueuePolicy::kFifo});
  grid.push_back(
      {AllocatorKind::kDefault, true, QueuePolicy::kShortestJobFirst});
  grid.push_back(
      {AllocatorKind::kDefault, true, QueuePolicy::kSmallestJobFirst});
  const auto policy_name = [](QueuePolicy p) {
    return p == QueuePolicy::kFifo ? "fifo"
           : p == QueuePolicy::kShortestJobFirst ? "sjf"
                                                 : "smallest";
  };

  bool diverged = false;
  double min_jps = -1.0;
  std::vector<Cell> cells;
  for (const int n : sizes) {
    const JobLog log = generate_log(profile, n, /*seed=*/20200817);
    for (const Config& config : grid) {
      SchedOptions options;
      options.allocator = config.kind;
      options.easy_backfill = config.backfill;
      options.queue_policy = config.policy;
      options.audit = AuditLevel::kOff;  // measure the loop, not checks

      Cell cell;
      cell.jobs = n;
      cell.allocator = allocator_kind_name(config.kind);
      cell.policy = policy_name(config.policy);
      cell.backfill = config.backfill;

      options.engine = SimEngine::kFast;
      const auto t0 = std::chrono::steady_clock::now();
      const SimResult fast = run_continuous(tree, log, options);
      cell.fast_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      cell.fast_jobs_per_sec = n / cell.fast_seconds;
      if (min_jps < 0.0 || cell.fast_jobs_per_sec < min_jps)
        min_jps = cell.fast_jobs_per_sec;

      // The reference engine runs where it is affordable: everywhere the
      // identity check applies, plus the default-allocator cells at the
      // speedup size (one FIFO, one per sorted policy — the honest and the
      // headline comparison respectively).
      const bool check_identity = n <= identity_max;
      const bool time_reference =
          check_identity ||
          (n == speedup_size && config.kind == AllocatorKind::kDefault &&
           config.backfill);
      if (time_reference) {
        options.engine = SimEngine::kReference;
        const auto r0 = std::chrono::steady_clock::now();
        const SimResult ref = run_continuous(tree, log, options);
        cell.ref_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - r0)
                               .count();
        cell.speedup = cell.ref_seconds / cell.fast_seconds;
        cell.identical = results_identical(fast, ref) ? 1 : 0;
        if (cell.identical == 0) {
          diverged = true;
          std::cerr << "ENGINE DIVERGENCE: " << n << " jobs, "
                    << cell.allocator << ", " << cell.policy << ", backfill "
                    << config.backfill << "\n";
        }
      }
      cells.push_back(cell);
      std::printf(
          "%8d jobs  %-9s %-8s backfill=%d  fast %9.0f jobs/s (%8.3f s)%s\n",
          n, cell.allocator.c_str(), cell.policy.c_str(),
          config.backfill ? 1 : 0, cell.fast_jobs_per_sec, cell.fast_seconds,
          cell.ref_seconds > 0.0
              ? ("  ref " + std::to_string(cell.ref_seconds) +
                 " s  speedup " + std::to_string(cell.speedup) + "x")
                    .c_str()
              : "");
    }
  }

  json << "{\n"
       << "  \"bench\": \"sched_scale\",\n"
       << "  \"machine\": \"two-level tree, 16 leaves x 32 nodes\",\n"
       << "  \"workload\": \"Theta profile scaled to 512 nodes, load 0.95, "
          "undecorated (no pricing)\",\n"
       << "  \"metric\": \"jobs per second through run_continuous\",\n"
       << "  \"before\": \"SimEngine::kReference (per-event queue sort)\",\n"
       << "  \"after\": \"SimEngine::kFast (indexed pending queue + "
          "incremental reservation)\",\n"
       << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    json << "    {\"jobs\": " << c.jobs << ", \"allocator\": \""
         << c.allocator << "\", \"policy\": \"" << c.policy
         << "\", \"backfill\": " << (c.backfill ? "true" : "false")
         << ", \"fast_jobs_per_sec\": " << c.fast_jobs_per_sec
         << ", \"fast_seconds\": " << c.fast_seconds;
    if (c.ref_seconds > 0.0)
      json << ", \"ref_seconds\": " << c.ref_seconds
           << ", \"speedup\": " << c.speedup;
    if (c.identical >= 0)
      json << ", \"identical\": " << (c.identical == 1 ? "true" : "false");
    json << "}" << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_sched_scale.json\n";

  if (diverged) {
    std::cerr << "FAIL: engines diverged\n";
    return 1;
  }
  if (floor_jps > 0 && min_jps < static_cast<double>(floor_jps)) {
    std::cerr << "FAIL: slowest cell " << min_jps << " jobs/s is below the "
              << "COMMSCHED_SCHED_SCALE_FLOOR of " << floor_jps << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace commsched

int main() { return commsched::run(); }
