// Allocator-service bench: end-to-end daemon latency and throughput under
// the deterministic load generator (DESIGN.md "Allocator service").
//
// Starts an in-process strand server on a unix socket and replays four
// scenarios against it, each a deterministic stream from serve/loadgen:
//
//   throughput   default limits, pipeline window < queue depth, so zero
//                rejections by construction — the headline p50/p95/p99
//   bursty       open-loop pacing with sinusoidal bursts + a per-request
//                deadline, the paper-style arrival process
//   overload     queue_depth 8 against a window of 256 — admission control
//                must convert the excess into explicit kRejected replies;
//                the outcome counts must sum exactly to the stream length
//   sa           the simulated-annealing policy end to end (smaller
//                stream; sa prices hundreds of candidates per request)
//
// Environment knobs (CI smoke leg):
//   COMMSCHED_SERVE_REQS     stream length for the throughput scenario
//                            (default 200000; CI uses 10000)
//   COMMSCHED_SERVE_P99_MS   fail (exit 1) if the throughput scenario's
//                            p99 exceeds this many milliseconds
//
// Exits nonzero on any replay failure, unexpected rejection, or count
// mismatch. Writes BENCH_serve.json at the cwd (run from the repo root).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/allocator_factory.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "topology/builders.hpp"
#include "util/json.hpp"

namespace commsched {
namespace {

struct ScenarioResult {
  std::string name;
  std::size_t requests = 0;
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  std::uint64_t p50 = 0, p95 = 0, p99 = 0, max = 0;  // microseconds
  serve::ReplayResult replay;
  bool failed = false;
};

ScenarioResult run_scenario(const std::string& name, const Tree& tree,
                            const serve::ServiceOptions& service_options,
                            serve::ServerOptions server_options,
                            const serve::LoadSpec& spec,
                            const serve::ReplayOptions& replay_options) {
  ScenarioResult result;
  result.name = name;
  server_options.socket_path = "/tmp/commsched_bench_serve_" +
                               std::to_string(::getpid()) + ".sock";
  serve::Server server(tree, service_options, server_options);
  if (!server.start()) {
    std::cerr << "bench_serve: " << name << ": " << server.error() << "\n";
    result.failed = true;
    return result;
  }
  serve::Client client;
  if (!client.connect(server_options.socket_path)) {
    std::cerr << "bench_serve: " << name << ": " << client.error() << "\n";
    result.failed = true;
    return result;
  }
  const serve::LoadStream stream = build_stream(spec, tree.node_count());
  result.requests = stream.requests.size();
  const auto t0 = std::chrono::steady_clock::now();
  result.replay = serve::replay(client, stream, replay_options);
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  client.close();
  server.drain();
  result.requests_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(result.requests) / result.seconds
          : 0.0;
  result.p50 = result.replay.latency.percentile(50.0);
  result.p95 = result.replay.latency.percentile(95.0);
  result.p99 = result.replay.latency.percentile(99.0);
  result.max = result.replay.latency.max();
  const std::uint64_t accounted = result.replay.ok + result.replay.no_fit +
                                  result.replay.rejected +
                                  result.replay.timeouts + result.replay.bad +
                                  result.replay.other;
  if (!result.replay.complete || accounted != result.requests) {
    std::cerr << "bench_serve: " << name << ": incomplete replay ("
              << accounted << "/" << result.requests << " accounted, "
              << result.replay.io_errors << " io errors)\n";
    result.failed = true;
  }
  std::printf(
      "%-10s %8zu reqs  %9.0f req/s  p50=%6llu us  p95=%6llu us  "
      "p99=%6llu us  ok=%llu no_fit=%llu rejected=%llu timeout=%llu\n",
      name.c_str(), result.requests, result.requests_per_sec,
      static_cast<unsigned long long>(result.p50),
      static_cast<unsigned long long>(result.p95),
      static_cast<unsigned long long>(result.p99),
      static_cast<unsigned long long>(result.replay.ok),
      static_cast<unsigned long long>(result.replay.no_fit),
      static_cast<unsigned long long>(result.replay.rejected),
      static_cast<unsigned long long>(result.replay.timeouts));
  return result;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  // thread-safe: read once at startup before any threads exist
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

int run() {
  const Tree tree = make_two_level_tree(32, 16);  // 512 nodes
  const std::size_t requests =
      env_size("COMMSCHED_SERVE_REQS", 200000);
  const std::size_t p99_ms = env_size("COMMSCHED_SERVE_P99_MS", 0);

  serve::ServiceOptions service_options;  // adaptive policy, stock pricing
  std::vector<ScenarioResult> results;

  {
    serve::ServerOptions server_options;  // queue 1024 >> window 64
    serve::LoadSpec spec;
    spec.requests = requests;
    serve::ReplayOptions replay_options;
    replay_options.window = 64;
    results.push_back(run_scenario("throughput", tree, service_options,
                                   server_options, spec, replay_options));
    if (results.back().replay.rejected != 0 ||
        results.back().replay.timeouts != 0) {
      std::cerr << "bench_serve: throughput scenario saw rejections or "
                   "timeouts at default limits\n";
      results.back().failed = true;
    }
  }
  {
    serve::ServerOptions server_options;
    serve::LoadSpec spec;
    spec.requests = std::min<std::size_t>(requests, 20000);
    spec.arrival_rate = 20000.0;
    spec.burstiness = 0.8;
    spec.burst_period = 2000.0;
    spec.deadline_ms = 100;
    serve::ReplayOptions replay_options;
    replay_options.window = 64;
    replay_options.paced = true;
    results.push_back(run_scenario("bursty", tree, service_options,
                                   server_options, spec, replay_options));
  }
  {
    serve::ServerOptions server_options;
    server_options.queue_depth = 8;
    serve::LoadSpec spec;
    spec.requests = std::min<std::size_t>(requests, 50000);
    serve::ReplayOptions replay_options;
    replay_options.window = 256;  // >> queue depth: force admission control
    results.push_back(run_scenario("overload", tree, service_options,
                                   server_options, spec, replay_options));
  }
  {
    serve::ServiceOptions sa_options;
    sa_options.default_allocator = AllocatorKind::kSa;
    sa_options.sa.budget = 64;  // keep the CI leg affordable
    serve::ServerOptions server_options;
    serve::LoadSpec spec;
    spec.requests = std::min<std::size_t>(requests, 5000);
    serve::ReplayOptions replay_options;
    replay_options.window = 64;
    results.push_back(run_scenario("sa", tree, sa_options, server_options,
                                   spec, replay_options));
  }

  std::ofstream json("BENCH_serve.json");
  json << "{\n"
       << "  \"bench\": \"serve\",\n"
       << "  \"machine\": \"two-level tree, 32 leaves x 16 nodes\",\n"
       << "  \"metric\": \"request latency (us) and throughput through the "
          "allocd strand server over a unix socket\",\n"
       << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    json << "    {\"name\": \"" << r.name << "\", \"requests\": "
         << r.requests << ", \"seconds\": " << json_number(r.seconds)
         << ", \"requests_per_sec\": " << json_number(r.requests_per_sec)
         << ", \"p50_us\": " << r.p50 << ", \"p95_us\": " << r.p95
         << ", \"p99_us\": " << r.p99 << ", \"max_us\": " << r.max
         << ", \"ok\": " << r.replay.ok << ", \"no_fit\": " << r.replay.no_fit
         << ", \"rejected\": " << r.replay.rejected
         << ", \"timeouts\": " << r.replay.timeouts
         << ", \"bad\": " << r.replay.bad << ", \"other\": " << r.replay.other
         << "}" << (i + 1 < results.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_serve.json\n";

  for (const ScenarioResult& r : results)
    if (r.failed) {
      std::cerr << "FAIL: scenario " << r.name << "\n";
      return 1;
    }
  if (p99_ms > 0 && results.front().p99 > p99_ms * 1000) {
    std::cerr << "FAIL: throughput p99 " << results.front().p99
              << " us exceeds COMMSCHED_SERVE_P99_MS=" << p99_ms << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace commsched

int main() { return commsched::run(); }
