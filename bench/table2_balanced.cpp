// Table 2 reproduction: the paper's worked balanced-allocation example — a
// 512-node communication-intensive job over seven leaf switches with free
// node counts {160, 150, 100, 80, 70, 50, 40} must receive
// {128, 128, 64, 64, 64, 32, 32} (Algorithm 2's recursive halving of the
// allocation chunk).
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cluster/state.hpp"
#include "core/balanced_allocator.hpp"
#include "exp/emit.hpp"
#include "topology/tree.hpp"
#include "util/table.hpp"

namespace {
using namespace commsched;
}

int main() {
  constexpr int kFree[] = {160, 150, 100, 80, 70, 50, 40};
  constexpr int kPaper[] = {128, 128, 64, 64, 64, 32, 32};
  constexpr int kLeafSize = 200;

  TreeBuilder builder;
  std::vector<SwitchId> leaves;
  int node = 0;
  for (int i = 0; i < 7; ++i) {
    std::vector<std::string> names;
    for (int k = 0; k < kLeafSize; ++k)
      names.push_back("n" + std::to_string(node++));
    leaves.push_back(builder.add_leaf("L" + std::to_string(i + 1), names));
  }
  builder.add_switch("root", leaves);
  const Tree tree = builder.build();

  ClusterState state(tree);
  JobId filler = 1;
  for (int i = 0; i < 7; ++i) {
    std::vector<NodeId> occupied;
    for (const NodeId n : tree.nodes_of_leaf(leaves[static_cast<std::size_t>(i)])) {
      if (static_cast<int>(occupied.size()) == kLeafSize - kFree[i]) break;
      occupied.push_back(n);
    }
    state.allocate(filler++, false, occupied);
  }

  AllocationRequest request;
  request.job = 512;
  request.num_nodes = 512;
  request.comm_intensive = true;
  request.pattern = Pattern::kRecursiveHalvingVD;

  const BalancedAllocator alloc;
  const auto nodes = alloc.select(state, request);
  if (!nodes) {
    std::cerr << "allocation unexpectedly failed\n";
    return 1;
  }
  std::map<SwitchId, int> counts;
  for (const NodeId n : *nodes) ++counts[tree.leaf_of(n)];

  TextTable table;
  table.set_header({"Leaf Switch", "Free Nodes", "Allocated (ours)",
                    "Allocated (paper)", "match"});
  bool all_match = true;
  for (int i = 0; i < 7; ++i) {
    const SwitchId leaf = leaves[static_cast<std::size_t>(i)];
    const int got = counts.contains(leaf) ? counts.at(leaf) : 0;
    const bool ok = got == kPaper[i];
    all_match = all_match && ok;
    table.add_row({"L[" + std::to_string(i + 1) + "]", std::to_string(kFree[i]),
                   std::to_string(got), std::to_string(kPaper[i]),
                   ok ? "yes" : "NO"});
  }
  commsched::exp::emit(
      "Table 2 — balanced allocation of a 512-node job", table,
      "table2_balanced");
  std::cout << (all_match ? "Exact match with the paper's Table 2.\n"
                          : "MISMATCH with the paper's Table 2!\n");
  return all_match ? 0 : 1;
}
