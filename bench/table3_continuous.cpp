// Table 3 reproduction: continuous runs of the three job logs (Intrepid,
// Theta, Mira) with 90% communication-intensive jobs, for the RHVD and RD
// patterns, under default / greedy / balanced / adaptive allocation.
// Reports total execution hours and total wait hours per configuration,
// exactly the paper's layout, plus the derived improvement percentages.
//
// Shape targets (paper §6.1): balanced and adaptive beat default everywhere;
// greedy helps Intrepid/Theta but can lose on Mira; RHVD gains exceed RD
// gains.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "metrics/summary.hpp"

namespace {
using namespace commsched;
using commsched::bench::MachineCase;
}

int main() {
  const auto machines = commsched::bench::paper_machines();
  const Pattern patterns[] = {Pattern::kRecursiveHalvingVD,
                              Pattern::kRecursiveDoubling};

  TextTable table;
  table.set_header({"Log", "Pattern",
                    "Exec(def)", "Exec(greedy)", "Exec(bal)", "Exec(adap)",
                    "Wait(def)", "Wait(greedy)", "Wait(bal)", "Wait(adap)"});
  TextTable impr;
  impr.set_header({"Log", "Pattern", "ExecImpr%(greedy)", "ExecImpr%(bal)",
                   "ExecImpr%(adap)", "WaitImpr%(greedy)", "WaitImpr%(bal)",
                   "WaitImpr%(adap)"});

  for (const MachineCase& machine : machines) {
    for (const Pattern pattern : patterns) {
      const MixSpec spec = uniform_mix(pattern, 0.9, 0.8);
      std::vector<RunSummary> summaries;
      for (const AllocatorKind kind : kAllAllocatorKinds)
        summaries.push_back(
            summarize(commsched::bench::run_with_mix(machine, spec, kind)));

      const auto& d = summaries[0];
      table.add_row({machine.name, pattern_name(pattern),
                     cell(d.total_exec_hours, 0),
                     cell(summaries[1].total_exec_hours, 0),
                     cell(summaries[2].total_exec_hours, 0),
                     cell(summaries[3].total_exec_hours, 0),
                     cell(d.total_wait_hours, 0),
                     cell(summaries[1].total_wait_hours, 0),
                     cell(summaries[2].total_wait_hours, 0),
                     cell(summaries[3].total_wait_hours, 0)});
      impr.add_row(
          {machine.name, pattern_name(pattern),
           cell(improvement_percent(d.total_exec_hours,
                                    summaries[1].total_exec_hours), 1),
           cell(improvement_percent(d.total_exec_hours,
                                    summaries[2].total_exec_hours), 1),
           cell(improvement_percent(d.total_exec_hours,
                                    summaries[3].total_exec_hours), 1),
           cell(improvement_percent(d.total_wait_hours,
                                    summaries[1].total_wait_hours), 1),
           cell(improvement_percent(d.total_wait_hours,
                                    summaries[2].total_wait_hours), 1),
           cell(improvement_percent(d.total_wait_hours,
                                    summaries[3].total_wait_hours), 1)});
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n";
  commsched::bench::emit(
      "Table 3 — execution and wait times (hours), continuous runs, 90% comm",
      table, "table3_hours");
  commsched::bench::emit(
      "Table 3 (derived) — % improvement over default", impr,
      "table3_improvements");
  return 0;
}
