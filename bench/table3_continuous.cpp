// Table 3 reproduction: continuous runs of the three job logs (Intrepid,
// Theta, Mira) with 90% communication-intensive jobs, for the RHVD and RD
// patterns, under default / greedy / balanced / adaptive allocation.
// Reports total execution hours and total wait hours per configuration,
// exactly the paper's layout, plus the derived improvement percentages.
// The 3 × 2 × 4 grid runs as one campaign through src/exp.
//
// Shape targets (paper §6.1): balanced and adaptive beat default everywhere;
// greedy helps Intrepid/Theta but can lose on Mira; RHVD gains exceed RD
// gains.
#include <utility>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/emit.hpp"
#include "metrics/summary.hpp"

namespace {
using namespace commsched;
}

int main() {
  exp::CampaignSpec spec;
  spec.name = "table3";
  spec.machines = exp::paper_machines();
  for (const Pattern pattern :
       {Pattern::kRecursiveHalvingVD, Pattern::kRecursiveDoubling})
    spec.mixes.push_back(uniform_mix(pattern, 0.9, 0.8));
  // Paper policies plus the search-based sa extension as a fifth column.
  spec.allocators = {AllocatorKind::kDefault, AllocatorKind::kGreedy,
                     AllocatorKind::kBalanced, AllocatorKind::kAdaptive,
                     AllocatorKind::kSa};

  exp::CampaignRunner runner(std::move(spec));
  const exp::CampaignResult result = runner.run();
  const exp::CampaignSpec& grid = runner.spec();

  TextTable table;
  table.set_header({"Log", "Pattern",
                    "Exec(def)", "Exec(greedy)", "Exec(bal)", "Exec(adap)",
                    "Exec(sa)",
                    "Wait(def)", "Wait(greedy)", "Wait(bal)", "Wait(adap)",
                    "Wait(sa)"});
  TextTable impr;
  impr.set_header({"Log", "Pattern", "ExecImpr%(greedy)", "ExecImpr%(bal)",
                   "ExecImpr%(adap)", "ExecImpr%(sa)", "WaitImpr%(greedy)",
                   "WaitImpr%(bal)", "WaitImpr%(adap)", "WaitImpr%(sa)"});

  for (std::size_t m = 0; m < grid.machines.size(); ++m) {
    for (std::size_t x = 0; x < grid.mixes.size(); ++x) {
      std::vector<const RunSummary*> s;
      for (std::size_t a = 0; a < 5; ++a)
        s.push_back(&result.at(m, x, a).summary);

      const RunSummary& d = *s[0];
      table.add_row({grid.machines[m].name, grid.mixes[x].name,
                     cell(d.total_exec_hours, 0),
                     cell(s[1]->total_exec_hours, 0),
                     cell(s[2]->total_exec_hours, 0),
                     cell(s[3]->total_exec_hours, 0),
                     cell(s[4]->total_exec_hours, 0),
                     cell(d.total_wait_hours, 0),
                     cell(s[1]->total_wait_hours, 0),
                     cell(s[2]->total_wait_hours, 0),
                     cell(s[3]->total_wait_hours, 0),
                     cell(s[4]->total_wait_hours, 0)});
      impr.add_row(
          {grid.machines[m].name, grid.mixes[x].name,
           cell(improvement_percent(d.total_exec_hours,
                                    s[1]->total_exec_hours), 1),
           cell(improvement_percent(d.total_exec_hours,
                                    s[2]->total_exec_hours), 1),
           cell(improvement_percent(d.total_exec_hours,
                                    s[3]->total_exec_hours), 1),
           cell(improvement_percent(d.total_exec_hours,
                                    s[4]->total_exec_hours), 1),
           cell(improvement_percent(d.total_wait_hours,
                                    s[1]->total_wait_hours), 1),
           cell(improvement_percent(d.total_wait_hours,
                                    s[2]->total_wait_hours), 1),
           cell(improvement_percent(d.total_wait_hours,
                                    s[3]->total_wait_hours), 1),
           cell(improvement_percent(d.total_wait_hours,
                                    s[4]->total_wait_hours), 1)});
    }
  }

  exp::emit(
      "Table 3 — execution and wait times (hours), continuous runs, 90% comm",
      table, "table3_hours");
  exp::emit(
      "Table 3 (derived) — % improvement over default", impr,
      "table3_improvements");
  exp::emit_campaign("Table 3 — per-cell campaign summary", result,
                     "table3_cells");
  return 0;
}
