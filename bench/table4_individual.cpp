// Table 4 reproduction: individual runs — 200 randomly selected jobs per
// log, each evaluated against the *same* partially occupied cluster state
// under all four policies (the paper's fair-comparison protocol, §6.3).
// Reports the average % execution-time improvement over default for RHVD
// and RD.
//
// Individual runs evaluate all four policies inside run_individual, so the
// parallel axis here is the (machine, pattern) combination: the six combos
// run concurrently through run_indexed (util/thread_pool.hpp) and the rows
// are reduced in combo order, exactly like campaign cells.
//
// Shape target: every proposed policy is >= default on average, with
// balanced/adaptive >= greedy.
#include <cstdint>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/emit.hpp"
#include "metrics/summary.hpp"
#include "sched/individual.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {
using namespace commsched;

constexpr int kProbes = 200;
constexpr Pattern kPatterns[] = {Pattern::kRecursiveHalvingVD,
                                 Pattern::kRecursiveDoubling};

struct ComboRow {
  std::vector<std::string> cells;
};
}  // namespace

int main() {
  const std::vector<exp::MachineCase> machines = exp::paper_machines();
  const std::size_t combos = machines.size() * std::size(kPatterns);

  const std::function<ComboRow(std::size_t)> evaluate =
      [&machines](std::size_t combo) {
        const exp::MachineCase& machine =
            machines[combo / std::size(kPatterns)];
        const Pattern pattern = kPatterns[combo % std::size(kPatterns)];

        // 200 random jobs from the log (paper §6.3), decorated with the
        // pattern under test. Seeds hash the combo labels (never the loop
        // index), matching the campaign engine's derivation rule.
        const MixSpec mix = uniform_mix(pattern, 0.9, 0.8);
        const std::uint64_t seed =
            exp::derive_mix_seed(exp::base_seed(), machine.name, mix.name);
        JobLog probes = machine.base_log;
        apply_mix(probes, mix, seed);
        Rng rng(seed + 1);
        rng.shuffle(probes);
        if (probes.size() > kProbes) probes.resize(kProbes);

        IndividualOptions opts;
        opts.occupancy = 0.5;
        opts.seed = seed + 2;
        const auto outcomes = run_individual(machine.tree, probes, opts);

        double greedy = 0.0, balanced = 0.0, adaptive = 0.0;
        int comm = 0;
        for (const auto& o : outcomes) {
          if (!o.comm_intensive) continue;
          ++comm;
          greedy += o.improvement_percent(AllocatorKind::kGreedy);
          balanced += o.improvement_percent(AllocatorKind::kBalanced);
          adaptive += o.improvement_percent(AllocatorKind::kAdaptive);
        }
        const double n = comm > 0 ? static_cast<double>(comm) : 1.0;
        return ComboRow{{machine.name, pattern_name(pattern),
                         cell(greedy / n, 2), cell(balanced / n, 2),
                         cell(adaptive / n, 2),
                         std::to_string(outcomes.size())}};
      };

  const std::vector<ComboRow> rows =
      run_indexed<ComboRow>(/*threads=*/0, combos, evaluate);

  TextTable table;
  table.set_header({"Log", "Pattern", "Greedy %", "Balanced %", "Adaptive %",
                    "probes"});
  for (const ComboRow& row : rows) table.add_row(row.cells);

  exp::emit(
      "Table 4 — avg % execution-time improvement, individual runs",
      table, "table4_individual");
  return 0;
}
