// Table 4 reproduction: individual runs — 200 randomly selected jobs per
// log, each evaluated against the *same* partially occupied cluster state
// under all four policies (the paper's fair-comparison protocol, §6.3).
// Reports the average % execution-time improvement over default for RHVD
// and RD.
//
// Shape target: every proposed policy is >= default on average, with
// balanced/adaptive >= greedy.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "metrics/summary.hpp"
#include "sched/individual.hpp"
#include "util/rng.hpp"

namespace {
using namespace commsched;
using commsched::bench::MachineCase;

constexpr int kProbes = 200;
}

int main() {
  TextTable table;
  table.set_header({"Log", "Pattern", "Greedy %", "Balanced %", "Adaptive %",
                    "probes"});

  for (const MachineCase& machine : commsched::bench::paper_machines()) {
    for (const Pattern pattern :
         {Pattern::kRecursiveHalvingVD, Pattern::kRecursiveDoubling}) {
      // 200 random jobs from the log (paper §6.3), decorated with the
      // pattern under test.
      JobLog probes = machine.base_log;
      apply_mix(probes, uniform_mix(pattern, 0.9, 0.8),
                commsched::bench::base_seed() + 29);
      Rng rng(commsched::bench::base_seed() + 31);
      rng.shuffle(probes);
      if (probes.size() > kProbes) probes.resize(kProbes);

      IndividualOptions opts;
      opts.occupancy = 0.5;
      opts.seed = commsched::bench::base_seed() + 37;
      const auto outcomes = run_individual(machine.tree, probes, opts);

      double greedy = 0.0, balanced = 0.0, adaptive = 0.0;
      int comm = 0;
      for (const auto& o : outcomes) {
        if (!o.comm_intensive) continue;
        ++comm;
        greedy += o.improvement_percent(AllocatorKind::kGreedy);
        balanced += o.improvement_percent(AllocatorKind::kBalanced);
        adaptive += o.improvement_percent(AllocatorKind::kAdaptive);
      }
      const double n = comm > 0 ? static_cast<double>(comm) : 1.0;
      table.add_row({machine.name, pattern_name(pattern),
                     cell(greedy / n, 2), cell(balanced / n, 2),
                     cell(adaptive / n, 2), std::to_string(outcomes.size())});
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n";
  commsched::bench::emit(
      "Table 4 — avg % execution-time improvement, individual runs",
      table, "table4_individual");
  return 0;
}
