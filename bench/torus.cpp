// §7 extension — the allocation thesis on a torus ("extend our
// optimizations to other topologies using appropriate contention factor").
//
// On an 8x8x8 torus (a Blue Gene-like midplane), compare compact-cuboid
// partitions (the torus analogue of balanced allocation) against
// first-fit scatter for the paper's collective patterns, across occupancy
// levels. Cost is the Eq. 6 analogue with the torus contention factor
// (comm-node density in the minimal routing box).
//
// Expected shape: compact wins everywhere, and the gap widens with both
// job size and background contention — the tree results carry over.
#include <vector>

#include "exp/emit.hpp"
#include "torus/torus.hpp"
#include "util/rng.hpp"

namespace {
using namespace commsched;

void fragment(TorusState& state, double fraction, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TorusNodeId> busy;
  for (TorusNodeId n = 0; n < state.torus().node_count(); ++n)
    if (rng.bernoulli(fraction)) busy.push_back(n);
  if (!busy.empty()) state.occupy(busy, /*comm=*/true);
}
}  // namespace

int main() {
  const Torus torus(8, 8, 8);

  TextTable table;
  table.set_header({"occupancy", "pattern", "job nodes", "cost(first-fit)",
                    "cost(cuboid)", "reduction %"});
  for (const double occupancy : {0.0, 0.3, 0.6}) {
    TorusState state(torus);
    fragment(state, occupancy, 4242);
    for (const Pattern pattern :
         {Pattern::kRecursiveDoubling, Pattern::kRecursiveHalvingVD,
          Pattern::kBinomial}) {
      for (const int job : {16, 64, 128}) {
        const auto scattered = first_fit_allocation(state, job);
        const auto compact = cuboid_allocation(state, job);
        if (!scattered || !compact) {
          // Report the refusal instead of silently skipping: at high random
          // occupancy no free cuboid of this volume survives, which is the
          // torus version of the fragmentation cost §4.3 discusses.
          table.add_row({cell(occupancy * 100, 0) + "%",
                         pattern_name(pattern), std::to_string(job),
                         scattered ? cell(torus_cost(state, *scattered,
                                                     make_schedule(pattern, job, 1.0)), 1)
                                   : "-",
                         "no free cuboid", "-"});
          continue;
        }
        const auto sched = make_schedule(pattern, job, 1.0);
        const double c_scatter = torus_cost(state, *scattered, sched);
        const double c_compact = torus_cost(state, *compact, sched);
        table.add_row({cell(occupancy * 100, 0) + "%", pattern_name(pattern),
                       std::to_string(job), cell(c_scatter, 1),
                       cell(c_compact, 1),
                       cell((c_scatter - c_compact) / c_scatter * 100.0, 1)});
      }
    }
  }
  commsched::exp::emit(
      "§7 extension — compact vs scattered allocation on an 8x8x8 torus",
      table, "torus");
  return 0;
}
