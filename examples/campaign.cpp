// Campaign engine walkthrough: declare a grid of continuous-run
// experiments, execute it on the worker pool, and pull numbers out of the
// result — the same API every bench/ harness is built on.
//
// A campaign is (machines × mixes × allocators × seeds × option variants);
// each cell is one independent run_continuous call. The engine derives each
// cell's RNG seed by hashing the axis labels (never iteration order or
// thread id), so the output is bit-identical at any worker count — try
//
//   $ COMMSCHED_THREADS=1 ./campaign
//   $ COMMSCHED_THREADS=8 ./campaign
//
// and diff the output. The same determinism extends across processes
// (DESIGN.md "Campaign persistence, sharding & resume"):
//
//   $ COMMSCHED_STREAM_DIR=out ./campaign    # streams cells to a JSONL file
//                                            # and resumes it if killed
//   $ COMMSCHED_SHARD=0/2 COMMSCHED_STREAM_DIR=out ./campaign   # half the
//   $ COMMSCHED_SHARD=1/2 COMMSCHED_STREAM_DIR=out ./campaign   # grid each
//   $ tools/campaign_merge merged out/example.s0of2.jsonl <shard-1 stream>
//                                            # == the single-process bytes
#include <cstdint>
#include <iostream>
#include <utility>

#include "exp/campaign.hpp"
#include "exp/emit.hpp"
#include "exp/sink.hpp"
#include "metrics/summary.hpp"

using namespace commsched;

int main() {
  // 1. Declare the grid. Machines are built once per campaign; workers
  //    share each Tree read-only and copy only the per-cell job log.
  exp::CampaignSpec spec;
  spec.name = "example";
  spec.machines.push_back(exp::paper_machine("Theta", /*n_jobs=*/300));
  spec.mixes.push_back(uniform_mix(Pattern::kRecursiveHalvingVD, 0.9, 0.8));
  spec.mixes.push_back(uniform_mix(Pattern::kRecursiveDoubling, 0.9, 0.8));
  spec.allocators = {AllocatorKind::kDefault, AllocatorKind::kBalanced,
                     AllocatorKind::kAdaptive};

  // Optional knobs (all default sensibly):
  //   spec.threads = 4;            // else COMMSCHED_THREADS / hardware
  //   spec.quiet = true;           // else progress lines on stderr
  //   spec.base_seeds = {1, 2, 3}; // replicate the grid across seeds
  //   spec.variants = {...};       // SchedOptions ablations (see ablation.cpp)
  //   spec.filter = ...;           // drop cells from a partial grid
  //   spec.stream_path = "x.jsonl";// crash-safe per-cell stream + resume
  //                                // (else COMMSCHED_STREAM_DIR; see header)

  // 2. Run it. Cells execute in parallel; the result vector is reduced in
  //    cell order regardless of completion order.
  exp::CampaignRunner runner(std::move(spec));
  const exp::CampaignResult result = runner.run();
  const exp::CampaignSpec& grid = runner.spec();

  // Under COMMSCHED_SHARD=i/N this process ran only its slice of the grid,
  // so result.at() would throw for the other shards' cells. Emit the slice
  // and point at the merge step instead of shaping partial tables.
  const exp::ShardConfig shard = exp::shard_from_env();
  if (shard.count > 1) {
    exp::emit_campaign("example campaign (shard " +
                           std::to_string(shard.index) + "/" +
                           std::to_string(shard.count) + ")",
                       result, "example_campaign");
    std::cout << "sharded run: merge the per-shard streams with "
                 "tools/campaign_merge for the full-grid tables\n";
    return 0;
  }

  // 3. Shape tables from cells. at(machine, mix, allocator) indexes the
  //    grid; every cell carries the SimResult, its RunSummary, and the
  //    seeds the engine derived for it.
  TextTable table;
  table.set_header({"mix", "policy", "exec (h)", "wait (h)",
                    "profile-cache hit %"});
  for (std::size_t x = 0; x < grid.mixes.size(); ++x) {
    for (std::size_t a = 0; a < grid.allocators.size(); ++a) {
      const exp::CellResult& c = result.at(0, x, a);
      table.add_row({c.mix, c.allocator, cell(c.summary.total_exec_hours, 1),
                     cell(c.summary.total_wait_hours, 1),
                     cell(c.summary.cache.profile_hit_rate() * 100.0, 1)});
    }
  }
  std::cout << "A 1x2x3 campaign on Theta (300 jobs):\n" << table.render(2);

  // Cells in one comparison group (same machine + mix, different allocator)
  // share the same decorated job log: mix_seed excludes the allocator axis.
  const std::uint64_t s0 = result.at(0, 0, 0).mix_seed;
  const std::uint64_t s1 = result.at(0, 0, 2).mix_seed;
  std::cout << "\nmix_seed shared across policies: "
            << (s0 == s1 ? "yes" : "NO") << "\n";

  // 4. The long-form per-cell CSV (one row per cell) feeds plotting:
  exp::emit_campaign("example campaign", result, "example_campaign");
  return 0;
}
