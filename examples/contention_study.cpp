// The paper's §1 motivating experiment (Figure 1), runnable on the flow-level
// network simulator: J1 (8 nodes, two switches) executes MPI_Allgather
// bursts continuously while J2 (12 nodes, same two switches) fires
// periodically. Prints a text "plot" of J1's execution time so the spikes
// are visible in a terminal.
//
//   $ ./contention_study [period_s] [horizon_s]
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "netsim/sim.hpp"
#include "topology/builders.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace commsched;

int main(int argc, char** argv) {
  double period = 60.0, horizon = 600.0;
  if (argc > 1) period = *parse_double(argv[1]);
  if (argc > 2) horizon = *parse_double(argv[2]);

  const Tree tree = make_department_cluster();
  const FlowNetwork net(tree, LinkConfig{});

  RepeatingJob j1;
  j1.name = "J1";
  j1.nodes = {0, 16, 1, 17, 2, 18, 3, 19};  // 4+4, interleaved ranks
  j1.pattern = Pattern::kRecursiveHalvingVD;
  j1.msize = 1 << 20;
  j1.rounds = 30;

  RepeatingJob j2 = j1;
  j2.name = "J2";
  j2.nodes = {4, 20, 5, 21, 6, 22, 7, 23, 8, 24, 9, 25};  // 6+6
  j2.rounds = 30;
  j2.period = period;
  j2.first_start = period / 4.0;

  std::cout << "Simulating " << horizon << " s: J1 runs back-to-back, J2 every "
            << period << " s ...\n\n";
  const NetSimResult r = simulate_network(net, {j1, j2}, horizon);
  const auto& e1 = r.per_job[0];
  if (e1.empty()) {
    std::cerr << "no executions completed — increase the horizon\n";
    return 1;
  }

  double max_d = 0.0;
  for (const auto& ex : e1) max_d = std::max(max_d, ex.duration);

  std::cout << "J1 execution time over simulated time (* = J2 active):\n";
  for (const auto& ex : e1) {
    bool contended = false;
    for (const auto& ex2 : r.per_job[1])
      contended = contended || (ex.start < ex2.start + ex2.duration &&
                                ex2.start < ex.start + ex.duration);
    const int bar = static_cast<int>(50.0 * ex.duration / max_d);
    std::cout << "  t=" << format_double(ex.start, 1) << "s  "
              << format_double(ex.duration, 3) << "s |"
              << std::string(static_cast<std::size_t>(bar), '#')
              << (contended ? "  *" : "") << "\n";
  }

  std::vector<double> solo, contended;
  for (const auto& ex : e1) {
    bool hit = false;
    for (const auto& ex2 : r.per_job[1])
      hit = hit || (ex.start < ex2.start + ex2.duration &&
                    ex2.start < ex.start + ex.duration);
    (hit ? contended : solo).push_back(ex.duration);
  }
  std::cout << "\nJ1 mean execution: solo " << format_double(mean(solo), 3)
            << " s, while J2 active " << format_double(mean(contended), 3)
            << " s (" << format_double(mean(contended) / mean(solo), 2)
            << "x)\n"
            << "This is the paper's Figure 1 effect: sharing switches with "
               "another\ncommunication-intensive job stretches the collective.\n";
  return 0;
}
