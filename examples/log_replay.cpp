// Replay a supercomputer job log through the scheduler simulator under all
// four allocation policies and print the paper's evaluation metrics.
//
//   $ ./log_replay [--machine theta|intrepid|mira] [--jobs N]
//                  [--pattern RD|RHVD|Binomial|Ring|Alltoall] [--comm-percent P]
//                  [--comm-fraction F] [--swf FILE --cores-per-node C]
//                  [--seed S]
//
// Without --swf a synthetic log matching the machine's profile is generated;
// with --swf a real Parallel Workloads Archive log drives the replay.
#include <iostream>
#include <string>
#include <vector>

#include "metrics/extended.hpp"
#include "metrics/summary.hpp"
#include "sched/simulator.hpp"
#include "topology/builders.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/mixes.hpp"
#include "workload/stats.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic.hpp"

using namespace commsched;

namespace {

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "error: " << error << "\n"
            << "usage: log_replay [--machine theta|intrepid|mira] [--jobs N]\n"
            << "                  [--pattern RD|RHVD|Binomial|Ring|Alltoall]\n"
            << "                  [--comm-percent P] [--comm-fraction F]\n"
            << "                  [--swf FILE --cores-per-node C] [--seed S]\n";
  std::exit(2);
}

Pattern parse_pattern(const std::string& s) {
  if (s == "RD") return Pattern::kRecursiveDoubling;
  if (s == "RHVD") return Pattern::kRecursiveHalvingVD;
  if (s == "Binomial") return Pattern::kBinomial;
  if (s == "Ring") return Pattern::kRing;
  if (s == "Alltoall") return Pattern::kPairwiseAlltoall;
  usage("unknown pattern '" + s + "'");
}

}  // namespace

int main(int argc, char** argv) {
  std::string machine = "theta";
  std::string swf_path;
  int jobs = 500;
  int cores_per_node = 1;
  Pattern pattern = Pattern::kRecursiveHalvingVD;
  double comm_percent = 0.9;
  double comm_fraction = 0.5;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--machine") machine = next();
    else if (arg == "--jobs") jobs = static_cast<int>(*parse_int(next()));
    else if (arg == "--pattern") pattern = parse_pattern(next());
    else if (arg == "--comm-percent") comm_percent = *parse_double(next());
    else if (arg == "--comm-fraction") comm_fraction = *parse_double(next());
    else if (arg == "--swf") swf_path = next();
    else if (arg == "--cores-per-node")
      cores_per_node = static_cast<int>(*parse_int(next()));
    else if (arg == "--seed") seed = static_cast<std::uint64_t>(*parse_int(next()));
    else usage("unknown argument '" + arg + "'");
  }

  const Tree tree = make_machine(machine);
  JobLog log;
  if (!swf_path.empty()) {
    SwfOptions opts;
    opts.cores_per_node = cores_per_node;
    opts.max_jobs = static_cast<std::size_t>(jobs);
    log = filter_power_of_two(load_swf(swf_path, opts));
    std::cout << "Loaded " << log.size() << " power-of-two jobs from "
              << swf_path << "\n";
  } else {
    LogProfile profile = machine == "intrepid" ? intrepid_profile()
                         : machine == "mira"   ? mira_profile()
                                               : theta_profile();
    log = filter_power_of_two(generate_log(profile, jobs, seed));
    std::cout << "Generated " << log.size() << " synthetic jobs ("
              << profile.name << " profile)\n";
  }
  apply_mix(log, uniform_mix(pattern, comm_percent, comm_fraction), seed + 1);
  if (pattern == Pattern::kPairwiseAlltoall)
    for (const auto& j : log)
      if (j.num_nodes > 1024)
        usage("Alltoall schedules are capped at 1024 ranks; this log has a " +
              std::to_string(j.num_nodes) + "-node job (try --machine theta)");

  std::cout << "\n" << format_log_stats(machine, compute_log_stats(log, tree.node_count()))
            << "\n";

  TextTable table;
  table.set_header({"policy", "exec (h)", "wait (h)", "avg turnaround (h)",
                    "node-hours", "avg Eq.6 cost", "mean slowdown",
                    "utilization %", "makespan (h)"});
  for (const AllocatorKind kind : kAllAllocatorKinds) {
    SchedOptions options;
    options.allocator = kind;
    const SimResult result = run_continuous(tree, log, options);
    const RunSummary s = summarize(result);
    table.add_row({s.allocator, cell(s.total_exec_hours, 1),
                   cell(s.total_wait_hours, 1),
                   cell(s.avg_turnaround_hours, 2),
                   cell(s.total_node_hours, 0), cell(s.avg_cost, 1),
                   cell(slowdown_summary(result).mean, 2),
                   cell(average_utilization(result, tree.node_count()) * 100, 1),
                   cell(s.makespan_hours, 1)});
    std::cout << "  ran " << s.allocator << "\n";
  }
  std::cout << "\nContinuous replay of " << log.size() << " jobs on "
            << machine << " (" << pattern_name(pattern) << ", "
            << comm_percent * 100 << "% comm jobs):\n\n"
            << table.render(2);
  return 0;
}
