// Inspect the step structure of the collective algorithms the scheduler
// reasons about (§3.3): which rank pairs exchange at each step, the per-step
// message sizes, and the Eq. 6 cost of block vs interleaved placements on a
// two-switch topology.
//
//   $ ./pattern_explorer [nprocs] [pattern]
//   $ ./pattern_explorer 12 RHVD
#include <algorithm>
#include <iostream>
#include <string>

#include "cluster/state.hpp"
#include "collectives/schedule.hpp"
#include "core/cost_model.hpp"
#include "topology/builders.hpp"
#include "util/strings.hpp"

using namespace commsched;

namespace {

Pattern parse_pattern(const std::string& s) {
  if (s == "RD") return Pattern::kRecursiveDoubling;
  if (s == "RHVD") return Pattern::kRecursiveHalvingVD;
  if (s == "Binomial") return Pattern::kBinomial;
  if (s == "Ring") return Pattern::kRing;
  if (s == "Alltoall") return Pattern::kPairwiseAlltoall;
  std::cerr << "unknown pattern '" << s << "' (use RD|RHVD|Binomial|Ring|Alltoall)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  int nprocs = 8;
  Pattern pattern = Pattern::kRecursiveDoubling;
  if (argc > 1) nprocs = static_cast<int>(*parse_int(argv[1]));
  if (argc > 2) pattern = parse_pattern(argv[2]);
  if (nprocs < 2 || nprocs > 4096) {
    std::cerr << "nprocs must be in [2, 4096]\n";
    return 2;
  }
  if (pattern == Pattern::kPairwiseAlltoall && nprocs > 1024) {
    std::cerr << "Alltoall schedules are capped at 1024 ranks\n";
    return 2;
  }

  const double base = 1 << 20;
  const CommSchedule schedule = make_schedule(pattern, nprocs, base);
  std::cout << pattern_name(pattern) << " over " << nprocs << " ranks: "
            << schedule.size() << " steps, "
            << total_pair_messages(schedule) << " pair-messages, "
            << total_bytes(schedule) / (1 << 20) << " MiB total\n\n";

  for (std::size_t s = 0; s < schedule.size(); ++s) {
    const CommStep& step = schedule[s];
    std::cout << "step " << s << "  msize=" << step.msize / (1 << 20)
              << " MiB";
    if (step.repeat > 1) std::cout << "  x" << step.repeat << " rounds";
    std::cout << "\n  pairs:";
    const std::size_t shown = std::min<std::size_t>(step.pairs.size(), 16);
    for (std::size_t p = 0; p < shown; ++p)
      std::cout << " (" << step.pairs[p].first << ","
                << step.pairs[p].second << ")";
    if (shown < step.pairs.size())
      std::cout << " ... +" << step.pairs.size() - shown << " more";
    std::cout << "\n";
  }

  // Cost comparison on a two-switch machine, half the ranks per switch.
  const int per_leaf = (nprocs + 1) / 2;
  const Tree tree = make_two_level_tree(2, per_leaf);
  const ClusterState state(tree);
  const CostModel model(tree);
  std::vector<NodeId> block, interleaved;
  for (int r = 0; r < nprocs; ++r) {
    block.push_back(r < per_leaf ? r : per_leaf + (r - per_leaf));
    interleaved.push_back(r % 2 == 0 ? r / 2 : per_leaf + r / 2);
  }
  // block: ranks 0..h-1 on leaf 0, the rest on leaf 1. interleaved: even
  // ranks on leaf 0, odd on leaf 1.
  std::cout << "\nEq.6 cost on a 2-switch machine (" << per_leaf
            << " nodes/switch):\n"
            << "  block placement:       "
            << model.candidate_cost(state, block, true, schedule) << "\n"
            << "  interleaved placement: "
            << model.candidate_cost(state, interleaved, true, schedule)
            << "\n"
            << "\nThe balanced allocator (§4.2) exists to make the block-like"
            << "\nplacement happen, keeping the heavy exchanges intra-switch.\n";
  return 0;
}
