// Quickstart: the public API in one file.
//
// Builds a small fat-tree, occupies part of it, and asks all four policies
// to place the same communication-intensive job, printing where each policy
// puts it and what the paper's cost model (Eqs. 2-6) thinks of the result.
//
//   $ ./quickstart
#include <iostream>
#include <map>
#include <memory>

#include "cluster/state.hpp"
#include "collectives/schedule.hpp"
#include "core/allocator_factory.hpp"
#include "core/cost_model.hpp"
#include "core/runtime_model.hpp"
#include "topology/builders.hpp"
#include "topology/conf.hpp"
#include "util/table.hpp"

using namespace commsched;

int main() {
  // 1. A topology: four 16-node leaf switches under one root — the same
  //    shape you would describe in a SLURM topology.conf.
  const Tree tree = make_two_level_tree(4, 16);
  std::cout << "Topology (" << tree.node_count() << " nodes, "
            << tree.leaf_count() << " leaf switches):\n\n"
            << write_topology_conf(tree) << "\n";

  // 2. Some existing load: a communication-intensive job crowding leaf s0
  //    and a compute job on s1.
  ClusterState state(tree);
  state.allocate(/*job=*/1, /*comm_intensive=*/true,
                 std::vector<NodeId>{0, 1, 2, 3, 4, 5, 6, 7});
  state.allocate(/*job=*/2, /*comm_intensive=*/false,
                 std::vector<NodeId>{16, 17, 18, 19});

  // 3. A new communication-intensive job: 24 nodes — more than any single
  //    leaf switch holds, so every policy has to make a real placement
  //    decision — dominated by an MPI_Allgather (recursive halving +
  //    vector doubling).
  AllocationRequest request;
  request.job = 3;
  request.num_nodes = 24;
  request.comm_intensive = true;
  request.pattern = Pattern::kRecursiveHalvingVD;
  request.msize = 1 << 20;

  const CostModel model(tree);
  const CommSchedule schedule =
      make_schedule(request.pattern, request.num_nodes, request.msize);

  TextTable table;
  table.set_header({"policy", "nodes per leaf", "Eq.6 cost",
                    "est. runtime of a 1h job (Eq.7)"});
  double default_cost = 0.0;
  for (const AllocatorKind kind : kAllAllocatorKinds) {
    const auto allocator = make_allocator(kind);
    const auto nodes = allocator->select(state, request);
    if (!nodes) continue;
    std::map<SwitchId, int> per_leaf;
    for (const NodeId n : *nodes) ++per_leaf[tree.leaf_of(n)];
    std::string layout;
    for (const auto& [leaf, count] : per_leaf)
      layout += tree.switch_name(leaf) + ":" + std::to_string(count) + " ";
    const double cost = model.candidate_cost(state, *nodes, true, schedule);
    if (kind == AllocatorKind::kDefault) default_cost = cost;
    // A 1-hour job spending half its time in the collective:
    const double runtime =
        modified_runtime(3600.0, 0.5, cost, default_cost);
    table.add_row({allocator->name(), layout, cell(cost, 2),
                   cell(runtime, 0) + " s"});
  }
  std::cout << "Placing a 24-node MPI_Allgather-heavy job:\n"
            << table.render(2)
            << "\nLower Eq.6 cost -> shorter estimated runtime (Eq.7).\n";
  return 0;
}
