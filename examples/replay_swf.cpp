// Minimal SWF replay: load a raw Parallel Workloads Archive trace, clean it
// with the loader's robustness flags, run it through the simulator, and
// stream the scheduler's event trace as JSON lines — the three-stage
// loader -> simulator -> trace-sink pipeline in its smallest form.
//
//   $ ./replay_swf ../data/demo-raw-trace.swf ../data/demo-topology.conf
//   $ ./replay_swf trace.swf topology.conf --cores-per-node 16 \
//         --allocator balanced --trace events.jsonl
//
// For the full metrics/mix treatment (synthetic logs, comm decoration,
// paper tables), see log_replay.cpp; this example is the quick-start the
// README's "Replaying an SWF log" section walks through.
#include <fstream>
#include <iostream>
#include <string>

#include "core/allocator_factory.hpp"
#include "sched/simulator.hpp"
#include "sched/trace.hpp"
#include "topology/conf.hpp"
#include "util/strings.hpp"
#include "workload/swf.hpp"

using namespace commsched;

namespace {

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "error: " << error << "\n"
            << "usage: replay_swf TRACE.swf TOPOLOGY.conf\n"
            << "           [--cores-per-node C] [--max-jobs N]\n"
            << "           [--allocator default|greedy|balanced|adaptive]\n"
            << "           [--no-backfill] [--trace OUT.jsonl]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string swf_path, topo_path, trace_path;
  SwfOptions swf_options;
  swf_options.sort_by_submit = true;  // archive logs are not always sorted
  SchedOptions sched_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--cores-per-node")
      swf_options.cores_per_node = static_cast<int>(*parse_int(next()));
    else if (arg == "--max-jobs")
      swf_options.max_jobs = static_cast<std::size_t>(*parse_int(next()));
    else if (arg == "--allocator") {
      const auto kind = allocator_kind_from_string(next());
      if (!kind) usage("unknown allocator");
      sched_options.allocator = *kind;
    } else if (arg == "--no-backfill")
      sched_options.easy_backfill = false;
    else if (arg == "--trace")
      trace_path = next();
    else if (swf_path.empty())
      swf_path = arg;
    else if (topo_path.empty())
      topo_path = arg;
    else
      usage("unexpected argument '" + arg + "'");
  }
  if (swf_path.empty() || topo_path.empty())
    usage("need an SWF trace and a topology.conf");

  // 1. Topology, then the log cleaned against it: jobs wider than the
  //    machine are dropped (and counted) instead of aborting the replay.
  const Tree tree = load_topology_conf(topo_path);
  swf_options.max_nodes = tree.node_count();
  SwfLoadStats stats;
  const JobLog log = load_swf(swf_path, swf_options, &stats);
  std::cerr << "loaded " << stats.kept << " of " << stats.parsed
            << " jobs (" << stats.dropped_invalid << " invalid, "
            << stats.dropped_too_wide << " too wide for "
            << tree.node_count() << " nodes)\n";

  // 2. Optional event-trace sink: every submit/start/end as a JSON line.
  std::ofstream trace_file;
  if (!trace_path.empty()) {
    trace_file.open(trace_path);
    if (!trace_file) usage("cannot open trace output '" + trace_path + "'");
    sched_options.trace = make_json_trace_sink(trace_file);
  }

  // 3. Replay. The log carries no communication attributes, so this is a
  //    pure scheduling replay: wait/turnaround times and utilization under
  //    the chosen allocator and queue discipline.
  const SimResult result = run_continuous(tree, log, sched_options);

  double total_wait = 0.0, total_node_hours = 0.0;
  for (const JobResult& j : result.jobs) {
    total_wait += j.wait_time();
    total_node_hours += j.node_hours();
  }
  const double n = result.jobs.empty()
                       ? 1.0
                       : static_cast<double>(result.jobs.size());
  std::cout << "allocator:      " << result.allocator_name << "\n"
            << "jobs completed: " << result.jobs.size() << "\n"
            << "makespan:       " << result.makespan / 3600.0 << " h\n"
            << "mean wait:      " << total_wait / n / 60.0 << " min\n"
            << "node-hours:     " << total_node_hours << "\n";
  return 0;
}
