// serve_quickstart — the allocator service end to end in one process.
//
// Starts the strand server on a unix socket, connects the blocking
// client, allocates three jobs (default policy, then an explicit sa
// request), queries the counters, releases everything, and drains.
// Demonstrates the select-plugin-shaped API: opaque job descriptor in,
// ordered node set + Eq. 6 cost out, idempotent request ids throughout
// (the duplicate alloc below returns the first answer, not a double
// allocation).
//
// Build & run:
//   cmake --build build --target serve_quickstart
//   ./build/examples/serve_quickstart
#include <iostream>
#include <string>
#include <unistd.h>

#include "core/allocator_factory.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "topology/builders.hpp"

int main() {
  using namespace commsched;

  const Tree tree = make_two_level_tree(4, 8);  // 32 nodes, 4 leaves

  serve::ServiceOptions service_options;  // adaptive policy by default
  serve::ServerOptions server_options;
  server_options.socket_path =
      "/tmp/commsched_serve_quickstart_" + std::to_string(::getpid()) +
      ".sock";
  serve::Server server(tree, service_options, server_options);
  if (!server.start()) {
    std::cerr << "server: " << server.error() << "\n";
    return 1;
  }
  std::cout << "serving " << tree.node_count() << " nodes on "
            << server_options.socket_path << "\n";

  serve::Client client;
  if (!client.connect(server_options.socket_path)) {
    std::cerr << "client: " << client.error() << "\n";
    return 1;
  }

  const auto show = [](const serve::Reply& reply) {
    std::cout << "  req " << reply.req_id << " -> "
              << serve_status_name(reply.status);
    if (reply.type == serve::MsgType::kAllocReply &&
        reply.status == serve::ServeStatus::kOk) {
      std::cout << " cost=" << reply.cost << " nodes=[";
      for (std::size_t i = 0; i < reply.nodes.size(); ++i)
        std::cout << (i ? "," : "") << reply.nodes[i];
      std::cout << "]";
    }
    std::cout << "\n";
  };

  serve::Request request;
  serve::Reply reply;

  // Job 1: an 8-node allreduce job under the server's default policy.
  request.req_id = 1;
  request.job = 1;
  request.num_nodes = 8;
  request.comm_intensive = true;
  request.pattern = Pattern::kRecursiveDoubling;
  if (!client.call(request, reply)) return 1;
  show(reply);

  // Job 2: the same descriptor, explicitly through simulated annealing.
  request.req_id = 2;
  request.job = 2;
  request.allocator = static_cast<std::uint8_t>(AllocatorKind::kSa);
  if (!client.call(request, reply)) return 1;
  show(reply);

  // Re-send request 1 (pretend the connection dropped before the reply):
  // the idempotency window returns the original answer.
  request.req_id = 1;
  request.job = 1;
  request.allocator = serve::kServerAllocator;
  if (!client.call(request, reply)) return 1;
  show(reply);

  request = serve::Request{};
  request.type = serve::MsgType::kQuery;
  request.req_id = 3;
  if (!client.call(request, reply)) return 1;
  std::cout << "  query: " << reply.running_jobs << " jobs, "
            << reply.free_nodes << "/" << reply.total_nodes
            << " nodes free, " << reply.idempotent_hits
            << " idempotent hit(s)\n";

  for (std::int64_t job = 1; job <= 2; ++job) {
    request = serve::Request{};
    request.type = serve::MsgType::kRelease;
    request.req_id = 10 + static_cast<std::uint64_t>(job);
    request.job = job;
    if (!client.call(request, reply)) return 1;
    show(reply);
  }

  request = serve::Request{};
  request.type = serve::MsgType::kDrain;
  request.req_id = 99;
  if (!client.call(request, reply)) return 1;
  std::cout << "  drain acknowledged\n";
  client.close();
  server.wait_drain_requested();
  server.drain();
  return 0;
}
