// A miniature SLURM front end over the scheduler simulator: read a
// slurm.conf, a topology.conf, and a set of sbatch scripts; "run" the
// workload; print squeue/sacct-style accounting.
//
//   $ ./slurm_emulator --conf slurm.conf --topology topology.conf ...
//     (followed by job1.sbatch job2.sbatch ...)
//   $ ./slurm_emulator --demo        # built-in config + demo scripts
//
// Each script's --begin directive (seconds) is its submit time; runtimes
// are drawn as a deterministic fraction of the walltime since scripts do
// not know their own durations (80%, the common estimate-accuracy figure).
#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/extended.hpp"
#include "metrics/summary.hpp"
#include "sched/simulator.hpp"
#include "slurm/conf.hpp"
#include "slurm/duration.hpp"
#include "slurm/sbatch.hpp"
#include "topology/builders.hpp"
#include "topology/conf.hpp"
#include "util/table.hpp"

using namespace commsched;

namespace {

constexpr const char* kDemoConf =
    "SchedulerType=sched/backfill\n"
    "SelectType=select/linear\n"
    "TopologyPlugin=topology/tree\n"
    "JobAware=adaptive\n";

std::vector<SbatchJob> demo_jobs() {
  const char* scripts[] = {
      "#SBATCH --job-name=cfd-solve\n#SBATCH --nodes=16\n"
      "#SBATCH --time=01:00:00\n#SBATCH --comment=comm:RHVD:0.7\n",
      "#SBATCH --job-name=param-sweep\n#SBATCH --nodes=8\n"
      "#SBATCH --time=02:00:00\n#SBATCH --comment=compute\n"
      "#SBATCH --begin=now+60\n",
      "#SBATCH --job-name=spectral-fft\n#SBATCH --nodes=32\n"
      "#SBATCH --time=00:45:00\n#SBATCH --comment=comm:Alltoall:0.8\n"
      "#SBATCH --begin=now+120\n",
      "#SBATCH --job-name=md-prod\n#SBATCH --nodes=16\n"
      "#SBATCH --time=03:00:00\n#SBATCH --comment=comm:RD:0.5\n"
      "#SBATCH --begin=now+180\n",
      "#SBATCH --job-name=postproc\n#SBATCH --nodes=4\n"
      "#SBATCH --time=00:30:00\n#SBATCH --comment=compute\n"
      "#SBATCH --begin=now+240\n",
  };
  std::vector<SbatchJob> jobs;
  for (const char* text : scripts) {
    std::istringstream in(text);
    jobs.push_back(parse_sbatch_script(in));
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  std::string conf_path, topo_path;
  std::vector<std::string> scripts;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--conf" && i + 1 < argc) conf_path = argv[++i];
    else if (arg == "--topology" && i + 1 < argc) topo_path = argv[++i];
    else if (arg == "--demo") demo = true;
    else scripts.push_back(arg);
  }
  if (!demo && (scripts.empty() || topo_path.empty())) {
    std::cerr << "usage: slurm_emulator --conf slurm.conf --topology "
                 "topology.conf job.sbatch...\n"
              << "       slurm_emulator --demo\n";
    return 2;
  }

  SlurmConf conf;
  if (!conf_path.empty()) {
    conf = load_slurm_conf(conf_path);
  } else {
    std::istringstream in(kDemoConf);
    conf = parse_slurm_conf(in);
  }
  Tree tree = topo_path.empty() ? make_two_level_tree(4, 16)
                                : load_topology_conf(topo_path);

  std::vector<SbatchJob> jobs;
  if (demo) jobs = demo_jobs();
  for (const auto& path : scripts) jobs.push_back(load_sbatch_script(path));

  std::cout << "slurm_emulator: " << tree.node_count() << " nodes, "
            << tree.leaf_count() << " leaf switches, allocator "
            << allocator_kind_name(conf.sched.allocator) << ", "
            << (conf.sched.easy_backfill ? "backfill" : "builtin")
            << " scheduler\n\n";

  JobLog log;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    JobRecord rec = jobs[i].record;
    rec.id = static_cast<WorkloadJobId>(i) + 1;
    rec.runtime = rec.walltime * 0.8;  // scripts do not know their runtime
    log.push_back(rec);
    names.push_back(jobs[i].name);
  }
  std::stable_sort(log.begin(), log.end(),
                   [](const JobRecord& a, const JobRecord& b) {
                     return a.submit_time < b.submit_time;
                   });

  const SimResult result = run_continuous(tree, log, conf.sched);

  TextTable acct;
  acct.set_header({"JOBID", "NAME", "NODES", "CLASS", "SUBMIT", "START",
                   "ELAPSED", "WAIT"});
  for (const JobResult& jr : result.jobs) {
    acct.add_row({std::to_string(jr.id),
                  names[static_cast<std::size_t>(jr.id - 1)],
                  std::to_string(jr.num_nodes),
                  jr.comm_intensive
                      ? std::string("comm/") + pattern_name(jr.pattern)
                      : "compute",
                  format_slurm_duration(jr.submit_time),
                  format_slurm_duration(jr.start_time),
                  format_slurm_duration(jr.actual_runtime),
                  format_slurm_duration(jr.wait_time())});
  }
  std::cout << acct.render(2) << "\n";

  const RunSummary s = summarize(result);
  std::cout << "makespan " << format_slurm_duration(result.makespan)
            << ", machine utilization "
            << cell(average_utilization(result, tree.node_count()) * 100, 1)
            << "%, total wait " << cell(s.total_wait_hours, 2) << " h\n";
  return 0;
}
