// Generate, validate and summarize SLURM topology.conf files for the
// machine profiles bundled with commsched.
//
//   $ ./topology_tools list
//   $ ./topology_tools show theta
//   $ ./topology_tools write theta theta.conf
//   $ ./topology_tools check some/topology.conf
#include <iostream>
#include <string>

#include "topology/builders.hpp"
#include "topology/conf.hpp"
#include "topology/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace commsched;

namespace {

constexpr const char* kMachines[] = {"figure2", "department", "iitk",
                                     "lbnl", "theta", "intrepid", "mira"};

void summarize_tree(const Tree& tree) {
  std::cout << "  root switch: " << tree.switch_name(tree.root()) << "\n";
  std::cout << format_topology_stats(compute_topology_stats(tree));
}

[[noreturn]] void usage() {
  std::cerr << "usage: topology_tools list\n"
            << "       topology_tools show  <machine>\n"
            << "       topology_tools write <machine> <file>\n"
            << "       topology_tools check <topology.conf>\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];

  if (cmd == "list") {
    std::cout << "bundled machine profiles:\n";
    for (const char* name : kMachines) {
      const Tree tree = make_machine(name);
      std::cout << "  " << name << ": " << tree.node_count() << " nodes, "
                << tree.leaf_count() << " leaves, " << tree.depth()
                << " levels\n";
    }
    return 0;
  }
  if (cmd == "show" && argc >= 3) {
    const Tree tree = make_machine(argv[2]);
    summarize_tree(tree);
    if (tree.node_count() <= 64)
      std::cout << "\n" << write_topology_conf(tree);
    else
      std::cout << "\n(topology.conf omitted — " << tree.node_count()
                << " nodes; use 'write' to export)\n";
    return 0;
  }
  if (cmd == "write" && argc >= 4) {
    const Tree tree = make_machine(argv[2]);
    if (!save_topology_conf(tree, argv[3])) {
      std::cerr << "failed to write " << argv[3] << "\n";
      return 1;
    }
    std::cout << "wrote " << argv[3] << " (" << tree.node_count()
              << " nodes)\n";
    return 0;
  }
  if (cmd == "check" && argc >= 3) {
    try {
      const Tree tree = load_topology_conf(argv[2]);
      std::cout << argv[2] << " is a valid tree topology:\n";
      summarize_tree(tree);
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "invalid topology: " << e.what() << "\n";
      return 1;
    }
  }
  usage();
}
