// Machine-utilization analysis of a simulated run: replay a synthetic log
// under two policies and print an ASCII utilization timeline plus queue
// statistics — the view an operator uses to judge whether job-aware
// allocation actually moves throughput (§6.5's "improved system
// throughput").
//
//   $ ./utilization_report [--machine theta] [--jobs N] [--buckets B]
#include <algorithm>
#include <iostream>
#include <string>

#include "metrics/extended.hpp"
#include "metrics/summary.hpp"
#include "sched/simulator.hpp"
#include "topology/builders.hpp"
#include "util/strings.hpp"
#include "workload/mixes.hpp"
#include "workload/synthetic.hpp"

using namespace commsched;

namespace {

void print_timeline(const std::string& label, const SimResult& result,
                    int machine_nodes, int buckets) {
  const double bucket_s =
      std::max(result.makespan / std::max(buckets, 1), 1.0);
  const auto util = utilization_timeline(result, machine_nodes, bucket_s);
  std::cout << label << " (one row = "
            << format_double(bucket_s / 3600.0, 2) << " h):\n";
  for (std::size_t b = 0; b < util.size(); ++b) {
    const int bar = static_cast<int>(util[b] * 50.0);
    std::cout << "  " << format_double(static_cast<double>(b) * bucket_s / 3600.0, 1)
              << "h |" << std::string(static_cast<std::size_t>(bar), '#')
              << " " << format_double(util[b] * 100.0, 0) << "%\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string machine = "theta";
  int jobs = 400;
  int buckets = 18;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string arg = argv[i];
    if (arg == "--machine") machine = argv[i + 1];
    else if (arg == "--jobs") jobs = static_cast<int>(*parse_int(argv[i + 1]));
    else if (arg == "--buckets") buckets = static_cast<int>(*parse_int(argv[i + 1]));
  }

  const Tree tree = make_machine(machine);
  LogProfile profile = machine == "intrepid" ? intrepid_profile()
                       : machine == "mira"   ? mira_profile()
                                             : theta_profile();
  JobLog log = filter_power_of_two(generate_log(profile, jobs, 11));
  apply_mix(log, uniform_mix(Pattern::kRecursiveHalvingVD, 0.9, 0.8), 12);

  for (const AllocatorKind kind :
       {AllocatorKind::kDefault, AllocatorKind::kAdaptive}) {
    SchedOptions opts;
    opts.allocator = kind;
    const SimResult result = run_continuous(tree, log, opts);
    const RunSummary s = summarize(result);
    const DistSummary waits = wait_summary(result);
    const DistSummary slow = slowdown_summary(result);

    std::cout << "=== " << s.allocator << " ===\n";
    print_timeline("utilization", result, tree.node_count(), buckets);
    std::cout << "  makespan " << format_double(s.makespan_hours, 1)
              << " h, avg utilization "
              << format_double(
                     average_utilization(result, tree.node_count()) * 100, 1)
              << "%\n"
              << "  waits: mean " << format_double(waits.mean / 3600.0, 2)
              << " h, p90 " << format_double(waits.p90 / 3600.0, 2)
              << " h, max " << format_double(waits.max / 3600.0, 2) << " h\n"
              << "  bounded slowdown: mean " << format_double(slow.mean, 2)
              << ", p99 " << format_double(slow.p99, 2) << "\n\n";
  }
  std::cout << "A shorter makespan at equal work = higher throughput; the\n"
               "adaptive policy earns it by shrinking communication phases.\n";
  return 0;
}
