#include "audit/auditor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "util/assert.hpp"

namespace commsched {

namespace {

std::string node_set_repr(std::span<const NodeId> nodes) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) os << ',';
    if (i == 16) {  // keep violation reports readable for large jobs
      os << "... " << nodes.size() << " nodes";
      break;
    }
    os << nodes[i];
  }
  os << '}';
  return os.str();
}

}  // namespace

StateAuditor::StateAuditor(const Tree& tree, AuditLevel level)
    : level_(level), tree_(&tree) {
  if (!enabled()) return;
  shadow_owner_.assign(static_cast<std::size_t>(tree.node_count()),
                       kInvalidJob);
  shadow_free_ = tree.node_count();
  shadow_leaf_load_.assign(static_cast<std::size_t>(tree.leaf_count()), 0);
}

void StateAuditor::violation(const std::string& detail) const {
  throw InvariantError("audit violation " + context() + ": " + detail);
}

namespace {
// "end job 3" from the literal label + optional job id, only on the error
// paths — the per-event hot path stores the pieces without formatting them.
void append_event(std::ostream& os, std::string_view what, JobId job) {
  os << "'" << what;
  if (job != kInvalidJob) os << " " << job;
  os << "'";
}
}  // namespace

std::string StateAuditor::context() const {
  std::ostringstream os;
  os << "[level=" << audit_level_name(level_) << ", event #" << events_;
  if (saw_event_) {
    os << " ";
    append_event(os, last_event_, last_job_);
    os << " at t=" << last_time_;
  }
  os << "]";
  return os.str();
}

// contract-trusted: no-alloc: opt-in run auditing (enabled() gate in the
// simulator); invariant checks allocate for shadow state and diagnostics
void StateAuditor::on_event(double time, std::string_view what, JobId job) {
  if (!enabled()) return;
  ++checks_;
  if (saw_event_ && time < last_time_) {
    std::ostringstream os;
    os << "event clock ran backwards: ";
    append_event(os, what, job);
    os << " at t=" << time << " after ";
    append_event(os, last_event_, last_job_);
    os << " at t=" << last_time_;
    violation(os.str());
  }
  if (!std::isfinite(time)) {
    std::ostringstream os;
    os << "event ";
    append_event(os, what, job);
    os << " has non-finite time " << time;
    violation(os.str());
  }
  ++events_;
  last_time_ = time;
  last_event_ = what;
  last_job_ = job;
  saw_event_ = true;
}

// contract-trusted: no-alloc: opt-in run auditing (enabled() gate in the
// simulator); invariant checks allocate for shadow state and diagnostics
void StateAuditor::on_allocate(const ClusterState& state, JobId job,
                               std::span<const NodeId> nodes, LoadUnits load) {
  if (!enabled()) return;
  ++checks_;
  if (job == kInvalidJob) violation("allocation uses the invalid job id");
  if (load < 0)
    violation("job " + std::to_string(job) + " carries negative load " +
              std::to_string(load));
  if (live_.contains(job))
    violation("job " + std::to_string(job) +
              " allocated twice without an intervening release");
  if (nodes.empty())
    violation("job " + std::to_string(job) + " allocated an empty node set");
  // Checking and writing the shadow in one pass keeps this allocation-free
  // beyond the stored copy; a duplicate node inside `nodes` trips the
  // ownership check on its second occurrence (prior == job).
  for (const NodeId n : nodes) {
    if (n < 0 || n >= tree_->node_count()) {
      std::ostringstream os;
      os << "job " << job << " allocated out-of-range node " << n;
      violation(os.str());
    }
    const JobId prior = shadow_owner_[static_cast<std::size_t>(n)];
    if (prior == job) {
      std::ostringstream os;
      os << "job " << job << " allocation contains duplicate node " << n
         << " (allocation " << node_set_repr(nodes) << ")";
      violation(os.str());
    }
    if (prior != kInvalidJob) {
      std::ostringstream os;
      os << "allocation disjointness broken: node " << n << " given to job "
         << job << " while still held by job " << prior
         << " (allocation " << node_set_repr(nodes) << ")";
      violation(os.str());
    }
    // Per-node cross-validation against the cluster is an out-of-line call
    // per node: full only. Cheap still catches aggregate divergence through
    // the O(1) free-count check below.
    if (level_ == AuditLevel::kFull && state.owner(n) != job) {
      std::ostringstream os;
      os << "cluster state disagrees: node " << n << " should be owned by job "
         << job << " after allocation but owner() reports " << state.owner(n);
      violation(os.str());
    }
    shadow_owner_[static_cast<std::size_t>(n)] = job;
    shadow_leaf_load_[static_cast<std::size_t>(
        tree_->leaf_index(tree_->leaf_of(n)))] += load;
  }
  shadow_free_ -= static_cast<int>(nodes.size());
  shadow_load_total_ += load * static_cast<LoadUnits>(nodes.size());
  live_.emplace(job,
                LiveJob{std::vector<NodeId>(nodes.begin(), nodes.end()), load});
  if (state.total_free() != shadow_free_) {
    std::ostringstream os;
    os << "free-node count diverged after allocating job " << job
       << ": cluster reports " << state.total_free()
       << ", shadow table expects " << shadow_free_;
    violation(os.str());
  }
  // Cheap O(1) aggregate: the machine-wide load accumulator must track the
  // shadow ledger after every allocation (per-leaf divergence is full-level,
  // in check_state).
  if (state.total_load() != shadow_load_total_) {
    std::ostringstream os;
    os << "communication-load total diverged after allocating job " << job
       << ": cluster reports " << state.total_load()
       << ", shadow ledger expects " << shadow_load_total_;
    violation(os.str());
  }
}

void StateAuditor::on_release(const ClusterState& state, JobId job,
                              std::span<const NodeId> freed) {
  if (!enabled()) return;
  ++checks_;
  const auto it = live_.find(job);
  if (it == live_.end())
    violation("release of job " + std::to_string(job) +
              " which the auditor never saw allocated");
  // Fast path: ClusterState::release returns nodes in allocation order, so
  // an honest release matches the stored copy element-for-element. Only on a
  // mismatch pay for the order-insensitive comparison — the invariant is set
  // equality, not ordering.
  if (!std::equal(freed.begin(), freed.end(), it->second.nodes.begin(),
                  it->second.nodes.end())) {
    std::vector<NodeId> got(freed.begin(), freed.end());
    std::vector<NodeId> expected = it->second.nodes;
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    if (got != expected) {
      std::ostringstream os;
      os << "release of job " << job << " returned " << node_set_repr(got)
         << " but the job allocated " << node_set_repr(expected);
      violation(os.str());
    }
  }
  const LoadUnits load = it->second.load;
  for (const NodeId n : freed) {
    // Symmetric to on_allocate: the per-node is_free() round-trip into the
    // cluster is full-level; cheap keeps the local shadow bookkeeping.
    if (level_ == AuditLevel::kFull && !state.is_free(n)) {
      std::ostringstream os;
      os << "node " << n << " still busy after releasing its job " << job;
      violation(os.str());
    }
    shadow_owner_[static_cast<std::size_t>(n)] = kInvalidJob;
    shadow_leaf_load_[static_cast<std::size_t>(
        tree_->leaf_index(tree_->leaf_of(n)))] -= load;
  }
  shadow_free_ += static_cast<int>(freed.size());
  shadow_load_total_ -= load * static_cast<LoadUnits>(freed.size());
  live_.erase(it);
  scheduled_end_.erase(job);
  if (state.total_free() != shadow_free_) {
    std::ostringstream os;
    os << "free-node count diverged after releasing job " << job
       << ": cluster reports " << state.total_free()
       << ", shadow table expects " << shadow_free_;
    violation(os.str());
  }
  if (state.total_load() != shadow_load_total_) {
    std::ostringstream os;
    os << "communication-load total diverged after releasing job " << job
       << ": cluster reports " << state.total_load()
       << ", shadow ledger expects " << shadow_load_total_;
    violation(os.str());
  }
}

// contract-trusted: no-alloc: opt-in run auditing (enabled() gate in the
// simulator); invariant checks allocate for shadow state and diagnostics
void StateAuditor::on_end_scheduled(JobId job, double end_time) {
  if (!enabled()) return;
  ++checks_;
  if (!std::isfinite(end_time)) {
    std::ostringstream os;
    os << "job " << job << " scheduled a non-finite end time " << end_time;
    violation(os.str());
  }
  scheduled_end_[job] = end_time;
  saw_schedule_ = true;
}

// contract-trusted: no-alloc: opt-in run auditing (enabled() gate in the
// simulator); invariant checks allocate for shadow state and diagnostics
void StateAuditor::check_end_event(const ClusterState& state, JobId job,
                                   double time) {
  if (!enabled() || !saw_schedule_) return;
  ++checks_;
  if (!live_.contains(job))
    violation("completion event for job " + std::to_string(job) +
              " which the shadow table does not hold as running");
  if (!state.has_job(job))
    violation("completion event for job " + std::to_string(job) +
              " which the cluster no longer occupies");
  const auto it = scheduled_end_.find(job);
  if (it == scheduled_end_.end())
    violation("completion event for job " + std::to_string(job) +
              " with no end on record (on_end_scheduled never called)");
  // Exact equality on purpose: a re-evaluation updates the stored end and
  // the heap key from the same double, so any mismatch is a stale event.
  if (it->second != time) {
    std::ostringstream os;
    os << "stale completion event for job " << job << ": popped at t=" << time
       << " but the last scheduled end is t=" << it->second;
    violation(os.str());
  }
}

// contract-trusted: no-alloc: opt-in run auditing (enabled() gate in the
// simulator); invariant checks allocate for shadow state and diagnostics
void StateAuditor::check_backfill(double now, JobId job, double walltime,
                                  int num_nodes, double shadow_time,
                                  int extra_nodes) {
  if (!enabled()) return;
  ++checks_;
  const bool ends_before_shadow = now + walltime <= shadow_time;
  const bool fits_spare = num_nodes <= extra_nodes;
  if (!ends_before_shadow && !fits_spare) {
    std::ostringstream os;
    os << "EASY backfill violated the head reservation: job " << job
       << " (" << num_nodes << " nodes, walltime " << walltime
       << ") started at t=" << now << " but the head starts at t="
       << shadow_time << " with only " << extra_nodes << " spare nodes";
    violation(os.str());
  }
}

// contract-trusted: no-alloc: opt-in run auditing (enabled() gate in the
// simulator); invariant checks allocate for shadow state and diagnostics
void StateAuditor::check_cost(double cost, JobId job,
                              std::string_view metric) {
  if (!enabled()) return;
  ++checks_;
  if (!std::isfinite(cost) || cost < 0.0) {
    std::ostringstream os;
    os << metric << " for job " << job << " is " << cost
       << "; Eq. 5/6 values must be finite and non-negative";
    violation(os.str());
  }
}

// contract-trusted: no-alloc: opt-in run auditing (enabled() gate in the
// simulator); invariant checks allocate for shadow state and diagnostics
void StateAuditor::check_cost_symmetry(const CostModel& model,
                                       const ClusterState& state,
                                       std::span<const NodeId> nodes,
                                       JobId job) {
  if (level_ != AuditLevel::kFull) return;
  if (nodes.size() < 2) return;
  // Deterministic sample: pair opposite ends of the allocation, at most 4
  // pairs, so the check stays O(1) per job regardless of job size.
  const std::size_t pairs = std::min<std::size_t>(4, nodes.size() / 2);
  for (std::size_t k = 0; k < pairs; ++k) {
    ++checks_;
    const NodeId i = nodes[k];
    const NodeId j = nodes[nodes.size() - 1 - k];
    if (i == j) continue;
    if (tree_->distance(i, j) != tree_->distance(j, i)) {
      std::ostringstream os;
      os << "Eq. 4 distance asymmetric for job " << job << ": d(" << i << ","
         << j << ")=" << tree_->distance(i, j) << " but d(" << j << "," << i
         << ")=" << tree_->distance(j, i);
      violation(os.str());
    }
    const double hij = model.effective_hops(state, i, j);
    const double hji = model.effective_hops(state, j, i);
    if (!(hij == hji) || !std::isfinite(hij) || hij < 0.0) {
      std::ostringstream os;
      os << "Eq. 5 effective hops invalid for job " << job << ": Hops(" << i
         << "," << j << ")=" << hij << ", Hops(" << j << "," << i
         << ")=" << hji << " (must be equal, finite and non-negative)";
      violation(os.str());
    }
  }
}

// contract-trusted: no-alloc: opt-in run auditing (enabled() gate in the
// simulator); invariant checks allocate for shadow state and diagnostics
void StateAuditor::check_profile(Pattern pattern,
                                 const LeafCommProfile& profile,
                                 std::span<const NodeId> nodes, JobId job) {
  if (!enabled()) return;
  ++checks_;
  const int rpn = profile.ranks_per_node;
  if (rpn < 1 ||
      static_cast<int>(nodes.size()) * rpn != profile.nprocs) {
    std::ostringstream os;
    os << "profile for job " << job << " covers " << profile.nprocs
       << " ranks (" << rpn << " per node) but the allocation has "
       << nodes.size() << " nodes";
    violation(os.str());
  }
  // Independent re-derivation of the canonical slot mapping (first
  // appearance in rank order), bypassing make_shape_key.
  std::vector<std::int32_t> slot_of_leaf(
      static_cast<std::size_t>(tree_->leaf_count()), -1);
  std::vector<std::int32_t> node_slot(nodes.size());
  std::int32_t slots = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    auto& slot = slot_of_leaf[static_cast<std::size_t>(
        tree_->leaf_index(tree_->leaf_of(nodes[i])))];
    if (slot < 0) slot = slots++;
    node_slot[i] = slot;
  }
  if (slots != profile.num_slots) {
    std::ostringstream os;
    os << "profile for job " << job << " has " << profile.num_slots
       << " leaf slots but the allocation touches " << slots << " leaves";
    violation(os.str());
  }
  if (profile.steps.empty()) return;  // single-rank jobs have no steps

  // Sample one step among the first 32 (bounds the regeneration cost; the
  // event counter rotates coverage across jobs).
  const auto window = std::min<std::size_t>(profile.steps.size(), 32);
  const auto target = static_cast<std::size_t>(events_ % window);
  const ProfileStep& recorded = profile.steps[target];
  if (recorded.cls < 0 ||
      static_cast<std::size_t>(recorded.cls) >= profile.classes.size()) {
    std::ostringstream os;
    os << "profile step " << target << " for job " << job
       << " references class " << recorded.cls << " of "
       << profile.classes.size();
    violation(os.str());
  }

  std::size_t index = 0;
  bool checked = false;
  for_each_schedule_step(
      pattern, profile.nprocs, profile.base_msize,
      [&](const CommStep& step) {
        if (index++ != target) return true;  // keep streaming
        std::vector<std::pair<std::int32_t, std::int32_t>> derived;
        std::vector<std::uint8_t> seen(
            static_cast<std::size_t>(slots) * static_cast<std::size_t>(slots),
            0);
        std::int64_t rank_pairs = 0, same_node = 0, same_leaf = 0;
        for (const auto& [ri, rj] : step.pairs) {
          ++rank_pairs;
          const int ni = ri / rpn;
          const int nj = rj / rpn;
          if (ni == nj) {
            ++same_node;
            continue;
          }
          auto sa = node_slot[static_cast<std::size_t>(ni)];
          auto sb = node_slot[static_cast<std::size_t>(nj)];
          if (sa > sb) std::swap(sa, sb);
          if (sa == sb) ++same_leaf;
          auto& flag = seen[static_cast<std::size_t>(sa) *
                                static_cast<std::size_t>(slots) +
                            static_cast<std::size_t>(sb)];
          if (!flag) {
            flag = 1;
            derived.emplace_back(sa, sb);
          }
        }
        std::sort(derived.begin(), derived.end());
        const ProfileStepClass& cls =
            profile.classes[static_cast<std::size_t>(recorded.cls)];
        if (derived != cls.leaf_pairs || rank_pairs != recorded.rank_pairs ||
            same_node != recorded.same_node_pairs ||
            same_leaf != recorded.same_leaf_pairs ||
            step.msize != recorded.msize || step.repeat != recorded.repeat) {
          std::ostringstream os;
          os << "cached profile diverges from the schedule for job " << job
             << " at step " << target << " (" << pattern_name(pattern) << ", "
             << profile.nprocs << " ranks): re-derived " << derived.size()
             << " distinct leaf pairs / " << rank_pairs << " rank pairs / "
             << same_node << " same-node / " << same_leaf
             << " same-leaf, msize=" << step.msize << ", repeat="
             << step.repeat << "; profile records " << cls.leaf_pairs.size()
             << " / " << recorded.rank_pairs << " / "
             << recorded.same_node_pairs << " / " << recorded.same_leaf_pairs
             << ", msize=" << recorded.msize << ", repeat="
             << recorded.repeat;
          violation(os.str());
        }
        checked = true;
        return false;  // stop streaming: one sampled step per job
      });
  if (!checked) {
    std::ostringstream os;
    os << "profile for job " << job << " records " << profile.steps.size()
       << " steps but the " << pattern_name(pattern) << " schedule at "
       << profile.nprocs << " ranks ended before step " << target;
    violation(os.str());
  }
}

// contract-trusted: no-alloc: opt-in run auditing (enabled() gate in the
// simulator); the full-recompute cross-check allocates only for its private
// workspace warm-up and on the failure path
void StateAuditor::check_sa_cost(const CostModel& model,
                                 const ClusterState& state,
                                 std::span<const NodeId> nodes,
                                 bool comm_intensive,
                                 const LeafCommProfile& profile,
                                 double claimed, JobId job) {
  if (!enabled()) return;
  ++checks_;
  const double full =
      model.candidate_cost(state, nodes, comm_intensive, profile, cost_ws_);
  if (full != claimed) {
    std::ostringstream os;
    os << "search allocator's delta-evaluated cost diverges from the full "
          "recompute for job "
       << job << ": claimed " << std::hexfloat << claimed << " ("
       << std::defaultfloat << claimed << "), full kernel " << std::hexfloat
       << full << " (" << std::defaultfloat << full << ")";
    violation(os.str());
  }
}

void StateAuditor::check_flow(double remaining, double rate, double latency,
                              int job) {
  if (level_ != AuditLevel::kFull) return;
  ++checks_;
  // The fluid solver drains flows to within a byte epsilon of zero; allow
  // that drift but catch real sign/NaN corruption.
  constexpr double kByteSlack = 1e-3;
  if (!std::isfinite(remaining) || remaining < -kByteSlack ||
      !std::isfinite(rate) || rate < 0.0 || !std::isfinite(latency) ||
      latency < -kByteSlack) {
    std::ostringstream os;
    os << "netsim flow of job " << job << " corrupted: remaining=" << remaining
       << " bytes, rate=" << rate << " B/s, latency=" << latency << " s";
    violation(os.str());
  }
}

void StateAuditor::check_state(const ClusterState& state) {
  if (level_ != AuditLevel::kFull) return;
  ++checks_;
  // From-scratch recomputation of every incremental counter.
  state.validate();

  // Cross-check against the shadow table built from the event stream.
  if (state.job_count() != live_.size()) {
    std::ostringstream os;
    os << "live-job count diverged: cluster tracks " << state.job_count()
       << " jobs, auditor saw " << live_.size();
    violation(os.str());
  }
  // Visit shadow jobs sorted by id: unordered_map hash order would leak
  // into which divergence report fires first, making audit failures
  // non-reproducible across libstdc++ versions.
  std::vector<JobId> live_jobs;
  live_jobs.reserve(live_.size());
  // contract-trusted: determinism: keys are sorted below before any output
  for (const auto& kv : live_) live_jobs.push_back(kv.first);
  std::sort(live_jobs.begin(), live_jobs.end());
  for (const JobId job : live_jobs) {
    const std::vector<NodeId>& shadow_nodes = live_.at(job).nodes;
    if (!state.has_job(job))
      violation("job " + std::to_string(job) +
                " is live in the shadow table but unknown to the cluster");
    const auto span = state.job_nodes(job);
    std::vector<NodeId> cluster_nodes(span.begin(), span.end());
    std::vector<NodeId> audit_nodes = shadow_nodes;
    std::sort(cluster_nodes.begin(), cluster_nodes.end());
    std::sort(audit_nodes.begin(), audit_nodes.end());
    if (cluster_nodes != audit_nodes) {
      std::ostringstream os;
      os << "job " << job << " node sets diverged: cluster holds "
         << node_set_repr(cluster_nodes) << ", auditor recorded "
         << node_set_repr(audit_nodes);
      violation(os.str());
    }
  }
  if (state.total_free() != shadow_free_) {
    std::ostringstream os;
    os << "total_free diverged: cluster reports " << state.total_free()
       << ", shadow table expects " << shadow_free_;
    violation(os.str());
  }

  // Per-leaf availability vs. the topology: busy counts must stay within
  // the leaf's attached-node budget and match the shadow ownership table.
  for (const SwitchId leaf : tree_->leaves()) {
    int shadow_busy = 0;
    for (const NodeId n : tree_->nodes_of_leaf(leaf))
      if (shadow_owner_[static_cast<std::size_t>(n)] != kInvalidJob)
        ++shadow_busy;
    const int busy = state.leaf_busy(leaf);
    const int cap = state.leaf_nodes(leaf);
    if (busy < 0 || busy > cap || busy != shadow_busy) {
      std::ostringstream os;
      os << "leaf " << tree_->switch_name(leaf) << " availability diverged: "
         << "L_busy=" << busy << " (shadow " << shadow_busy << ", L_nodes="
         << cap << ")";
      violation(os.str());
    }
    if (state.leaf_comm(leaf) < 0 || state.leaf_comm(leaf) > busy) {
      std::ostringstream os;
      os << "leaf " << tree_->switch_name(leaf) << " has L_comm="
         << state.leaf_comm(leaf) << " outside [0, L_busy=" << busy << "]";
      violation(os.str());
    }
    // The packed free index behind free_leaf_span() — the zero-copy path
    // every allocator enumerates — must list exactly this leaf's free nodes
    // in ascending order, judged against the auditor's own shadow ownership
    // table (independent of ClusterState::validate()).
    const std::span<const NodeId> free_span = state.free_leaf_span(leaf);
    if (static_cast<int>(free_span.size()) != cap - shadow_busy) {
      std::ostringstream os;
      os << "leaf " << tree_->switch_name(leaf) << " free index lists "
         << free_span.size() << " nodes but the shadow table has "
         << (cap - shadow_busy) << " free";
      violation(os.str());
    }
    NodeId prev = kInvalidNode;
    for (const NodeId n : free_span) {
      if (n <= prev || tree_->leaf_of(n) != leaf ||
          shadow_owner_[static_cast<std::size_t>(n)] != kInvalidJob) {
        std::ostringstream os;
        os << "leaf " << tree_->switch_name(leaf)
           << " free index corrupt at node " << n << " (prev " << prev
           << "): must be ascending, attached to this leaf, and free in the "
              "shadow table";
        violation(os.str());
      }
      prev = n;
    }
  }
  if (state.free_under(tree_->root()) != state.total_free()) {
    std::ostringstream os;
    os << "root subtree free count " << state.free_under(tree_->root())
       << " != total_free " << state.total_free();
    violation(os.str());
  }

  // Communication-load ledger: every per-leaf accumulator, plus the subtree
  // aggregate at the root, must match the shadow built from allocations.
  for (const SwitchId leaf : tree_->leaves()) {
    ++checks_;
    const LoadUnits shadow =
        shadow_leaf_load_[static_cast<std::size_t>(tree_->leaf_index(leaf))];
    if (state.leaf_load(leaf) != shadow) {
      std::ostringstream os;
      os << "leaf " << tree_->switch_name(leaf) << " L_load="
         << state.leaf_load(leaf) << " diverged from the shadow ledger ("
         << shadow << ")";
      violation(os.str());
    }
  }
  if (state.total_load() != shadow_load_total_ ||
      state.load_under(tree_->root()) != shadow_load_total_) {
    std::ostringstream os;
    os << "machine load diverged: total_load=" << state.total_load()
       << ", root subtree load=" << state.load_under(tree_->root())
       << ", shadow ledger expects " << shadow_load_total_;
    violation(os.str());
  }

  // End-event bookkeeping: once any end was scheduled, exactly the live jobs
  // must have one (a missing entry would make its completion unverifiable; a
  // leftover entry is a leak from a release that skipped cleanup).
  if (saw_schedule_ && scheduled_end_.size() != live_.size()) {
    std::ostringstream os;
    os << "scheduled-end table holds " << scheduled_end_.size()
       << " jobs but " << live_.size() << " are running";
    violation(os.str());
  }
  if (saw_schedule_) {
    for (const JobId job : live_jobs) {
      ++checks_;
      if (!scheduled_end_.contains(job))
        violation("running job " + std::to_string(job) +
                  " has no scheduled end on record");
    }
  }
}

}  // namespace commsched
