// Runtime invariant auditor (DESIGN.md "Correctness & analysis").
//
// StateAuditor cross-validates the simulator/cluster/topology invariants the
// paper's results depend on, after every scheduler event:
//   - allocation disjointness: no node is ever owned by two jobs, tracked in
//     a shadow ownership table maintained independently of ClusterState;
//   - free-node accounting: ClusterState::total_free() and the per-leaf
//     availability always match the shadow table (full level recomputes
//     every counter from scratch via ClusterState::validate());
//   - EASY backfill: a backfilled job can never delay the queue head's
//     reservation (it either ends before the shadow time or fits the spare
//     nodes);
//   - event-time monotonicity: simulator and netsim event clocks never run
//     backwards;
//   - cost sanity: Eq. 5/6 values are finite and non-negative, and
//     Hops(i,j) == Hops(j,i) (full level samples pairs per allocation);
//   - release() returns exactly the node set the job allocated;
//   - communication-load accounting: the per-leaf L_load accumulators match
//     a shadow ledger built from the allocation event stream (cheap checks
//     the machine total, full every leaf and the subtree aggregates);
//   - end-event/occupancy consistency: every completion event must carry
//     the end time most recently scheduled (on_end_scheduled) for a job the
//     cluster still occupies — a stale end event left behind by a runtime
//     re-evaluation bug fires at cheap level.
//
// A violation throws InvariantError whose message carries the offending
// job/event context (event number, kind, simulated time, expected vs actual
// values). The auditor never mutates the audited state.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "audit/level.hpp"
#include "cluster/state.hpp"
#include "collectives/comm_cache.hpp"
#include "collectives/schedule.hpp"
#include "core/cost_model.hpp"
#include "topology/tree.hpp"

namespace commsched {

/// Cross-validates scheduler state transitions against an independent shadow
/// ownership table. One auditor instance follows one ClusterState's lifetime;
/// all methods are no-ops at AuditLevel::kOff.
class StateAuditor {
 public:
  StateAuditor(const Tree& tree, AuditLevel level);

  AuditLevel level() const noexcept { return level_; }
  bool enabled() const noexcept { return level_ != AuditLevel::kOff; }

  /// Events observed via on_event() (0 when disabled).
  std::uint64_t events_seen() const noexcept { return events_; }
  /// Individual invariant checks executed so far (0 when disabled).
  std::uint64_t checks_run() const noexcept { return checks_; }

  /// Record a scheduler/netsim event and check the clock never runs
  /// backwards. `what` becomes part of any later violation report and must
  /// reference storage that outlives the next event — pass a string literal.
  /// `job`, when given, is rendered after the label ("end job 3"); keeping it
  /// separate keeps this per-event call allocation-free.
  void on_event(double time, std::string_view what, JobId job = kInvalidJob);

  /// Audit a committed allocation: `job` must be new, `nodes` disjoint from
  /// every live allocation (shadow table), and the free-node count must drop
  /// by exactly nodes.size(). At kFull each node is additionally
  /// cross-checked as owned by `job` in `state`. `load` is the job's
  /// per-node communication load, fed into the shadow load ledger that
  /// cross-checks the cluster's L_load accumulators.
  void on_allocate(const ClusterState& state, JobId job,
                   std::span<const NodeId> nodes, LoadUnits load = 0);

  /// Audit a release: `freed` must be exactly the node set `job` allocated
  /// and the free count must grow by exactly freed.size(). At kFull every
  /// freed node is additionally cross-checked as free again in `state`.
  void on_release(const ClusterState& state, JobId job,
                  std::span<const NodeId> freed);

  /// Record the end time the simulator scheduled (or re-scheduled) for a
  /// running job's completion event. check_end_event later requires the
  /// popped event to carry exactly the last recorded time.
  void on_end_scheduled(JobId job, double end_time);

  /// Audit a completion event about to be processed at `time`: the job must
  /// still occupy nodes in both the shadow ledger and `state`, must have a
  /// scheduled end on record, and that end must equal `time` exactly — a
  /// stale heap entry (a re-evaluation that forgot the heap fix-up, or a
  /// fix-up that forgot the bookkeeping) fails here at cheap level.
  void check_end_event(const ClusterState& state, JobId job, double time);

  /// Audit an EASY-backfill start decision: the backfilled job must be
  /// harmless to the head reservation — finish by `shadow_time` or fit in
  /// the `extra_nodes` the reservation leaves spare.
  void check_backfill(double now, JobId job, double walltime, int num_nodes,
                      double shadow_time, int extra_nodes);

  /// Audit one Eq. 5/6-derived value: must be finite and non-negative.
  void check_cost(double cost, JobId job, std::string_view metric);

  /// Full level: sample node pairs of `nodes` and check Hops(i,j) is
  /// symmetric and non-negative, and Eq. 4 distance is symmetric.
  void check_cost_symmetry(const CostModel& model, const ClusterState& state,
                           std::span<const NodeId> nodes, JobId job);

  /// Cheap level and up: cross-validate one sampled step of a cached
  /// LeafCommProfile against the raw schedule. The step's distinct leaf-pair
  /// set, same-node/same-leaf pair counts, msize, and repeat are re-derived
  /// from scratch (streaming the schedule, independent slot mapping) and
  /// must match the profile `nodes` was priced with. The sampled index
  /// rotates with the event counter over the first 32 steps, so regeneration
  /// stays O(steps-prefix) per job while successive jobs cover different
  /// steps.
  void check_profile(Pattern pattern, const LeafCommProfile& profile,
                     std::span<const NodeId> nodes, JobId job);

  /// Cheap level and up: re-derive a search allocator's claimed Eq. 6 cost
  /// for the placement it returned — an independent full candidate_cost
  /// through `model` must reproduce `claimed` bit for bit (the allocator's
  /// delta-evaluation session may never drift from the full kernel). Call
  /// *before* the allocation is committed: `claimed` prices the
  /// pre-allocation state.
  void check_sa_cost(const CostModel& model, const ClusterState& state,
                     std::span<const NodeId> nodes, bool comm_intensive,
                     const LeafCommProfile& profile, double claimed,
                     JobId job);

  /// Full level: audit one netsim flow after a max-min rate computation —
  /// bytes remaining, rate, and startup latency must be finite and must not
  /// go (materially) negative.
  void check_flow(double remaining, double rate, double latency, int job);

  /// Full level: cross-validate every ClusterState counter against both a
  /// from-scratch recomputation (ClusterState::validate()) and the shadow
  /// ownership table, including per-leaf availability vs. the topology.
  void check_state(const ClusterState& state);

 private:
  [[noreturn]] void violation(const std::string& detail) const;
  std::string context() const;

  AuditLevel level_;
  const Tree* tree_;

  // Shadow of ClusterState, maintained from the on_allocate/on_release
  // event stream only, so divergence catches bugs in either bookkeeping.
  std::vector<JobId> shadow_owner_;  // per node
  struct LiveJob {
    // Nodes in allocation order (release must echo this order on the fast
    // path; set equality is re-checked on any ordering mismatch).
    std::vector<NodeId> nodes;
    LoadUnits load = 0;  // per-node load fed into the shadow ledger
  };
  std::unordered_map<JobId, LiveJob> live_;
  int shadow_free_ = 0;

  // Shadow of the cluster's communication-load accumulators, per leaf plus
  // the machine total, rebuilt from on_allocate/on_release alone.
  std::vector<LoadUnits> shadow_leaf_load_;
  LoadUnits shadow_load_total_ = 0;

  // job -> the end time most recently announced via on_end_scheduled.
  std::unordered_map<JobId, double> scheduled_end_;
  // Whether any end was ever scheduled: engines that never call
  // on_end_scheduled (none today, but the hook is optional) skip the
  // end-event cross-check instead of failing on an empty table.
  bool saw_schedule_ = false;

  // Private cost-kernel scratch for check_sa_cost's full recompute, so the
  // audit never touches the workspace the simulator prices with.
  CostWorkspace cost_ws_;

  double last_time_ = 0.0;
  bool saw_event_ = false;
  std::string_view last_event_;  // a literal passed to on_event
  JobId last_job_ = kInvalidJob;
  std::uint64_t events_ = 0;
  std::uint64_t checks_ = 0;
};

}  // namespace commsched
