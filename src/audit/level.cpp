#include "audit/level.hpp"

#include <cstdlib>
#include <string>

#include "util/assert.hpp"

namespace commsched {

const char* audit_level_name(AuditLevel level) noexcept {
  switch (level) {
    case AuditLevel::kOff:
      return "off";
    case AuditLevel::kCheap:
      return "cheap";
    case AuditLevel::kFull:
      return "full";
  }
  return "off";
}

std::optional<AuditLevel> audit_level_from_string(
    std::string_view s) noexcept {
  if (s == "off") return AuditLevel::kOff;
  if (s == "cheap") return AuditLevel::kCheap;
  if (s == "full") return AuditLevel::kFull;
  return std::nullopt;
}

AuditLevel audit_level_from_env() {
  const char* value = std::getenv("COMMSCHED_AUDIT");
  if (value == nullptr || *value == '\0') return AuditLevel::kOff;
  const auto level = audit_level_from_string(value);
  COMMSCHED_ASSERT_MSG(level.has_value(),
                       "COMMSCHED_AUDIT must be off|cheap|full, got '" +
                           std::string(value) + "'");
  return *level;
}

}  // namespace commsched
