// Runtime audit levels (DESIGN.md "Correctness & analysis").
//
// The auditor's cost is selectable at runtime so the same binary serves both
// production-speed runs and hardened validation runs:
//   off   — no checking at all (the default);
//   cheap — O(event)-bounded checks: shadow ownership, release sets, event
//           monotonicity, backfill guards, cost sanity;
//   full  — cheap plus a from-scratch cross-validation of every ClusterState
//           counter and cost-model symmetry sampling after every event.
// The COMMSCHED_AUDIT environment variable selects the level for any entry
// point that does not set one explicitly (simulator config, netsim loop).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace commsched {

enum class AuditLevel : std::uint8_t {
  kOff = 0,
  kCheap = 1,
  kFull = 2,
};

/// "off", "cheap" or "full".
const char* audit_level_name(AuditLevel level) noexcept;

/// Parse an audit-level name; nullopt on anything else.
std::optional<AuditLevel> audit_level_from_string(std::string_view s) noexcept;

/// Read COMMSCHED_AUDIT. Unset or empty means kOff; an unrecognized value
/// throws InvariantError (a silently ignored typo would fake coverage).
AuditLevel audit_level_from_env();

}  // namespace commsched
