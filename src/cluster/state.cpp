#include "cluster/state.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace commsched {

ClusterState::ClusterState(const Tree& tree) : tree_(&tree) {
  node_owner_.assign(static_cast<std::size_t>(tree.node_count()), kInvalidJob);
  leaf_busy_.assign(static_cast<std::size_t>(tree.switch_count()), 0);
  leaf_comm_.assign(static_cast<std::size_t>(tree.switch_count()), 0);
  leaf_io_.assign(static_cast<std::size_t>(tree.switch_count()), 0);
  switch_free_.resize(static_cast<std::size_t>(tree.switch_count()));
  for (SwitchId s = 0; s < tree.switch_count(); ++s)
    switch_free_[static_cast<std::size_t>(s)] = tree.node_count_under(s);
  free_total_ = tree.node_count();
  leaf_load_.assign(static_cast<std::size_t>(tree.switch_count()), 0);
  switch_load_.assign(static_cast<std::size_t>(tree.switch_count()), 0);

  // Per-leaf free index: one contiguous segment per leaf, initially every
  // attached node (all free), kept sorted ascending.
  free_list_.reserve(static_cast<std::size_t>(tree.node_count()));
  leaf_off_.assign(static_cast<std::size_t>(tree.switch_count()), -1);
  for (const SwitchId leaf : tree.leaves()) {
    leaf_off_[static_cast<std::size_t>(leaf)] =
        static_cast<std::int32_t>(free_list_.size());
    const auto nodes = tree.nodes_of_leaf(leaf);
    free_list_.insert(free_list_.end(), nodes.begin(), nodes.end());
    std::sort(free_list_.end() - static_cast<std::ptrdiff_t>(nodes.size()),
              free_list_.end());
  }
  COMMSCHED_ASSERT_EQ_MSG(free_list_.size(),
                          static_cast<std::size_t>(tree.node_count()),
                          "every node must hang off exactly one leaf");

  stamp_.assign(static_cast<std::size_t>(tree.node_count()), 0);
}

// hot-path: no-alloc
void ClusterState::transition(NodeId n, JobId new_owner, bool comm, bool io,
                              LoadUnits load, int delta) {
  node_owner_[static_cast<std::size_t>(n)] = new_owner;
  const SwitchId leaf = tree_->leaf_of(n);

  // Maintain the leaf's packed sorted free prefix before the counters move:
  // leaf_free() still reflects the pre-transition free count here.
  const std::int32_t off = leaf_off_[static_cast<std::size_t>(leaf)];
  NodeId* seg = free_list_.data() + off;
  const int free_before = leaf_free(leaf);
  if (delta > 0) {
    // Node became busy: remove it from the sorted prefix.
    NodeId* pos = std::lower_bound(seg, seg + free_before, n);
    COMMSCHED_ASSERT_MSG(pos != seg + free_before && *pos == n,
                         "free index out of sync: allocated node not free");
    std::copy(pos + 1, seg + free_before, pos);
  } else {
    // Node became free: insert it into the sorted prefix.
    NodeId* pos = std::lower_bound(seg, seg + free_before, n);
    std::copy_backward(pos, seg + free_before, seg + free_before + 1);
    *pos = n;
  }

  leaf_busy_[static_cast<std::size_t>(leaf)] += delta;
  if (comm) leaf_comm_[static_cast<std::size_t>(leaf)] += delta;
  if (io) leaf_io_[static_cast<std::size_t>(leaf)] += delta;
  const LoadUnits load_delta = load * delta;
  leaf_load_[static_cast<std::size_t>(leaf)] += load_delta;
  for (SwitchId s = leaf; s != kInvalidSwitch; s = tree_->parent(s)) {
    switch_free_[static_cast<std::size_t>(s)] -= delta;
    switch_load_[static_cast<std::size_t>(s)] += load_delta;
  }
  free_total_ -= delta;
  load_total_ += load_delta;
}

// hot-path: no-alloc
std::int32_t ClusterState::find_slot(JobId job) const {
  if (job >= 0 && job < kDenseJobIds) {
    const auto idx = static_cast<std::size_t>(job);
    if (idx >= dense_slot_.size()) return -1;
    return dense_slot_[idx];
  }
  const auto it = sparse_slot_.find(job);
  return it == sparse_slot_.end() ? -1 : it->second;
}

// hot-path: no-alloc
std::int32_t ClusterState::claim_slot(JobId job) {
  std::int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::int32_t>(job_pool_.size());
    // contract-trusted: no-alloc: slot pool grows to the peak live-job
    // count, then slots recycle through free_slots_
    job_pool_.emplace_back();
  }
  if (job >= 0 && job < kDenseJobIds) {
    const auto idx = static_cast<std::size_t>(job);
    // contract-trusted: no-alloc: dense id->slot table grows once up to
    // the largest dense job id, then stays
    if (idx >= dense_slot_.size()) dense_slot_.resize(idx + 1, -1);
    dense_slot_[idx] = slot;
  } else {
    // contract-trusted: no-alloc: out-of-range ids are rare (SWF traces
    // stay under kDenseJobIds); bounded by live sparse jobs
    sparse_slot_.emplace(job, slot);
  }
  return slot;
}

// hot-path: no-alloc
void ClusterState::drop_slot(JobId job, std::int32_t slot) {
  if (job >= 0 && job < kDenseJobIds)
    dense_slot_[static_cast<std::size_t>(job)] = -1;
  else
    sparse_slot_.erase(job);
  JobRec& rec = job_pool_[static_cast<std::size_t>(slot)];
  rec.live = false;
  rec.id = kInvalidJob;
  rec.nodes.clear();  // capacity survives for the next occupant
  // contract-trusted: no-alloc: free list capacity is bounded by the
  // peak live-job count the pool already reached
  free_slots_.push_back(slot);
}

// hot-path: no-alloc
void ClusterState::allocate(JobId job, bool comm_intensive,
                            std::span<const NodeId> nodes,
                            bool io_intensive, LoadUnits comm_load) {
  COMMSCHED_ASSERT_MSG(job != kInvalidJob, "invalid job id");
  COMMSCHED_ASSERT_MSG(find_slot(job) < 0, "job id already allocated");
  COMMSCHED_ASSERT_MSG(!nodes.empty(), "allocation must contain nodes");
  COMMSCHED_ASSERT_GE_MSG(comm_load, 0, "negative communication load");
  // Check before mutating so a failed precondition leaves state untouched.
  // Epoch stamping replaces a per-call hash set for the duplicate check.
  if (++epoch_ == 0) {
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
  for (const NodeId n : nodes) {
    COMMSCHED_ASSERT_MSG(n >= 0 && n < tree_->node_count(),
                         "node id out of range");
    COMMSCHED_ASSERT_MSG(stamp_[static_cast<std::size_t>(n)] != epoch_,
                         "duplicate node in allocation");
    stamp_[static_cast<std::size_t>(n)] = epoch_;
    COMMSCHED_ASSERT_MSG(is_free(n), "node already allocated");
  }
  const std::int32_t slot = claim_slot(job);
  JobRec& rec = job_pool_[static_cast<std::size_t>(slot)];
  rec.id = job;
  rec.live = true;
  rec.comm_intensive = comm_intensive;
  rec.io_intensive = io_intensive;
  rec.load = comm_load;
  rec.nodes.assign(nodes.begin(), nodes.end());
  for (const NodeId n : nodes)
    transition(n, job, comm_intensive, io_intensive, comm_load, +1);
  ++live_jobs_;
}

// hot-path: no-alloc
void ClusterState::release_into(JobId job, std::vector<NodeId>& out) {
  const std::int32_t slot = find_slot(job);
  COMMSCHED_ASSERT_MSG(slot >= 0, "releasing unknown job");
  JobRec& rec = job_pool_[static_cast<std::size_t>(slot)];
  // contract-trusted: no-alloc: caller scratch reuses reserved capacity
  out.assign(rec.nodes.begin(), rec.nodes.end());
  for (const NodeId n : out)
    transition(n, kInvalidJob, rec.comm_intensive, rec.io_intensive, rec.load,
               -1);
  drop_slot(job, slot);
  --live_jobs_;
}

std::vector<NodeId> ClusterState::release(JobId job) {
  std::vector<NodeId> freed;
  release_into(job, freed);
  return freed;
}

// hot-path: no-alloc
bool ClusterState::is_free(NodeId n) const { return owner(n) == kInvalidJob; }

// hot-path: no-alloc
JobId ClusterState::owner(NodeId n) const {
  COMMSCHED_ASSERT_MSG(n >= 0 && n < tree_->node_count(), "node id out of range");
  return node_owner_[static_cast<std::size_t>(n)];
}

bool ClusterState::has_job(JobId job) const { return find_slot(job) >= 0; }

// hot-path: no-alloc
std::span<const NodeId> ClusterState::job_nodes(JobId job) const {
  const std::int32_t slot = find_slot(job);
  COMMSCHED_ASSERT_MSG(slot >= 0, "unknown job");
  return job_pool_[static_cast<std::size_t>(slot)].nodes;
}

bool ClusterState::job_is_comm(JobId job) const {
  const std::int32_t slot = find_slot(job);
  COMMSCHED_ASSERT_MSG(slot >= 0, "unknown job");
  return job_pool_[static_cast<std::size_t>(slot)].comm_intensive;
}

// hot-path: no-alloc
LoadUnits ClusterState::job_load(JobId job) const {
  const std::int32_t slot = find_slot(job);
  COMMSCHED_ASSERT_MSG(slot >= 0, "unknown job");
  return job_pool_[static_cast<std::size_t>(slot)].load;
}

// hot-path: no-alloc
int ClusterState::leaf_nodes(SwitchId leaf) const {
  COMMSCHED_ASSERT_MSG(tree_->is_leaf(leaf), "not a leaf switch");
  return static_cast<int>(tree_->nodes_of_leaf(leaf).size());
}

// hot-path: no-alloc
int ClusterState::leaf_busy(SwitchId leaf) const {
  COMMSCHED_ASSERT_MSG(tree_->is_leaf(leaf), "not a leaf switch");
  return leaf_busy_[static_cast<std::size_t>(leaf)];
}

// hot-path: no-alloc
int ClusterState::leaf_comm(SwitchId leaf) const {
  COMMSCHED_ASSERT_MSG(tree_->is_leaf(leaf), "not a leaf switch");
  return leaf_comm_[static_cast<std::size_t>(leaf)];
}

// hot-path: no-alloc
int ClusterState::leaf_io(SwitchId leaf) const {
  COMMSCHED_ASSERT_MSG(tree_->is_leaf(leaf), "not a leaf switch");
  return leaf_io_[static_cast<std::size_t>(leaf)];
}

// hot-path: no-alloc
int ClusterState::free_under(SwitchId s) const {
  COMMSCHED_ASSERT(s >= 0 && s < tree_->switch_count());
  return switch_free_[static_cast<std::size_t>(s)];
}

// hot-path: no-alloc
LoadUnits ClusterState::leaf_load(SwitchId leaf) const {
  COMMSCHED_ASSERT_MSG(tree_->is_leaf(leaf), "not a leaf switch");
  return leaf_load_[static_cast<std::size_t>(leaf)];
}

// hot-path: no-alloc
LoadUnits ClusterState::load_under(SwitchId s) const {
  COMMSCHED_ASSERT(s >= 0 && s < tree_->switch_count());
  return switch_load_[static_cast<std::size_t>(s)];
}

std::vector<NodeId> ClusterState::free_nodes_of_leaf(SwitchId leaf) const {
  const std::span<const NodeId> seg = free_leaf_span(leaf);
  return {seg.begin(), seg.end()};
}

// hot-path: no-alloc
std::span<const NodeId> ClusterState::free_leaf_span(SwitchId leaf) const {
  COMMSCHED_ASSERT_MSG(tree_->is_leaf(leaf), "not a leaf switch");
  const std::int32_t off = leaf_off_[static_cast<std::size_t>(leaf)];
  return {free_list_.data() + off,
          static_cast<std::size_t>(leaf_free(leaf))};
}

void ClusterState::validate() const {
  // Recompute every counter from the ground-truth per-node owner table.
  std::vector<int> busy(static_cast<std::size_t>(tree_->switch_count()), 0);
  std::vector<int> comm(static_cast<std::size_t>(tree_->switch_count()), 0);
  std::vector<int> io(static_cast<std::size_t>(tree_->switch_count()), 0);
  std::vector<LoadUnits> load(static_cast<std::size_t>(tree_->switch_count()),
                              0);
  int total_busy = 0;
  LoadUnits total_load = 0;
  for (NodeId n = 0; n < tree_->node_count(); ++n) {
    const JobId j = node_owner_[static_cast<std::size_t>(n)];
    if (j == kInvalidJob) continue;
    const std::int32_t slot = find_slot(j);
    COMMSCHED_ASSERT_MSG(slot >= 0, "node owned by unknown job");
    const JobRec& rec = job_pool_[static_cast<std::size_t>(slot)];
    COMMSCHED_ASSERT_MSG(rec.live && rec.id == j,
                         "job slot table out of sync");
    COMMSCHED_ASSERT_MSG(
        std::find(rec.nodes.begin(), rec.nodes.end(), n) != rec.nodes.end(),
        "node/job ownership tables disagree");
    const SwitchId leaf = tree_->leaf_of(n);
    ++busy[static_cast<std::size_t>(leaf)];
    if (rec.comm_intensive) ++comm[static_cast<std::size_t>(leaf)];
    if (rec.io_intensive) ++io[static_cast<std::size_t>(leaf)];
    COMMSCHED_ASSERT_GE_MSG(rec.load, 0, "job carries a negative load");
    load[static_cast<std::size_t>(leaf)] += rec.load;
    total_load += rec.load;
    ++total_busy;
  }
  COMMSCHED_ASSERT_EQ(free_total_, tree_->node_count() - total_busy);
  COMMSCHED_ASSERT_EQ(load_total_, total_load);
  for (const SwitchId leaf : tree_->leaves()) {
    COMMSCHED_ASSERT_EQ(leaf_busy_[static_cast<std::size_t>(leaf)],
                        busy[static_cast<std::size_t>(leaf)]);
    COMMSCHED_ASSERT_EQ(leaf_comm_[static_cast<std::size_t>(leaf)],
                        comm[static_cast<std::size_t>(leaf)]);
    COMMSCHED_ASSERT_EQ(leaf_io_[static_cast<std::size_t>(leaf)],
                        io[static_cast<std::size_t>(leaf)]);
    COMMSCHED_ASSERT_EQ(leaf_load_[static_cast<std::size_t>(leaf)],
                        load[static_cast<std::size_t>(leaf)]);
  }
  for (SwitchId s = 0; s < tree_->switch_count(); ++s) {
    int free_sub = 0;
    LoadUnits load_sub = 0;
    for (const SwitchId leaf : tree_->leaves_under(s)) {
      free_sub += static_cast<int>(tree_->nodes_of_leaf(leaf).size()) -
                  busy[static_cast<std::size_t>(leaf)];
      load_sub += load[static_cast<std::size_t>(leaf)];
    }
    COMMSCHED_ASSERT_EQ(switch_free_[static_cast<std::size_t>(s)], free_sub);
    COMMSCHED_ASSERT_EQ(switch_load_[static_cast<std::size_t>(s)], load_sub);
  }

  // Per-leaf free index: the packed prefix must list exactly the leaf's
  // free nodes, sorted ascending, at the leaf's recorded offset.
  for (const SwitchId leaf : tree_->leaves()) {
    const std::int32_t off = leaf_off_[static_cast<std::size_t>(leaf)];
    COMMSCHED_ASSERT_MSG(off >= 0, "leaf missing from the free index");
    const int expect_free =
        static_cast<int>(tree_->nodes_of_leaf(leaf).size()) -
        busy[static_cast<std::size_t>(leaf)];
    const std::span<const NodeId> seg{
        free_list_.data() + off, static_cast<std::size_t>(expect_free)};
    NodeId prev = -1;
    for (const NodeId n : seg) {
      COMMSCHED_ASSERT_MSG(n > prev,
                           "free index not sorted ascending / duplicated");
      COMMSCHED_ASSERT_MSG(tree_->leaf_of(n) == leaf,
                           "free index lists a node of another leaf");
      COMMSCHED_ASSERT_MSG(node_owner_[static_cast<std::size_t>(n)] ==
                               kInvalidJob,
                           "free index lists an allocated node");
      prev = n;
    }
  }

  std::size_t nodes_in_jobs = 0;
  std::size_t live = 0;
  for (const JobRec& rec : job_pool_) {
    if (!rec.live) continue;
    ++live;
    nodes_in_jobs += rec.nodes.size();
    COMMSCHED_ASSERT_EQ_MSG(find_slot(rec.id),
                            static_cast<std::int32_t>(&rec - job_pool_.data()),
                            "job id table does not point at the live slot");
  }
  COMMSCHED_ASSERT_EQ(live, live_jobs_);
  COMMSCHED_ASSERT_EQ(nodes_in_jobs, static_cast<std::size_t>(total_busy));
}

}  // namespace commsched
