#include "cluster/state.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/assert.hpp"

namespace commsched {

ClusterState::ClusterState(const Tree& tree) : tree_(&tree) {
  node_owner_.assign(static_cast<std::size_t>(tree.node_count()), kInvalidJob);
  leaf_busy_.assign(static_cast<std::size_t>(tree.switch_count()), 0);
  leaf_comm_.assign(static_cast<std::size_t>(tree.switch_count()), 0);
  leaf_io_.assign(static_cast<std::size_t>(tree.switch_count()), 0);
  switch_free_.resize(static_cast<std::size_t>(tree.switch_count()));
  for (SwitchId s = 0; s < tree.switch_count(); ++s)
    switch_free_[static_cast<std::size_t>(s)] = tree.node_count_under(s);
  free_total_ = tree.node_count();
}

void ClusterState::transition(NodeId n, JobId new_owner, bool comm, bool io,
                              int delta) {
  node_owner_[static_cast<std::size_t>(n)] = new_owner;
  const SwitchId leaf = tree_->leaf_of(n);
  leaf_busy_[static_cast<std::size_t>(leaf)] += delta;
  if (comm) leaf_comm_[static_cast<std::size_t>(leaf)] += delta;
  if (io) leaf_io_[static_cast<std::size_t>(leaf)] += delta;
  for (SwitchId s = leaf; s != kInvalidSwitch; s = tree_->parent(s))
    switch_free_[static_cast<std::size_t>(s)] -= delta;
  free_total_ -= delta;
}

void ClusterState::allocate(JobId job, bool comm_intensive,
                            std::span<const NodeId> nodes,
                            bool io_intensive) {
  COMMSCHED_ASSERT_MSG(job != kInvalidJob, "invalid job id");
  COMMSCHED_ASSERT_MSG(!jobs_.contains(job), "job id already allocated");
  COMMSCHED_ASSERT_MSG(!nodes.empty(), "allocation must contain nodes");
  // Check before mutating so a failed precondition leaves state untouched.
  std::unordered_set<NodeId> seen;
  for (const NodeId n : nodes) {
    COMMSCHED_ASSERT_MSG(n >= 0 && n < tree_->node_count(),
                         "node id out of range");
    COMMSCHED_ASSERT_MSG(seen.insert(n).second, "duplicate node in allocation");
    COMMSCHED_ASSERT_MSG(is_free(n), "node already allocated");
  }
  JobRec rec;
  rec.comm_intensive = comm_intensive;
  rec.io_intensive = io_intensive;
  rec.nodes.assign(nodes.begin(), nodes.end());
  for (const NodeId n : nodes)
    transition(n, job, comm_intensive, io_intensive, +1);
  jobs_.emplace(job, std::move(rec));
}

std::vector<NodeId> ClusterState::release(JobId job) {
  const auto it = jobs_.find(job);
  COMMSCHED_ASSERT_MSG(it != jobs_.end(), "releasing unknown job");
  std::vector<NodeId> freed = std::move(it->second.nodes);
  for (const NodeId n : freed)
    transition(n, kInvalidJob, it->second.comm_intensive,
               it->second.io_intensive, -1);
  jobs_.erase(it);
  return freed;
}

bool ClusterState::is_free(NodeId n) const { return owner(n) == kInvalidJob; }

JobId ClusterState::owner(NodeId n) const {
  COMMSCHED_ASSERT_MSG(n >= 0 && n < tree_->node_count(), "node id out of range");
  return node_owner_[static_cast<std::size_t>(n)];
}

bool ClusterState::has_job(JobId job) const { return jobs_.contains(job); }

std::span<const NodeId> ClusterState::job_nodes(JobId job) const {
  const auto it = jobs_.find(job);
  COMMSCHED_ASSERT_MSG(it != jobs_.end(), "unknown job");
  return it->second.nodes;
}

bool ClusterState::job_is_comm(JobId job) const {
  const auto it = jobs_.find(job);
  COMMSCHED_ASSERT_MSG(it != jobs_.end(), "unknown job");
  return it->second.comm_intensive;
}

int ClusterState::leaf_nodes(SwitchId leaf) const {
  COMMSCHED_ASSERT_MSG(tree_->is_leaf(leaf), "not a leaf switch");
  return static_cast<int>(tree_->nodes_of_leaf(leaf).size());
}

int ClusterState::leaf_busy(SwitchId leaf) const {
  COMMSCHED_ASSERT_MSG(tree_->is_leaf(leaf), "not a leaf switch");
  return leaf_busy_[static_cast<std::size_t>(leaf)];
}

int ClusterState::leaf_comm(SwitchId leaf) const {
  COMMSCHED_ASSERT_MSG(tree_->is_leaf(leaf), "not a leaf switch");
  return leaf_comm_[static_cast<std::size_t>(leaf)];
}

int ClusterState::leaf_io(SwitchId leaf) const {
  COMMSCHED_ASSERT_MSG(tree_->is_leaf(leaf), "not a leaf switch");
  return leaf_io_[static_cast<std::size_t>(leaf)];
}

int ClusterState::free_under(SwitchId s) const {
  COMMSCHED_ASSERT(s >= 0 && s < tree_->switch_count());
  return switch_free_[static_cast<std::size_t>(s)];
}

std::vector<NodeId> ClusterState::free_nodes_of_leaf(SwitchId leaf) const {
  COMMSCHED_ASSERT_MSG(tree_->is_leaf(leaf), "not a leaf switch");
  std::vector<NodeId> out;
  for (const NodeId n : tree_->nodes_of_leaf(leaf))
    if (is_free(n)) out.push_back(n);
  return out;
}

void ClusterState::validate() const {
  // Recompute every counter from the ground-truth per-node owner table.
  std::vector<int> busy(static_cast<std::size_t>(tree_->switch_count()), 0);
  std::vector<int> comm(static_cast<std::size_t>(tree_->switch_count()), 0);
  std::vector<int> io(static_cast<std::size_t>(tree_->switch_count()), 0);
  int total_busy = 0;
  for (NodeId n = 0; n < tree_->node_count(); ++n) {
    const JobId j = node_owner_[static_cast<std::size_t>(n)];
    if (j == kInvalidJob) continue;
    const auto it = jobs_.find(j);
    COMMSCHED_ASSERT_MSG(it != jobs_.end(), "node owned by unknown job");
    COMMSCHED_ASSERT_MSG(
        std::find(it->second.nodes.begin(), it->second.nodes.end(), n) !=
            it->second.nodes.end(),
        "node/job ownership tables disagree");
    const SwitchId leaf = tree_->leaf_of(n);
    ++busy[static_cast<std::size_t>(leaf)];
    if (it->second.comm_intensive) ++comm[static_cast<std::size_t>(leaf)];
    if (it->second.io_intensive) ++io[static_cast<std::size_t>(leaf)];
    ++total_busy;
  }
  COMMSCHED_ASSERT_EQ(free_total_, tree_->node_count() - total_busy);
  for (const SwitchId leaf : tree_->leaves()) {
    COMMSCHED_ASSERT_EQ(leaf_busy_[static_cast<std::size_t>(leaf)],
                        busy[static_cast<std::size_t>(leaf)]);
    COMMSCHED_ASSERT_EQ(leaf_comm_[static_cast<std::size_t>(leaf)],
                        comm[static_cast<std::size_t>(leaf)]);
    COMMSCHED_ASSERT_EQ(leaf_io_[static_cast<std::size_t>(leaf)],
                        io[static_cast<std::size_t>(leaf)]);
  }
  for (SwitchId s = 0; s < tree_->switch_count(); ++s) {
    int free_sub = 0;
    for (const SwitchId leaf : tree_->leaves_under(s))
      free_sub += static_cast<int>(tree_->nodes_of_leaf(leaf).size()) -
                  busy[static_cast<std::size_t>(leaf)];
    COMMSCHED_ASSERT_EQ(switch_free_[static_cast<std::size_t>(s)], free_sub);
  }
  std::size_t nodes_in_jobs = 0;
  for (const auto& [id, rec] : jobs_) nodes_in_jobs += rec.nodes.size();
  COMMSCHED_ASSERT_EQ(nodes_in_jobs, static_cast<std::size_t>(total_busy));
}

}  // namespace commsched
