// Cluster allocation state — the SLURM select/linear node-state equivalent.
//
// Tracks which whole nodes each job occupies, and maintains the per-leaf
// counters the paper's algorithms consume (Table 1):
//   L_nodes — nodes attached to the leaf switch,
//   L_busy  — nodes currently allocated on the leaf,
//   L_comm  — nodes running communication-intensive jobs on the leaf,
// plus per-switch subtree free counts for the lowest-level-switch search.
// All counters are updated incrementally in O(depth) per node transition;
// validate() recomputes them from scratch for tests.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "topology/tree.hpp"

namespace commsched {

using JobId = std::int64_t;
inline constexpr JobId kInvalidJob = -1;

/// Mutable allocation state over an immutable Tree. The Tree must outlive
/// the ClusterState.
class ClusterState {
 public:
  explicit ClusterState(const Tree& tree);

  const Tree& tree() const noexcept { return *tree_; }

  /// Mark `nodes` as occupied by `job`. Preconditions: the job id is unused,
  /// every node is currently free, and `nodes` has no duplicates.
  /// `io_intensive` feeds the L_io counter of the I/O-aware extension
  /// (paper §7 future work); it is independent of the communication class.
  void allocate(JobId job, bool comm_intensive, std::span<const NodeId> nodes,
                bool io_intensive = false);

  /// Free every node held by `job` and return exactly the node set the job
  /// allocated (in allocation order) — the audit layer cross-checks it.
  /// Precondition: the job is allocated.
  std::vector<NodeId> release(JobId job);

  bool is_free(NodeId n) const;
  JobId owner(NodeId n) const;  ///< kInvalidJob when free

  bool has_job(JobId job) const;
  /// Nodes held by `job`, in allocation order.
  std::span<const NodeId> job_nodes(JobId job) const;
  bool job_is_comm(JobId job) const;
  std::size_t job_count() const noexcept { return jobs_.size(); }

  int total_nodes() const noexcept { return tree_->node_count(); }
  int total_free() const noexcept { return free_total_; }

  // --- Paper Table 1 counters -------------------------------------------
  int leaf_nodes(SwitchId leaf) const;  ///< L_nodes
  int leaf_busy(SwitchId leaf) const;   ///< L_busy
  int leaf_comm(SwitchId leaf) const;   ///< L_comm
  int leaf_io(SwitchId leaf) const;     ///< L_io (§7 I/O-aware extension)
  int leaf_free(SwitchId leaf) const { return leaf_nodes(leaf) - leaf_busy(leaf); }

  /// Free nodes in the subtree of any switch (== leaf_free for leaves).
  int free_under(SwitchId s) const;

  /// Free nodes on a leaf switch, in ascending node-id order.
  std::vector<NodeId> free_nodes_of_leaf(SwitchId leaf) const;

  /// Recompute all counters from the per-node table and compare with the
  /// incremental ones. Throws InvariantError on mismatch (test hook).
  void validate() const;

 private:
  // Deliberate-corruption hook for validate()/auditor failure-path tests.
  friend struct ClusterStateTestPeer;

  struct JobRec {
    bool comm_intensive = false;
    bool io_intensive = false;
    std::vector<NodeId> nodes;
  };

  void transition(NodeId n, JobId new_owner, bool comm, bool io, int delta);

  const Tree* tree_;
  std::vector<JobId> node_owner_;       // per node
  std::vector<int> leaf_busy_;          // per switch (leaves used)
  std::vector<int> leaf_comm_;          // per switch (leaves used)
  std::vector<int> leaf_io_;            // per switch (leaves used)
  std::vector<int> switch_free_;        // per switch, subtree free count
  int free_total_ = 0;
  std::unordered_map<JobId, JobRec> jobs_;
};

}  // namespace commsched
