// Cluster allocation state — the SLURM select/linear node-state equivalent.
//
// Tracks which whole nodes each job occupies, and maintains the per-leaf
// counters the paper's algorithms consume (Table 1):
//   L_nodes — nodes attached to the leaf switch,
//   L_busy  — nodes currently allocated on the leaf,
//   L_comm  — nodes running communication-intensive jobs on the leaf,
// plus per-switch subtree free counts for the lowest-level-switch search.
//
// Dynamic interference (DESIGN.md "Dynamic interference"): alongside the
// boolean L_comm count, every leaf carries a *communication-load
// accumulator* L_load — the sum of the per-node load units of the jobs
// occupying its nodes — and every switch the subtree aggregate, so the
// degradation model (src/core/degradation_model) and the colocation queue
// policy can read "who shares links right now" in O(1) per leaf. Loads are
// integers (LoadUnits, kLoadUnitScale units == intensity 1.0) so the
// incremental accounting is exact: validate() and the StateAuditor compare
// with == rather than an epsilon.
//
// Million-job scale (DESIGN.md "Million-job event loop"): on top of the
// counters, every leaf keeps a packed sorted *free-node index* — a segment
// of one backing array whose prefix lists the leaf's free nodes in
// ascending id order. Enumerating or taking free nodes is therefore O(nodes
// touched) instead of scanning every attached node with is_free(), and
// free_leaf_span() exposes the prefix without copying. Job records live in
// a slot pool indexed by a dense JobId table (scheduler ids are log index +
// 1), so steady-state allocate/release perform no hashing and recycle node
// vectors instead of reallocating them.
//
// All structures are updated incrementally in O(depth + leaf size) per node
// transition; validate() recomputes everything from scratch for tests.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "topology/tree.hpp"

namespace commsched {

using JobId = std::int64_t;
inline constexpr JobId kInvalidJob = -1;

/// Per-node communication-load units. A job contributes `load` units to
/// every leaf it occupies a node on, where kLoadUnitScale units correspond
/// to comm intensity 1.0 (T_comm == T). Integer units keep the incremental
/// per-leaf accumulators exactly recomputable.
using LoadUnits = std::int64_t;
inline constexpr LoadUnits kLoadUnitScale = 1024;

/// Mutable allocation state over an immutable Tree. The Tree must outlive
/// the ClusterState.
class ClusterState {
 public:
  explicit ClusterState(const Tree& tree);

  const Tree& tree() const noexcept { return *tree_; }

  /// Mark `nodes` as occupied by `job`. Preconditions: the job id is unused,
  /// every node is currently free, and `nodes` has no duplicates.
  /// `io_intensive` feeds the L_io counter of the I/O-aware extension
  /// (paper §7 future work); it is independent of the communication class.
  /// `comm_load` is the job's per-node communication load (>= 0), added to
  /// the L_load accumulator of every leaf the job touches; 0 (the default,
  /// and the only sensible value for compute-bound jobs) leaves the load
  /// accounting untouched.
  void allocate(JobId job, bool comm_intensive, std::span<const NodeId> nodes,
                bool io_intensive = false, LoadUnits comm_load = 0);

  /// Free every node held by `job` and return exactly the node set the job
  /// allocated (in allocation order) — the audit layer cross-checks it.
  /// Precondition: the job is allocated.
  std::vector<NodeId> release(JobId job);

  /// Allocation-free release for hot loops: assigns the freed node set (in
  /// allocation order) into `out`, reusing its capacity, and recycles the
  /// job's record. Precondition: the job is allocated.
  void release_into(JobId job, std::vector<NodeId>& out);

  bool is_free(NodeId n) const;
  JobId owner(NodeId n) const;  ///< kInvalidJob when free

  bool has_job(JobId job) const;
  /// Nodes held by `job`, in allocation order.
  std::span<const NodeId> job_nodes(JobId job) const;
  bool job_is_comm(JobId job) const;
  /// Per-node load units `job` was allocated with.
  LoadUnits job_load(JobId job) const;
  std::size_t job_count() const noexcept { return live_jobs_; }

  int total_nodes() const noexcept { return tree_->node_count(); }
  int total_free() const noexcept { return free_total_; }

  // --- Paper Table 1 counters -------------------------------------------
  int leaf_nodes(SwitchId leaf) const;  ///< L_nodes
  int leaf_busy(SwitchId leaf) const;   ///< L_busy
  int leaf_comm(SwitchId leaf) const;   ///< L_comm
  int leaf_io(SwitchId leaf) const;     ///< L_io (§7 I/O-aware extension)
  // hot-path: no-alloc
  int leaf_free(SwitchId leaf) const { return leaf_nodes(leaf) - leaf_busy(leaf); }

  /// Free nodes in the subtree of any switch (== leaf_free for leaves).
  int free_under(SwitchId s) const;

  // --- Dynamic-interference load accounting ------------------------------
  /// L_load: total per-node load units of the jobs on the leaf's nodes.
  LoadUnits leaf_load(SwitchId leaf) const;
  /// Subtree load aggregate for any switch (== leaf_load for leaves): the
  /// per-link-level view the degradation model reads for upper tree levels.
  LoadUnits load_under(SwitchId s) const;
  /// Machine-wide load (== load_under(root)).
  LoadUnits total_load() const noexcept { return load_total_; }
  /// Zero-copy per-switch views, indexed by SwitchId (internal switches are
  /// always 0 in leaf_loads). Invalidated by any allocate/release.
  std::span<const LoadUnits> leaf_loads() const noexcept { return leaf_load_; }
  std::span<const LoadUnits> switch_loads() const noexcept {
    return switch_load_;
  }

  /// Free nodes on a leaf switch, in ascending node-id order.
  std::vector<NodeId> free_nodes_of_leaf(SwitchId leaf) const;

  /// Zero-copy view of the leaf's free nodes, ascending node-id order
  /// (the per-leaf free index). Invalidated by any allocate/release.
  std::span<const NodeId> free_leaf_span(SwitchId leaf) const;

  /// Recompute all counters and the per-leaf free index from the per-node
  /// table and compare with the incremental ones. Throws InvariantError on
  /// mismatch (test hook).
  void validate() const;

 private:
  // Deliberate-corruption hook for validate()/auditor failure-path tests.
  friend struct ClusterStateTestPeer;

  struct JobRec {
    JobId id = kInvalidJob;
    bool comm_intensive = false;
    bool io_intensive = false;
    bool live = false;
    LoadUnits load = 0;         // per-node communication load units
    std::vector<NodeId> nodes;  // capacity survives slot recycling
  };

  // JobIds below this bound index dense_slot_ directly; anything else
  // (huge or negative ids from ad-hoc callers) falls back to the hash map.
  static constexpr JobId kDenseJobIds = JobId{1} << 26;

  void transition(NodeId n, JobId new_owner, bool comm, bool io,
                  LoadUnits load, int delta);
  std::int32_t find_slot(JobId job) const;  ///< -1 when absent
  std::int32_t claim_slot(JobId job);
  void drop_slot(JobId job, std::int32_t slot);

  const Tree* tree_;
  std::vector<JobId> node_owner_;       // per node
  std::vector<int> leaf_busy_;          // per switch (leaves used)
  std::vector<int> leaf_comm_;          // per switch (leaves used)
  std::vector<int> leaf_io_;            // per switch (leaves used)
  std::vector<int> switch_free_;        // per switch, subtree free count
  int free_total_ = 0;

  // Dynamic-interference load accumulators, mirrored over the same switch
  // indexing as the busy/free counters.
  std::vector<LoadUnits> leaf_load_;    // per switch (leaves used)
  std::vector<LoadUnits> switch_load_;  // per switch, subtree load sum
  LoadUnits load_total_ = 0;

  // Per-leaf free index: free_list_[leaf_off_[leaf] .. +leaf_free(leaf))
  // holds the leaf's free nodes sorted ascending; the rest of the segment
  // (up to leaf_nodes(leaf)) is scratch.
  std::vector<NodeId> free_list_;
  std::vector<std::int32_t> leaf_off_;  // per switch; -1 for internal

  // Job records: slot pool + dense id table (+ sparse overflow).
  std::vector<JobRec> job_pool_;
  std::vector<std::int32_t> free_slots_;
  std::vector<std::int32_t> dense_slot_;  // JobId -> slot index, -1 absent
  std::unordered_map<JobId, std::int32_t> sparse_slot_;
  std::size_t live_jobs_ = 0;

  // Duplicate-node check scratch for allocate(): epoch stamping avoids a
  // per-call hash set.
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
};

}  // namespace commsched
