// Cluster allocation state — the SLURM select/linear node-state equivalent.
//
// Tracks which whole nodes each job occupies, and maintains the per-leaf
// counters the paper's algorithms consume (Table 1):
//   L_nodes — nodes attached to the leaf switch,
//   L_busy  — nodes currently allocated on the leaf,
//   L_comm  — nodes running communication-intensive jobs on the leaf,
// plus per-switch subtree free counts for the lowest-level-switch search.
//
// Million-job scale (DESIGN.md "Million-job event loop"): on top of the
// counters, every leaf keeps a packed sorted *free-node index* — a segment
// of one backing array whose prefix lists the leaf's free nodes in
// ascending id order. Enumerating or taking free nodes is therefore O(nodes
// touched) instead of scanning every attached node with is_free(), and
// free_leaf_span() exposes the prefix without copying. Job records live in
// a slot pool indexed by a dense JobId table (scheduler ids are log index +
// 1), so steady-state allocate/release perform no hashing and recycle node
// vectors instead of reallocating them.
//
// All structures are updated incrementally in O(depth + leaf size) per node
// transition; validate() recomputes everything from scratch for tests.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "topology/tree.hpp"

namespace commsched {

using JobId = std::int64_t;
inline constexpr JobId kInvalidJob = -1;

/// Mutable allocation state over an immutable Tree. The Tree must outlive
/// the ClusterState.
class ClusterState {
 public:
  explicit ClusterState(const Tree& tree);

  const Tree& tree() const noexcept { return *tree_; }

  /// Mark `nodes` as occupied by `job`. Preconditions: the job id is unused,
  /// every node is currently free, and `nodes` has no duplicates.
  /// `io_intensive` feeds the L_io counter of the I/O-aware extension
  /// (paper §7 future work); it is independent of the communication class.
  void allocate(JobId job, bool comm_intensive, std::span<const NodeId> nodes,
                bool io_intensive = false);

  /// Free every node held by `job` and return exactly the node set the job
  /// allocated (in allocation order) — the audit layer cross-checks it.
  /// Precondition: the job is allocated.
  std::vector<NodeId> release(JobId job);

  /// Allocation-free release for hot loops: assigns the freed node set (in
  /// allocation order) into `out`, reusing its capacity, and recycles the
  /// job's record. Precondition: the job is allocated.
  void release_into(JobId job, std::vector<NodeId>& out);

  bool is_free(NodeId n) const;
  JobId owner(NodeId n) const;  ///< kInvalidJob when free

  bool has_job(JobId job) const;
  /// Nodes held by `job`, in allocation order.
  std::span<const NodeId> job_nodes(JobId job) const;
  bool job_is_comm(JobId job) const;
  std::size_t job_count() const noexcept { return live_jobs_; }

  int total_nodes() const noexcept { return tree_->node_count(); }
  int total_free() const noexcept { return free_total_; }

  // --- Paper Table 1 counters -------------------------------------------
  int leaf_nodes(SwitchId leaf) const;  ///< L_nodes
  int leaf_busy(SwitchId leaf) const;   ///< L_busy
  int leaf_comm(SwitchId leaf) const;   ///< L_comm
  int leaf_io(SwitchId leaf) const;     ///< L_io (§7 I/O-aware extension)
  // hot-path: no-alloc
  int leaf_free(SwitchId leaf) const { return leaf_nodes(leaf) - leaf_busy(leaf); }

  /// Free nodes in the subtree of any switch (== leaf_free for leaves).
  int free_under(SwitchId s) const;

  /// Free nodes on a leaf switch, in ascending node-id order.
  std::vector<NodeId> free_nodes_of_leaf(SwitchId leaf) const;

  /// Zero-copy view of the leaf's free nodes, ascending node-id order
  /// (the per-leaf free index). Invalidated by any allocate/release.
  std::span<const NodeId> free_leaf_span(SwitchId leaf) const;

  /// Recompute all counters and the per-leaf free index from the per-node
  /// table and compare with the incremental ones. Throws InvariantError on
  /// mismatch (test hook).
  void validate() const;

 private:
  // Deliberate-corruption hook for validate()/auditor failure-path tests.
  friend struct ClusterStateTestPeer;

  struct JobRec {
    JobId id = kInvalidJob;
    bool comm_intensive = false;
    bool io_intensive = false;
    bool live = false;
    std::vector<NodeId> nodes;  // capacity survives slot recycling
  };

  // JobIds below this bound index dense_slot_ directly; anything else
  // (huge or negative ids from ad-hoc callers) falls back to the hash map.
  static constexpr JobId kDenseJobIds = JobId{1} << 26;

  void transition(NodeId n, JobId new_owner, bool comm, bool io, int delta);
  std::int32_t find_slot(JobId job) const;  ///< -1 when absent
  std::int32_t claim_slot(JobId job);
  void drop_slot(JobId job, std::int32_t slot);

  const Tree* tree_;
  std::vector<JobId> node_owner_;       // per node
  std::vector<int> leaf_busy_;          // per switch (leaves used)
  std::vector<int> leaf_comm_;          // per switch (leaves used)
  std::vector<int> leaf_io_;            // per switch (leaves used)
  std::vector<int> switch_free_;        // per switch, subtree free count
  int free_total_ = 0;

  // Per-leaf free index: free_list_[leaf_off_[leaf] .. +leaf_free(leaf))
  // holds the leaf's free nodes sorted ascending; the rest of the segment
  // (up to leaf_nodes(leaf)) is scratch.
  std::vector<NodeId> free_list_;
  std::vector<std::int32_t> leaf_off_;  // per switch; -1 for internal

  // Job records: slot pool + dense id table (+ sparse overflow).
  std::vector<JobRec> job_pool_;
  std::vector<std::int32_t> free_slots_;
  std::vector<std::int32_t> dense_slot_;  // JobId -> slot index, -1 absent
  std::unordered_map<JobId, std::int32_t> sparse_slot_;
  std::size_t live_jobs_ = 0;

  // Duplicate-node check scratch for allocate(): epoch stamping avoids a
  // per-call hash set.
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
};

}  // namespace commsched
