#include "collectives/comm_cache.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace commsched {

// contract-trusted: no-alloc: key construction is bounded by job-start
// pricing (a handful of candidate shapes per start), never the per-leaf
// selection loops; its vectors are leaf/node sized and die with the call
ShapeKey make_shape_key(const Tree& tree, std::span<const NodeId> nodes) {
  ShapeKey key;
  key.total_nodes = static_cast<int>(nodes.size());
  key.runs.reserve(8);
  // Dense leaf index -> first-appearance slot; rebuilt per call (leaf_count
  // is small — one entry per leaf switch, not per node).
  std::vector<std::int32_t> slot_of_leaf(
      static_cast<std::size_t>(tree.leaf_count()), -1);
  std::vector<std::uint8_t> seen_node(
      static_cast<std::size_t>(tree.node_count()), 0);
  for (const NodeId n : nodes) {
    auto& seen = seen_node[static_cast<std::size_t>(n)];
    COMMSCHED_ASSERT_MSG(!seen, "allocation lists a node twice");
    seen = 1;
    const SwitchId leaf = tree.leaf_of(n);
    auto& slot = slot_of_leaf[static_cast<std::size_t>(tree.leaf_index(leaf))];
    if (slot < 0) slot = key.num_slots++;
    if (!key.runs.empty() && key.runs.back().first == slot)
      ++key.runs.back().second;
    else
      key.runs.emplace_back(slot, 1);
  }
  return key;
}

LeafCommProfile make_leaf_comm_profile(Pattern pattern, double base_msize,
                                       const ShapeKey& shape,
                                       int ranks_per_node) {
  COMMSCHED_ASSERT_GE_MSG(ranks_per_node, 1,
                          "need at least one rank per node");
  LeafCommProfile profile;
  profile.num_slots = shape.num_slots;
  profile.ranks_per_node = ranks_per_node;
  profile.nprocs = shape.total_nodes * ranks_per_node;
  profile.base_msize = base_msize;
  if (profile.nprocs < 2) return profile;

  // Expand the RLE back to node index -> leaf slot.
  std::vector<std::int32_t> node_slot;
  node_slot.reserve(static_cast<std::size_t>(shape.total_nodes));
  for (const auto& [slot, count] : shape.runs) {
    COMMSCHED_ASSERT(slot >= 0 && slot < shape.num_slots && count >= 1);
    node_slot.insert(node_slot.end(), static_cast<std::size_t>(count),
                     slot);
  }
  COMMSCHED_ASSERT_EQ_MSG(static_cast<int>(node_slot.size()),
                          shape.total_nodes,
                          "shape runs do not cover total_nodes");

  const auto k = static_cast<std::size_t>(shape.num_slots);
  std::vector<std::uint8_t> pair_seen(k * k, 0);
  // Distinct leaf-pair set -> class id. An ordered map keeps the dedup
  // allocation-light; the number of classes is small by construction.
  std::map<std::vector<std::pair<std::int32_t, std::int32_t>>, std::int32_t>
      class_ids;
  std::vector<std::pair<std::int32_t, std::int32_t>> step_pairs;

  for_each_schedule_step(
      pattern, profile.nprocs, base_msize, [&](const CommStep& step) {
        ProfileStep ps;
        ps.msize = step.msize;
        ps.repeat = step.repeat;
        step_pairs.clear();
        for (const auto& [ri, rj] : step.pairs) {
          COMMSCHED_ASSERT_MSG(ri >= 0 && rj >= 0 && ri < profile.nprocs &&
                                   rj < profile.nprocs,
                               "schedule rank out of range for this shape");
          ++ps.rank_pairs;
          const int ni = ri / ranks_per_node;
          const int nj = rj / ranks_per_node;
          if (ni == nj) {
            ++ps.same_node_pairs;  // zero hops, never priced
            continue;
          }
          auto sa = node_slot[static_cast<std::size_t>(ni)];
          auto sb = node_slot[static_cast<std::size_t>(nj)];
          if (sa > sb) std::swap(sa, sb);
          if (sa == sb) ++ps.same_leaf_pairs;
          auto& seen = pair_seen[static_cast<std::size_t>(sa) * k +
                                 static_cast<std::size_t>(sb)];
          if (!seen) {
            seen = 1;
            step_pairs.emplace_back(sa, sb);
          }
        }
        for (const auto& [sa, sb] : step_pairs)
          pair_seen[static_cast<std::size_t>(sa) * k +
                    static_cast<std::size_t>(sb)] = 0;
        std::sort(step_pairs.begin(), step_pairs.end());
        const auto [it, inserted] = class_ids.try_emplace(
            step_pairs, static_cast<std::int32_t>(profile.classes.size()));
        if (inserted) profile.classes.push_back({step_pairs});
        ps.cls = it->second;
        profile.steps.push_back(ps);
        return true;
      });
  return profile;
}

std::uint64_t hash_value(const ShapeKey& key) noexcept {
  // FNV-1a over the run list; the runs fully determine the shape
  // (total_nodes and num_slots are derived from them).
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const auto& [slot, count] : key.runs) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(slot)));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(count)));
  }
  return h;
}

std::size_t CommCache::ProfileKeyHash::operator()(
    const ProfileKey& key) const noexcept {
  std::uint64_t h = hash_value(key.shape);
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(static_cast<std::uint64_t>(key.pattern));
  mix(static_cast<std::uint64_t>(key.ranks_per_node));
  return static_cast<std::size_t>(h);
}

const CommSchedule& CommCache::schedule(Pattern pattern, int nprocs) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(pattern) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(nprocs));
  const auto it = schedules_.find(key);
  if (it != schedules_.end()) {
    ++stats_.schedule_hits;
    return it->second;
  }
  ++stats_.schedule_misses;
  return schedules_.emplace(key, make_schedule(pattern, nprocs, base_msize_))
      .first->second;
}

// contract-trusted: no-alloc: memoizing run-wide cache; allocates only on
// the first sighting of a (pattern, shape) pair, steady-state lookups are
// hit-only (see stats_.profile_hits)
const LeafCommProfile& CommCache::profile(Pattern pattern, int ranks_per_node,
                                          const ShapeKey& shape) {
  ProfileKey key{pattern, ranks_per_node, shape};
  const auto it = profiles_.find(key);
  if (it != profiles_.end()) {
    ++stats_.profile_hits;
    return it->second;
  }
  ++stats_.profile_misses;
  LeafCommProfile profile =
      make_leaf_comm_profile(pattern, base_msize_, shape, ranks_per_node);
  return profiles_.emplace(std::move(key), std::move(profile)).first->second;
}

}  // namespace commsched
