// Canonical allocation shapes and the shared schedule/profile cache.
//
// Every allocator prices candidates with Eq. 6 over a collective schedule,
// but the expensive per-pair work depends only on which *leaf switches* the
// ranks sit under — not on the concrete nodes. Two allocations that place
// their rank blocks under the same leaf sequence (e.g. "8 nodes under one
// leaf, then 8 under another") produce identical per-step distinct leaf-pair
// sets. This file canonicalizes that observation:
//
//   ShapeKey         run-length encoding of the rank-order leaf sequence of
//                    an ordered node list, with leaves renamed to dense
//                    first-appearance slots (so the key is independent of
//                    which concrete leaves are used);
//   LeafCommProfile  the per-step distinct leaf-pair (slot) lists of a
//                    schedule lowered onto a shape, with same-node/same-leaf
//                    pair counts and per-step msize — everything Eq. 6 needs,
//                    computed once per (pattern, ranks_per_node, shape);
//   CommCache        the per-simulation-run memo of materialized schedules
//                    and profiles, shared by every allocator and the
//                    simulator's pricing models (exactly one per run).
//
// Identical leaf-pair sets recur heavily across the steps of one schedule
// (e.g. a power-of-two alltoall on an allocation with 2^s nodes per leaf has
// only `leaves` distinct sets across its p-1 steps), so a profile stores the
// distinct sets once as "step classes" and each step as a reference to its
// class. Cost evaluation then does the expensive hop arithmetic per class
// and a multiply-add per step, making candidate pricing O(distinct leaf
// pairs) — independent of the rank count for a fixed leaf footprint.
//
// CommCache is NOT thread-safe: callers that share one across threads must
// synchronize externally (profiles/schedules can be pre-warmed and then read
// concurrently, since returned references are stable).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "collectives/schedule.hpp"
#include "topology/tree.hpp"

namespace commsched {

/// Canonical shape of an ordered node list: the rank-order sequence of leaf
/// switches, run-length encoded, with leaves renamed to 0,1,2,... in order of
/// first appearance. Allocations under different concrete leaves (or on
/// different free nodes of the same leaves) that induce the same rank→leaf
/// structure compare equal and share one cached profile.
struct ShapeKey {
  /// (leaf slot, consecutive node count) runs, in rank order.
  std::vector<std::pair<std::int32_t, std::int32_t>> runs;
  int total_nodes = 0;
  int num_slots = 0;

  bool operator==(const ShapeKey&) const = default;
};

/// Canonicalize an ordered whole-node allocation (`nodes[r]` hosts rank
/// block r). Nodes must be distinct; rank expansion is expressed separately
/// via ranks_per_node when building profiles.
ShapeKey make_shape_key(const Tree& tree, std::span<const NodeId> nodes);

/// Stable 64-bit hash of a ShapeKey (FNV-1a over the run list and
/// dimensions). Used by CommCache's profile-key hashing and exercised
/// directly by the shape-key property/fuzz tests, which check that distinct
/// canonical shapes do not collide across large random samples.
std::uint64_t hash_value(const ShapeKey& key) noexcept;

/// One distinct per-step leaf-pair set: (slot a, slot b) with a <= b,
/// sorted lexicographically, each pair listed once. Same-node pairs are
/// excluded (they cost 0); same-leaf pairs appear as (s, s).
struct ProfileStepClass {
  std::vector<std::pair<std::int32_t, std::int32_t>> leaf_pairs;
};

/// One schedule step lowered onto a shape: which class its leaf-pair set
/// belongs to, plus the original step parameters and bookkeeping counts
/// (used by the auditor's consistency re-derivation).
struct ProfileStep {
  std::int32_t cls = 0;           ///< index into LeafCommProfile::classes
  double msize = 0.0;             ///< per-pair bytes at this step
  std::int32_t repeat = 1;        ///< back-to-back repetitions
  std::int64_t rank_pairs = 0;      ///< raw pairs in the step
  std::int64_t same_node_pairs = 0; ///< pairs with both ranks on one node
  std::int64_t same_leaf_pairs = 0; ///< cross-node pairs under one leaf
};

/// A schedule's communication structure reduced to leaf-slot granularity for
/// one (pattern, nprocs, ranks_per_node, shape). Consumed by
/// CostModel::{allocation,candidate}_cost profile overloads.
struct LeafCommProfile {
  int num_slots = 0;       ///< distinct leaves of the shape
  int nprocs = 0;          ///< total ranks = shape.total_nodes * ranks_per_node
  int ranks_per_node = 0;  ///< SLURM block distribution: rank r on node r/rpn
  double base_msize = 0.0;
  std::vector<ProfileStepClass> classes;
  std::vector<ProfileStep> steps;  ///< in schedule order
};

/// Lower the schedule of `pattern` (at nprocs = shape.total_nodes *
/// ranks_per_node ranks, block-distributed) onto `shape`. Streams the
/// schedule, so large-p alltoall profiles build without materializing O(p²)
/// pairs.
LeafCommProfile make_leaf_comm_profile(Pattern pattern, double base_msize,
                                       const ShapeKey& shape,
                                       int ranks_per_node);

/// Memoizing store for materialized schedules and leaf-comm profiles. One
/// instance is shared per simulation run (simulator, its allocator, and its
/// pricing models all point at the same cache). base_msize is fixed at
/// construction — schedules and profiles depend on (pattern, nprocs) /
/// (pattern, ranks_per_node, shape) beyond it. Returned references stay
/// valid for the cache's lifetime (node-based map storage).
class CommCache {
 public:
  explicit CommCache(double base_msize) : base_msize_(base_msize) {}

  double base_msize() const noexcept { return base_msize_; }

  /// Materialized schedule (kPairwiseAlltoall capped at
  /// kMaxMaterializedAlltoallRanks — use profiles beyond that).
  const CommSchedule& schedule(Pattern pattern, int nprocs);

  /// Leaf-comm profile for a canonical shape at `ranks_per_node` ranks per
  /// node. Uncapped: alltoall profiles stream their schedule.
  const LeafCommProfile& profile(Pattern pattern, int ranks_per_node,
                                 const ShapeKey& shape);

  struct Stats {
    std::uint64_t schedule_hits = 0;
    std::uint64_t schedule_misses = 0;
    std::uint64_t profile_hits = 0;
    std::uint64_t profile_misses = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct ProfileKey {
    Pattern pattern;
    int ranks_per_node;
    ShapeKey shape;
    bool operator==(const ProfileKey&) const = default;
  };
  struct ProfileKeyHash {
    std::size_t operator()(const ProfileKey& key) const noexcept;
  };

  double base_msize_;
  Stats stats_;
  // key: (pattern << 32) | nprocs
  std::unordered_map<std::uint64_t, CommSchedule> schedules_;
  std::unordered_map<ProfileKey, LeafCommProfile, ProfileKeyHash> profiles_;
};

}  // namespace commsched
