#include "collectives/schedule.hpp"

#include <algorithm>
#include <string>

#include "util/assert.hpp"

namespace commsched {

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kRecursiveDoubling: return "RD";
    case Pattern::kRecursiveHalvingVD: return "RHVD";
    case Pattern::kBinomial: return "Binomial";
    case Pattern::kRing: return "Ring";
    case Pattern::kPairwiseAlltoall: return "Alltoall";
  }
  return "?";
}

namespace {

using StepVisitor = std::function<bool(const CommStep&)>;

int floor_log2(int x) {
  COMMSCHED_ASSERT(x >= 1);
  int l = 0;
  while ((1 << (l + 1)) <= x) ++l;
  return l;
}

// MPICH-style fold of p ranks onto a 2^floor(lg p) core.
//
// r = p - 2^floor(lg p) extra ranks exist. Ranks 0..2r-1 pair up
// (even, even+1); the even rank of each pair then sits out of the core
// phase. Core ranks are the odd ranks below 2r plus every rank >= 2r.
struct Fold {
  std::vector<std::int32_t> core;  // core_index -> original rank
  CommStep pre;                    // empty pairs when p is a power of two
};

Fold fold_to_pow2(int p, double msize) {
  const int lg = floor_log2(p);
  const int r = p - (1 << lg);
  Fold f;
  f.pre.msize = msize;
  for (int i = 0; i < r; ++i)
    f.pre.pairs.emplace_back(2 * i, 2 * i + 1);
  for (int i = 0; i < 2 * r; i += 2) f.core.push_back(i + 1);
  for (int i = 2 * r; i < p; ++i) f.core.push_back(i);
  // Keep core ranks in ascending original-rank order (they already are).
  COMMSCHED_ASSERT(static_cast<int>(f.core.size()) == (1 << lg));
  return f;
}

// Power-of-two RD/RHVD core: step k exchanges i <-> i ^ dist. RD keeps the
// message size and doubles the distance; RHVD halves the distance (q/2,
// q/4, ..., 1) while the per-pair message doubles (m, 2m, ..., m*q/2) — the
// heaviest exchanges are therefore between rank-adjacent processes, the
// structural reason balanced power-of-two allocations help RHVD most (§6.1).
bool emit_rd_core(const std::vector<std::int32_t>& core, double msize,
                  bool vector_doubling, CommStep& step,
                  const StepVisitor& visit) {
  const int q = static_cast<int>(core.size());
  if (q < 2) return true;
  const int lg = floor_log2(q);
  for (int k = 0; k < lg; ++k) {
    step.pairs.clear();
    step.repeat = 1;
    step.msize =
        vector_doubling ? msize * static_cast<double>(1 << k) : msize;
    const int dist = vector_doubling ? (q >> (k + 1)) : (1 << k);
    for (int i = 0; i < q; ++i) {
      const int j = i ^ dist;
      if (i < j) step.pairs.emplace_back(core[static_cast<std::size_t>(i)],
                                         core[static_cast<std::size_t>(j)]);
    }
    if (!visit(step)) return false;
  }
  return true;
}

bool emit_rd_like(int p, double msize, bool vector_doubling,
                  const StepVisitor& visit) {
  if (p < 2) return true;
  Fold f = fold_to_pow2(p, msize);
  const bool folded = !f.pre.pairs.empty();
  if (folded && !visit(f.pre)) return false;
  CommStep step;
  if (!emit_rd_core(f.core, msize, vector_doubling, step, visit))
    return false;
  if (folded) {
    // Mirror step: core partners hand the (possibly grown) result back.
    CommStep post = std::move(f.pre);
    post.msize = vector_doubling
                     ? msize * static_cast<double>(f.core.size())
                     : msize;
    if (!visit(post)) return false;
  }
  return true;
}

bool emit_binomial(int p, double msize, const StepVisitor& visit) {
  if (p < 2) return true;
  // Binomial broadcast tree rooted at 0: at step k every rank i < 2^k with
  // i + 2^k < p sends to i + 2^k.
  CommStep step;
  step.msize = msize;
  for (int k = 0; (1 << k) < p; ++k) {
    step.pairs.clear();
    const int dist = 1 << k;
    for (int i = 0; i < dist && i + dist < p; ++i)
      step.pairs.emplace_back(i, i + dist);
    if (!visit(step)) return false;
  }
  return true;
}

bool emit_pairwise_alltoall(int p, double msize, const StepVisitor& visit) {
  if (p < 2) return true;
  const bool pow2 = (p & (p - 1)) == 0;
  CommStep step;
  step.msize = msize;
  for (int k = 1; k < p; ++k) {
    step.pairs.clear();
    if (pow2) {
      // XOR exchange: a perfect matching every step.
      for (int i = 0; i < p; ++i) {
        const int j = i ^ k;
        if (i < j) step.pairs.emplace_back(i, j);
      }
    } else {
      // Ring-shift exchange: rank i talks to (i + k) mod p; each unordered
      // pair is listed once per step, every rank appears twice.
      for (int i = 0; i < p; ++i) {
        const int j = (i + k) % p;
        if (i < j) step.pairs.emplace_back(i, j);
        // For even p at k == p/2, i and (i + k) pair up symmetrically; the
        // i < j filter already de-duplicates that case.
      }
    }
    if (!visit(step)) return false;
  }
  return true;
}

bool emit_ring(int p, double msize, const StepVisitor& visit) {
  if (p < 2) return true;
  CommStep step;
  step.msize = msize;
  step.repeat = p - 1;
  for (int i = 0; i < p; ++i) {
    const int j = (i + 1) % p;
    // For p == 2 the wrap-around would duplicate the (0,1) pair.
    if (p == 2 && i == 1) break;
    step.pairs.emplace_back(std::min(i, j), std::max(i, j));
  }
  return visit(step);
}

}  // namespace

bool for_each_schedule_step(Pattern pattern, int nprocs, double base_msize,
                            const std::function<bool(const CommStep&)>& visit) {
  COMMSCHED_ASSERT_MSG(nprocs >= 1, "nprocs must be positive");
  COMMSCHED_ASSERT_MSG(base_msize >= 0.0, "message size must be non-negative");
  switch (pattern) {
    case Pattern::kRecursiveDoubling:
      return emit_rd_like(nprocs, base_msize, /*vector_doubling=*/false,
                          visit);
    case Pattern::kRecursiveHalvingVD:
      return emit_rd_like(nprocs, base_msize, /*vector_doubling=*/true, visit);
    case Pattern::kBinomial:
      return emit_binomial(nprocs, base_msize, visit);
    case Pattern::kRing:
      return emit_ring(nprocs, base_msize, visit);
    case Pattern::kPairwiseAlltoall:
      return emit_pairwise_alltoall(nprocs, base_msize, visit);
  }
  COMMSCHED_ASSERT_MSG(false, "unknown pattern");
  return true;
}

CommSchedule make_schedule(Pattern pattern, int nprocs, double base_msize) {
  COMMSCHED_ASSERT_MSG(
      pattern != Pattern::kPairwiseAlltoall ||
          nprocs <= kMaxMaterializedAlltoallRanks,
      "materialized pairwise-alltoall schedules are O(p^2); capped at " +
          std::to_string(kMaxMaterializedAlltoallRanks) +
          " ranks (stream via for_each_schedule_step instead)");
  CommSchedule out;
  for_each_schedule_step(pattern, nprocs, base_msize,
                         [&out](const CommStep& step) {
                           out.push_back(step);
                           return true;
                         });
  return out;
}

double total_bytes(const CommSchedule& schedule) {
  double bytes = 0.0;
  for (const auto& step : schedule)
    bytes += static_cast<double>(step.pairs.size()) * step.msize *
             static_cast<double>(step.repeat);
  return bytes;
}

std::int64_t total_pair_messages(const CommSchedule& schedule) {
  std::int64_t n = 0;
  for (const auto& step : schedule)
    n += static_cast<std::int64_t>(step.pairs.size()) * step.repeat;
  return n;
}

}  // namespace commsched
