#include "collectives/schedule.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace commsched {

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kRecursiveDoubling: return "RD";
    case Pattern::kRecursiveHalvingVD: return "RHVD";
    case Pattern::kBinomial: return "Binomial";
    case Pattern::kRing: return "Ring";
    case Pattern::kPairwiseAlltoall: return "Alltoall";
  }
  return "?";
}

namespace {

int floor_log2(int x) {
  COMMSCHED_ASSERT(x >= 1);
  int l = 0;
  while ((1 << (l + 1)) <= x) ++l;
  return l;
}

// MPICH-style fold of p ranks onto a 2^floor(lg p) core.
//
// r = p - 2^floor(lg p) extra ranks exist. Ranks 0..2r-1 pair up
// (even, even+1); the even rank of each pair then sits out of the core
// phase. Core ranks are the odd ranks below 2r plus every rank >= 2r.
struct Fold {
  std::vector<std::int32_t> core;  // core_index -> original rank
  CommStep pre;                    // empty pairs when p is a power of two
};

Fold fold_to_pow2(int p, double msize) {
  const int lg = floor_log2(p);
  const int r = p - (1 << lg);
  Fold f;
  f.pre.msize = msize;
  for (int i = 0; i < r; ++i)
    f.pre.pairs.emplace_back(2 * i, 2 * i + 1);
  for (int i = 0; i < 2 * r; i += 2) f.core.push_back(i + 1);
  for (int i = 2 * r; i < p; ++i) f.core.push_back(i);
  // Keep core ranks in ascending original-rank order (they already are).
  COMMSCHED_ASSERT(static_cast<int>(f.core.size()) == (1 << lg));
  return f;
}

// Power-of-two recursive doubling: step k exchanges i <-> i ^ 2^k.
void append_rd_core(CommSchedule& out, const std::vector<std::int32_t>& core,
                    double msize) {
  const int q = static_cast<int>(core.size());
  if (q < 2) return;
  const int lg = floor_log2(q);
  for (int k = 0; k < lg; ++k) {
    CommStep step;
    step.msize = msize;
    const int dist = 1 << k;
    for (int i = 0; i < q; ++i) {
      const int j = i ^ dist;
      if (i < j) step.pairs.emplace_back(core[static_cast<std::size_t>(i)],
                                         core[static_cast<std::size_t>(j)]);
    }
    out.push_back(std::move(step));
  }
}

// Power-of-two recursive halving with vector doubling: the exchange distance
// halves each step (q/2, q/4, ..., 1) while the per-pair message doubles
// (m, 2m, ..., m*q/2). The heaviest exchanges are therefore between
// rank-adjacent processes — the structural reason balanced power-of-two
// allocations help this pattern the most (§6.1).
void append_rhvd_core(CommSchedule& out, const std::vector<std::int32_t>& core,
                      double msize) {
  const int q = static_cast<int>(core.size());
  if (q < 2) return;
  const int lg = floor_log2(q);
  for (int k = 0; k < lg; ++k) {
    CommStep step;
    step.msize = msize * static_cast<double>(1 << k);
    const int dist = q >> (k + 1);
    for (int i = 0; i < q; ++i) {
      const int j = i ^ dist;
      if (i < j) step.pairs.emplace_back(core[static_cast<std::size_t>(i)],
                                         core[static_cast<std::size_t>(j)]);
    }
    out.push_back(std::move(step));
  }
}

CommSchedule make_rd_like(int p, double msize, bool vector_doubling) {
  CommSchedule out;
  if (p < 2) return out;
  Fold f = fold_to_pow2(p, msize);
  const bool folded = !f.pre.pairs.empty();
  if (folded) out.push_back(f.pre);
  if (vector_doubling)
    append_rhvd_core(out, f.core, msize);
  else
    append_rd_core(out, f.core, msize);
  if (folded) {
    // Mirror step: core partners hand the (possibly grown) result back.
    CommStep post = f.pre;
    post.msize = vector_doubling
                     ? msize * static_cast<double>(f.core.size())
                     : msize;
    out.push_back(std::move(post));
  }
  return out;
}

CommSchedule make_binomial(int p, double msize) {
  CommSchedule out;
  if (p < 2) return out;
  // Binomial broadcast tree rooted at 0: at step k every rank i < 2^k with
  // i + 2^k < p sends to i + 2^k.
  for (int k = 0; (1 << k) < p; ++k) {
    CommStep step;
    step.msize = msize;
    const int dist = 1 << k;
    for (int i = 0; i < dist && i + dist < p; ++i)
      step.pairs.emplace_back(i, i + dist);
    out.push_back(std::move(step));
  }
  return out;
}

CommSchedule make_pairwise_alltoall(int p, double msize) {
  COMMSCHED_ASSERT_MSG(p <= 1024,
                       "pairwise alltoall schedules are O(p^2); capped at "
                       "1024 ranks");
  CommSchedule out;
  if (p < 2) return out;
  const bool pow2 = (p & (p - 1)) == 0;
  for (int k = 1; k < p; ++k) {
    CommStep step;
    step.msize = msize;
    if (pow2) {
      // XOR exchange: a perfect matching every step.
      for (int i = 0; i < p; ++i) {
        const int j = i ^ k;
        if (i < j) step.pairs.emplace_back(i, j);
      }
    } else {
      // Ring-shift exchange: rank i talks to (i + k) mod p; each unordered
      // pair is listed once per step, every rank appears twice.
      for (int i = 0; i < p; ++i) {
        const int j = (i + k) % p;
        if (i < j) step.pairs.emplace_back(i, j);
        // For even p at k == p/2, i and (i + k) pair up symmetrically; the
        // i < j filter already de-duplicates that case.
      }
    }
    out.push_back(std::move(step));
  }
  return out;
}

CommSchedule make_ring(int p, double msize) {
  CommSchedule out;
  if (p < 2) return out;
  CommStep step;
  step.msize = msize;
  step.repeat = p - 1;
  for (int i = 0; i < p; ++i) {
    const int j = (i + 1) % p;
    // For p == 2 the wrap-around would duplicate the (0,1) pair.
    if (p == 2 && i == 1) break;
    step.pairs.emplace_back(std::min(i, j), std::max(i, j));
  }
  out.push_back(std::move(step));
  return out;
}

}  // namespace

CommSchedule make_schedule(Pattern pattern, int nprocs, double base_msize) {
  COMMSCHED_ASSERT_MSG(nprocs >= 1, "nprocs must be positive");
  COMMSCHED_ASSERT_MSG(base_msize >= 0.0, "message size must be non-negative");
  switch (pattern) {
    case Pattern::kRecursiveDoubling:
      return make_rd_like(nprocs, base_msize, /*vector_doubling=*/false);
    case Pattern::kRecursiveHalvingVD:
      return make_rd_like(nprocs, base_msize, /*vector_doubling=*/true);
    case Pattern::kBinomial:
      return make_binomial(nprocs, base_msize);
    case Pattern::kRing:
      return make_ring(nprocs, base_msize);
    case Pattern::kPairwiseAlltoall:
      return make_pairwise_alltoall(nprocs, base_msize);
  }
  COMMSCHED_ASSERT_MSG(false, "unknown pattern");
  return {};
}

double total_bytes(const CommSchedule& schedule) {
  double bytes = 0.0;
  for (const auto& step : schedule)
    bytes += static_cast<double>(step.pairs.size()) * step.msize *
             static_cast<double>(step.repeat);
  return bytes;
}

std::int64_t total_pair_messages(const CommSchedule& schedule) {
  std::int64_t n = 0;
  for (const auto& step : schedule)
    n += static_cast<std::int64_t>(step.pairs.size()) * step.repeat;
  return n;
}

const CommSchedule& ScheduleCache::get(Pattern pattern, int nprocs) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(pattern) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(nprocs));
  const auto it = entries_.find(key);
  if (it != entries_.end()) return it->second;
  return entries_.emplace(key, make_schedule(pattern, nprocs, base_msize_))
      .first->second;
}

}  // namespace commsched
