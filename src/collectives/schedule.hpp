// Step-wise models of the MPI collective algorithms the paper optimizes for
// (§3.3): recursive doubling (RD), recursive halving with vector doubling
// (RHVD), binomial tree, and — from the paper's future-work list — ring.
//
// A schedule is the sequence of communication steps the algorithm performs;
// each step lists the rank pairs that exchange simultaneously and the
// per-pair message size at that step.  The cost model (Eq. 6) consumes
// schedules directly: "our strategies consider all stages of algorithms
// (RD, RHVD, Binomial) and allocate based on the costliest communication
// step/stage".
//
// Schedules are generated step-by-step through for_each_schedule_step(); the
// materialized CommSchedule form produced by make_schedule() is a convenience
// built on top of it. Consumers that only need one pass over the steps (the
// leaf-pair profile builder in comm_cache.cpp, the auditor's sampled
// re-derivation) stream instead of materializing, which keeps O(p²)-pair
// patterns affordable at large p.
//
// Non-power-of-two process counts use the MPICH construction (Thakur et al.):
// fold the r = p - 2^floor(lg p) excess ranks into a power-of-two core with a
// pre-exchange step, run the power-of-two algorithm on the core, and mirror
// the fold in a post step.  The binomial tree and ring handle any p natively.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace commsched {

/// The communication patterns studied in the paper (+ ring, §7 future work).
enum class Pattern : std::uint8_t {
  kRecursiveDoubling,   ///< e.g. MPI_Allreduce (Figure 3)
  kRecursiveHalvingVD,  ///< e.g. MPI_Allgather (vector doubles per step)
  kBinomial,            ///< e.g. MPI_Bcast / MPI_Reduce
  kRing,                ///< future-work pattern (neighbor exchange, p-1 rounds)
  /// MPI_Alltoall's pairwise-exchange algorithm (the FFTW/CPMD-style
  /// workload the paper's §1/§3.3 cite). p-1 steps; at step k rank i
  /// exchanges with i XOR k (power-of-two p, perfect matching per step) or
  /// with i±k mod p otherwise. Materialized schedules are O(p^2) pairs, so
  /// make_schedule() caps this pattern at kMaxMaterializedAlltoallRanks;
  /// for_each_schedule_step() streams it at any p.
  kPairwiseAlltoall,
};

const char* pattern_name(Pattern p);

/// Largest rank count make_schedule() will materialize for
/// kPairwiseAlltoall (O(p^2) pairs ≈ 8M pairs / 134 MB at this cap). The
/// streaming path has no cap.
inline constexpr int kMaxMaterializedAlltoallRanks = 4096;

/// One synchronized step of a collective: the rank pairs that communicate in
/// parallel, the per-pair message size (bytes), and how many times the step
/// repeats back-to-back (used to model the ring's p-1 identical rounds
/// without materializing them all).
struct CommStep {
  std::vector<std::pair<std::int32_t, std::int32_t>> pairs;
  double msize = 0.0;
  int repeat = 1;
};

using CommSchedule = std::vector<CommStep>;

/// Visit the steps of `pattern` over ranks 0..nprocs-1 in schedule order
/// without materializing the whole schedule. The CommStep passed to `visit`
/// is scratch owned by the generator and only valid for the duration of the
/// callback. Return false from `visit` to stop early; the function returns
/// false iff the visitor stopped the walk. nprocs >= 1; nprocs == 1 visits
/// nothing.
bool for_each_schedule_step(Pattern pattern, int nprocs, double base_msize,
                            const std::function<bool(const CommStep&)>& visit);

/// Build the schedule of `pattern` over ranks 0..nprocs-1 with base message
/// size `base_msize` bytes. nprocs >= 1; nprocs == 1 yields an empty
/// schedule.
CommSchedule make_schedule(Pattern pattern, int nprocs, double base_msize);

/// Total bytes moved by the schedule (sum over steps of pairs * msize *
/// repeat). The paper's observation that RHVD is "more communication-heavy"
/// than RD is visible here: RHVD moves O(p * msize) versus RD's
/// O(log p * msize) per rank.
double total_bytes(const CommSchedule& schedule);

/// Total number of pair-communications (pairs summed over steps, with
/// repeats).
std::int64_t total_pair_messages(const CommSchedule& schedule);

}  // namespace commsched
