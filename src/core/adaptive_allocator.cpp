#include "core/adaptive_allocator.hpp"

namespace commsched {

AdaptiveAllocator::AdaptiveAllocator(CostOptions cost_options)
    : cost_options_(cost_options), schedule_cache_(1 << 20) {}

const CostModel& AdaptiveAllocator::cost_model_for(const Tree& tree) const {
  if (!cost_model_ || &cost_model_->tree() != &tree)
    cost_model_.emplace(tree, cost_options_);
  return *cost_model_;
}

std::optional<std::vector<NodeId>> AdaptiveAllocator::select(
    const ClusterState& state, const AllocationRequest& request) const {
  auto greedy_pick = greedy_.select(state, request);
  auto balanced_pick = balanced_.select(state, request);
  if (!greedy_pick && !balanced_pick) return std::nullopt;
  if (!greedy_pick || !balanced_pick) {
    auto& only = greedy_pick ? greedy_pick : balanced_pick;
    last_chose_balanced_ = !greedy_pick;
    last_cost_ = 0.0;
    return only;
  }

  const CostModel& model = cost_model_for(state.tree());
  const CommSchedule& schedule =
      schedule_cache_.get(request.pattern, request.num_nodes);
  const double greedy_cost = model.candidate_cost(
      state, *greedy_pick, request.comm_intensive, schedule);
  const double balanced_cost = model.candidate_cost(
      state, *balanced_pick, request.comm_intensive, schedule);

  // Lower cost wins for communication-intensive jobs; higher for compute
  // jobs (they are insensitive, and the cheap placement stays available).
  // Ties go to balanced, whose power-of-two structure also helps later jobs.
  bool choose_balanced;
  if (request.comm_intensive)
    choose_balanced = balanced_cost <= greedy_cost;
  else
    choose_balanced = balanced_cost >= greedy_cost;

  last_chose_balanced_ = choose_balanced;
  last_cost_ = choose_balanced ? balanced_cost : greedy_cost;
  return choose_balanced ? std::move(balanced_pick) : std::move(greedy_pick);
}

}  // namespace commsched
