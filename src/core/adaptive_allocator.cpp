#include "core/adaptive_allocator.hpp"

#include <utility>

#include "core/allocator_common.hpp"

namespace commsched {

AdaptiveAllocator::AdaptiveAllocator(CostOptions cost_options,
                                     std::shared_ptr<CommCache> cache)
    : cost_options_(cost_options), cache_(std::move(cache)) {
  if (!cache_) cache_ = std::make_shared<CommCache>(double{1 << 20});
}

std::optional<std::vector<NodeId>> AdaptiveAllocator::select(
    const ClusterState& state, const AllocationRequest& request) const {
  auto greedy_pick = greedy_.select(state, request);
  auto balanced_pick = balanced_.select(state, request);
  if (!greedy_pick && !balanced_pick) return std::nullopt;
  if (!greedy_pick || !balanced_pick) {
    auto& only = greedy_pick ? greedy_pick : balanced_pick;
    last_chose_balanced_ = !greedy_pick;
    last_cost_ = 0.0;
    return only;
  }

  const CostModel model(state.tree(), cost_options_);
  const double greedy_cost =
      profiled_candidate_cost(model, *cache_, state, *greedy_pick,
                              request.comm_intensive, request.pattern,
                              workspace_);
  const double balanced_cost =
      profiled_candidate_cost(model, *cache_, state, *balanced_pick,
                              request.comm_intensive, request.pattern,
                              workspace_);

  // Lower cost wins for communication-intensive jobs; higher for compute
  // jobs (they are insensitive, and the cheap placement stays available).
  // Ties go to balanced, whose power-of-two structure also helps later jobs.
  bool choose_balanced;
  if (request.comm_intensive)
    choose_balanced = balanced_cost <= greedy_cost;
  else
    choose_balanced = balanced_cost >= greedy_cost;

  last_chose_balanced_ = choose_balanced;
  last_cost_ = choose_balanced ? balanced_cost : greedy_cost;
  return choose_balanced ? std::move(balanced_pick) : std::move(greedy_pick);
}

}  // namespace commsched
