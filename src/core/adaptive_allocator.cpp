#include "core/adaptive_allocator.hpp"

#include <utility>

#include "core/allocator_common.hpp"

namespace commsched {

AdaptiveAllocator::AdaptiveAllocator(CostOptions cost_options,
                                     std::shared_ptr<CommCache> cache)
    : cost_options_(cost_options), cache_(std::move(cache)) {
  if (!cache_) cache_ = std::make_shared<CommCache>(double{1 << 20});
}

// hot-path: no-alloc
bool AdaptiveAllocator::select_into(const ClusterState& state,
                                    const AllocationRequest& request,
                                    std::vector<NodeId>& out) const {
  const bool have_greedy = greedy_.select_into(state, request, greedy_pick_);
  const bool have_balanced =
      balanced_.select_into(state, request, balanced_pick_);
  if (!have_greedy && !have_balanced) {
    out.clear();
    return false;
  }
  if (!have_greedy || !have_balanced) {
    last_chose_balanced_ = !have_greedy;
    last_cost_ = 0.0;
    out = have_greedy ? greedy_pick_ : balanced_pick_;
    return true;
  }

  const CostModel model(state.tree(), cost_options_);
  const double greedy_cost =
      profiled_candidate_cost(model, *cache_, state, greedy_pick_,
                              request.comm_intensive, request.pattern,
                              workspace_);
  const double balanced_cost =
      profiled_candidate_cost(model, *cache_, state, balanced_pick_,
                              request.comm_intensive, request.pattern,
                              workspace_);

  // Lower cost wins for communication-intensive jobs; higher for compute
  // jobs (they are insensitive, and the cheap placement stays available).
  // Ties go to balanced, whose power-of-two structure also helps later jobs.
  bool choose_balanced;
  if (request.comm_intensive)
    choose_balanced = balanced_cost <= greedy_cost;
  else
    choose_balanced = balanced_cost >= greedy_cost;

  last_chose_balanced_ = choose_balanced;
  last_cost_ = choose_balanced ? balanced_cost : greedy_cost;
  out = choose_balanced ? balanced_pick_ : greedy_pick_;
  return true;
}

}  // namespace commsched
