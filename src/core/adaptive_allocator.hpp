// Adaptive allocation — the paper's §4.3.
//
// Runs both the greedy and the balanced policy hypothetically, prices each
// candidate allocation with the effective-hops cost model (Eq. 6) against
// the job's collective schedule, and commits to the cheaper one for
// communication-intensive jobs (the pricier one for compute-intensive jobs,
// which keeps the better placement free for communicating workloads).
#pragma once

#include <memory>
#include <optional>

#include "core/allocator.hpp"
#include "core/balanced_allocator.hpp"
#include "core/cost_model.hpp"
#include "core/greedy_allocator.hpp"

namespace commsched {

class AdaptiveAllocator final : public Allocator {
 public:
  /// `cost_options` selects the candidate-pricing variant (Eq. 6 hops by
  /// default; hop-bytes for the ablation in bench_ablation).
  explicit AdaptiveAllocator(CostOptions cost_options = {});

  const char* name() const noexcept override { return "adaptive"; }

  std::optional<std::vector<NodeId>> select(
      const ClusterState& state, const AllocationRequest& request) const override;

  /// Cost of the candidate chosen by the last select() call, and whether
  /// balanced won (diagnostics for the benches; meaningful only directly
  /// after a successful select()).
  double last_cost() const noexcept { return last_cost_; }
  bool last_chose_balanced() const noexcept { return last_chose_balanced_; }

 private:
  /// The CostModel bound to `tree`, built on first use and kept across
  /// select() calls so its leaf-pair scratch buffers are reused (rebuilt
  /// only if the allocator is pointed at a different topology).
  const CostModel& cost_model_for(const Tree& tree) const;

  GreedyAllocator greedy_;
  BalancedAllocator balanced_;
  CostOptions cost_options_;
  mutable std::optional<CostModel> cost_model_;
  // Schedules depend only on (pattern, nprocs); memoized across calls.
  mutable ScheduleCache schedule_cache_;
  mutable double last_cost_ = 0.0;
  mutable bool last_chose_balanced_ = false;
};

}  // namespace commsched
