// Adaptive allocation — the paper's §4.3.
//
// Runs both the greedy and the balanced policy hypothetically, prices each
// candidate allocation with the effective-hops cost model (Eq. 6) against
// the job's collective schedule, and commits to the cheaper one for
// communication-intensive jobs (the pricier one for compute-intensive jobs,
// which keeps the better placement free for communicating workloads).
//
// Candidate pricing goes through the shared CommCache's canonical-shape
// profiles (allocator_common's profiled_candidate_cost); the simulator hands
// every policy and pricing model of one run the same cache instance.
#pragma once

#include <memory>
#include <optional>

#include "collectives/comm_cache.hpp"
#include "core/allocator.hpp"
#include "core/balanced_allocator.hpp"
#include "core/cost_model.hpp"
#include "core/greedy_allocator.hpp"

namespace commsched {

class AdaptiveAllocator final : public Allocator {
 public:
  /// `cost_options` selects the candidate-pricing variant (Eq. 6 hops by
  /// default; hop-bytes for the ablation in bench_ablation). `cache` is the
  /// run-wide schedule/profile cache; when null the allocator owns a private
  /// one (standalone construction in tests/benches).
  explicit AdaptiveAllocator(CostOptions cost_options = {},
                             std::shared_ptr<CommCache> cache = nullptr);

  const char* name() const noexcept override { return "adaptive"; }

  bool select_into(const ClusterState& state,
                   const AllocationRequest& request,
                   std::vector<NodeId>& out) const override;

  /// Cost of the candidate chosen by the last select() call, and whether
  /// balanced won (diagnostics for the benches; meaningful only directly
  /// after a successful select()).
  double last_cost() const noexcept { return last_cost_; }
  bool last_chose_balanced() const noexcept { return last_chose_balanced_; }

 private:
  GreedyAllocator greedy_;
  BalancedAllocator balanced_;
  CostOptions cost_options_;
  std::shared_ptr<CommCache> cache_;
  // workspace: cost-kernel scratch reused across const select() calls;
  // observable state is untouched (CostModel itself is stateless).
  mutable CostWorkspace workspace_;
  // workspace: post-hoc diagnostics of the last select(), written once per
  // call and only read back through the accessors above.
  mutable double last_cost_ = 0.0;
  // workspace: see last_cost_.
  mutable bool last_chose_balanced_ = false;
  // workspace: candidate buffers reused across const select_into() calls;
  // overwritten by the nested policies on entry, never observable.
  mutable std::vector<NodeId> greedy_pick_;
  // workspace: see greedy_pick_.
  mutable std::vector<NodeId> balanced_pick_;
};

}  // namespace commsched
