// Node-allocation interface (paper §4).
//
// An Allocator is a pure selection policy: given the current cluster state
// and a job's request it returns the ordered node set the job should run on,
// without mutating the state — the scheduler commits the allocation.  Rank r
// of the job runs on the r-th returned node (SLURM block distribution), which
// is what ties the returned order to the collective schedules priced by the
// cost model.
#pragma once

#include <optional>
#include <vector>

#include "cluster/state.hpp"
#include "collectives/schedule.hpp"
#include "topology/tree.hpp"

namespace commsched {

/// Everything an allocation decision may consider about a job. The paper
/// extends SLURM's (job, node count) request with the communication class
/// and the dominant collective's algorithm (§1, §4).
struct AllocationRequest {
  JobId job = kInvalidJob;
  int num_nodes = 0;
  bool comm_intensive = false;
  /// Algorithm of the job's most time-consuming MPI collective (§3.3).
  Pattern pattern = Pattern::kRecursiveDoubling;
  /// Base message size in bytes (used by hop-byte cost variants).
  double msize = 1 << 20;

  // --- §7 I/O-aware extension -------------------------------------------
  bool io_intensive = false;
  /// T_comm / T and T_io / T; only the I/O-aware policy weighs candidates
  /// by them (the paper's policies use the class flags alone).
  double comm_fraction = 0.5;
  double io_fraction = 0.0;
};

/// Abstract node-selection policy.
class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Human-readable policy name ("default", "greedy", ...).
  virtual const char* name() const noexcept = 0;

  /// Select request.num_nodes free nodes into `out` (cleared first) and
  /// return true; return false, leaving `out` empty, when the cluster cannot
  /// satisfy the request right now (the job must wait). Never mutates
  /// `state`; never writes an occupied or duplicated node. This is the
  /// simulator's hot path: implementations reuse `out`'s capacity and keep
  /// any internal scratch in mutable members, so concurrent calls on one
  /// instance are not safe (each campaign cell owns its allocators).
  virtual bool select_into(const ClusterState& state,
                           const AllocationRequest& request,
                           std::vector<NodeId>& out) const = 0;

  /// Convenience wrapper over select_into() returning a fresh vector.
  std::optional<std::vector<NodeId>> select(
      const ClusterState& state, const AllocationRequest& request) const {
    std::vector<NodeId> out;
    if (!select_into(state, request, out)) return std::nullopt;
    return out;
  }
};

}  // namespace commsched
