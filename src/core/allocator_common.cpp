#include "core/allocator_common.hpp"

#include "util/assert.hpp"

namespace commsched {

// hot-path: no-alloc
SwitchId find_lowest_level_switch(const ClusterState& state, int num_nodes) {
  COMMSCHED_ASSERT_GE_MSG(num_nodes, 1, "request must be positive");
  const Tree& tree = state.tree();
  for (int lvl = 1; lvl <= tree.depth(); ++lvl) {
    SwitchId best = kInvalidSwitch;
    for (const SwitchId s : tree.switches_at_level(lvl)) {
      const int free = state.free_under(s);
      if (free < num_nodes) continue;
      if (best == kInvalidSwitch || free < state.free_under(best)) best = s;
    }
    if (best != kInvalidSwitch) return best;
  }
  return kInvalidSwitch;
}

// hot-path: no-alloc
void take_free_nodes(const ClusterState& state, SwitchId leaf, int count,
                     std::vector<NodeId>& out) {
  COMMSCHED_ASSERT_GE(count, 0);
  if (count == 0) return;
  // The per-leaf free index lists the leaf's free nodes ascending, which is
  // exactly the order the old is_free() scan over nodes_of_leaf() produced.
  const std::span<const NodeId> free = state.free_leaf_span(leaf);
  COMMSCHED_ASSERT_MSG(static_cast<std::size_t>(count) <= free.size(),
                       "leaf has fewer free nodes than requested");
  // contract-trusted: no-alloc: caller scratch reuses reserved capacity
  out.insert(out.end(), free.begin(), free.begin() + count);
}

// hot-path: no-alloc
double communication_ratio(const ClusterState& state, SwitchId leaf) {
  const double nodes = state.leaf_nodes(leaf);
  const double busy = state.leaf_busy(leaf);
  const double comm = state.leaf_comm(leaf);
  const double contention_term = busy > 0.0 ? comm / busy : 0.0;
  return contention_term + busy / nodes;
}

// hot-path: no-alloc
double profiled_candidate_cost(const CostModel& model, CommCache& cache,
                               const ClusterState& state,
                               std::span<const NodeId> nodes,
                               bool comm_intensive, Pattern pattern,
                               CostWorkspace& workspace) {
  const ShapeKey shape = make_shape_key(state.tree(), nodes);
  const LeafCommProfile& profile =
      cache.profile(pattern, /*ranks_per_node=*/1, shape);
  return model.candidate_cost(state, nodes, comm_intensive, profile,
                              workspace);
}

}  // namespace commsched
