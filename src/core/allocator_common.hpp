// Shared building blocks of the four allocation policies.
#pragma once

#include <span>
#include <vector>

#include "cluster/state.hpp"
#include "collectives/comm_cache.hpp"
#include "core/cost_model.hpp"
#include "topology/tree.hpp"

namespace commsched {

/// SLURM topology/tree search (§3.1): the lowest-level switch whose subtree
/// holds at least `num_nodes` free nodes; among equals at that level, the one
/// with the fewest free nodes (best-fit), ties broken by switch id.
/// Returns kInvalidSwitch when even the root cannot satisfy the request.
SwitchId find_lowest_level_switch(const ClusterState& state, int num_nodes);

/// Append the first `count` free nodes of `leaf` (ascending node id) to
/// `out`. Requires leaf_free(leaf) >= count.
void take_free_nodes(const ClusterState& state, SwitchId leaf, int count,
                     std::vector<NodeId>& out);

/// Paper Eq. 1: communication ratio of a leaf switch,
///   L_comm / L_busy + L_busy / L_nodes.
/// An idle leaf (L_busy == 0) has no communicating jobs, so the first term
/// is taken as 0 (the paper leaves the 0/0 case implicit).
double communication_ratio(const ClusterState& state, SwitchId leaf);

/// Price a candidate allocation through the shared profile cache: derive the
/// allocation's canonical ShapeKey, look up (or build) the leaf-comm profile
/// for `pattern` at one rank per node, and evaluate Eq. 6 through the
/// profile kernel. The common pricing path of the adaptive and I/O-aware
/// policies and of run_individual; bit-for-bit equal to
/// model.candidate_cost(state, nodes, comm_intensive, schedule).
double profiled_candidate_cost(const CostModel& model, CommCache& cache,
                               const ClusterState& state,
                               std::span<const NodeId> nodes,
                               bool comm_intensive, Pattern pattern,
                               CostWorkspace& workspace);

}  // namespace commsched
