// Shared building blocks of the four allocation policies.
#pragma once

#include <vector>

#include "cluster/state.hpp"
#include "topology/tree.hpp"

namespace commsched {

/// SLURM topology/tree search (§3.1): the lowest-level switch whose subtree
/// holds at least `num_nodes` free nodes; among equals at that level, the one
/// with the fewest free nodes (best-fit), ties broken by switch id.
/// Returns kInvalidSwitch when even the root cannot satisfy the request.
SwitchId find_lowest_level_switch(const ClusterState& state, int num_nodes);

/// Append the first `count` free nodes of `leaf` (ascending node id) to
/// `out`. Requires leaf_free(leaf) >= count.
void take_free_nodes(const ClusterState& state, SwitchId leaf, int count,
                     std::vector<NodeId>& out);

/// Paper Eq. 1: communication ratio of a leaf switch,
///   L_comm / L_busy + L_busy / L_nodes.
/// An idle leaf (L_busy == 0) has no communicating jobs, so the first term
/// is taken as 0 (the paper leaves the 0/0 case implicit).
double communication_ratio(const ClusterState& state, SwitchId leaf);

}  // namespace commsched
