#include "core/allocator_factory.hpp"

#include <cstdlib>
#include <utility>

#include "core/adaptive_allocator.hpp"
#include "core/balanced_allocator.hpp"
#include "core/default_allocator.hpp"
#include "core/exclusive_allocator.hpp"
#include "core/greedy_allocator.hpp"
#include "core/io_aware_allocator.hpp"
#include "util/assert.hpp"

namespace commsched {

const char* allocator_kind_name(AllocatorKind kind) {
  switch (kind) {
    case AllocatorKind::kDefault: return "default";
    case AllocatorKind::kGreedy: return "greedy";
    case AllocatorKind::kBalanced: return "balanced";
    case AllocatorKind::kAdaptive: return "adaptive";
    case AllocatorKind::kExclusive: return "exclusive";
    case AllocatorKind::kIoAware: return "io_aware";
    case AllocatorKind::kSa: return "sa";
  }
  return "?";
}

std::optional<AllocatorKind> allocator_kind_from_string(const std::string& s) {
  for (const AllocatorKind kind : kAllRegisteredAllocatorKinds)
    if (s == allocator_kind_name(kind)) return kind;
  return std::nullopt;
}

std::string allocator_kind_names() {
  std::string names;
  for (const AllocatorKind kind : kAllRegisteredAllocatorKinds) {
    if (!names.empty()) names += '/';
    names += allocator_kind_name(kind);
  }
  return names;
}

std::unique_ptr<Allocator> make_allocator(AllocatorKind kind,
                                          CostOptions cost_options,
                                          std::shared_ptr<CommCache> cache,
                                          const SaOptions& sa) {
  switch (kind) {
    case AllocatorKind::kDefault:
      return std::make_unique<DefaultAllocator>();
    case AllocatorKind::kGreedy:
      return std::make_unique<GreedyAllocator>();
    case AllocatorKind::kBalanced:
      return std::make_unique<BalancedAllocator>();
    case AllocatorKind::kAdaptive:
      return std::make_unique<AdaptiveAllocator>(cost_options,
                                                 std::move(cache));
    case AllocatorKind::kExclusive:
      return std::make_unique<ExclusiveAllocator>();
    case AllocatorKind::kIoAware:
      return std::make_unique<IoAwareAllocator>(cost_options,
                                                std::move(cache));
    case AllocatorKind::kSa:
      return std::make_unique<SaAllocator>(cost_options, sa,
                                           std::move(cache));
  }
  COMMSCHED_ASSERT_MSG(false, "unknown allocator kind");
  return nullptr;
}

AllocatorKind allocator_kind_from_env() {
  const char* value = std::getenv("JOBAWARE");
  if (value == nullptr || *value == '\0') return AllocatorKind::kDefault;
  const std::string s(value);
  if (s == "1") return AllocatorKind::kAdaptive;
  const auto kind = allocator_kind_from_string(s);
  COMMSCHED_ASSERT_MSG(kind.has_value(),
                       "JOBAWARE must be unset, 1, or one of " +
                           allocator_kind_names() + " (got '" + s + "')");
  return *kind;
}

}  // namespace commsched
