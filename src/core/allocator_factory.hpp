// Policy selection, mirroring the paper's JOBAWARE environment switch (§5.2):
// when JOBAWARE is set, SLURM runs the proposed algorithm named by its value;
// unset, it runs the stock allocator.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "collectives/comm_cache.hpp"
#include "core/allocator.hpp"
#include "core/cost_model.hpp"
#include "core/sa_allocator.hpp"

namespace commsched {

enum class AllocatorKind : int {
  kDefault = 0,
  kGreedy = 1,
  kBalanced = 2,
  kAdaptive = 3,
  /// Related-work baseline (§2, Pollard et al.): interference-free
  /// whole-switch allocation. Not part of the paper's policy set, so it is
  /// deliberately absent from kAllAllocatorKinds.
  kExclusive = 4,
  /// §7 future work: combines the communication cost model with the I/O
  /// contention model. Also outside kAllAllocatorKinds.
  kIoAware = 5,
  /// Search-based extension (DESIGN.md "Delta-cost evaluation & search
  /// allocators"): greedy/balanced seeding + simulated annealing over slot
  /// moves. Outside kAllAllocatorKinds (not a paper policy).
  kSa = 6,
};

/// The paper's four policies (Tables 3-4, Figures 6-9 iterate over these).
inline constexpr AllocatorKind kAllAllocatorKinds[] = {
    AllocatorKind::kDefault, AllocatorKind::kGreedy, AllocatorKind::kBalanced,
    AllocatorKind::kAdaptive};

/// Every registered policy, paper and extensions alike — the source of truth
/// for name listings and exhaustiveness tests.
inline constexpr AllocatorKind kAllRegisteredAllocatorKinds[] = {
    AllocatorKind::kDefault,   AllocatorKind::kGreedy,
    AllocatorKind::kBalanced,  AllocatorKind::kAdaptive,
    AllocatorKind::kExclusive, AllocatorKind::kIoAware,
    AllocatorKind::kSa};

const char* allocator_kind_name(AllocatorKind kind);

/// Parse a registered policy name, e.g. "default" / "adaptive" / "sa"
/// (case-sensitive; the full list is allocator_kind_names()).
std::optional<AllocatorKind> allocator_kind_from_string(const std::string& s);

/// Comma-separated list of every registered policy name (for error
/// messages; derived from kAllRegisteredAllocatorKinds).
std::string allocator_kind_names();

/// Instantiate a policy. `cost_options` only affects the pricing policies
/// (adaptive, I/O-aware, sa); `sa` only the sa policy. `cache` is the
/// run-wide schedule/profile cache those policies should share with their
/// caller (e.g. the simulator); when null, pricing policies create a
/// private one.
std::unique_ptr<Allocator> make_allocator(
    AllocatorKind kind, CostOptions cost_options = {},
    std::shared_ptr<CommCache> cache = nullptr, const SaOptions& sa = {});

/// The paper's JOBAWARE switch: reads the JOBAWARE environment variable.
/// Unset or empty -> kDefault; "1" -> kAdaptive (the paper's best policy);
/// otherwise the named policy. Throws InvariantError on unknown names.
AllocatorKind allocator_kind_from_env();

}  // namespace commsched
