#include "core/balanced_allocator.hpp"

#include <algorithm>

#include "core/allocator_common.hpp"
#include "util/assert.hpp"

namespace commsched {

// hot-path: no-alloc
bool BalancedAllocator::select_into(const ClusterState& state,
                                    const AllocationRequest& request,
                                    std::vector<NodeId>& out) const {
  out.clear();
  const SwitchId top = find_lowest_level_switch(state, request.num_nodes);
  if (top == kInvalidSwitch) return false;

  // contract-trusted: no-alloc: caller scratch reuses reserved capacity
  out.reserve(static_cast<std::size_t>(request.num_nodes));
  // Algorithm 2 lines 3-5.
  if (state.tree().is_leaf(top)) {
    take_free_nodes(state, top, request.num_nodes, out);
    return true;
  }

  auto& leaf_order = leaf_order_;
  leaf_order.clear();
  for (const SwitchId l : state.tree().leaves_under(top))
    // contract-trusted: no-alloc: member scratch reuses capacity across calls
    if (state.leaf_free(l) > 0) leaf_order.push_back(l);

  if (request.comm_intensive) {
    // Lines 9-10: leaves in decreasing free-node order.
    std::stable_sort(leaf_order.begin(), leaf_order.end(),
                     [&](SwitchId a, SwitchId b) {
                       const int fa = state.leaf_free(a);
                       const int fb = state.leaf_free(b);
                       if (fa != fb) return fa > fb;
                       return a < b;
                     });

    // Per-leaf cursors over the zero-copy free spans (select never mutates
    // the state, so the spans stay valid), so the top-up pass cannot
    // re-take nodes granted in the power-of-two pass.
    auto& cursor = cursor_;
    // contract-trusted: no-alloc: member scratch reuses capacity across calls
    cursor.assign(leaf_order.size(), 0);

    // Lines 12-21: halve the chunk size S until it fits each leaf; allocate
    // the largest power of two the leaf can hold. S persists across leaves
    // (the Table 2 example: 512 -> 128,128,64,64,64,32,32).
    int remaining = request.num_nodes;
    int chunk = request.num_nodes;
    for (std::size_t li = 0; li < leaf_order.size() && remaining > 0; ++li) {
      const std::span<const NodeId> free_nodes =
          state.free_leaf_span(leaf_order[li]);
      const int free = static_cast<int>(free_nodes.size());
      while (chunk > free) chunk /= 2;
      if (chunk == 0) break;  // leaf smaller than any power-of-two chunk
      const int take = std::min(chunk, remaining);
      // contract-trusted: no-alloc: caller scratch reuses reserved capacity
      for (int t = 0; t < take; ++t)
        out.push_back(free_nodes[cursor[li]++]);
      remaining -= take;
    }

    // Lines 22-27: top up from the leftover free nodes, reverse order.
    if (remaining > 0) {
      for (std::size_t li = leaf_order.size(); li-- > 0 && remaining > 0;) {
        const std::span<const NodeId> free_nodes =
            state.free_leaf_span(leaf_order[li]);
        const int avail =
            static_cast<int>(free_nodes.size() - cursor[li]);
        const int take = std::min(avail, remaining);
        // contract-trusted: no-alloc: caller scratch reuses reserved capacity
        for (int t = 0; t < take; ++t)
          out.push_back(free_nodes[cursor[li]++]);
        remaining -= take;
      }
    }
    COMMSCHED_ASSERT_EQ_MSG(remaining, 0,
                            "lowest-level switch reported enough free nodes "
                            "but leaves did not provide them");
    return true;
  }

  // Lines 30-35: compute-intensive jobs fill leaves in increasing free-node
  // order, preserving big free blocks for communication-intensive jobs.
  std::stable_sort(leaf_order.begin(), leaf_order.end(),
                   [&](SwitchId a, SwitchId b) {
                     const int fa = state.leaf_free(a);
                     const int fb = state.leaf_free(b);
                     if (fa != fb) return fa < fb;
                     return a < b;
                   });
  int remaining = request.num_nodes;
  for (const SwitchId leaf : leaf_order) {
    const int take = std::min(state.leaf_free(leaf), remaining);
    take_free_nodes(state, leaf, take, out);
    remaining -= take;
    if (remaining == 0) return true;
  }
  COMMSCHED_ASSERT_MSG(false,
                       "lowest-level switch reported enough free nodes but "
                       "leaves did not provide them");
  return false;
}

}  // namespace commsched
