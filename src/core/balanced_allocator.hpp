// Balanced allocation — the paper's Algorithm 2 (§4.2).
//
// For communication-intensive jobs, allocates nodes in powers of two per
// leaf switch (largest leaves first), halving the chunk size until it fits a
// leaf; this keeps the sub-groups of recursive-doubling-style algorithms
// intact inside single switches and so minimizes inter-switch traffic.  Any
// shortfall after the power-of-two pass is topped up from the same leaves in
// reverse order (Algorithm 2 lines 22-27).  Compute-intensive jobs instead
// fill the emptiest-last (ascending free count) so large free blocks survive
// for communicating jobs.
#pragma once

#include "core/allocator.hpp"

namespace commsched {

class BalancedAllocator final : public Allocator {
 public:
  const char* name() const noexcept override { return "balanced"; }

  bool select_into(const ClusterState& state,
                   const AllocationRequest& request,
                   std::vector<NodeId>& out) const override;

 private:
  // workspace: leaf-ordering scratch reused across const select_into()
  // calls; cleared on entry, never observable.
  mutable std::vector<SwitchId> leaf_order_;
  // workspace: per-leaf take cursors for the power-of-two + top-up passes;
  // reassigned on entry, never observable.
  mutable std::vector<std::size_t> cursor_;
};

}  // namespace commsched
