// Balanced allocation — the paper's Algorithm 2 (§4.2).
//
// For communication-intensive jobs, allocates nodes in powers of two per
// leaf switch (largest leaves first), halving the chunk size until it fits a
// leaf; this keeps the sub-groups of recursive-doubling-style algorithms
// intact inside single switches and so minimizes inter-switch traffic.  Any
// shortfall after the power-of-two pass is topped up from the same leaves in
// reverse order (Algorithm 2 lines 22-27).  Compute-intensive jobs instead
// fill the emptiest-last (ascending free count) so large free blocks survive
// for communicating jobs.
#pragma once

#include "core/allocator.hpp"

namespace commsched {

class BalancedAllocator final : public Allocator {
 public:
  const char* name() const noexcept override { return "balanced"; }

  std::optional<std::vector<NodeId>> select(
      const ClusterState& state, const AllocationRequest& request) const override;
};

}  // namespace commsched
