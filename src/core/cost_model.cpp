#include "core/cost_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace commsched {

LeafOverlay::LeafOverlay(const Tree& tree)
    : extra_(static_cast<std::size_t>(tree.switch_count()), 0) {}

// hot-path: no-alloc
void LeafOverlay::add_nodes(const Tree& tree, std::span<const NodeId> nodes,
                            int copies) {
  COMMSCHED_ASSERT_GE(copies, 1);
  const auto n_switches = static_cast<std::size_t>(tree.switch_count());
  // contract-trusted: no-alloc: overlay sized to the topology's switch
  // count on first use; reused across candidates
  if (extra_.size() < n_switches) extra_.resize(n_switches, 0);
  for (const NodeId n : nodes) {
    const SwitchId leaf = tree.leaf_of(n);
    // contract-trusted: no-alloc: bounded by leaf count; reused capacity
    if (extra_[static_cast<std::size_t>(leaf)] == 0) touched_.push_back(leaf);
    extra_[static_cast<std::size_t>(leaf)] += copies;
  }
}

// hot-path: no-alloc
void LeafOverlay::clear() {
  for (const SwitchId s : touched_) extra_[static_cast<std::size_t>(s)] = 0;
  touched_.clear();
}

// hot-path: no-alloc
int LeafOverlay::extra_comm(SwitchId leaf) const {
  const auto i = static_cast<std::size_t>(leaf);
  return i < extra_.size() ? extra_[i] : 0;
}

std::vector<NodeId> expand_ranks_per_node(std::span<const NodeId> nodes,
                                          int ranks_per_node) {
  COMMSCHED_ASSERT_GE_MSG(ranks_per_node, 1,
                          "need at least one rank per node");
  std::vector<NodeId> ranks;
  ranks.reserve(nodes.size() * static_cast<std::size_t>(ranks_per_node));
  for (const NodeId n : nodes)
    for (int r = 0; r < ranks_per_node; ++r) ranks.push_back(n);
  return ranks;
}

CostModel::CostModel(const Tree& tree, CostOptions options)
    : tree_(&tree), options_(options) {}

namespace {

// hot-path: no-alloc
double leaf_comm_fraction(const ClusterState& state, SwitchId leaf,
                          const LeafOverlay* overlay) {
  const double comm =
      state.leaf_comm(leaf) + (overlay ? overlay->extra_comm(leaf) : 0);
  return comm / static_cast<double>(state.leaf_nodes(leaf));
}

/// Fallback scratch for the workspace-less convenience overloads. One per
/// thread, so those overloads stay safe under concurrency too; callers in
/// hot multi-threaded loops should still pass an explicit workspace to keep
/// buffer reuse under their control.
CostWorkspace& tls_workspace() {
  // thread-safe: thread_local — each worker gets a private scratch buffer.
  static thread_local CostWorkspace workspace;
  return workspace;
}

}  // namespace

// hot-path: no-alloc
double CostModel::contention(const ClusterState& state, NodeId i, NodeId j,
                             const LeafOverlay* overlay) const {
  const SwitchId li = tree_->leaf_of(i);
  const SwitchId lj = tree_->leaf_of(j);
  if (li == lj) return leaf_comm_fraction(state, li, overlay);  // Eq. 2
  // Eq. 3: per-leaf contention plus half the pooled contention at the
  // lowest common switch (links double per level in a fat-tree).
  const double ci =
      static_cast<double>(state.leaf_comm(li) +
                          (overlay ? overlay->extra_comm(li) : 0));
  const double cj =
      static_cast<double>(state.leaf_comm(lj) +
                          (overlay ? overlay->extra_comm(lj) : 0));
  const double ni = state.leaf_nodes(li);
  const double nj = state.leaf_nodes(lj);
  return ci / ni + cj / nj + 0.5 * (ci + cj) / (ni + nj);
}

// hot-path: no-alloc
double CostModel::effective_hops(const ClusterState& state, NodeId i, NodeId j,
                                 const LeafOverlay* overlay) const {
  if (i == j) return 0.0;
  const double d = tree_->distance(i, j);
  return d * (1.0 + contention(state, i, j, overlay));  // Eq. 5
}

// hot-path: no-alloc
std::size_t CostModel::map_leaves(const ClusterState& state,
                                  std::span<const NodeId> nodes,
                                  const LeafOverlay* overlay,
                                  bool fill_rank_slot,
                                  CostWorkspace& ws) const {
  const Tree& tree = *tree_;
  const auto n_leaves = static_cast<std::size_t>(tree.leaf_count());
  if (ws.leaf_slot_.size() != n_leaves) ws.leaf_slot_.assign(n_leaves, -1);

  ws.call_leaves_.clear();
  ws.call_leaf_comm_.clear();
  ws.call_leaf_nodes_.clear();
  if (fill_rank_slot) ws.rank_slot_.resize(nodes.size());
  for (std::size_t r = 0; r < nodes.size(); ++r) {
    const SwitchId leaf = tree.leaf_of(nodes[r]);
    const auto li = static_cast<std::size_t>(tree.leaf_index(leaf));
    std::int32_t slot = ws.leaf_slot_[li];
    if (slot < 0) {
      slot = static_cast<std::int32_t>(ws.call_leaves_.size());
      ws.leaf_slot_[li] = slot;
      ws.call_leaves_.push_back(leaf);
      ws.call_leaf_comm_.push_back(static_cast<double>(
          state.leaf_comm(leaf) + (overlay ? overlay->extra_comm(leaf) : 0)));
      ws.call_leaf_nodes_.push_back(
          static_cast<double>(state.leaf_nodes(leaf)));
    }
    if (fill_rank_slot) ws.rank_slot_[r] = slot;
  }
  return ws.call_leaves_.size();
}

// hot-path: no-alloc
void CostModel::release_slots(CostWorkspace& ws) const {
  for (const SwitchId leaf : ws.call_leaves_)
    ws.leaf_slot_[static_cast<std::size_t>(tree_->leaf_index(leaf))] = -1;
}

// hot-path: no-alloc
double CostModel::slot_hops(const Tree& tree, CostWorkspace& ws,
                            std::size_t sa, std::size_t sb, std::size_t k) {
  double& memo = ws.pair_hops_[sa * k + sb];
  if (memo < 0.0) {
    double contention;
    if (sa == sb) {
      contention = ws.call_leaf_comm_[sa] / ws.call_leaf_nodes_[sa];  // Eq. 2
    } else {
      const double ci = ws.call_leaf_comm_[sa];
      const double cj = ws.call_leaf_comm_[sb];
      const double ni = ws.call_leaf_nodes_[sa];
      const double nj = ws.call_leaf_nodes_[sb];
      contention = ci / ni + cj / nj + 0.5 * (ci + cj) / (ni + nj);  // Eq. 3
    }
    const double d =
        tree.leaf_distance(ws.call_leaves_[sa], ws.call_leaves_[sb]);
    memo = d * (1.0 + contention);  // Eq. 5
    ws.pair_hops_[sb * k + sa] = memo;
  }
  return memo;
}

// Fast kernel: compact the allocation's leaves once, freeze the per-leaf
// contention inputs, then memoize effective hops per (leaf, leaf) slot pair.
// Each rank pair after the first with the same leaf pair is a single array
// load, and the arithmetic matches cost_impl_reference operation-for-
// operation so the two paths agree bit-for-bit.
// hot-path: no-alloc
double CostModel::cost_impl(const ClusterState& state,
                            std::span<const NodeId> nodes,
                            const CommSchedule& schedule,
                            const LeafOverlay* overlay,
                            CostWorkspace& ws) const {
  const Tree& tree = *tree_;
  const std::size_t k =
      map_leaves(state, nodes, overlay, /*fill_rank_slot=*/true, ws);
  ws.pair_hops_.assign(k * k, -1.0);

  double total = 0.0;
  for (const CommStep& step : schedule) {
    double worst = 0.0;
    for (const auto& [ri, rj] : step.pairs) {
      COMMSCHED_ASSERT_MSG(
          ri >= 0 && rj >= 0 &&
              static_cast<std::size_t>(ri) < nodes.size() &&
              static_cast<std::size_t>(rj) < nodes.size(),
          "schedule rank out of range for this allocation");
      if (nodes[static_cast<std::size_t>(ri)] ==
          nodes[static_cast<std::size_t>(rj)])
        continue;  // same node: zero hops
      const auto sa =
          static_cast<std::size_t>(ws.rank_slot_[static_cast<std::size_t>(ri)]);
      const auto sb =
          static_cast<std::size_t>(ws.rank_slot_[static_cast<std::size_t>(rj)]);
      worst = std::max(worst, slot_hops(tree, ws, sa, sb, k));
    }
    double step_cost = worst * static_cast<double>(step.repeat);
    if (options_.hop_bytes) step_cost *= step.msize;
    total += step_cost;
  }

  release_slots(ws);
  return total;
}

// Profile kernel: the per-step distinct leaf-pair sets are precomputed (and
// deduplicated into classes) in the LeafCommProfile, so the expensive Eq. 5
// evaluations run once per class pair and each step reduces to one
// multiply-add. Each step's class max ranges over the distinct leaf pairs of
// the step, which equals the reference's max over all rank pairs: duplicates
// cannot change a max, same-node pairs contribute exactly 0 (the reference's
// starting value), and the summation below visits steps in the identical
// order with identical per-step arithmetic, so the result is bit-for-bit
// equal to cost_impl / cost_impl_reference on the expanded rank list.
// hot-path: no-alloc
double CostModel::cost_profile_impl(const ClusterState& state,
                                    std::span<const NodeId> nodes,
                                    const LeafCommProfile& profile,
                                    const LeafOverlay* overlay,
                                    CostWorkspace& ws) const {
  COMMSCHED_ASSERT_EQ_MSG(
      static_cast<int>(nodes.size()) * profile.ranks_per_node, profile.nprocs,
      "node count does not match the profile's shape");
  const Tree& tree = *tree_;
  const std::size_t k =
      map_leaves(state, nodes, overlay, /*fill_rank_slot=*/false, ws);
  COMMSCHED_ASSERT_EQ_MSG(static_cast<int>(k), profile.num_slots,
                          "allocation leaf structure does not match the "
                          "profile's shape (stale ShapeKey?)");
  ws.pair_hops_.assign(k * k, -1.0);

  ws.class_worst_.resize(profile.classes.size());
  for (std::size_t c = 0; c < profile.classes.size(); ++c) {
    double worst = 0.0;
    for (const auto& [sa, sb] : profile.classes[c].leaf_pairs)
      worst = std::max(worst, slot_hops(tree, ws, static_cast<std::size_t>(sa),
                                        static_cast<std::size_t>(sb), k));
    ws.class_worst_[c] = worst;
  }

  double total = 0.0;
  for (const ProfileStep& step : profile.steps) {
    double step_cost = ws.class_worst_[static_cast<std::size_t>(step.cls)] *
                       static_cast<double>(step.repeat);
    if (options_.hop_bytes) step_cost *= step.msize;
    total += step_cost;
  }

  release_slots(ws);
  return total;
}

double CostModel::cost_impl_reference(const ClusterState& state,
                                      std::span<const NodeId> nodes,
                                      const CommSchedule& schedule,
                                      const LeafOverlay* overlay) const {
  double total = 0.0;
  for (const CommStep& step : schedule) {
    double worst = 0.0;
    for (const auto& [ri, rj] : step.pairs) {
      COMMSCHED_ASSERT_MSG(
          ri >= 0 && rj >= 0 &&
              static_cast<std::size_t>(ri) < nodes.size() &&
              static_cast<std::size_t>(rj) < nodes.size(),
          "schedule rank out of range for this allocation");
      const double h =
          effective_hops(state, nodes[static_cast<std::size_t>(ri)],
                         nodes[static_cast<std::size_t>(rj)], overlay);
      worst = std::max(worst, h);
    }
    double step_cost = worst * static_cast<double>(step.repeat);
    if (options_.hop_bytes) step_cost *= step.msize;
    total += step_cost;
  }
  return total;
}

double CostModel::allocation_cost(const ClusterState& state,
                                  std::span<const NodeId> nodes,
                                  const CommSchedule& schedule,
                                  CostWorkspace& workspace) const {
  return cost_impl(state, nodes, schedule, nullptr, workspace);
}

double CostModel::allocation_cost(const ClusterState& state,
                                  std::span<const NodeId> nodes,
                                  const CommSchedule& schedule) const {
  return allocation_cost(state, nodes, schedule, tls_workspace());
}

// hot-path: no-alloc
double CostModel::candidate_cost(const ClusterState& state,
                                 std::span<const NodeId> nodes,
                                 bool comm_intensive,
                                 const CommSchedule& schedule,
                                 CostWorkspace& workspace) const {
  if (!comm_intensive || !options_.include_candidate)
    return cost_impl(state, nodes, schedule, nullptr, workspace);
  workspace.overlay_.clear();
  workspace.overlay_.add_nodes(*tree_, nodes);
  const double cost =
      cost_impl(state, nodes, schedule, &workspace.overlay_, workspace);
  workspace.overlay_.clear();
  return cost;
}

// hot-path: no-alloc
double CostModel::candidate_cost(const ClusterState& state,
                                 std::span<const NodeId> nodes,
                                 bool comm_intensive,
                                 const CommSchedule& schedule) const {
  return candidate_cost(state, nodes, comm_intensive, schedule,
                        tls_workspace());
}

double CostModel::allocation_cost(const ClusterState& state,
                                  std::span<const NodeId> nodes,
                                  const LeafCommProfile& profile,
                                  CostWorkspace& workspace) const {
  return cost_profile_impl(state, nodes, profile, nullptr, workspace);
}

double CostModel::allocation_cost(const ClusterState& state,
                                  std::span<const NodeId> nodes,
                                  const LeafCommProfile& profile) const {
  return allocation_cost(state, nodes, profile, tls_workspace());
}

// hot-path: no-alloc
double CostModel::candidate_cost(const ClusterState& state,
                                 std::span<const NodeId> nodes,
                                 bool comm_intensive,
                                 const LeafCommProfile& profile,
                                 CostWorkspace& workspace) const {
  if (!comm_intensive || !options_.include_candidate)
    return cost_profile_impl(state, nodes, profile, nullptr, workspace);
  // The schedule kernels overlay the expanded rank list (one entry per
  // rank); add ranks_per_node copies per node to match bit-for-bit.
  workspace.overlay_.clear();
  workspace.overlay_.add_nodes(*tree_, nodes, profile.ranks_per_node);
  const double cost =
      cost_profile_impl(state, nodes, profile, &workspace.overlay_, workspace);
  workspace.overlay_.clear();
  return cost;
}

// hot-path: no-alloc
double CostModel::candidate_cost(const ClusterState& state,
                                 std::span<const NodeId> nodes,
                                 bool comm_intensive,
                                 const LeafCommProfile& profile) const {
  return candidate_cost(state, nodes, comm_intensive, profile,
                        tls_workspace());
}

double CostModel::allocation_cost_reference(const ClusterState& state,
                                            std::span<const NodeId> nodes,
                                            const CommSchedule& schedule) const {
  return cost_impl_reference(state, nodes, schedule, nullptr);
}

double CostModel::candidate_cost_reference(const ClusterState& state,
                                           std::span<const NodeId> nodes,
                                           bool comm_intensive,
                                           const CommSchedule& schedule) const {
  if (!comm_intensive || !options_.include_candidate)
    return cost_impl_reference(state, nodes, schedule, nullptr);
  LeafOverlay overlay(*tree_);
  overlay.add_nodes(*tree_, nodes);
  return cost_impl_reference(state, nodes, schedule, &overlay);
}

}  // namespace commsched
