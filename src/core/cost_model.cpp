#include "core/cost_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace commsched {

LeafOverlay::LeafOverlay(const Tree& tree)
    : extra_(static_cast<std::size_t>(tree.switch_count()), 0) {}

void LeafOverlay::add_nodes(const Tree& tree, std::span<const NodeId> nodes) {
  for (const NodeId n : nodes) {
    const SwitchId leaf = tree.leaf_of(n);
    if (extra_[static_cast<std::size_t>(leaf)] == 0) touched_.push_back(leaf);
    ++extra_[static_cast<std::size_t>(leaf)];
  }
}

void LeafOverlay::clear() {
  for (const SwitchId s : touched_) extra_[static_cast<std::size_t>(s)] = 0;
  touched_.clear();
}

int LeafOverlay::extra_comm(SwitchId leaf) const {
  return extra_[static_cast<std::size_t>(leaf)];
}

std::vector<NodeId> expand_ranks_per_node(std::span<const NodeId> nodes,
                                          int ranks_per_node) {
  COMMSCHED_ASSERT_MSG(ranks_per_node >= 1, "need at least one rank per node");
  std::vector<NodeId> ranks;
  ranks.reserve(nodes.size() * static_cast<std::size_t>(ranks_per_node));
  for (const NodeId n : nodes)
    for (int r = 0; r < ranks_per_node; ++r) ranks.push_back(n);
  return ranks;
}

CostModel::CostModel(const Tree& tree, CostOptions options)
    : tree_(&tree), options_(options) {}

namespace {
double leaf_comm_fraction(const ClusterState& state, SwitchId leaf,
                          const LeafOverlay* overlay) {
  const double comm =
      state.leaf_comm(leaf) + (overlay ? overlay->extra_comm(leaf) : 0);
  return comm / static_cast<double>(state.leaf_nodes(leaf));
}
}  // namespace

double CostModel::contention(const ClusterState& state, NodeId i, NodeId j,
                             const LeafOverlay* overlay) const {
  const SwitchId li = tree_->leaf_of(i);
  const SwitchId lj = tree_->leaf_of(j);
  if (li == lj) return leaf_comm_fraction(state, li, overlay);  // Eq. 2
  // Eq. 3: per-leaf contention plus half the pooled contention at the
  // lowest common switch (links double per level in a fat-tree).
  const double ci =
      static_cast<double>(state.leaf_comm(li) +
                          (overlay ? overlay->extra_comm(li) : 0));
  const double cj =
      static_cast<double>(state.leaf_comm(lj) +
                          (overlay ? overlay->extra_comm(lj) : 0));
  const double ni = state.leaf_nodes(li);
  const double nj = state.leaf_nodes(lj);
  return ci / ni + cj / nj + 0.5 * (ci + cj) / (ni + nj);
}

double CostModel::effective_hops(const ClusterState& state, NodeId i, NodeId j,
                                 const LeafOverlay* overlay) const {
  if (i == j) return 0.0;
  const double d = tree_->distance(i, j);
  return d * (1.0 + contention(state, i, j, overlay));  // Eq. 5
}

double CostModel::cost_impl(const ClusterState& state,
                            std::span<const NodeId> nodes,
                            const CommSchedule& schedule,
                            const LeafOverlay* overlay) const {
  double total = 0.0;
  for (const CommStep& step : schedule) {
    double worst = 0.0;
    for (const auto& [ri, rj] : step.pairs) {
      COMMSCHED_ASSERT_MSG(
          ri >= 0 && rj >= 0 &&
              static_cast<std::size_t>(ri) < nodes.size() &&
              static_cast<std::size_t>(rj) < nodes.size(),
          "schedule rank out of range for this allocation");
      const double h =
          effective_hops(state, nodes[static_cast<std::size_t>(ri)],
                         nodes[static_cast<std::size_t>(rj)], overlay);
      worst = std::max(worst, h);
    }
    double step_cost = worst * static_cast<double>(step.repeat);
    if (options_.hop_bytes) step_cost *= step.msize;
    total += step_cost;
  }
  return total;
}

double CostModel::allocation_cost(const ClusterState& state,
                                  std::span<const NodeId> nodes,
                                  const CommSchedule& schedule) const {
  return cost_impl(state, nodes, schedule, nullptr);
}

double CostModel::candidate_cost(const ClusterState& state,
                                 std::span<const NodeId> nodes,
                                 bool comm_intensive,
                                 const CommSchedule& schedule) const {
  if (!comm_intensive || !options_.include_candidate)
    return cost_impl(state, nodes, schedule, nullptr);
  LeafOverlay overlay(*tree_);
  overlay.add_nodes(*tree_, nodes);
  return cost_impl(state, nodes, schedule, &overlay);
}

}  // namespace commsched
