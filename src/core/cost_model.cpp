#include "core/cost_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace commsched {

LeafOverlay::LeafOverlay(const Tree& tree)
    : extra_(static_cast<std::size_t>(tree.switch_count()), 0) {}

void LeafOverlay::add_nodes(const Tree& tree, std::span<const NodeId> nodes) {
  for (const NodeId n : nodes) {
    const SwitchId leaf = tree.leaf_of(n);
    if (extra_[static_cast<std::size_t>(leaf)] == 0) touched_.push_back(leaf);
    ++extra_[static_cast<std::size_t>(leaf)];
  }
}

void LeafOverlay::clear() {
  for (const SwitchId s : touched_) extra_[static_cast<std::size_t>(s)] = 0;
  touched_.clear();
}

int LeafOverlay::extra_comm(SwitchId leaf) const {
  return extra_[static_cast<std::size_t>(leaf)];
}

std::vector<NodeId> expand_ranks_per_node(std::span<const NodeId> nodes,
                                          int ranks_per_node) {
  COMMSCHED_ASSERT_GE_MSG(ranks_per_node, 1,
                          "need at least one rank per node");
  std::vector<NodeId> ranks;
  ranks.reserve(nodes.size() * static_cast<std::size_t>(ranks_per_node));
  for (const NodeId n : nodes)
    for (int r = 0; r < ranks_per_node; ++r) ranks.push_back(n);
  return ranks;
}

CostModel::CostModel(const Tree& tree, CostOptions options)
    : tree_(&tree), options_(options), overlay_(tree) {}

namespace {
double leaf_comm_fraction(const ClusterState& state, SwitchId leaf,
                          const LeafOverlay* overlay) {
  const double comm =
      state.leaf_comm(leaf) + (overlay ? overlay->extra_comm(leaf) : 0);
  return comm / static_cast<double>(state.leaf_nodes(leaf));
}
}  // namespace

double CostModel::contention(const ClusterState& state, NodeId i, NodeId j,
                             const LeafOverlay* overlay) const {
  const SwitchId li = tree_->leaf_of(i);
  const SwitchId lj = tree_->leaf_of(j);
  if (li == lj) return leaf_comm_fraction(state, li, overlay);  // Eq. 2
  // Eq. 3: per-leaf contention plus half the pooled contention at the
  // lowest common switch (links double per level in a fat-tree).
  const double ci =
      static_cast<double>(state.leaf_comm(li) +
                          (overlay ? overlay->extra_comm(li) : 0));
  const double cj =
      static_cast<double>(state.leaf_comm(lj) +
                          (overlay ? overlay->extra_comm(lj) : 0));
  const double ni = state.leaf_nodes(li);
  const double nj = state.leaf_nodes(lj);
  return ci / ni + cj / nj + 0.5 * (ci + cj) / (ni + nj);
}

double CostModel::effective_hops(const ClusterState& state, NodeId i, NodeId j,
                                 const LeafOverlay* overlay) const {
  if (i == j) return 0.0;
  const double d = tree_->distance(i, j);
  return d * (1.0 + contention(state, i, j, overlay));  // Eq. 5
}

// Fast kernel: compact the allocation's leaves once, freeze the per-leaf
// contention inputs, then memoize effective hops per (leaf, leaf) slot pair.
// Each rank pair after the first with the same leaf pair is a single array
// load, and the arithmetic matches cost_impl_reference operation-for-
// operation so the two paths agree bit-for-bit.
double CostModel::cost_impl(const ClusterState& state,
                            std::span<const NodeId> nodes,
                            const CommSchedule& schedule,
                            const LeafOverlay* overlay) const {
  const Tree& tree = *tree_;
  const auto n_leaves = static_cast<std::size_t>(tree.leaf_count());
  if (leaf_slot_.size() != n_leaves) leaf_slot_.assign(n_leaves, -1);

  call_leaves_.clear();
  call_leaf_comm_.clear();
  call_leaf_nodes_.clear();
  rank_slot_.resize(nodes.size());
  for (std::size_t r = 0; r < nodes.size(); ++r) {
    const SwitchId leaf = tree.leaf_of(nodes[r]);
    const auto li = static_cast<std::size_t>(tree.leaf_index(leaf));
    std::int32_t slot = leaf_slot_[li];
    if (slot < 0) {
      slot = static_cast<std::int32_t>(call_leaves_.size());
      leaf_slot_[li] = slot;
      call_leaves_.push_back(leaf);
      call_leaf_comm_.push_back(static_cast<double>(
          state.leaf_comm(leaf) + (overlay ? overlay->extra_comm(leaf) : 0)));
      call_leaf_nodes_.push_back(
          static_cast<double>(state.leaf_nodes(leaf)));
    }
    rank_slot_[r] = slot;
  }
  const std::size_t k = call_leaves_.size();
  pair_hops_.assign(k * k, -1.0);

  double total = 0.0;
  for (const CommStep& step : schedule) {
    double worst = 0.0;
    for (const auto& [ri, rj] : step.pairs) {
      COMMSCHED_ASSERT_MSG(
          ri >= 0 && rj >= 0 &&
              static_cast<std::size_t>(ri) < nodes.size() &&
              static_cast<std::size_t>(rj) < nodes.size(),
          "schedule rank out of range for this allocation");
      if (nodes[static_cast<std::size_t>(ri)] ==
          nodes[static_cast<std::size_t>(rj)])
        continue;  // same node: zero hops
      const auto sa =
          static_cast<std::size_t>(rank_slot_[static_cast<std::size_t>(ri)]);
      const auto sb =
          static_cast<std::size_t>(rank_slot_[static_cast<std::size_t>(rj)]);
      double& memo = pair_hops_[sa * k + sb];
      if (memo < 0.0) {
        double contention;
        if (sa == sb) {
          contention = call_leaf_comm_[sa] / call_leaf_nodes_[sa];  // Eq. 2
        } else {
          const double ci = call_leaf_comm_[sa];
          const double cj = call_leaf_comm_[sb];
          const double ni = call_leaf_nodes_[sa];
          const double nj = call_leaf_nodes_[sb];
          contention = ci / ni + cj / nj + 0.5 * (ci + cj) / (ni + nj);  // Eq. 3
        }
        const double d = tree.leaf_distance(call_leaves_[sa], call_leaves_[sb]);
        memo = d * (1.0 + contention);  // Eq. 5
        pair_hops_[sb * k + sa] = memo;
      }
      worst = std::max(worst, memo);
    }
    double step_cost = worst * static_cast<double>(step.repeat);
    if (options_.hop_bytes) step_cost *= step.msize;
    total += step_cost;
  }

  // Restore the leaf -> slot map for the next call.
  for (const SwitchId leaf : call_leaves_)
    leaf_slot_[static_cast<std::size_t>(tree.leaf_index(leaf))] = -1;
  return total;
}

double CostModel::cost_impl_reference(const ClusterState& state,
                                      std::span<const NodeId> nodes,
                                      const CommSchedule& schedule,
                                      const LeafOverlay* overlay) const {
  double total = 0.0;
  for (const CommStep& step : schedule) {
    double worst = 0.0;
    for (const auto& [ri, rj] : step.pairs) {
      COMMSCHED_ASSERT_MSG(
          ri >= 0 && rj >= 0 &&
              static_cast<std::size_t>(ri) < nodes.size() &&
              static_cast<std::size_t>(rj) < nodes.size(),
          "schedule rank out of range for this allocation");
      const double h =
          effective_hops(state, nodes[static_cast<std::size_t>(ri)],
                         nodes[static_cast<std::size_t>(rj)], overlay);
      worst = std::max(worst, h);
    }
    double step_cost = worst * static_cast<double>(step.repeat);
    if (options_.hop_bytes) step_cost *= step.msize;
    total += step_cost;
  }
  return total;
}

double CostModel::allocation_cost(const ClusterState& state,
                                  std::span<const NodeId> nodes,
                                  const CommSchedule& schedule) const {
  return cost_impl(state, nodes, schedule, nullptr);
}

double CostModel::candidate_cost(const ClusterState& state,
                                 std::span<const NodeId> nodes,
                                 bool comm_intensive,
                                 const CommSchedule& schedule) const {
  if (!comm_intensive || !options_.include_candidate)
    return cost_impl(state, nodes, schedule, nullptr);
  overlay_.clear();
  overlay_.add_nodes(*tree_, nodes);
  const double cost = cost_impl(state, nodes, schedule, &overlay_);
  overlay_.clear();
  return cost;
}

double CostModel::allocation_cost_reference(const ClusterState& state,
                                            std::span<const NodeId> nodes,
                                            const CommSchedule& schedule) const {
  return cost_impl_reference(state, nodes, schedule, nullptr);
}

double CostModel::candidate_cost_reference(const ClusterState& state,
                                           std::span<const NodeId> nodes,
                                           bool comm_intensive,
                                           const CommSchedule& schedule) const {
  if (!comm_intensive || !options_.include_candidate)
    return cost_impl_reference(state, nodes, schedule, nullptr);
  LeafOverlay overlay(*tree_);
  overlay.add_nodes(*tree_, nodes);
  return cost_impl_reference(state, nodes, schedule, &overlay);
}

}  // namespace commsched
