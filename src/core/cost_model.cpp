#include "core/cost_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace commsched {

LeafOverlay::LeafOverlay(const Tree& tree)
    : extra_(static_cast<std::size_t>(tree.switch_count()), 0) {}

// hot-path: no-alloc
void LeafOverlay::add_nodes(const Tree& tree, std::span<const NodeId> nodes,
                            int copies) {
  COMMSCHED_ASSERT_GE(copies, 1);
  const auto n_switches = static_cast<std::size_t>(tree.switch_count());
  // contract-trusted: no-alloc: overlay sized to the topology's switch
  // count on first use; reused across candidates
  if (extra_.size() < n_switches) extra_.resize(n_switches, 0);
  for (const NodeId n : nodes) {
    const SwitchId leaf = tree.leaf_of(n);
    // contract-trusted: no-alloc: bounded by leaf count; reused capacity
    if (extra_[static_cast<std::size_t>(leaf)] == 0) touched_.push_back(leaf);
    extra_[static_cast<std::size_t>(leaf)] += copies;
  }
}

// hot-path: no-alloc
void LeafOverlay::clear() {
  for (const SwitchId s : touched_) extra_[static_cast<std::size_t>(s)] = 0;
  touched_.clear();
}

// hot-path: no-alloc
int LeafOverlay::extra_comm(SwitchId leaf) const {
  const auto i = static_cast<std::size_t>(leaf);
  return i < extra_.size() ? extra_[i] : 0;
}

std::vector<NodeId> expand_ranks_per_node(std::span<const NodeId> nodes,
                                          int ranks_per_node) {
  COMMSCHED_ASSERT_GE_MSG(ranks_per_node, 1,
                          "need at least one rank per node");
  std::vector<NodeId> ranks;
  ranks.reserve(nodes.size() * static_cast<std::size_t>(ranks_per_node));
  for (const NodeId n : nodes)
    for (int r = 0; r < ranks_per_node; ++r) ranks.push_back(n);
  return ranks;
}

CostModel::CostModel(const Tree& tree, CostOptions options)
    : tree_(&tree), options_(options) {}

namespace {

// hot-path: no-alloc
double leaf_comm_fraction(const ClusterState& state, SwitchId leaf,
                          const LeafOverlay* overlay) {
  const double comm =
      state.leaf_comm(leaf) + (overlay ? overlay->extra_comm(leaf) : 0);
  return comm / static_cast<double>(state.leaf_nodes(leaf));
}

/// Eq. 5 hops between two leaves from frozen per-leaf contention inputs —
/// the single arithmetic shared by the schedule/profile kernels (slot_hops)
/// and the delta session, so every evaluation path agrees bit for bit.
// hot-path: no-alloc
double eq5_hops(const Tree& tree, SwitchId la, SwitchId lb, double ca,
                double na, double cb, double nb) {
  double contention;
  if (la == lb) {
    contention = ca / na;  // Eq. 2
  } else {
    contention = ca / na + cb / nb + 0.5 * (ca + cb) / (na + nb);  // Eq. 3
  }
  const double d = tree.leaf_distance(la, lb);
  return d * (1.0 + contention);  // Eq. 5
}

/// Eq. 6 over a profile's steps from per-class worst-hops values. All
/// profile paths (full kernel, delta begin, delta eval) sum through this
/// one loop: FP addition is order-sensitive, so sharing the step order is
/// what keeps their totals bit-identical.
// hot-path: no-alloc
template <typename WorstOf>
double sum_profile_steps(const LeafCommProfile& profile, bool hop_bytes,
                         WorstOf&& worst_of) {
  double total = 0.0;
  for (const ProfileStep& step : profile.steps) {
    double step_cost = worst_of(static_cast<std::size_t>(step.cls)) *
                       static_cast<double>(step.repeat);
    if (hop_bytes) step_cost *= step.msize;
    total += step_cost;
  }
  return total;
}

/// Keep a class's top-3 distinct pairs by hops value (descending; ties keep
/// the earlier pair). Three suffice for the delta shortcut: at most two
/// slots move per evaluation, so at most two of the top entries can touch a
/// moved slot — if all three do, the eval falls back to a full class scan.
// hot-path: no-alloc
void top3_insert(std::array<CostWorkspace::DeltaTop, 3>& top, double v,
                 std::int32_t a, std::int32_t b) {
  for (std::size_t i = 0; i < top.size(); ++i) {
    if (v > top[i].v) {
      for (std::size_t j = top.size() - 1; j > i; --j) top[j] = top[j - 1];
      top[i] = {v, a, b};
      return;
    }
  }
}

/// Fallback scratch for the workspace-less convenience overloads. One per
/// thread, so those overloads stay safe under concurrency too; callers in
/// hot multi-threaded loops should still pass an explicit workspace to keep
/// buffer reuse under their control.
CostWorkspace& tls_workspace() {
  // thread-safe: thread_local — each worker gets a private scratch buffer.
  static thread_local CostWorkspace workspace;
  return workspace;
}

}  // namespace

// hot-path: no-alloc
double CostModel::contention(const ClusterState& state, NodeId i, NodeId j,
                             const LeafOverlay* overlay) const {
  const SwitchId li = tree_->leaf_of(i);
  const SwitchId lj = tree_->leaf_of(j);
  if (li == lj) return leaf_comm_fraction(state, li, overlay);  // Eq. 2
  // Eq. 3: per-leaf contention plus half the pooled contention at the
  // lowest common switch (links double per level in a fat-tree).
  const double ci =
      static_cast<double>(state.leaf_comm(li) +
                          (overlay ? overlay->extra_comm(li) : 0));
  const double cj =
      static_cast<double>(state.leaf_comm(lj) +
                          (overlay ? overlay->extra_comm(lj) : 0));
  const double ni = state.leaf_nodes(li);
  const double nj = state.leaf_nodes(lj);
  return ci / ni + cj / nj + 0.5 * (ci + cj) / (ni + nj);
}

// hot-path: no-alloc
double CostModel::effective_hops(const ClusterState& state, NodeId i, NodeId j,
                                 const LeafOverlay* overlay) const {
  if (i == j) return 0.0;
  const double d = tree_->distance(i, j);
  return d * (1.0 + contention(state, i, j, overlay));  // Eq. 5
}

// hot-path: no-alloc
std::size_t CostModel::map_leaves(const ClusterState& state,
                                  std::span<const NodeId> nodes,
                                  const LeafOverlay* overlay,
                                  bool fill_rank_slot,
                                  CostWorkspace& ws) const {
  const Tree& tree = *tree_;
  const auto n_leaves = static_cast<std::size_t>(tree.leaf_count());
  if (ws.leaf_slot_.size() != n_leaves) ws.leaf_slot_.assign(n_leaves, -1);

  ws.call_leaves_.clear();
  ws.call_leaf_comm_.clear();
  ws.call_leaf_nodes_.clear();
  if (fill_rank_slot) ws.rank_slot_.resize(nodes.size());
  for (std::size_t r = 0; r < nodes.size(); ++r) {
    const SwitchId leaf = tree.leaf_of(nodes[r]);
    const auto li = static_cast<std::size_t>(tree.leaf_index(leaf));
    std::int32_t slot = ws.leaf_slot_[li];
    if (slot < 0) {
      slot = static_cast<std::int32_t>(ws.call_leaves_.size());
      ws.leaf_slot_[li] = slot;
      ws.call_leaves_.push_back(leaf);
      ws.call_leaf_comm_.push_back(static_cast<double>(
          state.leaf_comm(leaf) + (overlay ? overlay->extra_comm(leaf) : 0)));
      ws.call_leaf_nodes_.push_back(
          static_cast<double>(state.leaf_nodes(leaf)));
    }
    if (fill_rank_slot) ws.rank_slot_[r] = slot;
  }
  return ws.call_leaves_.size();
}

// hot-path: no-alloc
void CostModel::release_slots(CostWorkspace& ws) const {
  for (const SwitchId leaf : ws.call_leaves_)
    ws.leaf_slot_[static_cast<std::size_t>(tree_->leaf_index(leaf))] = -1;
}

// hot-path: no-alloc
double CostModel::slot_hops(const Tree& tree, CostWorkspace& ws,
                            std::size_t sa, std::size_t sb, std::size_t k) {
  double& memo = ws.pair_hops_[sa * k + sb];
  if (memo < 0.0) {
    // Distinct slots always sit on distinct leaves, so eq5_hops's
    // same-leaf branch is exactly the old same-slot (Eq. 2) branch.
    memo = eq5_hops(tree, ws.call_leaves_[sa], ws.call_leaves_[sb],
                    ws.call_leaf_comm_[sa], ws.call_leaf_nodes_[sa],
                    ws.call_leaf_comm_[sb], ws.call_leaf_nodes_[sb]);
    ws.pair_hops_[sb * k + sa] = memo;
  }
  return memo;
}

// Fast kernel: compact the allocation's leaves once, freeze the per-leaf
// contention inputs, then memoize effective hops per (leaf, leaf) slot pair.
// Each rank pair after the first with the same leaf pair is a single array
// load, and the arithmetic matches cost_impl_reference operation-for-
// operation so the two paths agree bit-for-bit.
// hot-path: no-alloc
double CostModel::cost_impl(const ClusterState& state,
                            std::span<const NodeId> nodes,
                            const CommSchedule& schedule,
                            const LeafOverlay* overlay,
                            CostWorkspace& ws) const {
  const Tree& tree = *tree_;
  const std::size_t k =
      map_leaves(state, nodes, overlay, /*fill_rank_slot=*/true, ws);
  ws.pair_hops_.assign(k * k, -1.0);

  double total = 0.0;
  for (const CommStep& step : schedule) {
    double worst = 0.0;
    for (const auto& [ri, rj] : step.pairs) {
      COMMSCHED_ASSERT_MSG(
          ri >= 0 && rj >= 0 &&
              static_cast<std::size_t>(ri) < nodes.size() &&
              static_cast<std::size_t>(rj) < nodes.size(),
          "schedule rank out of range for this allocation");
      if (nodes[static_cast<std::size_t>(ri)] ==
          nodes[static_cast<std::size_t>(rj)])
        continue;  // same node: zero hops
      const auto sa =
          static_cast<std::size_t>(ws.rank_slot_[static_cast<std::size_t>(ri)]);
      const auto sb =
          static_cast<std::size_t>(ws.rank_slot_[static_cast<std::size_t>(rj)]);
      worst = std::max(worst, slot_hops(tree, ws, sa, sb, k));
    }
    double step_cost = worst * static_cast<double>(step.repeat);
    if (options_.hop_bytes) step_cost *= step.msize;
    total += step_cost;
  }

  release_slots(ws);
  return total;
}

// Profile kernel: the per-step distinct leaf-pair sets are precomputed (and
// deduplicated into classes) in the LeafCommProfile, so the expensive Eq. 5
// evaluations run once per class pair and each step reduces to one
// multiply-add. Each step's class max ranges over the distinct leaf pairs of
// the step, which equals the reference's max over all rank pairs: duplicates
// cannot change a max, same-node pairs contribute exactly 0 (the reference's
// starting value), and the summation below visits steps in the identical
// order with identical per-step arithmetic, so the result is bit-for-bit
// equal to cost_impl / cost_impl_reference on the expanded rank list.
// hot-path: no-alloc
double CostModel::cost_profile_impl(const ClusterState& state,
                                    std::span<const NodeId> nodes,
                                    const LeafCommProfile& profile,
                                    const LeafOverlay* overlay,
                                    CostWorkspace& ws) const {
  COMMSCHED_ASSERT_EQ_MSG(
      static_cast<int>(nodes.size()) * profile.ranks_per_node, profile.nprocs,
      "node count does not match the profile's shape");
  const Tree& tree = *tree_;
  const std::size_t k =
      map_leaves(state, nodes, overlay, /*fill_rank_slot=*/false, ws);
  COMMSCHED_ASSERT_EQ_MSG(static_cast<int>(k), profile.num_slots,
                          "allocation leaf structure does not match the "
                          "profile's shape (stale ShapeKey?)");
  ws.pair_hops_.assign(k * k, -1.0);

  ws.class_worst_.resize(profile.classes.size());
  for (std::size_t c = 0; c < profile.classes.size(); ++c) {
    double worst = 0.0;
    for (const auto& [sa, sb] : profile.classes[c].leaf_pairs)
      worst = std::max(worst, slot_hops(tree, ws, static_cast<std::size_t>(sa),
                                        static_cast<std::size_t>(sb), k));
    ws.class_worst_[c] = worst;
  }

  const double total =
      sum_profile_steps(profile, options_.hop_bytes,
                        [&](std::size_t c) { return ws.class_worst_[c]; });

  release_slots(ws);
  return total;
}

double CostModel::cost_impl_reference(const ClusterState& state,
                                      std::span<const NodeId> nodes,
                                      const CommSchedule& schedule,
                                      const LeafOverlay* overlay) const {
  double total = 0.0;
  for (const CommStep& step : schedule) {
    double worst = 0.0;
    for (const auto& [ri, rj] : step.pairs) {
      COMMSCHED_ASSERT_MSG(
          ri >= 0 && rj >= 0 &&
              static_cast<std::size_t>(ri) < nodes.size() &&
              static_cast<std::size_t>(rj) < nodes.size(),
          "schedule rank out of range for this allocation");
      const double h =
          effective_hops(state, nodes[static_cast<std::size_t>(ri)],
                         nodes[static_cast<std::size_t>(rj)], overlay);
      worst = std::max(worst, h);
    }
    double step_cost = worst * static_cast<double>(step.repeat);
    if (options_.hop_bytes) step_cost *= step.msize;
    total += step_cost;
  }
  return total;
}

double CostModel::allocation_cost(const ClusterState& state,
                                  std::span<const NodeId> nodes,
                                  const CommSchedule& schedule,
                                  CostWorkspace& workspace) const {
  return cost_impl(state, nodes, schedule, nullptr, workspace);
}

double CostModel::allocation_cost(const ClusterState& state,
                                  std::span<const NodeId> nodes,
                                  const CommSchedule& schedule) const {
  return allocation_cost(state, nodes, schedule, tls_workspace());
}

// hot-path: no-alloc
double CostModel::candidate_cost(const ClusterState& state,
                                 std::span<const NodeId> nodes,
                                 bool comm_intensive,
                                 const CommSchedule& schedule,
                                 CostWorkspace& workspace) const {
  if (!comm_intensive || !options_.include_candidate)
    return cost_impl(state, nodes, schedule, nullptr, workspace);
  workspace.overlay_.clear();
  workspace.overlay_.add_nodes(*tree_, nodes);
  const double cost =
      cost_impl(state, nodes, schedule, &workspace.overlay_, workspace);
  workspace.overlay_.clear();
  return cost;
}

// hot-path: no-alloc
double CostModel::candidate_cost(const ClusterState& state,
                                 std::span<const NodeId> nodes,
                                 bool comm_intensive,
                                 const CommSchedule& schedule) const {
  return candidate_cost(state, nodes, comm_intensive, schedule,
                        tls_workspace());
}

double CostModel::allocation_cost(const ClusterState& state,
                                  std::span<const NodeId> nodes,
                                  const LeafCommProfile& profile,
                                  CostWorkspace& workspace) const {
  return cost_profile_impl(state, nodes, profile, nullptr, workspace);
}

double CostModel::allocation_cost(const ClusterState& state,
                                  std::span<const NodeId> nodes,
                                  const LeafCommProfile& profile) const {
  return allocation_cost(state, nodes, profile, tls_workspace());
}

// hot-path: no-alloc
double CostModel::candidate_cost(const ClusterState& state,
                                 std::span<const NodeId> nodes,
                                 bool comm_intensive,
                                 const LeafCommProfile& profile,
                                 CostWorkspace& workspace) const {
  if (!comm_intensive || !options_.include_candidate)
    return cost_profile_impl(state, nodes, profile, nullptr, workspace);
  // The schedule kernels overlay the expanded rank list (one entry per
  // rank); add ranks_per_node copies per node to match bit-for-bit.
  workspace.overlay_.clear();
  workspace.overlay_.add_nodes(*tree_, nodes, profile.ranks_per_node);
  const double cost =
      cost_profile_impl(state, nodes, profile, &workspace.overlay_, workspace);
  workspace.overlay_.clear();
  return cost;
}

// hot-path: no-alloc
double CostModel::candidate_cost(const ClusterState& state,
                                 std::span<const NodeId> nodes,
                                 bool comm_intensive,
                                 const LeafCommProfile& profile) const {
  return candidate_cost(state, nodes, comm_intensive, profile,
                        tls_workspace());
}

namespace {

// hot-path: no-alloc
bool delta_slot_moved(const CostWorkspace::DeltaSession& d, std::int32_t s) {
  return d.slot_stamp[static_cast<std::size_t>(s)] == d.move_epoch;
}

/// Eq. 5 hops of a class pair under the session's tentative placement:
/// moved slots read their tentative row, the rest the committed base.
// hot-path: no-alloc
double delta_pair_hops(const Tree& tree, const CostWorkspace::DeltaSession& d,
                       std::int32_t a, std::int32_t b) {
  const auto ia = static_cast<std::size_t>(a);
  const auto ib = static_cast<std::size_t>(b);
  const bool ma = delta_slot_moved(d, a);
  const bool mb = delta_slot_moved(d, b);
  return eq5_hops(tree, ma ? d.tent_leaf[ia] : d.slot_leaf[ia],
                  mb ? d.tent_leaf[ib] : d.slot_leaf[ib],
                  ma ? d.tent_comm[ia] : d.slot_comm[ia],
                  ma ? d.tent_nodes[ia] : d.slot_nodes[ia],
                  mb ? d.tent_comm[ib] : d.slot_comm[ib],
                  mb ? d.tent_nodes[ib] : d.slot_nodes[ib]);
}

/// Tentative worst-hops of class `c`: recompute the pairs touching a moved
/// slot, then close the max over the untouched pairs via the top-3 shortcut
/// (descending order makes the first untouched top entry dominate every
/// untouched pair), falling back to a full class scan only when all three
/// top pairs touch moved slots.
// hot-path: no-alloc
double delta_class_worst(const Tree& tree, const CostWorkspace::DeltaSession& d,
                         std::size_t k, std::int32_t c) {
  double worst = 0.0;
  const auto ci = static_cast<std::size_t>(c);
  for (std::size_t m = 0; m < d.last_move_count; ++m) {
    const std::int32_t s = d.last_moves[m].slot;
    const std::size_t row = ci * k + static_cast<std::size_t>(s);
    const auto lo = static_cast<std::size_t>(d.class_slot_pair_off[row]);
    const auto hi = static_cast<std::size_t>(d.class_slot_pair_off[row + 1]);
    for (std::size_t p = lo; p < hi; ++p) {
      const auto id = static_cast<std::size_t>(d.class_slot_pairs[p]);
      worst = std::max(
          worst, delta_pair_hops(tree, d, d.pair_a[id], d.pair_b[id]));
    }
  }
  bool covered = false;
  bool top_full = true;
  for (const CostWorkspace::DeltaTop& t : d.top[ci]) {
    if (t.v < 0.0) {
      top_full = false;
      break;
    }
    if (!delta_slot_moved(d, t.a) && !delta_slot_moved(d, t.b)) {
      worst = std::max(worst, t.v);
      covered = true;
      break;
    }
  }
  if (!covered && top_full) {
    // Untouched pairs may hide below the (all-touched) top-3: scan the
    // class, skipping the pairs recomputed above.
    const auto lo = static_cast<std::size_t>(d.class_pair_off[ci]);
    const auto hi = static_cast<std::size_t>(d.class_pair_off[ci + 1]);
    for (std::size_t p = lo; p < hi; ++p) {
      const std::int32_t a = d.pair_a[p];
      const std::int32_t b = d.pair_b[p];
      if (delta_slot_moved(d, a) || delta_slot_moved(d, b)) continue;
      worst = std::max(worst, d.hops[static_cast<std::size_t>(a) * k +
                                     static_cast<std::size_t>(b)]);
    }
  }
  return worst;
}

/// Rebuild the session's move index for `profile`: rebuilding on every
/// delta_begin (instead of caching by profile address) keeps the index
/// trivially in sync — the cost is one O(pairs) pass on a path that is
/// already doing a full O(pairs) evaluation.
// hot-path: no-alloc
void build_delta_index(const LeafCommProfile& profile, std::size_t k,
                       CostWorkspace::DeltaSession& d) {
  const std::size_t n_classes = profile.classes.size();
  // contract-trusted: no-alloc: index scratch sized to the profile's class/
  // pair counts; capacity is reused across sessions
  d.pair_a.clear();
  d.pair_b.clear();
  d.class_pair_off.assign(n_classes + 1, 0);
  d.slot_seen.assign(k, -1);
  d.slot_class_off.assign(k + 2, 0);
  d.class_slot_pair_off.assign(n_classes * k + 1, 0);

  // Pass 1: flatten pair lists, count per-(class, slot) pair ids and
  // per-slot distinct classes (offsets shifted by one for the fill pass).
  for (std::size_t c = 0; c < n_classes; ++c) {
    for (const auto& [a, b] : profile.classes[c].leaf_pairs) {
      d.pair_a.push_back(a);
      d.pair_b.push_back(b);
      ++d.class_slot_pair_off[c * k + static_cast<std::size_t>(a) + 1];
      if (b != a) ++d.class_slot_pair_off[c * k + static_cast<std::size_t>(b) + 1];
      if (d.slot_seen[static_cast<std::size_t>(a)] !=
          static_cast<std::int32_t>(c)) {
        d.slot_seen[static_cast<std::size_t>(a)] = static_cast<std::int32_t>(c);
        ++d.slot_class_off[static_cast<std::size_t>(a) + 2];
      }
      if (b != a && d.slot_seen[static_cast<std::size_t>(b)] !=
                        static_cast<std::int32_t>(c)) {
        d.slot_seen[static_cast<std::size_t>(b)] = static_cast<std::int32_t>(c);
        ++d.slot_class_off[static_cast<std::size_t>(b) + 2];
      }
    }
    d.class_pair_off[c + 1] =
        static_cast<std::int32_t>(d.pair_a.size());
  }
  for (std::size_t i = 1; i < d.class_slot_pair_off.size(); ++i)
    d.class_slot_pair_off[i] += d.class_slot_pair_off[i - 1];
  for (std::size_t i = 2; i < d.slot_class_off.size(); ++i)
    d.slot_class_off[i] += d.slot_class_off[i - 1];

  // Pass 2: fill. slot_class_off/class_slot_pair_off entries shifted by one
  // act as write cursors and land on the final CSR offsets.
  d.class_slot_pairs.resize(
      static_cast<std::size_t>(d.class_slot_pair_off.back()));
  d.slot_classes.resize(static_cast<std::size_t>(d.slot_class_off.back()));
  d.index_cursor.assign(d.class_slot_pair_off.begin(),
                        d.class_slot_pair_off.end() - 1);
  d.slot_seen.assign(k, -1);
  for (std::size_t c = 0; c < n_classes; ++c) {
    const auto lo = static_cast<std::size_t>(d.class_pair_off[c]);
    const auto hi = static_cast<std::size_t>(d.class_pair_off[c + 1]);
    for (std::size_t p = lo; p < hi; ++p) {
      const auto a = static_cast<std::size_t>(d.pair_a[p]);
      const auto b = static_cast<std::size_t>(d.pair_b[p]);
      d.class_slot_pairs[static_cast<std::size_t>(
          d.index_cursor[c * k + a]++)] = static_cast<std::int32_t>(p);
      if (b != a)
        d.class_slot_pairs[static_cast<std::size_t>(
            d.index_cursor[c * k + b]++)] = static_cast<std::int32_t>(p);
      if (d.slot_seen[a] != static_cast<std::int32_t>(c)) {
        d.slot_seen[a] = static_cast<std::int32_t>(c);
        d.slot_classes[static_cast<std::size_t>(d.slot_class_off[a + 1]++)] =
            static_cast<std::int32_t>(c);
      }
      if (b != a && d.slot_seen[b] != static_cast<std::int32_t>(c)) {
        d.slot_seen[b] = static_cast<std::int32_t>(c);
        d.slot_classes[static_cast<std::size_t>(d.slot_class_off[b + 1]++)] =
            static_cast<std::int32_t>(c);
      }
    }
  }
}

}  // namespace

// contract-trusted: no-alloc: session setup, once per anneal — already
// O(classes * slots + pairs) by contract; every buffer reuses capacity
// across sessions, so steady-state reruns do not allocate
double CostModel::delta_begin(const ClusterState& state,
                              std::span<const NodeId> nodes,
                              bool comm_intensive,
                              const LeafCommProfile& profile,
                              CostWorkspace& ws) const {
  auto& d = ws.delta_;
  COMMSCHED_ASSERT_EQ_MSG(
      static_cast<int>(nodes.size()) * profile.ranks_per_node, profile.nprocs,
      "node count does not match the profile's shape");
  const Tree& tree = *tree_;
  d.active = true;
  d.pending = false;
  d.profile = &profile;
  d.state = &state;
  d.free_at_begin = state.total_free();
  d.rpn = profile.ranks_per_node;
  d.overlayed = comm_intensive && options_.include_candidate;

  // Freeze the per-slot placement and contention inputs (first-appearance
  // slot order, exactly like map_leaves / the ShapeKey).
  const auto n_leaves = static_cast<std::size_t>(tree.leaf_count());
  // contract-trusted: no-alloc: session arrays sized to the shape's slot
  // count / topology, capacity reused across sessions
  if (ws.leaf_slot_.size() != n_leaves) ws.leaf_slot_.assign(n_leaves, -1);
  d.slot_leaf.clear();
  d.slot_nnodes.clear();
  for (const NodeId n : nodes) {
    const SwitchId leaf = tree.leaf_of(n);
    const auto li = static_cast<std::size_t>(tree.leaf_index(leaf));
    std::int32_t slot = ws.leaf_slot_[li];
    if (slot < 0) {
      slot = static_cast<std::int32_t>(d.slot_leaf.size());
      ws.leaf_slot_[li] = slot;
      d.slot_leaf.push_back(leaf);
      d.slot_nnodes.push_back(0);
    }
    ++d.slot_nnodes[static_cast<std::size_t>(slot)];
  }
  for (const SwitchId leaf : d.slot_leaf)
    ws.leaf_slot_[static_cast<std::size_t>(tree.leaf_index(leaf))] = -1;
  const std::size_t k = d.slot_leaf.size();
  COMMSCHED_ASSERT_EQ_MSG(static_cast<int>(k), profile.num_slots,
                          "allocation leaf structure does not match the "
                          "profile's shape (stale ShapeKey?)");
  d.k = static_cast<std::int32_t>(k);
  d.slot_comm.resize(k);
  d.slot_nodes.resize(k);
  for (std::size_t s = 0; s < k; ++s) {
    const SwitchId leaf = d.slot_leaf[s];
    const int extra = d.overlayed ? d.rpn * d.slot_nnodes[s] : 0;
    d.slot_comm[s] = static_cast<double>(state.leaf_comm(leaf) + extra);
    d.slot_nodes[s] = static_cast<double>(state.leaf_nodes(leaf));
  }

  build_delta_index(profile, k, d);

  // Materialize every class pair's hops, each class's worst and top-3.
  const std::size_t n_classes = profile.classes.size();
  d.hops.assign(k * k, -1.0);
  d.class_worst.resize(n_classes);
  d.top.resize(n_classes);
  for (std::size_t c = 0; c < n_classes; ++c) {
    double worst = 0.0;
    auto& top = d.top[c];
    top.fill(CostWorkspace::DeltaTop{});
    const auto lo = static_cast<std::size_t>(d.class_pair_off[c]);
    const auto hi = static_cast<std::size_t>(d.class_pair_off[c + 1]);
    for (std::size_t p = lo; p < hi; ++p) {
      const auto a = static_cast<std::size_t>(d.pair_a[p]);
      const auto b = static_cast<std::size_t>(d.pair_b[p]);
      double& memo = d.hops[a * k + b];
      if (memo < 0.0) {
        memo = eq5_hops(tree, d.slot_leaf[a], d.slot_leaf[b], d.slot_comm[a],
                        d.slot_nodes[a], d.slot_comm[b], d.slot_nodes[b]);
        d.hops[b * k + a] = memo;
      }
      worst = std::max(worst, memo);
      top3_insert(top, memo, static_cast<std::int32_t>(a),
                  static_cast<std::int32_t>(b));
    }
    d.class_worst[c] = worst;
  }

  // Reset the tentative rows and compute the committed total through the
  // shared step loop (bit-identical to cost_profile_impl's summation).
  d.move_epoch = 0;
  d.slot_stamp.assign(k, 0);
  d.tent_leaf.assign(k, kInvalidSwitch);
  d.tent_comm.assign(k, 0.0);
  d.tent_nodes.assign(k, 0.0);
  d.class_stamp.assign(n_classes, 0);
  d.tent_class_worst.assign(n_classes, 0.0);
  d.touched_classes.clear();
  d.last_move_count = 0;
  d.total = sum_profile_steps(profile, options_.hop_bytes,
                              [&](std::size_t c) { return d.class_worst[c]; });
  return d.total;
}

// hot-path: no-alloc
double CostModel::cost_delta(const ClusterState& state,
                             std::span<const SlotMove> moves,
                             CostWorkspace& ws) const {
  auto& d = ws.delta_;
  COMMSCHED_ASSERT_MSG(d.active, "cost_delta without an active delta session");
  COMMSCHED_ASSERT_MSG(d.state == &state && state.total_free() == d.free_at_begin,
                       "cluster state changed under the delta session");
  COMMSCHED_ASSERT(!moves.empty() && moves.size() <= kMaxDeltaMoves);
  const Tree& tree = *tree_;
  const auto k = static_cast<std::size_t>(d.k);

  ++d.move_epoch;
  for (std::size_t m = 0; m < moves.size(); ++m) {
    const SlotMove& mv = moves[m];
    const auto s = static_cast<std::size_t>(mv.slot);
    COMMSCHED_ASSERT_MSG(mv.slot >= 0 && s < k, "SlotMove slot out of range");
    COMMSCHED_ASSERT_MSG(tree.is_leaf(mv.leaf), "SlotMove target not a leaf");
    COMMSCHED_ASSERT_MSG(d.slot_stamp[s] != d.move_epoch,
                         "duplicate slot in one cost_delta call");
    d.slot_stamp[s] = d.move_epoch;
    d.tent_leaf[s] = mv.leaf;
    const int extra = d.overlayed ? d.rpn * d.slot_nnodes[s] : 0;
    d.tent_comm[s] = static_cast<double>(state.leaf_comm(mv.leaf) + extra);
    d.tent_nodes[s] = static_cast<double>(state.leaf_nodes(mv.leaf));
    d.last_moves[m] = mv;
  }
  d.last_move_count = moves.size();
  // Distinct-leaves invariant: no other slot (tentatively) sits on a moved
  // slot's target leaf.
  for (const SlotMove& mv : moves) {
    for (std::size_t t = 0; t < k; ++t) {
      if (static_cast<std::int32_t>(t) == mv.slot) continue;
      const SwitchId lt = delta_slot_moved(d, static_cast<std::int32_t>(t))
                              ? d.tent_leaf[t]
                              : d.slot_leaf[t];
      COMMSCHED_ASSERT_MSG(lt != mv.leaf,
                           "SlotMove target leaf already holds another slot");
    }
  }

  // Re-derive the worst-hops of every class touching a moved slot.
  // contract-trusted: no-alloc: touched list bounded by the profile's class
  // count; capacity reused across evaluations
  d.touched_classes.clear();
  for (std::size_t m = 0; m < moves.size(); ++m) {
    const auto s = static_cast<std::size_t>(moves[m].slot);
    const auto lo = static_cast<std::size_t>(d.slot_class_off[s]);
    const auto hi = static_cast<std::size_t>(d.slot_class_off[s + 1]);
    for (std::size_t i = lo; i < hi; ++i) {
      const std::int32_t c = d.slot_classes[i];
      const auto ci = static_cast<std::size_t>(c);
      if (d.class_stamp[ci] == d.move_epoch) continue;
      d.class_stamp[ci] = d.move_epoch;
      d.touched_classes.push_back(c);
      d.tent_class_worst[ci] = delta_class_worst(tree, d, k, c);
    }
  }

  d.last_total = sum_profile_steps(
      *d.profile, options_.hop_bytes, [&](std::size_t c) {
        return d.class_stamp[c] == d.move_epoch ? d.tent_class_worst[c]
                                                : d.class_worst[c];
      });
  d.pending = true;
  return d.last_total;
}

// hot-path: no-alloc
void CostModel::delta_commit(CostWorkspace& ws) const {
  auto& d = ws.delta_;
  COMMSCHED_ASSERT_MSG(d.pending, "delta_commit without a pending cost_delta");
  const Tree& tree = *tree_;
  const auto k = static_cast<std::size_t>(d.k);

  for (std::size_t m = 0; m < d.last_move_count; ++m) {
    const auto s = static_cast<std::size_t>(d.last_moves[m].slot);
    d.slot_leaf[s] = d.tent_leaf[s];
    d.slot_comm[s] = d.tent_comm[s];
    d.slot_nodes[s] = d.tent_nodes[s];
  }
  // Refresh the memo rows of the moved slots' pairs, then rebuild the worst
  // and top-3 of every touched class from the (now consistent) memo. Every
  // pair touching a moved slot belongs to some touched class, so this
  // covers exactly the stale entries.
  for (const std::int32_t c : d.touched_classes) {
    const auto ci = static_cast<std::size_t>(c);
    for (std::size_t m = 0; m < d.last_move_count; ++m) {
      const auto s = static_cast<std::size_t>(d.last_moves[m].slot);
      const std::size_t row = ci * k + s;
      const auto lo = static_cast<std::size_t>(d.class_slot_pair_off[row]);
      const auto hi = static_cast<std::size_t>(d.class_slot_pair_off[row + 1]);
      for (std::size_t p = lo; p < hi; ++p) {
        const auto id = static_cast<std::size_t>(d.class_slot_pairs[p]);
        const auto a = static_cast<std::size_t>(d.pair_a[id]);
        const auto b = static_cast<std::size_t>(d.pair_b[id]);
        const double v =
            eq5_hops(tree, d.slot_leaf[a], d.slot_leaf[b], d.slot_comm[a],
                     d.slot_nodes[a], d.slot_comm[b], d.slot_nodes[b]);
        d.hops[a * k + b] = v;
        d.hops[b * k + a] = v;
      }
    }
    double worst = 0.0;
    auto& top = d.top[ci];
    top.fill(CostWorkspace::DeltaTop{});
    const auto lo = static_cast<std::size_t>(d.class_pair_off[ci]);
    const auto hi = static_cast<std::size_t>(d.class_pair_off[ci + 1]);
    for (std::size_t p = lo; p < hi; ++p) {
      const auto a = static_cast<std::size_t>(d.pair_a[p]);
      const auto b = static_cast<std::size_t>(d.pair_b[p]);
      const double v = d.hops[a * k + b];
      worst = std::max(worst, v);
      top3_insert(top, v, static_cast<std::int32_t>(a),
                  static_cast<std::int32_t>(b));
    }
    d.class_worst[ci] = worst;
  }
  d.total = d.last_total;
  d.pending = false;
}

double CostModel::delta_total(const CostWorkspace& ws) const {
  COMMSCHED_ASSERT_MSG(ws.delta_.active, "no active delta session");
  return ws.delta_.total;
}

SwitchId CostModel::delta_slot_leaf(const CostWorkspace& ws,
                                    std::int32_t slot) const {
  const auto& d = ws.delta_;
  COMMSCHED_ASSERT_MSG(d.active, "no active delta session");
  COMMSCHED_ASSERT(slot >= 0 && slot < d.k);
  return d.slot_leaf[static_cast<std::size_t>(slot)];
}

int CostModel::delta_slot_nnodes(const CostWorkspace& ws,
                                 std::int32_t slot) const {
  const auto& d = ws.delta_;
  COMMSCHED_ASSERT_MSG(d.active, "no active delta session");
  COMMSCHED_ASSERT(slot >= 0 && slot < d.k);
  return d.slot_nnodes[static_cast<std::size_t>(slot)];
}

double CostModel::allocation_cost_reference(const ClusterState& state,
                                            std::span<const NodeId> nodes,
                                            const CommSchedule& schedule) const {
  return cost_impl_reference(state, nodes, schedule, nullptr);
}

double CostModel::candidate_cost_reference(const ClusterState& state,
                                           std::span<const NodeId> nodes,
                                           bool comm_intensive,
                                           const CommSchedule& schedule) const {
  if (!comm_intensive || !options_.include_candidate)
    return cost_impl_reference(state, nodes, schedule, nullptr);
  LeafOverlay overlay(*tree_);
  overlay.add_nodes(*tree_, nodes);
  return cost_impl_reference(state, nodes, schedule, &overlay);
}

}  // namespace commsched
