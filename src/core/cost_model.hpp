// The paper's communication-cost model (§5.3, Eqs. 2-6).
//
//   Contention factor C(i,j):
//     same leaf      : L_comm / L_nodes                              (Eq. 2)
//     different leaf : Li_comm/Li_nodes + Lj_comm/Lj_nodes
//                      + (Li_comm + Lj_comm) / (2 (Li_nodes+Lj_nodes)) (Eq. 3)
//   Distance   d(i,j) = 2 * level(lowest common switch)              (Eq. 4)
//   Eff. hops  Hops(i,j) = d(i,j) * (1 + C(i,j))                     (Eq. 5)
//   Job cost   Cost = sum over steps n of max_{(i,j) in S_n} Hops(i,j) (Eq. 6)
//
// Costs can be priced for a *candidate* allocation that is not committed yet:
// the candidate job's own nodes then count toward each leaf's L_comm (the
// paper's worked Figure 5 example includes the job under consideration), via
// a per-leaf overlay so the ClusterState itself is never touched.
//
// Three evaluation paths, fastest first:
//   1. LeafCommProfile overloads — the allocation's canonical shape is looked
//      up in a CommCache and the expensive hop arithmetic runs once per
//      distinct leaf-pair *class*, independent of the rank count;
//   2. CommSchedule overloads — the leaf-aggregated fast kernel maps ranks to
//      leaves per call and memoizes hops per leaf pair (used where
//      allocations are arbitrary rank permutations, e.g. mapping/reorder);
//   3. *_reference — pair-by-pair Eq. 6, kept for differential testing.
// All three agree bit-for-bit on the same inputs.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "cluster/state.hpp"
#include "collectives/comm_cache.hpp"
#include "collectives/schedule.hpp"
#include "topology/tree.hpp"

namespace commsched {

struct CostOptions {
  /// Weight each step's max-hops by the step's message size (hop-bytes,
  /// §5.3). Off reproduces Eq. 6 exactly; on is the adaptive-estimator
  /// ablation variant.
  bool hop_bytes = false;
  /// Count the candidate job's own nodes as communication-intensive load on
  /// their leaves while pricing (matches the paper's Figure 5 arithmetic).
  /// Only applies when the candidate is communication-intensive.
  bool include_candidate = true;
};

/// Extra communication-intensive node counts per leaf switch, representing a
/// hypothetical allocation on top of the committed ClusterState. Sized
/// lazily, so a default-constructed overlay (inside CostWorkspace) binds to
/// whichever topology it is first used with.
class LeafOverlay {
 public:
  LeafOverlay() = default;
  explicit LeafOverlay(const Tree& tree);

  /// Add the candidate job's nodes, `copies` per node. The schedule kernels
  /// price expanded rank lists (one entry per rank), so the profile path
  /// passes copies = ranks_per_node over the distinct node list to overlay
  /// the exact same per-leaf counts.
  void add_nodes(const Tree& tree, std::span<const NodeId> nodes,
                 int copies = 1);
  void clear();

  int extra_comm(SwitchId leaf) const;

 private:
  std::vector<int> extra_;
  std::vector<SwitchId> touched_;
};

/// Expand a whole-node allocation into a rank -> node map with
/// `ranks_per_node` MPI ranks per node (SLURM block distribution: ranks
/// 0..rpn-1 on the first node, and so on). Same-node rank pairs then price
/// at distance 0 in the cost model, matching multi-core reality (the
/// paper's machines run 4-64 ranks per node; §5.1).
std::vector<NodeId> expand_ranks_per_node(std::span<const NodeId> nodes,
                                          int ranks_per_node);

/// One tentative relocation priced by CostModel::cost_delta: every node of
/// leaf slot `slot` of the current delta session's allocation moves to leaf
/// `leaf`. The target leaf must not be occupied by any other slot of the
/// session (ShapeKey slots are distinct leaves, and keeping them distinct is
/// what lets one cached LeafCommProfile price every move), and the cost model
/// does not check free capacity — that is the proposing allocator's job.
struct SlotMove {
  std::int32_t slot = -1;
  SwitchId leaf = kInvalidSwitch;
};

/// Most slots one cost_delta call may relocate at once (1 = reassignment,
/// 2 = a leaf swap expressed as two simultaneous moves).
inline constexpr std::size_t kMaxDeltaMoves = 2;

/// Per-call scratch for CostModel's fast kernels. A CostModel holds no
/// mutable state; every evaluation writes only into the workspace the caller
/// passes (or a thread-local default), so one CostModel is safe to share
/// across threads as long as each thread brings its own CostWorkspace.
/// A workspace is reusable across calls, models, and topologies; reuse keeps
/// the scratch buffers' capacity warm.
class CostWorkspace {
 public:
  CostWorkspace() = default;

 private:
  friend class CostModel;

  // leaf_slot_ maps dense leaf index -> compact slot in the current call's
  // leaf set (-1 when untouched; restored at the end of each call).
  std::vector<std::int32_t> leaf_slot_;
  std::vector<SwitchId> call_leaves_;    // distinct leaves, by slot
  std::vector<double> call_leaf_comm_;   // L_comm (+overlay), by slot
  std::vector<double> call_leaf_nodes_;  // L_nodes, by slot
  std::vector<std::int32_t> rank_slot_;  // rank -> compact slot
  std::vector<double> pair_hops_;        // slot×slot memo, -1 unset
  std::vector<double> class_worst_;      // per profile step class: max hops
  LeafOverlay overlay_;                  // candidate_cost scratch

 public:
  // --- Delta-cost session (CostModel::delta_begin / cost_delta /
  // delta_commit) -----------------------------------------------------------
  // One session prices many tentative SlotMoves against a frozen
  // (state, allocation, profile) base without re-running the full profile
  // kernel: begin materializes every class pair's Eq. 5 hops plus each
  // class's max and top-3 pairs; an eval recomputes only the pairs touching
  // the moved slots (epoch-stamped tentative rows, never mutating the
  // committed base) and closes each affected class's max over the untouched
  // pairs through the top-3 shortcut — O(affected leaf pairs) per move
  // instead of O(all pairs).
  struct DeltaTop {
    double v = -1.0;               // Eq. 5 hops; < 0 marks an empty entry
    std::int32_t a = -1, b = -1;   // the pair's leaf slots
  };
  struct DeltaSession {
    bool active = false;                ///< delta_begin has primed the session
    bool pending = false;               ///< a cost_delta awaits delta_commit
    bool overlayed = false;             ///< candidate overlay in force
    const LeafCommProfile* profile = nullptr;
    const ClusterState* state = nullptr;
    int free_at_begin = 0;              // tripwire: state must stay frozen
    int rpn = 1;
    std::int32_t k = 0;                 // leaf slots of the session's shape

    // Committed base: per-slot placement + frozen contention inputs, the
    // k×k hops memo (valid on class pairs), and per-class max / top-3.
    std::vector<SwitchId> slot_leaf;
    std::vector<std::int32_t> slot_nnodes;
    std::vector<double> slot_comm;      // L_comm (+ overlay), per slot
    std::vector<double> slot_nodes;     // L_nodes, per slot
    std::vector<double> hops;
    std::vector<double> class_worst;
    std::vector<std::array<DeltaTop, 3>> top;
    double total = 0.0;                 // committed Eq. 6 total

    // Per-profile move index, rebuilt by every delta_begin: CSR slot ->
    // classes touching it, the flattened class pair lists, and CSR
    // (class, slot) -> ids of the class's pairs touching that slot.
    std::vector<std::int32_t> slot_class_off, slot_classes;
    std::vector<std::int32_t> class_pair_off;
    std::vector<std::int32_t> pair_a, pair_b;
    std::vector<std::int32_t> class_slot_pair_off, class_slot_pairs;
    std::vector<std::int32_t> index_cursor;  // build scratch
    std::vector<std::int32_t> slot_seen;     // build scratch (class dedupe)

    // Tentative evaluation rows, valid where the stamp equals move_epoch.
    std::uint64_t move_epoch = 0;
    std::vector<std::uint64_t> slot_stamp;
    std::vector<SwitchId> tent_leaf;
    std::vector<double> tent_comm, tent_nodes;
    std::vector<std::uint64_t> class_stamp;
    std::vector<double> tent_class_worst;
    std::vector<std::int32_t> touched_classes;
    std::array<SlotMove, kMaxDeltaMoves> last_moves{};
    std::size_t last_move_count = 0;
    double last_total = 0.0;
  };

 private:
  DeltaSession delta_;
};

/// Evaluator bound to one topology. Eq. 6 evaluations run through
/// leaf-aggregated fast kernels: `effective_hops(i, j)` depends only on
/// (leaf_of(i), leaf_of(j)) and on leaf-level state that is frozen for the
/// duration of one cost call, so each call maps the allocation to leaf slots
/// once and memoizes per-leaf-pair hops — O(distinct leaf pairs) expensive
/// evaluations instead of O(rank pairs). All methods are const and the model
/// holds no mutable state; scratch lives in an explicit CostWorkspace, so
/// concurrent calls on ONE instance are safe when each caller passes its own
/// workspace (the workspace-less overloads use a thread-local one).
class CostModel {
 public:
  explicit CostModel(const Tree& tree, CostOptions options = {});

  const Tree& tree() const noexcept { return *tree_; }
  const CostOptions& options() const noexcept { return options_; }

  /// C(i,j) per Eqs. 2-3, with `overlay` contributing extra L_comm
  /// (pass nullptr for committed-state-only pricing).
  double contention(const ClusterState& state, NodeId i, NodeId j,
                    const LeafOverlay* overlay = nullptr) const;

  /// Hops(i,j) per Eq. 5.
  double effective_hops(const ClusterState& state, NodeId i, NodeId j,
                        const LeafOverlay* overlay = nullptr) const;

  /// Eq. 6 over a committed job's allocation: `nodes[r]` is rank r's node.
  double allocation_cost(const ClusterState& state,
                         std::span<const NodeId> nodes,
                         const CommSchedule& schedule,
                         CostWorkspace& workspace) const;
  double allocation_cost(const ClusterState& state,
                         std::span<const NodeId> nodes,
                         const CommSchedule& schedule) const;

  /// Eq. 6 for a *candidate* allocation: per options_.include_candidate the
  /// candidate's nodes are overlaid onto leaf L_comm counts when the job is
  /// communication-intensive.
  double candidate_cost(const ClusterState& state,
                        std::span<const NodeId> nodes, bool comm_intensive,
                        const CommSchedule& schedule,
                        CostWorkspace& workspace) const;
  double candidate_cost(const ClusterState& state,
                        std::span<const NodeId> nodes, bool comm_intensive,
                        const CommSchedule& schedule) const;

  /// Profile-based Eq. 6: `nodes` is the *distinct ordered node list* whose
  /// canonical shape produced `profile` (nodes.size() * ranks_per_node ==
  /// profile.nprocs; ranks are block-distributed). Bit-for-bit equal to the
  /// schedule overloads over expand_ranks_per_node(nodes, rpn), at
  /// O(distinct leaf pairs per class) instead of O(rank pairs).
  double allocation_cost(const ClusterState& state,
                         std::span<const NodeId> nodes,
                         const LeafCommProfile& profile,
                         CostWorkspace& workspace) const;
  double allocation_cost(const ClusterState& state,
                         std::span<const NodeId> nodes,
                         const LeafCommProfile& profile) const;
  double candidate_cost(const ClusterState& state,
                        std::span<const NodeId> nodes, bool comm_intensive,
                        const LeafCommProfile& profile,
                        CostWorkspace& workspace) const;
  double candidate_cost(const ClusterState& state,
                        std::span<const NodeId> nodes, bool comm_intensive,
                        const LeafCommProfile& profile) const;

  // --- Delta-cost evaluation (DESIGN.md "Delta-cost evaluation & search
  // allocators") ------------------------------------------------------------
  // Move-evaluation contract: delta_begin freezes (state, nodes, profile)
  // as the session base and returns the full candidate cost (bit-for-bit
  // equal to candidate_cost on the same inputs). Each cost_delta prices the
  // base with the given slots tentatively relocated and returns the total a
  // fresh candidate_cost would compute for the moved allocation — again bit
  // for bit — in O(pairs touching the moved slots). delta_commit makes the
  // LAST evaluated move set the new base. The ClusterState must not change
  // between delta_begin and the session's last call; every move must keep
  // the session's slots on pairwise-distinct leaves (asserted).

  /// Prime a delta session for a candidate allocation and return its full
  /// cost. Per options_.include_candidate the candidate's nodes are overlaid
  /// when `comm_intensive` (exactly like candidate_cost).
  double delta_begin(const ClusterState& state, std::span<const NodeId> nodes,
                     bool comm_intensive, const LeafCommProfile& profile,
                     CostWorkspace& workspace) const;

  /// Price the committed base with `moves` applied tentatively (1 move =
  /// leaf reassignment, 2 = swap). Does not change the base; only the last
  /// evaluation can be committed.
  double cost_delta(const ClusterState& state, std::span<const SlotMove> moves,
                    CostWorkspace& workspace) const;

  /// Apply the last cost_delta's moves to the session base.
  void delta_commit(CostWorkspace& workspace) const;

  /// Committed total of the active session (== the value a full
  /// candidate_cost would return for the current base).
  double delta_total(const CostWorkspace& workspace) const;

  /// Committed leaf of a session slot (for callers mirroring the placement).
  SwitchId delta_slot_leaf(const CostWorkspace& workspace,
                           std::int32_t slot) const;

  /// Node count of a session slot (invariant across moves).
  int delta_slot_nnodes(const CostWorkspace& workspace,
                        std::int32_t slot) const;

  /// Pair-by-pair Eq. 6 evaluation (one effective_hops call per rank pair,
  /// no memoization). Kept for differential testing of the fast kernels; the
  /// results must match allocation_cost/candidate_cost bit-for-bit.
  double allocation_cost_reference(const ClusterState& state,
                                   std::span<const NodeId> nodes,
                                   const CommSchedule& schedule) const;
  double candidate_cost_reference(const ClusterState& state,
                                  std::span<const NodeId> nodes,
                                  bool comm_intensive,
                                  const CommSchedule& schedule) const;

 private:
  double cost_impl(const ClusterState& state, std::span<const NodeId> nodes,
                   const CommSchedule& schedule, const LeafOverlay* overlay,
                   CostWorkspace& ws) const;
  double cost_profile_impl(const ClusterState& state,
                           std::span<const NodeId> nodes,
                           const LeafCommProfile& profile,
                           const LeafOverlay* overlay,
                           CostWorkspace& ws) const;
  double cost_impl_reference(const ClusterState& state,
                             std::span<const NodeId> nodes,
                             const CommSchedule& schedule,
                             const LeafOverlay* overlay) const;
  /// Map the call's distinct leaves to compact slots and freeze the
  /// per-leaf contention inputs in `ws`. Returns the slot count k and
  /// leaves ws.leaf_slot_ populated for the visited leaves (reset via
  /// release_slots). When `fill_rank_slot`, ws.rank_slot_[r] is the slot of
  /// nodes[r].
  std::size_t map_leaves(const ClusterState& state,
                         std::span<const NodeId> nodes,
                         const LeafOverlay* overlay, bool fill_rank_slot,
                         CostWorkspace& ws) const;
  void release_slots(CostWorkspace& ws) const;
  /// Memoized Eq. 5 hops between two leaf slots (frozen call state in ws).
  static double slot_hops(const Tree& tree, CostWorkspace& ws, std::size_t sa,
                          std::size_t sb, std::size_t k);

  const Tree* tree_;
  CostOptions options_;
};

}  // namespace commsched
