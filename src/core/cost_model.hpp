// The paper's communication-cost model (§5.3, Eqs. 2-6).
//
//   Contention factor C(i,j):
//     same leaf      : L_comm / L_nodes                              (Eq. 2)
//     different leaf : Li_comm/Li_nodes + Lj_comm/Lj_nodes
//                      + (Li_comm + Lj_comm) / (2 (Li_nodes+Lj_nodes)) (Eq. 3)
//   Distance   d(i,j) = 2 * level(lowest common switch)              (Eq. 4)
//   Eff. hops  Hops(i,j) = d(i,j) * (1 + C(i,j))                     (Eq. 5)
//   Job cost   Cost = sum over steps n of max_{(i,j) in S_n} Hops(i,j) (Eq. 6)
//
// Costs can be priced for a *candidate* allocation that is not committed yet:
// the candidate job's own nodes then count toward each leaf's L_comm (the
// paper's worked Figure 5 example includes the job under consideration), via
// a per-leaf overlay so the ClusterState itself is never touched.
//
// Three evaluation paths, fastest first:
//   1. LeafCommProfile overloads — the allocation's canonical shape is looked
//      up in a CommCache and the expensive hop arithmetic runs once per
//      distinct leaf-pair *class*, independent of the rank count;
//   2. CommSchedule overloads — the leaf-aggregated fast kernel maps ranks to
//      leaves per call and memoizes hops per leaf pair (used where
//      allocations are arbitrary rank permutations, e.g. mapping/reorder);
//   3. *_reference — pair-by-pair Eq. 6, kept for differential testing.
// All three agree bit-for-bit on the same inputs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/state.hpp"
#include "collectives/comm_cache.hpp"
#include "collectives/schedule.hpp"
#include "topology/tree.hpp"

namespace commsched {

struct CostOptions {
  /// Weight each step's max-hops by the step's message size (hop-bytes,
  /// §5.3). Off reproduces Eq. 6 exactly; on is the adaptive-estimator
  /// ablation variant.
  bool hop_bytes = false;
  /// Count the candidate job's own nodes as communication-intensive load on
  /// their leaves while pricing (matches the paper's Figure 5 arithmetic).
  /// Only applies when the candidate is communication-intensive.
  bool include_candidate = true;
};

/// Extra communication-intensive node counts per leaf switch, representing a
/// hypothetical allocation on top of the committed ClusterState. Sized
/// lazily, so a default-constructed overlay (inside CostWorkspace) binds to
/// whichever topology it is first used with.
class LeafOverlay {
 public:
  LeafOverlay() = default;
  explicit LeafOverlay(const Tree& tree);

  /// Add the candidate job's nodes, `copies` per node. The schedule kernels
  /// price expanded rank lists (one entry per rank), so the profile path
  /// passes copies = ranks_per_node over the distinct node list to overlay
  /// the exact same per-leaf counts.
  void add_nodes(const Tree& tree, std::span<const NodeId> nodes,
                 int copies = 1);
  void clear();

  int extra_comm(SwitchId leaf) const;

 private:
  std::vector<int> extra_;
  std::vector<SwitchId> touched_;
};

/// Expand a whole-node allocation into a rank -> node map with
/// `ranks_per_node` MPI ranks per node (SLURM block distribution: ranks
/// 0..rpn-1 on the first node, and so on). Same-node rank pairs then price
/// at distance 0 in the cost model, matching multi-core reality (the
/// paper's machines run 4-64 ranks per node; §5.1).
std::vector<NodeId> expand_ranks_per_node(std::span<const NodeId> nodes,
                                          int ranks_per_node);

/// Per-call scratch for CostModel's fast kernels. A CostModel holds no
/// mutable state; every evaluation writes only into the workspace the caller
/// passes (or a thread-local default), so one CostModel is safe to share
/// across threads as long as each thread brings its own CostWorkspace.
/// A workspace is reusable across calls, models, and topologies; reuse keeps
/// the scratch buffers' capacity warm.
class CostWorkspace {
 public:
  CostWorkspace() = default;

 private:
  friend class CostModel;

  // leaf_slot_ maps dense leaf index -> compact slot in the current call's
  // leaf set (-1 when untouched; restored at the end of each call).
  std::vector<std::int32_t> leaf_slot_;
  std::vector<SwitchId> call_leaves_;    // distinct leaves, by slot
  std::vector<double> call_leaf_comm_;   // L_comm (+overlay), by slot
  std::vector<double> call_leaf_nodes_;  // L_nodes, by slot
  std::vector<std::int32_t> rank_slot_;  // rank -> compact slot
  std::vector<double> pair_hops_;        // slot×slot memo, -1 unset
  std::vector<double> class_worst_;      // per profile step class: max hops
  LeafOverlay overlay_;                  // candidate_cost scratch
};

/// Evaluator bound to one topology. Eq. 6 evaluations run through
/// leaf-aggregated fast kernels: `effective_hops(i, j)` depends only on
/// (leaf_of(i), leaf_of(j)) and on leaf-level state that is frozen for the
/// duration of one cost call, so each call maps the allocation to leaf slots
/// once and memoizes per-leaf-pair hops — O(distinct leaf pairs) expensive
/// evaluations instead of O(rank pairs). All methods are const and the model
/// holds no mutable state; scratch lives in an explicit CostWorkspace, so
/// concurrent calls on ONE instance are safe when each caller passes its own
/// workspace (the workspace-less overloads use a thread-local one).
class CostModel {
 public:
  explicit CostModel(const Tree& tree, CostOptions options = {});

  const Tree& tree() const noexcept { return *tree_; }
  const CostOptions& options() const noexcept { return options_; }

  /// C(i,j) per Eqs. 2-3, with `overlay` contributing extra L_comm
  /// (pass nullptr for committed-state-only pricing).
  double contention(const ClusterState& state, NodeId i, NodeId j,
                    const LeafOverlay* overlay = nullptr) const;

  /// Hops(i,j) per Eq. 5.
  double effective_hops(const ClusterState& state, NodeId i, NodeId j,
                        const LeafOverlay* overlay = nullptr) const;

  /// Eq. 6 over a committed job's allocation: `nodes[r]` is rank r's node.
  double allocation_cost(const ClusterState& state,
                         std::span<const NodeId> nodes,
                         const CommSchedule& schedule,
                         CostWorkspace& workspace) const;
  double allocation_cost(const ClusterState& state,
                         std::span<const NodeId> nodes,
                         const CommSchedule& schedule) const;

  /// Eq. 6 for a *candidate* allocation: per options_.include_candidate the
  /// candidate's nodes are overlaid onto leaf L_comm counts when the job is
  /// communication-intensive.
  double candidate_cost(const ClusterState& state,
                        std::span<const NodeId> nodes, bool comm_intensive,
                        const CommSchedule& schedule,
                        CostWorkspace& workspace) const;
  double candidate_cost(const ClusterState& state,
                        std::span<const NodeId> nodes, bool comm_intensive,
                        const CommSchedule& schedule) const;

  /// Profile-based Eq. 6: `nodes` is the *distinct ordered node list* whose
  /// canonical shape produced `profile` (nodes.size() * ranks_per_node ==
  /// profile.nprocs; ranks are block-distributed). Bit-for-bit equal to the
  /// schedule overloads over expand_ranks_per_node(nodes, rpn), at
  /// O(distinct leaf pairs per class) instead of O(rank pairs).
  double allocation_cost(const ClusterState& state,
                         std::span<const NodeId> nodes,
                         const LeafCommProfile& profile,
                         CostWorkspace& workspace) const;
  double allocation_cost(const ClusterState& state,
                         std::span<const NodeId> nodes,
                         const LeafCommProfile& profile) const;
  double candidate_cost(const ClusterState& state,
                        std::span<const NodeId> nodes, bool comm_intensive,
                        const LeafCommProfile& profile,
                        CostWorkspace& workspace) const;
  double candidate_cost(const ClusterState& state,
                        std::span<const NodeId> nodes, bool comm_intensive,
                        const LeafCommProfile& profile) const;

  /// Pair-by-pair Eq. 6 evaluation (one effective_hops call per rank pair,
  /// no memoization). Kept for differential testing of the fast kernels; the
  /// results must match allocation_cost/candidate_cost bit-for-bit.
  double allocation_cost_reference(const ClusterState& state,
                                   std::span<const NodeId> nodes,
                                   const CommSchedule& schedule) const;
  double candidate_cost_reference(const ClusterState& state,
                                  std::span<const NodeId> nodes,
                                  bool comm_intensive,
                                  const CommSchedule& schedule) const;

 private:
  double cost_impl(const ClusterState& state, std::span<const NodeId> nodes,
                   const CommSchedule& schedule, const LeafOverlay* overlay,
                   CostWorkspace& ws) const;
  double cost_profile_impl(const ClusterState& state,
                           std::span<const NodeId> nodes,
                           const LeafCommProfile& profile,
                           const LeafOverlay* overlay,
                           CostWorkspace& ws) const;
  double cost_impl_reference(const ClusterState& state,
                             std::span<const NodeId> nodes,
                             const CommSchedule& schedule,
                             const LeafOverlay* overlay) const;
  /// Map the call's distinct leaves to compact slots and freeze the
  /// per-leaf contention inputs in `ws`. Returns the slot count k and
  /// leaves ws.leaf_slot_ populated for the visited leaves (reset via
  /// release_slots). When `fill_rank_slot`, ws.rank_slot_[r] is the slot of
  /// nodes[r].
  std::size_t map_leaves(const ClusterState& state,
                         std::span<const NodeId> nodes,
                         const LeafOverlay* overlay, bool fill_rank_slot,
                         CostWorkspace& ws) const;
  void release_slots(CostWorkspace& ws) const;
  /// Memoized Eq. 5 hops between two leaf slots (frozen call state in ws).
  static double slot_hops(const Tree& tree, CostWorkspace& ws, std::size_t sa,
                          std::size_t sb, std::size_t k);

  const Tree* tree_;
  CostOptions options_;
};

}  // namespace commsched
