// The paper's communication-cost model (§5.3, Eqs. 2-6).
//
//   Contention factor C(i,j):
//     same leaf      : L_comm / L_nodes                              (Eq. 2)
//     different leaf : Li_comm/Li_nodes + Lj_comm/Lj_nodes
//                      + (Li_comm + Lj_comm) / (2 (Li_nodes+Lj_nodes)) (Eq. 3)
//   Distance   d(i,j) = 2 * level(lowest common switch)              (Eq. 4)
//   Eff. hops  Hops(i,j) = d(i,j) * (1 + C(i,j))                     (Eq. 5)
//   Job cost   Cost = sum over steps n of max_{(i,j) in S_n} Hops(i,j) (Eq. 6)
//
// Costs can be priced for a *candidate* allocation that is not committed yet:
// the candidate job's own nodes then count toward each leaf's L_comm (the
// paper's worked Figure 5 example includes the job under consideration), via
// a per-leaf overlay so the ClusterState itself is never touched.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/state.hpp"
#include "collectives/schedule.hpp"
#include "topology/tree.hpp"

namespace commsched {

struct CostOptions {
  /// Weight each step's max-hops by the step's message size (hop-bytes,
  /// §5.3). Off reproduces Eq. 6 exactly; on is the adaptive-estimator
  /// ablation variant.
  bool hop_bytes = false;
  /// Count the candidate job's own nodes as communication-intensive load on
  /// their leaves while pricing (matches the paper's Figure 5 arithmetic).
  /// Only applies when the candidate is communication-intensive.
  bool include_candidate = true;
};

/// Extra communication-intensive node counts per leaf switch, representing a
/// hypothetical allocation on top of the committed ClusterState.
class LeafOverlay {
 public:
  explicit LeafOverlay(const Tree& tree);

  /// Add the candidate job's nodes (each contributes 1 to its leaf).
  void add_nodes(const Tree& tree, std::span<const NodeId> nodes);
  void clear();

  int extra_comm(SwitchId leaf) const;

 private:
  std::vector<int> extra_;
  std::vector<SwitchId> touched_;
};

/// Expand a whole-node allocation into a rank -> node map with
/// `ranks_per_node` MPI ranks per node (SLURM block distribution: ranks
/// 0..rpn-1 on the first node, and so on). Same-node rank pairs then price
/// at distance 0 in the cost model, matching multi-core reality (the
/// paper's machines run 4-64 ranks per node; §5.1).
std::vector<NodeId> expand_ranks_per_node(std::span<const NodeId> nodes,
                                          int ranks_per_node);

/// Evaluator bound to one topology. Eq. 6 evaluations run through a
/// leaf-aggregated fast kernel: `effective_hops(i, j)` depends only on
/// (leaf_of(i), leaf_of(j)) and on leaf-level state that is frozen for the
/// duration of one cost call, so each call maps ranks to leaves once and
/// memoizes per-leaf-pair hops — O(distinct leaf pairs) expensive
/// evaluations instead of O(rank pairs). The memo lives in member scratch
/// buffers reused across calls; methods are const, but concurrent calls on
/// ONE instance race on the scratch — use one CostModel per thread.
class CostModel {
 public:
  explicit CostModel(const Tree& tree, CostOptions options = {});

  const Tree& tree() const noexcept { return *tree_; }
  const CostOptions& options() const noexcept { return options_; }

  /// C(i,j) per Eqs. 2-3, with `overlay` contributing extra L_comm
  /// (pass nullptr for committed-state-only pricing).
  double contention(const ClusterState& state, NodeId i, NodeId j,
                    const LeafOverlay* overlay = nullptr) const;

  /// Hops(i,j) per Eq. 5.
  double effective_hops(const ClusterState& state, NodeId i, NodeId j,
                        const LeafOverlay* overlay = nullptr) const;

  /// Eq. 6 over a committed job's allocation: `nodes[r]` is rank r's node.
  double allocation_cost(const ClusterState& state,
                         std::span<const NodeId> nodes,
                         const CommSchedule& schedule) const;

  /// Eq. 6 for a *candidate* allocation: per options_.include_candidate the
  /// candidate's nodes are overlaid onto leaf L_comm counts when the job is
  /// communication-intensive.
  double candidate_cost(const ClusterState& state,
                        std::span<const NodeId> nodes, bool comm_intensive,
                        const CommSchedule& schedule) const;

  /// Pair-by-pair Eq. 6 evaluation (one effective_hops call per rank pair,
  /// no memoization). Kept for differential testing of the fast kernel; the
  /// results must match allocation_cost/candidate_cost bit-for-bit.
  double allocation_cost_reference(const ClusterState& state,
                                   std::span<const NodeId> nodes,
                                   const CommSchedule& schedule) const;
  double candidate_cost_reference(const ClusterState& state,
                                  std::span<const NodeId> nodes,
                                  bool comm_intensive,
                                  const CommSchedule& schedule) const;

 private:
  double cost_impl(const ClusterState& state, std::span<const NodeId> nodes,
                   const CommSchedule& schedule,
                   const LeafOverlay* overlay) const;
  double cost_impl_reference(const ClusterState& state,
                             std::span<const NodeId> nodes,
                             const CommSchedule& schedule,
                             const LeafOverlay* overlay) const;

  const Tree* tree_;
  CostOptions options_;

  // Per-call scratch (ClusterState and overlay are frozen within a call).
  // leaf_slot_ maps dense leaf index -> compact slot in the current call's
  // leaf set (-1 when untouched; restored at the end of each call).
  mutable std::vector<std::int32_t> leaf_slot_;
  mutable std::vector<SwitchId> call_leaves_;    // distinct leaves, by slot
  mutable std::vector<double> call_leaf_comm_;   // L_comm (+overlay), by slot
  mutable std::vector<double> call_leaf_nodes_;  // L_nodes, by slot
  mutable std::vector<std::int32_t> rank_slot_;  // rank -> compact slot
  mutable std::vector<double> pair_hops_;        // slot×slot memo, -1 unset
  mutable LeafOverlay overlay_;                  // candidate_cost scratch
};

}  // namespace commsched
