#include "core/default_allocator.hpp"

#include <algorithm>

#include "core/allocator_common.hpp"
#include "util/assert.hpp"

namespace commsched {

std::optional<std::vector<NodeId>> DefaultAllocator::select(
    const ClusterState& state, const AllocationRequest& request) const {
  const SwitchId root_switch = find_lowest_level_switch(state, request.num_nodes);
  if (root_switch == kInvalidSwitch) return std::nullopt;

  std::vector<NodeId> alloc;
  alloc.reserve(static_cast<std::size_t>(request.num_nodes));
  if (state.tree().is_leaf(root_switch)) {
    take_free_nodes(state, root_switch, request.num_nodes, alloc);
    return alloc;
  }

  // Best-fit across the leaves under the chosen switch: fewest free nodes
  // first, so large contiguous blocks stay available for later jobs.
  std::vector<SwitchId> leaf_order(state.tree().leaves_under(root_switch).begin(),
                                   state.tree().leaves_under(root_switch).end());
  std::erase_if(leaf_order,
                [&](SwitchId l) { return state.leaf_free(l) == 0; });
  std::stable_sort(leaf_order.begin(), leaf_order.end(),
                   [&](SwitchId a, SwitchId b) {
                     const int fa = state.leaf_free(a);
                     const int fb = state.leaf_free(b);
                     if (fa != fb) return fa < fb;
                     return a < b;
                   });

  int remaining = request.num_nodes;
  for (const SwitchId leaf : leaf_order) {
    const int take = std::min(state.leaf_free(leaf), remaining);
    take_free_nodes(state, leaf, take, alloc);
    remaining -= take;
    if (remaining == 0) return alloc;
  }
  COMMSCHED_ASSERT_MSG(false,
                       "lowest-level switch reported enough free nodes but "
                       "leaves did not provide them");
  return std::nullopt;
}

}  // namespace commsched
