#include "core/default_allocator.hpp"

#include <algorithm>

#include "core/allocator_common.hpp"
#include "util/assert.hpp"

namespace commsched {

// hot-path: no-alloc
bool DefaultAllocator::select_into(const ClusterState& state,
                                   const AllocationRequest& request,
                                   std::vector<NodeId>& out) const {
  out.clear();
  const SwitchId root_switch = find_lowest_level_switch(state, request.num_nodes);
  if (root_switch == kInvalidSwitch) return false;

  // contract-trusted: no-alloc: caller scratch reuses reserved capacity
  out.reserve(static_cast<std::size_t>(request.num_nodes));
  if (state.tree().is_leaf(root_switch)) {
    take_free_nodes(state, root_switch, request.num_nodes, out);
    return true;
  }

  // Best-fit across the leaves under the chosen switch: fewest free nodes
  // first, so large contiguous blocks stay available for later jobs.
  auto& leaf_order = leaf_order_;
  leaf_order.clear();
  for (const SwitchId l : state.tree().leaves_under(root_switch))
    // contract-trusted: no-alloc: member scratch reuses capacity across calls
    if (state.leaf_free(l) > 0) leaf_order.push_back(l);
  std::stable_sort(leaf_order.begin(), leaf_order.end(),
                   [&](SwitchId a, SwitchId b) {
                     const int fa = state.leaf_free(a);
                     const int fb = state.leaf_free(b);
                     if (fa != fb) return fa < fb;
                     return a < b;
                   });

  int remaining = request.num_nodes;
  for (const SwitchId leaf : leaf_order) {
    const int take = std::min(state.leaf_free(leaf), remaining);
    take_free_nodes(state, leaf, take, out);
    remaining -= take;
    if (remaining == 0) return true;
  }
  COMMSCHED_ASSERT_MSG(false,
                       "lowest-level switch reported enough free nodes but "
                       "leaves did not provide them");
  return false;
}

}  // namespace commsched
