// SLURM's stock topology/tree + select/linear policy (§3.1) — the paper's
// baseline.  Finds the lowest-level switch with enough free nodes, then
// fills leaf switches under it best-fit (fewest free nodes first) to limit
// fragmentation.  Job characteristics are ignored, exactly as in stock SLURM.
#pragma once

#include "core/allocator.hpp"

namespace commsched {

class DefaultAllocator final : public Allocator {
 public:
  const char* name() const noexcept override { return "default"; }

  bool select_into(const ClusterState& state,
                   const AllocationRequest& request,
                   std::vector<NodeId>& out) const override;

 private:
  // workspace: leaf-ordering scratch reused across const select_into()
  // calls; cleared on entry, never observable.
  mutable std::vector<SwitchId> leaf_order_;
};

}  // namespace commsched
