// SLURM's stock topology/tree + select/linear policy (§3.1) — the paper's
// baseline.  Finds the lowest-level switch with enough free nodes, then
// fills leaf switches under it best-fit (fewest free nodes first) to limit
// fragmentation.  Job characteristics are ignored, exactly as in stock SLURM.
#pragma once

#include "core/allocator.hpp"

namespace commsched {

class DefaultAllocator final : public Allocator {
 public:
  const char* name() const noexcept override { return "default"; }

  std::optional<std::vector<NodeId>> select(
      const ClusterState& state, const AllocationRequest& request) const override;
};

}  // namespace commsched
