#include "core/degradation_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace commsched {

DegradationModel::DegradationModel(const Tree& tree,
                                   const DegradationOptions& options,
                                   const RuntimeModelOptions& clamps)
    : tree_(&tree), options_(options), max_factor_(clamps.max_ratio) {
  COMMSCHED_ASSERT_GE_MSG(options.alpha, 0.0,
                          "degradation sensitivity must be non-negative");
  COMMSCHED_ASSERT_GE_MSG(max_factor_, 1.0,
                          "max_ratio below 1 would make colocation a speedup");
}

LoadUnits DegradationModel::quantize_load(bool comm_intensive,
                                          double comm_fraction) {
  if (!comm_intensive) return 0;
  COMMSCHED_ASSERT(comm_fraction >= 0.0 && comm_fraction <= 1.0);
  return static_cast<LoadUnits>(
      std::llround(comm_fraction * static_cast<double>(kLoadUnitScale)));
}

// hot-path: no-alloc
double DegradationModel::external_load(const ClusterState& state,
                                       std::span<const NodeId> nodes,
                                       LoadUnits own_load,
                                       DegradationWorkspace& ws) const {
  if (nodes.empty()) return 0.0;
  const auto leaf_count = static_cast<std::size_t>(tree_->leaf_count());
  if (ws.per_leaf.size() != leaf_count) {
    // contract-trusted: no-alloc: workspace warms up once per tree, then
    // every evaluation reuses the stamped arrays
    ws.per_leaf.assign(leaf_count, 0);
    ws.stamp.assign(leaf_count, 0);
    ws.touched.reserve(leaf_count);
    ws.epoch = 0;
  }
  if (++ws.epoch == 0) {
    std::fill(ws.stamp.begin(), ws.stamp.end(), 0);
    ws.epoch = 1;
  }
  ws.touched.clear();
  for (const NodeId n : nodes) {
    const auto li =
        static_cast<std::size_t>(tree_->leaf_index(tree_->leaf_of(n)));
    if (ws.stamp[li] != ws.epoch) {
      ws.stamp[li] = ws.epoch;
      ws.per_leaf[li] = 0;
      // contract-trusted: no-alloc: capacity reserved to leaf_count above
      ws.touched.push_back(static_cast<std::int32_t>(li));
    }
    ++ws.per_leaf[li];
  }
  // Node-weighted mean over the job's leaves of the other jobs' load per
  // attached node. Summed in ws.touched order — first appearance in `nodes`
  // order — which is identical for any two evaluations over the same
  // allocation, keeping the floating-point result reproducible.
  const double inv_job_nodes = 1.0 / static_cast<double>(nodes.size());
  double external = 0.0;
  for (const std::int32_t li : ws.touched) {
    const SwitchId leaf = tree_->leaves()[static_cast<std::size_t>(li)];
    const auto here = static_cast<LoadUnits>(
        ws.per_leaf[static_cast<std::size_t>(li)]);
    const LoadUnits others = state.leaf_load(leaf) - here * own_load;
    COMMSCHED_ASSERT_GE_MSG(others, 0,
                            "co-located load underflow: own contribution "
                            "exceeds the leaf accumulator");
    if (others == 0) continue;
    const double weight = static_cast<double>(here) * inv_job_nodes;
    const double per_node =
        static_cast<double>(others) /
        (static_cast<double>(kLoadUnitScale) *
         static_cast<double>(state.leaf_nodes(leaf)));
    external += weight * per_node;
  }
  return external;
}

// hot-path: no-alloc
double DegradationModel::factor(const ClusterState& state,
                                std::span<const NodeId> nodes,
                                LoadUnits own_load,
                                DegradationWorkspace& ws) const {
  if (own_load <= 0 || options_.alpha == 0.0) return 1.0;
  const double intensity =
      static_cast<double>(own_load) / static_cast<double>(kLoadUnitScale);
  const double external = external_load(state, nodes, own_load, ws);
  const double raw = 1.0 + options_.alpha * intensity * external;
  return std::clamp(raw, 1.0, max_factor_);
}

}  // namespace commsched
