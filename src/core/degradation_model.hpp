// Colocation degradation model (DESIGN.md "Dynamic interference").
//
// The paper's Eq. 7 freezes a job's contention penalty at allocation time,
// but Eqs. 2-3 define contention in terms of *who shares links right now*.
// This model closes that gap: it maps a job's own communication intensity
// plus the co-located communication load on the leaves it occupies (the
// ClusterState L_load accumulators) to a runtime inflation factor
//
//   factor = clamp(1 + alpha * intensity * external, 1, max_ratio)
//
// where `intensity` is the job's per-node load in [0, 1] (comm_fraction,
// quantized to LoadUnits), `external` is the node-weighted mean of the
// *other* jobs' load per attached node across the job's leaves, and the
// upper clamp reuses RuntimeModelOptions::max_ratio (the same guard Eq. 7
// applies to its cost ratio). With no co-located load the factor is exactly
// 1 and the simulator's runtime is the paper's static Eq. 7 value — the
// static model is recovered as the zero-dynamic-load special case.
//
// The shape follows the real SLURM colocation plugin's degradation model
// (felippezacarias/slurm: sched/colocation + model/degradation_model.py),
// which predicts slowdown from the aggregate pressure of co-runners, and
// the SST scheduler/network coupling of arXiv 2501.18191.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/state.hpp"
#include "core/runtime_model.hpp"
#include "topology/tree.hpp"

namespace commsched {

struct DegradationOptions {
  /// Master switch for dynamic re-evaluation in the simulator. Off keeps
  /// the paper's allocation-time-frozen Eq. 7 behaviour bit for bit.
  bool enabled = false;
  /// Sensitivity: runtime inflation per (intensity × external-load) unit.
  /// 0 disables degradation arithmetic even when `enabled` (useful as the
  /// re-evaluation-machinery-on, model-neutral ablation point).
  double alpha = 1.0;
};

/// Scratch for DegradationModel::external_load — per-leaf node counts with
/// epoch stamps so repeated evaluations allocate nothing once warm. One
/// workspace per simulation thread; reusing it across trees is invalid.
struct DegradationWorkspace {
  std::vector<std::int32_t> per_leaf;     // nodes of the job on this leaf
  std::vector<std::uint32_t> stamp;       // epoch marks, parallel to per_leaf
  std::vector<std::int32_t> touched;      // distinct dense leaf ids this eval
  std::uint32_t epoch = 0;
};

/// Maps co-located communication load to a runtime inflation factor.
/// Immutable after construction; evaluation state lives in the caller's
/// DegradationWorkspace, so one model can serve concurrent simulations.
class DegradationModel {
 public:
  DegradationModel(const Tree& tree, const DegradationOptions& options,
                   const RuntimeModelOptions& clamps);

  const DegradationOptions& options() const noexcept { return options_; }

  /// Quantize a job's communication intensity to per-node LoadUnits:
  /// comm-intensive jobs contribute round(comm_fraction * kLoadUnitScale),
  /// compute-bound jobs contribute nothing.
  static LoadUnits quantize_load(bool comm_intensive, double comm_fraction);

  /// Node-weighted mean external load per attached node over the leaves of
  /// `nodes`, in load-fraction units (1.0 == every co-located node fully
  /// communication-bound). `own_load` is subtracted from each shared leaf's
  /// accumulator — pass the job's own per-node load when `nodes` is already
  /// committed to `state`, or 0 when pricing a prospective placement.
  double external_load(const ClusterState& state,
                       std::span<const NodeId> nodes, LoadUnits own_load,
                       DegradationWorkspace& ws) const;

  /// The inflation factor for a *committed* allocation: >= 1, monotone
  /// non-decreasing in every co-located job's load, exactly 1 at zero
  /// external load, clamped to RuntimeModelOptions::max_ratio above.
  double factor(const ClusterState& state, std::span<const NodeId> nodes,
                LoadUnits own_load, DegradationWorkspace& ws) const;

 private:
  const Tree* tree_;
  DegradationOptions options_;
  double max_factor_;  // RuntimeModelOptions::max_ratio
};

}  // namespace commsched
