#include "core/exclusive_allocator.hpp"

#include <algorithm>

#include "core/allocator_common.hpp"
#include "util/assert.hpp"

namespace commsched {

// hot-path: no-alloc
bool ExclusiveAllocator::select_into(const ClusterState& state,
                                     const AllocationRequest& request,
                                     std::vector<NodeId>& out) const {
  const Tree& tree = state.tree();
  out.clear();
  // contract-trusted: no-alloc: caller scratch reuses reserved capacity
  out.reserve(static_cast<std::size_t>(request.num_nodes));

  // Small jobs: a completely idle leaf that fits the whole request keeps
  // the job isolated without fragmenting several leaves. Pick the
  // best-fitting (smallest sufficient) idle leaf.
  SwitchId best_leaf = kInvalidSwitch;
  for (const SwitchId leaf : tree.leaves()) {
    if (state.leaf_busy(leaf) != 0) continue;
    if (state.leaf_nodes(leaf) < request.num_nodes) continue;
    if (best_leaf == kInvalidSwitch ||
        state.leaf_nodes(leaf) < state.leaf_nodes(best_leaf))
      best_leaf = leaf;
  }
  if (best_leaf != kInvalidSwitch) {
    take_free_nodes(state, best_leaf, request.num_nodes, out);
    return true;
  }

  // Large jobs: gather whole idle leaves (largest first, to use as few
  // switches as possible) until the request is covered. The last leaf may
  // be partially used, but remains dedicated to this job regardless.
  auto& idle = idle_;
  idle.clear();
  for (const SwitchId leaf : tree.leaves())
    // contract-trusted: no-alloc: member scratch reuses capacity across calls
    if (state.leaf_busy(leaf) == 0) idle.push_back(leaf);
  std::stable_sort(idle.begin(), idle.end(), [&](SwitchId a, SwitchId b) {
    const int na = state.leaf_nodes(a);
    const int nb = state.leaf_nodes(b);
    if (na != nb) return na > nb;
    return a < b;
  });
  int available = 0;
  for (const SwitchId leaf : idle) available += state.leaf_nodes(leaf);
  if (available < request.num_nodes) return false;  // must wait

  int remaining = request.num_nodes;
  for (const SwitchId leaf : idle) {
    const int take = std::min(state.leaf_nodes(leaf), remaining);
    take_free_nodes(state, leaf, take, out);
    remaining -= take;
    if (remaining == 0) return true;
  }
  COMMSCHED_ASSERT_MSG(false, "idle-leaf capacity changed mid-selection");
  return false;
}

}  // namespace commsched
