// Interference-free allocation — the related-work baseline the paper
// contrasts against (§2, Pollard et al. [20], SC'18).
//
// Jobs are placed so that no leaf switch is shared between two jobs: a job
// receives nodes only from leaf switches that are currently empty (plus, as
// in the original policy, small jobs that fit inside a single leaf may share
// that leaf with nothing). This eliminates inter-job link sharing at the
// leaf level entirely — the strongest possible isolation on a two-level
// tree — but refuses allocations a sharing policy would grant, which is
// exactly the wait-time penalty the paper points out ("these restrictions
// negatively impact the wait time").
//
// bench_related_work quantifies that trade-off against the paper's
// policies.
#pragma once

#include "core/allocator.hpp"

namespace commsched {

class ExclusiveAllocator final : public Allocator {
 public:
  const char* name() const noexcept override { return "exclusive"; }

  bool select_into(const ClusterState& state,
                   const AllocationRequest& request,
                   std::vector<NodeId>& out) const override;

 private:
  // workspace: idle-leaf ordering scratch reused across const select_into()
  // calls; cleared on entry, never observable.
  mutable std::vector<SwitchId> idle_;
};

}  // namespace commsched
