#include "core/greedy_allocator.hpp"

#include <algorithm>

#include "core/allocator_common.hpp"
#include "util/assert.hpp"

namespace commsched {

// hot-path: no-alloc
bool GreedyAllocator::select_into(const ClusterState& state,
                                  const AllocationRequest& request,
                                  std::vector<NodeId>& out) const {
  out.clear();
  const SwitchId top = find_lowest_level_switch(state, request.num_nodes);
  if (top == kInvalidSwitch) return false;

  // contract-trusted: no-alloc: caller scratch reuses reserved capacity
  out.reserve(static_cast<std::size_t>(request.num_nodes));
  // Algorithm 1 lines 3-5: a single leaf satisfies the whole request.
  if (state.tree().is_leaf(top)) {
    take_free_nodes(state, top, request.num_nodes, out);
    return true;
  }

  // Lines 7-10: order leaves by communication ratio; ascending for
  // communication-intensive jobs, descending otherwise.
  auto& leaf_order = leaf_order_;
  leaf_order.clear();
  for (const SwitchId l : state.tree().leaves_under(top))
    // contract-trusted: no-alloc: member scratch reuses capacity across calls
    if (state.leaf_free(l) > 0) leaf_order.push_back(l);
  std::stable_sort(leaf_order.begin(), leaf_order.end(),
                   [&](SwitchId a, SwitchId b) {
                     const double ra = communication_ratio(state, a);
                     const double rb = communication_ratio(state, b);
                     if (ra != rb)
                       return request.comm_intensive ? ra < rb : ra > rb;
                     return a < b;
                   });

  // Lines 11-18: fill leaves in sorted order.
  int remaining = request.num_nodes;
  for (const SwitchId leaf : leaf_order) {
    const int take = std::min(state.leaf_free(leaf), remaining);
    take_free_nodes(state, leaf, take, out);
    remaining -= take;
    if (remaining == 0) return true;
  }
  COMMSCHED_ASSERT_MSG(false,
                       "lowest-level switch reported enough free nodes but "
                       "leaves did not provide them");
  return false;
}

}  // namespace commsched
