// Greedy allocation — the paper's Algorithm 1 (§4.1).
//
// Orders the leaf switches under the lowest feasible switch by their
// communication ratio (Eq. 1): ascending for communication-intensive jobs
// (least-contended, emptiest leaves first) and descending for
// compute-intensive jobs (so quiet leaves stay available for communicating
// jobs), then fills leaves in that order.
#pragma once

#include "core/allocator.hpp"

namespace commsched {

class GreedyAllocator final : public Allocator {
 public:
  const char* name() const noexcept override { return "greedy"; }

  bool select_into(const ClusterState& state,
                   const AllocationRequest& request,
                   std::vector<NodeId>& out) const override;

 private:
  // workspace: leaf-ordering scratch reused across const select_into()
  // calls; cleared on entry, never observable.
  mutable std::vector<SwitchId> leaf_order_;
};

}  // namespace commsched
