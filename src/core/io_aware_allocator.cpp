#include "core/io_aware_allocator.hpp"

#include <algorithm>
#include <utility>

#include "core/allocator_common.hpp"
#include "util/assert.hpp"

namespace commsched {

IoAwareAllocator::IoAwareAllocator(CostOptions cost_options,
                                   std::shared_ptr<CommCache> cache)
    : cost_options_(cost_options), cache_(std::move(cache)) {
  if (!cache_) cache_ = std::make_shared<CommCache>(double{1 << 20});
}

std::optional<std::vector<NodeId>> IoAwareAllocator::spread_candidate(
    const ClusterState& state, int num_nodes) {
  std::vector<NodeId> out;
  std::vector<SwitchId> order;
  std::vector<int> desired;
  if (!spread_into(state, num_nodes, out, order, desired)) return std::nullopt;
  return out;
}

// hot-path: no-alloc
bool IoAwareAllocator::spread_into(const ClusterState& state, int num_nodes,
                                   std::vector<NodeId>& out,
                                   std::vector<SwitchId>& order,
                                   std::vector<int>& desired) {
  COMMSCHED_ASSERT_GE(num_nodes, 1);
  out.clear();
  if (state.total_free() < num_nodes) return false;
  const Tree& tree = state.tree();

  // Leaves in ascending I/O-load order (fraction of nodes doing I/O),
  // ties by more free nodes, then id.
  order.clear();
  for (const SwitchId l : tree.leaves())
    // contract-trusted: no-alloc: caller scratch reuses reserved capacity
    if (state.leaf_free(l) > 0) order.push_back(l);
  std::stable_sort(order.begin(), order.end(), [&](SwitchId a, SwitchId b) {
    const double ia = static_cast<double>(state.leaf_io(a)) / state.leaf_nodes(a);
    const double ib = static_cast<double>(state.leaf_io(b)) / state.leaf_nodes(b);
    if (ia != ib) return ia < ib;
    if (state.leaf_free(a) != state.leaf_free(b))
      return state.leaf_free(a) > state.leaf_free(b);
    return a < b;
  });

  // Even water-fill over the least-loaded leaves: every leaf gets an
  // (almost) equal share, capped by its free capacity, with any deficit
  // pushed onto the later (more loaded) leaves. Blocks stay contiguous in
  // rank space so the communication term is not wrecked by interleaving.
  const auto k = order.size();
  // contract-trusted: no-alloc: caller scratch reuses reserved capacity
  desired.assign(k, 0);
  const int base = num_nodes / static_cast<int>(k);
  int extra = num_nodes % static_cast<int>(k);
  for (std::size_t i = 0; i < k; ++i) {
    desired[i] = base + (static_cast<int>(i) < extra ? 1 : 0);
  }
  int deficit = 0;
  for (std::size_t i = 0; i < k; ++i) {
    desired[i] += deficit;
    deficit = 0;
    const int free = state.leaf_free(order[i]);
    if (desired[i] > free) {
      deficit = desired[i] - free;
      desired[i] = free;
    }
  }
  // Any residue wraps around to leaves with spare capacity.
  for (std::size_t i = 0; i < k && deficit > 0; ++i) {
    const int spare = state.leaf_free(order[i]) - desired[i];
    const int take = std::min(spare, deficit);
    desired[i] += take;
    deficit -= take;
  }
  COMMSCHED_ASSERT_EQ_MSG(deficit, 0, "free-node accounting out of sync");

  // contract-trusted: no-alloc: caller scratch reuses reserved capacity
  out.reserve(static_cast<std::size_t>(num_nodes));
  for (std::size_t i = 0; i < k; ++i) {
    // The free index lists exactly the leaf's free nodes ascending — the
    // same prefix the old is_free() scan over nodes_of_leaf() took.
    const std::span<const NodeId> free = state.free_leaf_span(order[i]);
    COMMSCHED_ASSERT_GE(static_cast<int>(free.size()), desired[i]);
    // contract-trusted: no-alloc: caller scratch reuses reserved capacity
    out.insert(out.end(), free.begin(), free.begin() + desired[i]);
  }
  return true;
}

// hot-path: no-alloc
bool IoAwareAllocator::select_into(const ClusterState& state,
                                   const AllocationRequest& request,
                                   std::vector<NodeId>& out) const {
  // Candidates.
  const bool have_greedy = greedy_.select_into(state, request, greedy_pick_);
  const bool have_balanced =
      balanced_.select_into(state, request, balanced_pick_);
  const bool have_spread = spread_into(state, request.num_nodes, spread_pick_,
                                       spread_order_, spread_desired_);
  const bool have_default =
      default_.select_into(state, request, default_pick_);
  if (!have_default) {  // nothing fits at all
    out.clear();
    return false;
  }

  const CostModel comm_model(state.tree(), cost_options_);
  const IoModel io_model(state.tree());

  const double comm_base =
      (request.comm_intensive && request.num_nodes >= 2)
          ? profiled_candidate_cost(comm_model, *cache_, state, default_pick_,
                                    request.comm_intensive, request.pattern,
                                    workspace_)
          : 0.0;
  const double io_base =
      io_model.candidate_cost(state, default_pick_, request.io_intensive);

  const auto score = [&](const std::vector<NodeId>& nodes) {
    double s = 0.0;
    if (request.comm_intensive && request.num_nodes >= 2 &&
        request.comm_fraction > 0.0)
      s += request.comm_fraction *
           cost_ratio(profiled_candidate_cost(comm_model, *cache_, state,
                                              nodes, request.comm_intensive,
                                              request.pattern, workspace_),
                      comm_base);
    if (request.io_intensive && request.io_fraction > 0.0)
      s += request.io_fraction *
           cost_ratio(io_model.candidate_cost(state, nodes,
                                              request.io_intensive),
                      io_base);
    return s;
  };

  const std::vector<NodeId>* best = nullptr;
  double best_score = 0.0;
  const std::pair<bool, const std::vector<NodeId>*> candidates[] = {
      {have_greedy, &greedy_pick_},
      {have_balanced, &balanced_pick_},
      {have_spread, &spread_pick_},
  };
  for (const auto& [have, candidate] : candidates) {
    if (!have) continue;
    const double s = score(*candidate);
    if (best == nullptr || s < best_score) {
      best_score = s;
      best = candidate;
    }
  }
  // No candidate: fall back to stock.
  out = best != nullptr ? *best : default_pick_;
  return true;
}

}  // namespace commsched
