#include "core/io_aware_allocator.hpp"

#include <algorithm>
#include <utility>

#include "core/allocator_common.hpp"
#include "util/assert.hpp"

namespace commsched {

IoAwareAllocator::IoAwareAllocator(CostOptions cost_options,
                                   std::shared_ptr<CommCache> cache)
    : cost_options_(cost_options), cache_(std::move(cache)) {
  if (!cache_) cache_ = std::make_shared<CommCache>(double{1 << 20});
}

std::optional<std::vector<NodeId>> IoAwareAllocator::spread_candidate(
    const ClusterState& state, int num_nodes) {
  COMMSCHED_ASSERT_GE(num_nodes, 1);
  if (state.total_free() < num_nodes) return std::nullopt;
  const Tree& tree = state.tree();

  // Leaves in ascending I/O-load order (fraction of nodes doing I/O),
  // ties by more free nodes, then id.
  std::vector<SwitchId> order(tree.leaves().begin(), tree.leaves().end());
  std::erase_if(order, [&](SwitchId l) { return state.leaf_free(l) == 0; });
  std::stable_sort(order.begin(), order.end(), [&](SwitchId a, SwitchId b) {
    const double ia = static_cast<double>(state.leaf_io(a)) / state.leaf_nodes(a);
    const double ib = static_cast<double>(state.leaf_io(b)) / state.leaf_nodes(b);
    if (ia != ib) return ia < ib;
    if (state.leaf_free(a) != state.leaf_free(b))
      return state.leaf_free(a) > state.leaf_free(b);
    return a < b;
  });

  // Even water-fill over the least-loaded leaves: every leaf gets an
  // (almost) equal share, capped by its free capacity, with any deficit
  // pushed onto the later (more loaded) leaves. Blocks stay contiguous in
  // rank space so the communication term is not wrecked by interleaving.
  const auto k = order.size();
  std::vector<int> desired(k, 0);
  const int base = num_nodes / static_cast<int>(k);
  int extra = num_nodes % static_cast<int>(k);
  for (std::size_t i = 0; i < k; ++i) {
    desired[i] = base + (static_cast<int>(i) < extra ? 1 : 0);
  }
  int deficit = 0;
  for (std::size_t i = 0; i < k; ++i) {
    desired[i] += deficit;
    deficit = 0;
    const int free = state.leaf_free(order[i]);
    if (desired[i] > free) {
      deficit = desired[i] - free;
      desired[i] = free;
    }
  }
  // Any residue wraps around to leaves with spare capacity.
  for (std::size_t i = 0; i < k && deficit > 0; ++i) {
    const int spare = state.leaf_free(order[i]) - desired[i];
    const int take = std::min(spare, deficit);
    desired[i] += take;
    deficit -= take;
  }
  COMMSCHED_ASSERT_EQ_MSG(deficit, 0, "free-node accounting out of sync");

  std::vector<NodeId> alloc;
  alloc.reserve(static_cast<std::size_t>(num_nodes));
  for (std::size_t i = 0; i < k; ++i) {
    int taken = 0;
    for (const NodeId n : tree.nodes_of_leaf(order[i])) {
      if (taken == desired[i]) break;
      if (state.is_free(n)) {
        alloc.push_back(n);
        ++taken;
      }
    }
    COMMSCHED_ASSERT_EQ(taken, desired[i]);
  }
  return alloc;
}

std::optional<std::vector<NodeId>> IoAwareAllocator::select(
    const ClusterState& state, const AllocationRequest& request) const {
  // Candidates.
  auto greedy_pick = greedy_.select(state, request);
  auto balanced_pick = balanced_.select(state, request);
  auto spread_pick = spread_candidate(state, request.num_nodes);
  const auto default_pick = default_.select(state, request);
  if (!default_pick) return std::nullopt;  // nothing fits at all

  const CostModel comm_model(state.tree(), cost_options_);
  const IoModel io_model(state.tree());

  const double comm_base =
      (request.comm_intensive && request.num_nodes >= 2)
          ? profiled_candidate_cost(comm_model, *cache_, state, *default_pick,
                                    request.comm_intensive, request.pattern,
                                    workspace_)
          : 0.0;
  const double io_base =
      io_model.candidate_cost(state, *default_pick, request.io_intensive);

  const auto score = [&](const std::vector<NodeId>& nodes) {
    double s = 0.0;
    if (request.comm_intensive && request.num_nodes >= 2 &&
        request.comm_fraction > 0.0)
      s += request.comm_fraction *
           cost_ratio(profiled_candidate_cost(comm_model, *cache_, state,
                                              nodes, request.comm_intensive,
                                              request.pattern, workspace_),
                      comm_base);
    if (request.io_intensive && request.io_fraction > 0.0)
      s += request.io_fraction *
           cost_ratio(io_model.candidate_cost(state, nodes,
                                              request.io_intensive),
                      io_base);
    return s;
  };

  std::optional<std::vector<NodeId>> best;
  double best_score = 0.0;
  for (auto* candidate : {&greedy_pick, &balanced_pick, &spread_pick}) {
    if (!candidate->has_value()) continue;
    const double s = score(**candidate);
    if (!best || s < best_score) {
      best_score = s;
      best = std::move(*candidate);
    }
  }
  if (!best) return default_pick;  // no candidate: fall back to stock
  return best;
}

}  // namespace commsched
