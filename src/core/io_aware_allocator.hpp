// I/O-aware allocation — the paper's §7 future work, combining the
// communication cost model with the I/O contention model.
//
// Three candidate placements are generated: greedy (Algorithm 1), balanced
// (Algorithm 2) and an "I/O spread" that distributes the job's nodes evenly
// across the leaves with the least I/O load (minimizing per-leaf L_io
// stacking). Each candidate is scored by
//
//     comm_fraction * CommCost(c)/CommCost(default)
//   + io_fraction   * IoCost(c)/IoCost(default)
//
// — the expected Eq. 7-style runtime multiplier of the candidate — and the
// cheapest wins. A job with io_fraction 0 degenerates to the adaptive
// policy's choice; a pure-I/O job gets the spread. Communication terms are
// priced through the shared CommCache's canonical-shape profiles.
#pragma once

#include <memory>
#include <optional>

#include "collectives/comm_cache.hpp"
#include "core/allocator.hpp"
#include "core/balanced_allocator.hpp"
#include "core/cost_model.hpp"
#include "core/default_allocator.hpp"
#include "core/greedy_allocator.hpp"
#include "core/io_model.hpp"

namespace commsched {

class IoAwareAllocator final : public Allocator {
 public:
  /// `cache` is the run-wide schedule/profile cache; when null the allocator
  /// owns a private one (standalone construction in tests/benches).
  explicit IoAwareAllocator(CostOptions cost_options = {.hop_bytes = true},
                            std::shared_ptr<CommCache> cache = nullptr);

  const char* name() const noexcept override { return "io_aware"; }

  bool select_into(const ClusterState& state,
                   const AllocationRequest& request,
                   std::vector<NodeId>& out) const override;

  /// The I/O-spread candidate by itself (exposed for tests/benches):
  /// near-equal contiguous blocks over the least-I/O-loaded leaves, so the
  /// per-leaf L_io growth is minimal while rank blocks stay intact.
  static std::optional<std::vector<NodeId>> spread_candidate(
      const ClusterState& state, int num_nodes);

 private:
  /// spread_candidate core; `order`/`desired` are caller-provided scratch.
  static bool spread_into(const ClusterState& state, int num_nodes,
                          std::vector<NodeId>& out,
                          std::vector<SwitchId>& order,
                          std::vector<int>& desired);

  GreedyAllocator greedy_;
  BalancedAllocator balanced_;
  DefaultAllocator default_;
  CostOptions cost_options_;
  std::shared_ptr<CommCache> cache_;
  // workspace: cost-kernel scratch reused across const select() calls;
  // observable state is untouched (CostModel itself is stateless).
  mutable CostWorkspace workspace_;
  // workspace: candidate buffers and spread scratch reused across const
  // select_into() calls; overwritten on entry, never observable.
  mutable std::vector<NodeId> greedy_pick_;
  // workspace: see greedy_pick_.
  mutable std::vector<NodeId> balanced_pick_;
  // workspace: see greedy_pick_.
  mutable std::vector<NodeId> spread_pick_;
  // workspace: see greedy_pick_.
  mutable std::vector<NodeId> default_pick_;
  // workspace: see greedy_pick_.
  mutable std::vector<SwitchId> spread_order_;
  // workspace: see greedy_pick_.
  mutable std::vector<int> spread_desired_;
};

}  // namespace commsched
