#include "core/io_model.hpp"

#include "util/assert.hpp"

namespace commsched {

IoModel::IoModel(const Tree& tree) : tree_(&tree) {}

// hot-path: no-alloc
double IoModel::contention(const ClusterState& state, NodeId n,
                           const LeafOverlay* overlay) const {
  const SwitchId leaf = tree_->leaf_of(n);
  const double io =
      state.leaf_io(leaf) + (overlay ? overlay->extra_comm(leaf) : 0);
  return io / static_cast<double>(state.leaf_nodes(leaf));
}

// hot-path: no-alloc
double IoModel::allocation_cost(const ClusterState& state,
                                std::span<const NodeId> nodes) const {
  const double d_io = 2.0 * tree_->depth();
  double total = 0.0;
  for (const NodeId n : nodes)
    total += d_io * (1.0 + contention(state, n, nullptr));
  return total;
}

// hot-path: no-alloc
double IoModel::candidate_cost(const ClusterState& state,
                               std::span<const NodeId> nodes,
                               bool io_intensive) const {
  if (!io_intensive) return allocation_cost(state, nodes);
  LeafOverlay overlay(*tree_);
  overlay.add_nodes(*tree_, nodes);
  const double d_io = 2.0 * tree_->depth();
  double total = 0.0;
  for (const NodeId n : nodes)
    total += d_io * (1.0 + contention(state, n, &overlay));
  return total;
}

// hot-path: no-alloc
double modified_runtime_with_io(double runtime, double comm_fraction,
                                double comm_ratio_num, double comm_ratio_den,
                                double io_fraction, double io_ratio_num,
                                double io_ratio_den,
                                const RuntimeModelOptions& options) {
  COMMSCHED_ASSERT_GE(runtime, 0.0);
  COMMSCHED_ASSERT(comm_fraction >= 0.0 && io_fraction >= 0.0);
  COMMSCHED_ASSERT_LE_MSG(comm_fraction + io_fraction, 1.0 + 1e-12,
                          "comm and I/O fractions exceed the runtime");
  const double rc = cost_ratio(comm_ratio_num, comm_ratio_den, options);
  const double rio = cost_ratio(io_ratio_num, io_ratio_den, options);
  const double t_comm = runtime * comm_fraction;
  const double t_io = runtime * io_fraction;
  const double t_compute = runtime - t_comm - t_io;
  return t_compute + t_comm * rc + t_io * rio;
}

}  // namespace commsched
