// I/O contention model — the paper's §7 future work ("I/O-aware scheduling
// algorithms that consider I/O patterns in addition to communication
// patterns"), built in the image of the communication model.
//
// The storage system hangs off the tree's root (the usual PFS-behind-the-
// core design), so every node's I/O path climbs the full tree:
//   d_io(n) = 2 * depth                                       (cf. Eq. 4)
//   C_io(n) = Li_io / Li_nodes                                (cf. Eq. 2)
//   IoCost(A) = sum over allocated nodes of d_io * (1 + C_io) (cf. Eq. 6)
// where L_io counts nodes running I/O-intensive jobs on the node's leaf —
// the leaf uplink is the first shared hop of the I/O path, so stacking
// I/O-heavy jobs behind one leaf switch is what the model penalizes.
// An I/O-aware policy therefore wants to *spread* I/O-heavy jobs across
// leaves — the exact opposite pull of the balanced communication policy,
// which is why the combined allocator weighs both terms by the job's time
// fractions.
//
// Runtime impact extends Eq. 7 symmetrically:
//   T' = T_compute + T_comm * ratio_comm + T_io * ratio_io.
#pragma once

#include <span>

#include "cluster/state.hpp"
#include "core/cost_model.hpp"
#include "core/runtime_model.hpp"
#include "topology/tree.hpp"

namespace commsched {

class IoModel {
 public:
  explicit IoModel(const Tree& tree);

  /// C_io of one node's leaf, with an optional overlay of extra
  /// I/O-intensive nodes (candidate pricing, as in the comm model).
  double contention(const ClusterState& state, NodeId n,
                    const LeafOverlay* overlay = nullptr) const;

  /// IoCost of a committed allocation.
  double allocation_cost(const ClusterState& state,
                         std::span<const NodeId> nodes) const;

  /// IoCost of a candidate allocation; when `io_intensive`, the candidate's
  /// own nodes are overlaid onto the L_io counts.
  double candidate_cost(const ClusterState& state,
                        std::span<const NodeId> nodes,
                        bool io_intensive) const;

 private:
  const Tree* tree_;
};

/// Eq. 7 extended with an I/O term. Fractions must satisfy
/// comm_fraction + io_fraction <= 1; each ratio is clamped like Eq. 7's.
double modified_runtime_with_io(double runtime, double comm_fraction,
                                double comm_ratio_num, double comm_ratio_den,
                                double io_fraction, double io_ratio_num,
                                double io_ratio_den,
                                const RuntimeModelOptions& options = {});

}  // namespace commsched
