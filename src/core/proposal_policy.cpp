#include "core/proposal_policy.hpp"

namespace commsched {

namespace {

/// Share of proposals that are two-slot swaps (when >= 2 slots exist).
/// Swaps explore placement permutations capacity-neutrally; reassignments
/// explore new leaves. A fixed split keeps both move kinds in play at every
/// temperature.
constexpr double kSwapProbability = 0.25;

/// Rejection-sampling attempts for the locality bias before falling back to
/// the last uniform draw. Bounded so one propose() call stays O(1).
constexpr int kLocalityTries = 8;

// hot-path: no-alloc
bool propose_swap(const SaMoveContext& ctx, Rng& rng, MoveProposal& out) {
  const auto k = static_cast<std::int64_t>(ctx.slot_leaf.size());
  if (k < 2) return false;
  const auto s1 = rng.uniform_int(0, k - 1);
  auto s2 = rng.uniform_int(0, k - 2);
  if (s2 >= s1) ++s2;  // uniform over the other slots
  out.moves[0] = {static_cast<std::int32_t>(s1),
                  ctx.slot_leaf[static_cast<std::size_t>(s2)]};
  out.moves[1] = {static_cast<std::int32_t>(s2),
                  ctx.slot_leaf[static_cast<std::size_t>(s1)]};
  out.count = 2;
  return true;
}

// hot-path: no-alloc
bool want_swap(const SaMoveContext& ctx, Rng& rng) {
  if (ctx.slot_leaf.size() < 2) return false;
  if (ctx.candidate_leaves.empty()) return true;  // only swaps remain
  return rng.bernoulli(kSwapProbability);
}

}  // namespace

void ProposalPolicy::on_accept(const SaMoveContext& /*ctx*/,
                               const MoveProposal& /*accepted*/) {}

void UniformProposalPolicy::begin(const SaMoveContext& /*ctx*/) {}

// hot-path: no-alloc
bool UniformProposalPolicy::propose(const SaMoveContext& ctx, Rng& rng,
                                    MoveProposal& out) {
  const auto k = static_cast<std::int64_t>(ctx.slot_leaf.size());
  if (k == 0) return false;
  if (ctx.candidate_leaves.empty() && k < 2) return false;
  if (want_swap(ctx, rng)) return propose_swap(ctx, rng, out);
  const auto s = rng.uniform_int(0, k - 1);
  const auto t = rng.uniform_int(
      0, static_cast<std::int64_t>(ctx.candidate_leaves.size()) - 1);
  out.moves[0] = {static_cast<std::int32_t>(s),
                  ctx.candidate_leaves[static_cast<std::size_t>(t)]};
  out.count = 1;
  return true;
}

void LocalityProposalPolicy::begin(const SaMoveContext& /*ctx*/) {}

// hot-path: no-alloc
bool LocalityProposalPolicy::propose(const SaMoveContext& ctx, Rng& rng,
                                     MoveProposal& out) {
  const auto k = static_cast<std::int64_t>(ctx.slot_leaf.size());
  if (k == 0) return false;
  if (ctx.candidate_leaves.empty() && k < 2) return false;
  if (want_swap(ctx, rng)) return propose_swap(ctx, rng, out);
  const auto s = rng.uniform_int(0, k - 1);
  // Anchor: another slot of the job when one exists (keep the job together),
  // else the moving slot itself (prefer nearby leaves over far ones).
  auto anchor = s;
  if (k > 1) {
    anchor = rng.uniform_int(0, k - 2);
    if (anchor >= s) ++anchor;
  }
  const SwitchId anchor_leaf = ctx.slot_leaf[static_cast<std::size_t>(anchor)];
  const auto n_cand = static_cast<std::int64_t>(ctx.candidate_leaves.size());
  SwitchId target = kInvalidSwitch;
  for (int attempt = 0; attempt < kLocalityTries; ++attempt) {
    target = ctx.candidate_leaves[
        static_cast<std::size_t>(rng.uniform_int(0, n_cand - 1))];
    // d(anchor, anchor) == 2, so same-leaf/nearby targets accept with
    // probability 1 and the probability halves per extra hop level.
    const double d = ctx.tree->leaf_distance(anchor_leaf, target);
    if (rng.bernoulli(2.0 / d)) break;
  }
  out.moves[0] = {static_cast<std::int32_t>(s), target};
  out.count = 1;
  return true;
}

}  // namespace commsched
