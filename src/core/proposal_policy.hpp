// Move proposal policies for the simulated-annealing allocator.
//
// The SA allocator (src/core/sa_allocator) separates *search control*
// (temperature schedule, Metropolis acceptance, budget) from *move
// generation*: each anneal step asks a ProposalPolicy for the next candidate
// move set, prices it with CostModel::cost_delta, and feeds accepted moves
// back through on_accept(). The interface is the drop-in point for a learned
// proposer (neural-SA style, arXiv 2302.03517): a model that scores moves can
// implement propose() without touching the allocator or the cost model.
//
// Built-in policies:
//   UniformProposalPolicy   uniform random slot + uniform random target leaf
//                           (plus uniform slot-pair swaps) — the classic SA
//                           baseline;
//   LocalityProposalPolicy  same move space, but reassignment targets are
//                           rejection-sampled toward leaves close (Eq. 4
//                           distance) to another slot of the job, biasing the
//                           walk toward compact placements.
//
// Policies may return infeasible proposals (occupied target leaf, not enough
// free nodes): the allocator validates every proposal and skips infeasible
// ones while still consuming budget, so the anneal always terminates.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "cluster/state.hpp"
#include "core/cost_model.hpp"
#include "topology/tree.hpp"
#include "util/rng.hpp"

namespace commsched {

/// Frozen per-anneal context a policy draws from. Spans point into the
/// allocator's scratch: `slot_leaf` tracks the *current* assignment (updated
/// after every accepted move), `candidate_leaves` lists every leaf with
/// enough free nodes for the smallest slot (superset of the feasible
/// targets; per-move capacity is re-checked by the allocator).
struct SaMoveContext {
  const ClusterState* state = nullptr;
  const Tree* tree = nullptr;
  std::span<const SwitchId> slot_leaf;
  std::span<const std::int32_t> slot_nnodes;
  std::span<const SwitchId> candidate_leaves;
};

/// One proposed move set: count == 1 is a leaf reassignment, count == 2 a
/// two-slot leaf swap (moves[1] must target moves[0]'s current leaf and vice
/// versa).
struct MoveProposal {
  std::array<SlotMove, kMaxDeltaMoves> moves{};
  std::size_t count = 0;
};

/// Move generator for the SA allocator. Implementations keep any state in
/// members reused across calls (the allocator's select() hot path is
/// allocation-free) and must draw all randomness from the passed Rng so the
/// anneal stays deterministic under a fixed seed.
class ProposalPolicy {
 public:
  virtual ~ProposalPolicy() = default;

  virtual const char* name() const noexcept = 0;

  /// Reset per-anneal state; called once before the first propose().
  virtual void begin(const SaMoveContext& ctx) = 0;

  /// Draw the next move set into `out`. Returns false when the policy cannot
  /// produce any move for this context (single slot and no free target
  /// leaves), which ends the anneal.
  virtual bool propose(const SaMoveContext& ctx, Rng& rng,
                       MoveProposal& out) = 0;

  /// Observe an accepted move (hook for adaptive/learned policies; default
  /// no-op).
  virtual void on_accept(const SaMoveContext& ctx,
                         const MoveProposal& accepted);
};

/// Uniform random moves: with probability kSwapProbability (and >= 2 slots)
/// a uniform slot-pair swap, otherwise a uniform slot reassigned to a
/// uniform candidate leaf.
class UniformProposalPolicy final : public ProposalPolicy {
 public:
  const char* name() const noexcept override { return "uniform"; }
  void begin(const SaMoveContext& ctx) override;
  bool propose(const SaMoveContext& ctx, Rng& rng, MoveProposal& out) override;
};

/// Locality-biased moves: swaps as in UniformProposalPolicy, but
/// reassignment targets are rejection-sampled with acceptance probability
/// 2 / d(anchor, target) against a uniformly chosen anchor slot — leaves
/// near the rest of the job are proposed more often, steering the anneal
/// toward low-distance placements without excluding any reachable target.
class LocalityProposalPolicy final : public ProposalPolicy {
 public:
  const char* name() const noexcept override { return "locality"; }
  void begin(const SaMoveContext& ctx) override;
  bool propose(const SaMoveContext& ctx, Rng& rng, MoveProposal& out) override;
};

}  // namespace commsched
