#include "core/runtime_model.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace commsched {

double cost_ratio(double cost_jobaware, double cost_default,
                  const RuntimeModelOptions& options) {
  COMMSCHED_ASSERT(cost_jobaware >= 0.0 && cost_default >= 0.0);
  if (cost_default == 0.0) return 1.0;
  return std::clamp(cost_jobaware / cost_default, options.min_ratio,
                    options.max_ratio);
}

double modified_runtime(double runtime, double comm_fraction,
                        double cost_jobaware, double cost_default,
                        const RuntimeModelOptions& options) {
  COMMSCHED_ASSERT_GE(runtime, 0.0);
  COMMSCHED_ASSERT(comm_fraction >= 0.0 && comm_fraction <= 1.0);
  const double ratio = cost_ratio(cost_jobaware, cost_default, options);
  const double t_comm = runtime * comm_fraction;
  const double t_compute = runtime - t_comm;
  return t_compute + t_comm * ratio;
}

RuntimeModelOptions runtime_options_from_env(RuntimeModelOptions base) {
  const char* raw = std::getenv("COMMSCHED_RUNTIME_CLAMP");
  if (raw == nullptr || *raw == '\0') return base;
  const std::string_view spec(raw);
  const auto colon = spec.find(':');
  std::optional<double> lo, hi;
  if (colon == std::string_view::npos) {
    lo = base.min_ratio;
    hi = parse_double(spec);
  } else {
    lo = parse_double(spec.substr(0, colon));
    hi = parse_double(spec.substr(colon + 1));
  }
  if (!lo || !hi || !(*lo > 0.0) || !(*hi >= *lo))
    throw ParseError("COMMSCHED_RUNTIME_CLAMP='" + std::string(spec) +
                     "': expected 'min:max' (0 < min <= max) or a single "
                     "max ratio");
  return {.min_ratio = *lo, .max_ratio = *hi};
}

}  // namespace commsched
