#include "core/runtime_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace commsched {

double cost_ratio(double cost_jobaware, double cost_default,
                  const RuntimeModelOptions& options) {
  COMMSCHED_ASSERT(cost_jobaware >= 0.0 && cost_default >= 0.0);
  if (cost_default == 0.0) return 1.0;
  return std::clamp(cost_jobaware / cost_default, options.min_ratio,
                    options.max_ratio);
}

double modified_runtime(double runtime, double comm_fraction,
                        double cost_jobaware, double cost_default,
                        const RuntimeModelOptions& options) {
  COMMSCHED_ASSERT_GE(runtime, 0.0);
  COMMSCHED_ASSERT(comm_fraction >= 0.0 && comm_fraction <= 1.0);
  const double ratio = cost_ratio(cost_jobaware, cost_default, options);
  const double t_comm = runtime * comm_fraction;
  const double t_compute = runtime - t_comm;
  return t_compute + t_comm * ratio;
}

}  // namespace commsched
