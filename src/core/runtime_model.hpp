// Runtime impact model — the paper's Eq. 7 (§5.3).
//
//   T = T_compute + T_comm
//   T' = T_compute + T_comm * Cost_jobaware / Cost_default
//
// The communication part of a job scales with the ratio of its Eq. 6 cost
// under the evaluated allocation to its cost under the default allocation in
// the same cluster state; compute time is unaffected.  The ratio is clamped
// to guard the simulator against degenerate estimates (a zero default cost
// would otherwise divide by zero; the paper reports at most ~5x swings).
#pragma once

namespace commsched {

struct RuntimeModelOptions {
  double min_ratio = 0.05;  ///< lower clamp on Cost_jobaware / Cost_default
  double max_ratio = 20.0;  ///< upper clamp
};

/// Cost ratio with clamping; returns 1 when the default cost is zero
/// (single-node jobs have no communication to scale).
double cost_ratio(double cost_jobaware, double cost_default,
                  const RuntimeModelOptions& options = {});

/// Eq. 7. `comm_fraction` is T_comm / T in [0, 1]; `runtime` is the logged
/// total runtime T in seconds. Compute-intensive jobs should be passed
/// comm_fraction = 0 (their runtime is unaffected by allocation).
double modified_runtime(double runtime, double comm_fraction,
                        double cost_jobaware, double cost_default,
                        const RuntimeModelOptions& options = {});

/// Apply the COMMSCHED_RUNTIME_CLAMP environment override to `base`:
/// "min:max" (e.g. "0.05:20") replaces both clamps, "max" alone replaces
/// only the upper one. Unset (or empty) returns `base` unchanged; a
/// malformed value or an inverted/non-positive range throws ParseError.
/// The simulator resolves its SchedOptions::runtime_options through this,
/// mirroring how COMMSCHED_AUDIT backs SchedOptions::audit.
RuntimeModelOptions runtime_options_from_env(RuntimeModelOptions base = {});

}  // namespace commsched
