#include "core/sa_allocator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/allocator_common.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace commsched {

const char* sa_proposal_kind_name(SaProposalKind kind) {
  switch (kind) {
    case SaProposalKind::kUniform: return "uniform";
    case SaProposalKind::kLocality: return "locality";
  }
  return "?";
}

std::optional<SaProposalKind> sa_proposal_kind_from_string(
    const std::string& s) {
  if (s == "uniform") return SaProposalKind::kUniform;
  if (s == "locality") return SaProposalKind::kLocality;
  return std::nullopt;
}

SaAllocator::SaAllocator(CostOptions cost_options, SaOptions options,
                         std::shared_ptr<CommCache> cache)
    : cost_options_(cost_options),
      options_(options),
      cache_(std::move(cache)) {
  COMMSCHED_ASSERT_MSG(options_.cooling > 0.0 && options_.cooling <= 1.0,
                       "sa cooling factor must be in (0, 1]");
  COMMSCHED_ASSERT_GE(options_.init_temp_frac, 0.0);
  COMMSCHED_ASSERT_GE(options_.patience, 0);
  COMMSCHED_ASSERT_GE(options_.verify_stride, 0);
  if (!cache_) cache_ = std::make_shared<CommCache>(double{1 << 20});
  switch (options_.proposal) {
    case SaProposalKind::kUniform:
      policy_ = std::make_unique<UniformProposalPolicy>();
      break;
    case SaProposalKind::kLocality:
      policy_ = std::make_unique<LocalityProposalPolicy>();
      break;
  }
  COMMSCHED_ASSERT_MSG(policy_ != nullptr, "unknown SA proposal kind");
}

SaAllocator::~SaAllocator() = default;

void SaAllocator::set_proposal_policy(std::unique_ptr<ProposalPolicy> policy) {
  COMMSCHED_ASSERT_MSG(policy != nullptr, "proposal policy must not be null");
  policy_ = std::move(policy);
}

// hot-path: no-alloc
bool SaAllocator::select_into(const ClusterState& state,
                              const AllocationRequest& request,
                              std::vector<NodeId>& out) const {
  last_has_cost_ = false;
  last_cost_ = 0.0;
  last_proposals_ = 0;
  last_accepts_ = 0;
  const bool have_greedy = greedy_.select_into(state, request, greedy_pick_);
  const bool have_balanced =
      balanced_.select_into(state, request, balanced_pick_);
  if (!have_greedy && !have_balanced) {
    out.clear();
    return false;
  }

  const CostModel model(state.tree(), cost_options_);
  if (!request.comm_intensive) {
    // Compute-intensive: adaptive's rule (§4.3) — take the pricier
    // candidate so the cheap placement stays free for communicating jobs
    // (ties to balanced). No anneal: the job is placement-insensitive.
    if (!have_greedy || !have_balanced) {
      out = have_greedy ? greedy_pick_ : balanced_pick_;
      return true;
    }
    const double greedy_cost =
        profiled_candidate_cost(model, *cache_, state, greedy_pick_,
                                /*comm_intensive=*/false, request.pattern,
                                workspace_);
    const double balanced_cost =
        profiled_candidate_cost(model, *cache_, state, balanced_pick_,
                                /*comm_intensive=*/false, request.pattern,
                                workspace_);
    out = balanced_cost >= greedy_cost ? balanced_pick_ : greedy_pick_;
    return true;
  }

  // Communication-intensive: keep the cheaper seed (ties to balanced,
  // mirroring adaptive), then anneal from it.
  const std::vector<NodeId>* seed = nullptr;
  double seed_cost = 0.0;
  if (have_greedy && have_balanced) {
    const double greedy_cost =
        profiled_candidate_cost(model, *cache_, state, greedy_pick_,
                                /*comm_intensive=*/true, request.pattern,
                                workspace_);
    const double balanced_cost =
        profiled_candidate_cost(model, *cache_, state, balanced_pick_,
                                /*comm_intensive=*/true, request.pattern,
                                workspace_);
    const bool choose_balanced = balanced_cost <= greedy_cost;
    seed = choose_balanced ? &balanced_pick_ : &greedy_pick_;
    seed_cost = choose_balanced ? balanced_cost : greedy_cost;
  } else {
    seed = have_greedy ? &greedy_pick_ : &balanced_pick_;
    seed_cost = profiled_candidate_cost(model, *cache_, state, *seed,
                                        /*comm_intensive=*/true,
                                        request.pattern, workspace_);
  }
  last_cost_ = seed_cost;
  last_has_cost_ = true;

  // contract-trusted: no-alloc: ShapeKey derivation and one-time profile
  // construction are the same cached pricing path every profiled policy
  // uses (allocator_common::profiled_candidate_cost)
  const ShapeKey shape = make_shape_key(state.tree(), *seed);
  const LeafCommProfile& profile =
      cache_->profile(request.pattern, /*ranks_per_node=*/1, shape);
  if (options_.budget <= 0 || profile.steps.empty()) {
    out = *seed;
    return true;
  }
  anneal(state, request, model, profile, shape, *seed, seed_cost, out);
  return true;
}

// hot-path: no-alloc
void SaAllocator::anneal(const ClusterState& state,
                         const AllocationRequest& request,
                         const CostModel& model,
                         const LeafCommProfile& profile, const ShapeKey& shape,
                         const std::vector<NodeId>& seed, double seed_cost,
                         std::vector<NodeId>& out) const {
  const Tree& tree = state.tree();
  const double begin_cost =
      model.delta_begin(state, seed, /*comm_intensive=*/true, profile,
                        workspace_);
  COMMSCHED_ASSERT_EQ_MSG(begin_cost, seed_cost,
                          "delta_begin diverged from the seed's full cost");

  // Mirror the session's slot assignment (first-appearance slot order). The
  // per-slot mirrors and the candidate-leaf pool below are bounded by the
  // topology's leaf count and reuse capacity across select() calls.
  const auto k = static_cast<std::size_t>(profile.num_slots);
  // contract-trusted: no-alloc: k-bounded, capacity reused
  cur_leaf_.resize(k);
  // contract-trusted: no-alloc: k-bounded, capacity reused
  slot_nnodes_.resize(k);
  int min_nodes = std::numeric_limits<int>::max();
  for (std::size_t s = 0; s < k; ++s) {
    const auto slot = static_cast<std::int32_t>(s);
    cur_leaf_[s] = model.delta_slot_leaf(workspace_, slot);
    slot_nnodes_[s] = model.delta_slot_nnodes(workspace_, slot);
    min_nodes = std::min(min_nodes, static_cast<int>(slot_nnodes_[s]));
  }
  // contract-trusted: no-alloc: k-bounded, capacity reused
  orig_leaf_.assign(cur_leaf_.begin(), cur_leaf_.end());
  // contract-trusted: no-alloc: k-bounded, capacity reused
  best_leaf_.assign(cur_leaf_.begin(), cur_leaf_.end());

  cand_leaves_.clear();
  for (const SwitchId leaf : tree.leaves())
    if (state.leaf_free(leaf) >= min_nodes)
      // contract-trusted: no-alloc: leaf-count-bounded, capacity reused
      cand_leaves_.push_back(leaf);

  const SaMoveContext ctx{&state, &tree, cur_leaf_, slot_nnodes_,
                          cand_leaves_};
  policy_->begin(ctx);
  // Stateless per-job stream: the anneal's randomness depends only on
  // (options seed, job id), never on prior select() calls — what keeps the
  // fast and reference engines (and any thread count) bit-identical.
  Rng rng(splitmix64(options_.seed ^
                     splitmix64(static_cast<std::uint64_t>(request.job))));

  double current = begin_cost;
  double best = begin_cost;
  double temp = options_.init_temp_frac * begin_cost;
  int since_best = 0;
  MoveProposal prop;
  for (int it = 0; it < options_.budget; ++it) {
    if (options_.patience > 0 && since_best >= options_.patience) break;
    if (!policy_->propose(ctx, rng, prop)) break;
    ++last_proposals_;
    bool new_best = false;
    if (move_feasible(state, prop)) {
      const double cand = model.cost_delta(
          state, std::span<const SlotMove>(prop.moves.data(), prop.count),
          workspace_);
      bool accept = cand <= current;
      if (!accept && temp > 0.0)
        accept =
            rng.uniform_real(0.0, 1.0) < std::exp((current - cand) / temp);
      if (accept) {
        model.delta_commit(workspace_);
        for (std::size_t m = 0; m < prop.count; ++m)
          cur_leaf_[static_cast<std::size_t>(prop.moves[m].slot)] =
              prop.moves[m].leaf;
        current = cand;
        ++last_accepts_;
        policy_->on_accept(ctx, prop);
        if (options_.verify_stride > 0 &&
            last_accepts_ % options_.verify_stride == 0) {
          // Sampled oracle: the delta-maintained total must equal a full
          // recompute of the materialized placement, bit for bit.
          materialize(state, shape, seed, cur_leaf_, verify_nodes_);
          const double full = model.candidate_cost(
              state, verify_nodes_, /*comm_intensive=*/true, profile,
              workspace_);
          COMMSCHED_ASSERT_EQ_MSG(full, current,
                                  "delta-maintained SA total diverged from "
                                  "the full recompute");
        }
        if (cand < best) {
          best = cand;
          // contract-trusted: no-alloc: snapshot into capacity reserved by
          // the k-sized assign at anneal entry
          best_leaf_.assign(cur_leaf_.begin(), cur_leaf_.end());
          new_best = true;
        }
      }
    }
    since_best = new_best ? 0 : since_best + 1;
    temp *= options_.cooling;
  }

  // Return the best placement *seen* — never costlier than the seed.
  materialize(state, shape, seed, best_leaf_, out);
  last_cost_ = best;
}

// hot-path: no-alloc
bool SaAllocator::move_feasible(const ClusterState& state,
                                const MoveProposal& prop) const {
  const auto k = static_cast<std::int32_t>(cur_leaf_.size());
  if (prop.count == 0 || prop.count > kMaxDeltaMoves) return false;
  for (std::size_t m = 0; m < prop.count; ++m) {
    const SlotMove& mv = prop.moves[m];
    if (mv.slot < 0 || mv.slot >= k || mv.leaf == kInvalidSwitch) return false;
  }
  if (prop.count == 2) {
    const SlotMove& a = prop.moves[0];
    const SlotMove& b = prop.moves[1];
    // Swap contract: targets are each other's current leaves, so the
    // one-slot-per-leaf invariant is preserved by construction.
    if (a.slot == b.slot) return false;
    if (a.leaf != cur_leaf_[static_cast<std::size_t>(b.slot)] ||
        b.leaf != cur_leaf_[static_cast<std::size_t>(a.slot)])
      return false;
    return state.leaf_free(a.leaf) >=
               slot_nnodes_[static_cast<std::size_t>(a.slot)] &&
           state.leaf_free(b.leaf) >=
               slot_nnodes_[static_cast<std::size_t>(b.slot)];
  }
  const SlotMove& mv = prop.moves[0];
  const auto s = static_cast<std::size_t>(mv.slot);
  if (mv.leaf == cur_leaf_[s]) return false;  // no-op
  for (const SwitchId leaf : cur_leaf_)
    if (leaf == mv.leaf) return false;  // occupied by another slot
  return state.leaf_free(mv.leaf) >= slot_nnodes_[s];
}

// Rebuild the node list for a (possibly moved) slot assignment: unmoved
// slots keep their seed nodes; a moved slot takes the first free nodes of
// its leaf in ascending id order, consumed run by run. The emitted leaf
// sequence replays the shape's runs with an injective slot -> leaf map in
// the original first-appearance order, so the canonical ShapeKey — and with
// it the cached profile — is preserved by construction.
// hot-path: no-alloc
void SaAllocator::materialize(const ClusterState& state, const ShapeKey& shape,
                              const std::vector<NodeId>& seed,
                              std::span<const SwitchId> leaf_assign,
                              std::vector<NodeId>& out) const {
  out.clear();
  // contract-trusted: no-alloc: output and cursor buffers bounded by the
  // request's node count / slot count; capacity reused across calls
  slot_cursor_.assign(leaf_assign.size(), 0);
  std::size_t pos = 0;
  for (const auto& [slot, count] : shape.runs) {
    const auto s = static_cast<std::size_t>(slot);
    if (leaf_assign[s] == orig_leaf_[s]) {
      for (std::int32_t c = 0; c < count; ++c)
        // contract-trusted: no-alloc: out's capacity is bounded by the
        // request's node count and reused across select() calls
        out.push_back(seed[pos + static_cast<std::size_t>(c)]);
    } else {
      const std::span<const NodeId> free_span =
          state.free_leaf_span(leaf_assign[s]);
      std::int32_t& cur = slot_cursor_[s];
      COMMSCHED_ASSERT_LE_MSG(
          static_cast<std::size_t>(cur) + static_cast<std::size_t>(count),
          free_span.size(), "moved slot does not fit its target leaf");
      for (std::int32_t c = 0; c < count; ++c)
        // contract-trusted: no-alloc: see the seed-copy branch above
        out.push_back(free_span[static_cast<std::size_t>(cur++)]);
    }
    pos += static_cast<std::size_t>(count);
  }
}

}  // namespace commsched
