// Simulated-annealing allocation (DESIGN.md "Delta-cost evaluation & search
// allocators").
//
// The paper's policies (greedy/balanced/adaptive, §4) are one-shot
// constructive heuristics. This allocator treats placement as a search
// problem: it seeds from the greedy and balanced candidates, keeps the
// cheaper one (Eq. 6 over the job's collective schedule), and then anneals
// over leaf reassignments and two-slot swaps, pricing every move with
// CostModel::cost_delta — O(affected leaf pairs) per evaluation, which is
// what makes thousands of candidate evaluations per select() affordable.
// The final answer is the best placement *seen* during the walk, so for
// communication-intensive jobs the result is never costlier than the better
// of its seeds (bit-for-bit: seed and anneal price through the same kernel).
//
// Moves relocate whole leaf slots (every node of one ShapeKey slot to a
// currently slot-free leaf), which preserves the allocation's canonical
// shape — one cached LeafCommProfile prices the entire anneal. Determinism:
// each select() draws from a private Rng seeded by
// splitmix64(options.seed ^ splitmix64(job)), so results depend only on
// (options, state, request) — identical across engines, thread counts, and
// repeated runs. The budget is iterations, never wall clock.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "collectives/comm_cache.hpp"
#include "core/allocator.hpp"
#include "core/balanced_allocator.hpp"
#include "core/cost_model.hpp"
#include "core/greedy_allocator.hpp"
#include "core/proposal_policy.hpp"

namespace commsched {

/// Built-in proposal policies (SaOptions::proposal; a custom policy can be
/// injected via SaAllocator::set_proposal_policy).
enum class SaProposalKind : std::uint8_t {
  kUniform = 0,
  kLocality = 1,
};

const char* sa_proposal_kind_name(SaProposalKind kind);
std::optional<SaProposalKind> sa_proposal_kind_from_string(
    const std::string& s);

/// Annealing knobs (slurm.conf: SelectTypeParameters=sa,sa_budget=...).
struct SaOptions {
  /// Proposals (cost evaluations) per communication-intensive select().
  /// <= 0 disables the anneal: the allocator returns its cheaper seed.
  int budget = 1200;
  /// Base seed; each job's stream is splitmix64(seed ^ splitmix64(job)), so
  /// per-job randomness is stateless across select() calls.
  std::uint64_t seed = 20200817;  // the paper's submission date
  /// Initial temperature as a fraction of the seed placement's cost.
  double init_temp_frac = 0.08;
  /// Geometric cooling factor applied per proposal.
  double cooling = 0.995;
  /// Stop after this many proposals without a new best (0 = run out the
  /// budget).
  int patience = 250;
  SaProposalKind proposal = SaProposalKind::kLocality;
  /// > 0: every Nth accepted move, re-derive the delta-maintained total with
  /// a full candidate_cost and fail loudly on any bitwise divergence. The
  /// simulator raises this with the audit level (cheap -> sampled, full ->
  /// every accept); 0 trusts the delta kernel.
  int verify_stride = 0;
};

/// Search-based allocator: greedy/balanced seeding + simulated annealing
/// over slot moves, priced through the delta-cost session.
class SaAllocator final : public Allocator {
 public:
  explicit SaAllocator(CostOptions cost_options = {}, SaOptions options = {},
                       std::shared_ptr<CommCache> cache = nullptr);
  ~SaAllocator() override;

  const char* name() const noexcept override { return "sa"; }
  const SaOptions& options() const noexcept { return options_; }

  bool select_into(const ClusterState& state, const AllocationRequest& request,
                   std::vector<NodeId>& out) const override;

  /// Replace the move generator (the neural-SA drop-in point). Must not be
  /// called concurrently with select().
  void set_proposal_policy(std::unique_ptr<ProposalPolicy> policy);
  const ProposalPolicy& proposal_policy() const noexcept { return *policy_; }

  /// Eq. 6 cost of the placement returned by the last select(), when it
  /// priced one (communication-intensive requests). The simulator's auditor
  /// cross-checks this against a full recompute of the committed placement.
  double last_cost() const noexcept { return last_cost_; }
  bool last_has_cost() const noexcept { return last_has_cost_; }
  /// Anneal diagnostics of the last select() (bench reporting).
  int last_proposals() const noexcept { return last_proposals_; }
  int last_accepts() const noexcept { return last_accepts_; }

 private:
  void anneal(const ClusterState& state, const AllocationRequest& request,
              const CostModel& model, const LeafCommProfile& profile,
              const ShapeKey& shape, const std::vector<NodeId>& seed,
              double seed_cost, std::vector<NodeId>& out) const;
  bool move_feasible(const ClusterState& state,
                     const MoveProposal& prop) const;
  void materialize(const ClusterState& state, const ShapeKey& shape,
                   const std::vector<NodeId>& seed,
                   std::span<const SwitchId> leaf_assign,
                   std::vector<NodeId>& out) const;

  GreedyAllocator greedy_;
  BalancedAllocator balanced_;
  CostOptions cost_options_;
  SaOptions options_;
  std::shared_ptr<CommCache> cache_;
  std::unique_ptr<ProposalPolicy> policy_;

  // workspace: cost-kernel + delta-session scratch reused across const
  // select() calls; observable state is untouched (CostModel is stateless).
  mutable CostWorkspace workspace_;
  // workspace: seed candidate buffers, overwritten by the nested policies on
  // every select_into() entry.
  mutable std::vector<NodeId> greedy_pick_;
  // workspace: see greedy_pick_.
  mutable std::vector<NodeId> balanced_pick_;
  // workspace: per-anneal slot state (current/original/best leaf per slot,
  // node counts), rebuilt at every anneal entry.
  mutable std::vector<SwitchId> cur_leaf_;
  // workspace: see cur_leaf_.
  mutable std::vector<SwitchId> orig_leaf_;
  // workspace: see cur_leaf_.
  mutable std::vector<SwitchId> best_leaf_;
  // workspace: see cur_leaf_.
  mutable std::vector<std::int32_t> slot_nnodes_;
  // workspace: candidate target leaves, rebuilt per anneal.
  mutable std::vector<SwitchId> cand_leaves_;
  // workspace: per-slot cursor into the target leaf's free span during
  // materialize().
  mutable std::vector<std::int32_t> slot_cursor_;
  // workspace: verify_stride full-recompute node scratch.
  mutable std::vector<NodeId> verify_nodes_;
  // workspace: post-hoc diagnostics of the last select(), written once per
  // call and only read back through the accessors above.
  mutable double last_cost_ = 0.0;
  // workspace: see last_cost_.
  mutable bool last_has_cost_ = false;
  // workspace: see last_cost_.
  mutable int last_proposals_ = 0;
  // workspace: see last_cost_.
  mutable int last_accepts_ = 0;
};

}  // namespace commsched
