#include "exp/campaign.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "exp/sink.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace commsched::exp {

namespace detail {

// SplitMix64 finalizer: a strong 64-bit mixer, stable across platforms.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Absorb a string into the running hash (FNV-1a style), then re-mix so
// short labels still diffuse into all 64 bits.
std::uint64_t absorb(std::uint64_t h, std::string_view s) {
  for (const char c : s)
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  return mix64(h);
}

}  // namespace detail

namespace {

using detail::absorb;
using detail::mix64;

// Domain-separation tags so a mix seed can never collide with a cell seed
// built from the same labels.
constexpr std::uint64_t kMixDomain = 0x636f6d6d2d6d6978ULL;   // "comm-mix"
constexpr std::uint64_t kCellDomain = 0x63616d7063656c6cULL;  // "campcell"

bool quiet_env() {
  const char* v = std::getenv("COMMSCHED_QUIET");
  return v != nullptr && *v != '\0';
}

// Explicit spec.stream_path wins; otherwise COMMSCHED_STREAM_DIR opts any
// campaign harness into streaming (<dir>/<name>[.s<i>of<N>].jsonl); empty
// means no persistence.
std::string resolve_stream_path(const CampaignSpec& spec,
                                const ShardConfig& shard) {
  if (!spec.stream_path.empty()) return spec.stream_path;
  const char* dir = std::getenv("COMMSCHED_STREAM_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  std::string path = std::string(dir) + "/" + spec.name;
  if (shard.count > 1)
    path += ".s" + std::to_string(shard.index) + "of" +
            std::to_string(shard.count);
  path += ".jsonl";
  return path;
}

std::uint64_t resolve_base_seed(const CampaignSpec& spec, std::size_t index) {
  return spec.base_seeds.empty() ? base_seed() : spec.base_seeds[index];
}

CellResult run_cell(const CampaignSpec& spec, const CellCoord& c) {
  const MachineCase& machine = spec.machines[c.machine];
  const MixSpec& mix = spec.mixes[c.mix];
  const AllocatorKind kind = spec.allocators[c.allocator];
  const OptionsVariant& variant = spec.variants[c.variant];

  CellResult out;
  out.coord = c;
  out.machine = machine.name;
  out.mix = mix.name;
  out.allocator = allocator_kind_name(kind);
  out.variant = variant.name;
  out.base_seed = resolve_base_seed(spec, c.seed);
  out.mix_seed = derive_mix_seed(out.base_seed, machine.name, mix.name);
  out.cell_seed =
      derive_cell_seed(out.base_seed, machine.name, mix.name, out.allocator);

  // Per-cell log copy (decoration mutates); the Tree stays shared.
  JobLog log = machine.base_log;
  apply_mix(log, mix, out.mix_seed);

  SchedOptions options = variant.options;
  options.allocator = kind;
  // The SA policy's anneal stream is decorrelated per cell the same way the
  // workload is: identical cells replay identically, different cells never
  // share an anneal trajectory.
  options.sa.seed = mix64(options.sa.seed ^ out.cell_seed);
  out.sim = run_continuous(machine.tree, log, options);
  out.summary = summarize(out.sim);
  return out;
}

}  // namespace

std::vector<CellCoord> CampaignSpec::cells() const {
  const std::size_t n_seeds = base_seeds.empty() ? 1 : base_seeds.size();
  std::vector<CellCoord> coords;
  for (std::size_t m = 0; m < machines.size(); ++m)
    for (std::size_t x = 0; x < mixes.size(); ++x)
      for (std::size_t a = 0; a < allocators.size(); ++a)
        for (std::size_t s = 0; s < n_seeds; ++s)
          for (std::size_t v = 0; v < variants.size(); ++v) {
            const CellCoord c{m, x, a, s, v};
            if (!filter || filter(*this, c)) coords.push_back(c);
          }
  return coords;
}

const CellResult* CampaignResult::find(std::size_t machine, std::size_t mix,
                                       std::size_t allocator,
                                       std::size_t seed,
                                       std::size_t variant) const {
  const CellCoord wanted{machine, mix, allocator, seed, variant};
  for (const CellResult& cell : cells)
    if (cell.coord == wanted) return &cell;
  return nullptr;
}

const CellResult& CampaignResult::at(std::size_t machine, std::size_t mix,
                                     std::size_t allocator, std::size_t seed,
                                     std::size_t variant) const {
  const CellResult* cell = find(machine, mix, allocator, seed, variant);
  COMMSCHED_ASSERT_MSG(cell != nullptr,
                       "no such campaign cell (filtered out or out of range)");
  return *cell;
}

std::uint64_t derive_mix_seed(std::uint64_t base, std::string_view machine,
                              std::string_view mix) {
  std::uint64_t h = mix64(base ^ kMixDomain);
  h = absorb(h, machine);
  h = absorb(h, mix);
  return h;
}

std::uint64_t derive_cell_seed(std::uint64_t base, std::string_view machine,
                               std::string_view mix,
                               std::string_view allocator) {
  std::uint64_t h = mix64(base ^ kCellDomain);
  h = absorb(h, machine);
  h = absorb(h, mix);
  h = absorb(h, allocator);
  return h;
}

CampaignRunner::CampaignRunner(CampaignSpec spec) : spec_(std::move(spec)) {
  COMMSCHED_ASSERT_MSG(!spec_.machines.empty(), "campaign needs machines");
  COMMSCHED_ASSERT_MSG(!spec_.mixes.empty(), "campaign needs mixes");
  COMMSCHED_ASSERT_MSG(!spec_.allocators.empty(), "campaign needs allocators");
  COMMSCHED_ASSERT_MSG(!spec_.variants.empty(), "campaign needs >= 1 variant");
}

CampaignResult CampaignRunner::run() {
  const std::vector<CellCoord> coords = spec_.cells();
  const std::size_t total = coords.size();

  // Process sharding: this process owns the cells whose deterministic
  // label hash lands on its shard (exp/sink.hpp). Unsharded runs own all.
  const ShardConfig shard = resolve_shard(spec_);
  std::vector<char> is_mine(total, 1);
  std::vector<std::size_t> mine;
  mine.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    if (shard.count > 1 &&
        shard_of_cell(spec_, coords[i], shard.count) != shard.index)
      is_mine[i] = 0;
    else
      mine.push_back(i);
  }

  std::vector<std::size_t> order = mine;
  if (!spec_.submission_order.empty()) {
    COMMSCHED_ASSERT_EQ_MSG(spec_.submission_order.size(), total,
                            "submission_order must permute all cells");
    std::vector<bool> seen(total, false);
    for (const std::size_t i : spec_.submission_order) {
      COMMSCHED_ASSERT_MSG(i < total && !seen[i],
                           "submission_order is not a permutation");
      seen[i] = true;
    }
    order.clear();
    for (const std::size_t i : spec_.submission_order)
      if (is_mine[i]) order.push_back(i);
  }

  std::vector<std::optional<CellResult>> slots(total);
  std::vector<std::exception_ptr> errors(total);

  // Persistence: resume from a matching stream, then append new cells.
  const std::string stream_path = resolve_stream_path(spec_, shard);
  std::unique_ptr<CampaignSink> sink;
  std::size_t resumed_count = 0;
  if (!stream_path.empty()) {
    StreamHeader header;
    header.spec_name = spec_.name;
    header.fingerprint = spec_fingerprint(spec_);
    header.total_cells = total;
    header.shard = shard;

    bool fresh = !spec_.resume;
    if (spec_.resume && std::filesystem::exists(stream_path)) {
      std::uint64_t valid_bytes = 0;
      (void)read_complete_lines(stream_path, &valid_bytes);
      if (valid_bytes == 0) {
        // Zero complete lines: either a new empty file or a crash before
        // the header landed. Start over (truncating partial bytes).
        fresh = true;
      } else {
        const CampaignStream stream = load_stream(stream_path);
        COMMSCHED_ASSERT_MSG(
            stream.header.spec_name == spec_.name &&
                stream.header.fingerprint == header.fingerprint &&
                stream.header.total_cells == total,
            "existing stream '" + stream_path + "' was written by a "
            "different campaign spec; delete it or set resume = false");
        COMMSCHED_ASSERT_MSG(
            stream.header.shard == shard,
            "existing stream '" + stream_path + "' belongs to shard " +
                std::to_string(stream.header.shard.index) + "/" +
                std::to_string(stream.header.shard.count) +
                ", not this process's shard");
        for (const StreamedCell& cell : stream.cells) {
          COMMSCHED_ASSERT_MSG(cell.cell_index < total && is_mine[cell.cell_index],
                               "streamed cell does not belong to this shard");
          COMMSCHED_ASSERT_MSG(cell.result.coord == coords[cell.cell_index],
                               "streamed cell coordinates disagree with the "
                               "spec's cell list");
          COMMSCHED_ASSERT_MSG(!slots[cell.cell_index].has_value(),
                               "cell appears twice in the stream");
          slots[cell.cell_index].emplace(cell.result);
          ++resumed_count;
        }
        // Drop a partial trailing line (SIGKILL mid-append) so the file
        // stays a clean sequence of complete records.
        AppendFile trunc(stream_path);
        if (trunc.size() > stream.valid_bytes)
          trunc.truncate_to(stream.valid_bytes);
      }
    }
    sink = std::make_unique<CampaignSink>(stream_path, header, fresh);
  }

  std::size_t to_run = 0;
  for (const std::size_t i : order)
    if (!slots[i].has_value()) ++to_run;

  const bool quiet = spec_.quiet || quiet_env();
  if (!quiet && (shard.count > 1 || resumed_count > 0)) {
    std::cerr << "[" << spec_.name << "] shard " << shard.index << "/"
              << shard.count << ": " << mine.size() << "/" << total
              << " cells owned, " << resumed_count << " resumed, " << to_run
              << " to run\n";
  }
  {
    ThreadPool pool(spec_.threads);
    std::atomic<std::size_t> done{0};
    std::mutex io_mutex;
    // contract-trusted: determinism: progress timing only; raw-stream
    // wall_s and stderr progress, never canonical output (see sink.hpp)
    const auto start = std::chrono::steady_clock::now();
    for (const std::size_t i : order) {
      if (slots[i].has_value()) continue;  // resumed from the stream
      pool.submit([this, &coords, &slots, &errors, &done, &io_mutex, &sink,
                   start, to_run, quiet, i] {
        try {
          // contract-trusted: determinism: per-cell wall_s is a
          // raw-stream-only field, excluded from canonical output
          const auto cell_start = std::chrono::steady_clock::now();
          CellResult cell = run_cell(spec_, coords[i]);
          const double wall =
              // contract-trusted: determinism: raw-stream wall_s only
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            cell_start)
                  .count();
          if (sink) sink->append(i, cell, wall, spec_.on_cell_streamed);
          slots[i].emplace(std::move(cell));
        } catch (...) {
          errors[i] = std::current_exception();
        }
        const std::size_t finished = done.fetch_add(1) + 1;
        if (!quiet) {
          const double elapsed =
              // contract-trusted: determinism: stderr progress line only
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
          const std::lock_guard<std::mutex> lock(io_mutex);
          std::cerr << "[" << spec_.name << "] " << finished << "/" << to_run
                    << " cells, " << static_cast<int>(elapsed * 10.0) / 10.0
                    << "s elapsed\n";
        }
      });
    }
    pool.wait_idle();
  }

  // Reduce in cell order: rethrow the lowest-index failure, else collect.
  // A sharded run's result holds only this shard's cells; merge_streams
  // reassembles the full campaign from the per-shard streams.
  for (const std::size_t i : mine)
    if (errors[i]) std::rethrow_exception(errors[i]);
  CampaignResult result;
  result.cells.reserve(mine.size());
  for (const std::size_t i : mine)
    result.cells.push_back(std::move(*slots[i]));
  return result;
}

SimResult run_one(const MachineCase& machine, const MixSpec& mix,
                  AllocatorKind kind, const SchedOptions* base,
                  std::uint64_t seed) {
  if (seed == 0) seed = base_seed();
  JobLog log = machine.base_log;
  apply_mix(log, mix, derive_mix_seed(seed, machine.name, mix.name));
  SchedOptions options = base != nullptr ? *base : SchedOptions{};
  options.allocator = kind;
  options.sa.seed = mix64(
      options.sa.seed ^
      derive_cell_seed(seed, machine.name, mix.name, allocator_kind_name(kind)));
  return run_continuous(machine.tree, log, options);
}

}  // namespace commsched::exp
