// Parallel experiment campaign engine (DESIGN.md "Campaign engine &
// parallel execution").
//
// The paper's whole evaluation (§6, Figures 6-9, Tables 3-4) is a grid of
// independent simulations: machine × job mix × allocator (× base seed ×
// scheduler-option variant). CampaignSpec declares that grid, CampaignRunner
// executes every cell as one independent run_continuous call on a
// fixed-size worker pool (util/thread_pool.hpp), and CampaignResult holds
// the per-cell SimResult + RunSummary in cell order for table shaping.
//
// Determinism is the spine of the design:
//   - every cell's RNG seed is *derived by hashing* (base seed, machine,
//     mix, allocator) — never from iteration order, submission order or
//     thread ids (derive_cell_seed / derive_mix_seed below);
//   - the mix-decoration seed deliberately excludes the allocator, so the
//     allocator columns of one comparison group run the exact same
//     decorated log (improvement-% columns compare like with like);
//   - ownership/sharing: the immutable Tree (and the CostModels the
//     simulator builds over it) are shared across workers by const
//     reference; each cell copies the base log for decoration and owns a
//     private CommCache + CostWorkspace inside its run_continuous call;
//   - results are reduced in cell order, so rendered tables/CSV are
//     bit-identical at any thread count and under any submission order.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/allocator_factory.hpp"
#include "exp/machines.hpp"
#include "metrics/summary.hpp"
#include "sched/simulator.hpp"
#include "workload/mixes.hpp"

namespace commsched::exp {

namespace detail {
/// SplitMix64 finalizer: the stable 64-bit mixer behind every derived seed,
/// the spec fingerprint and the cell→shard assignment. Platform-independent
/// by construction (pure integer arithmetic).
std::uint64_t mix64(std::uint64_t x);
/// Absorb a string into a running hash (FNV-1a step per byte, then a
/// re-mix — the mix between labels keeps boundaries unambiguous).
std::uint64_t absorb(std::uint64_t h, std::string_view s);
}  // namespace detail

/// One named SchedOptions variant (ablation axis). The allocator field of
/// `options` is overwritten per cell by the spec's allocator axis.
struct OptionsVariant {
  std::string name = "base";
  SchedOptions options;
};

/// Coordinates of one cell in the campaign's cross product, as indices into
/// the spec's axes.
struct CellCoord {
  std::size_t machine = 0;
  std::size_t mix = 0;
  std::size_t allocator = 0;
  std::size_t seed = 0;
  std::size_t variant = 0;

  bool operator==(const CellCoord&) const = default;
};

/// The declarative campaign: every combination of the five axes (that the
/// optional filter admits) becomes one independent simulation cell.
struct CampaignSpec {
  std::string name = "campaign";  ///< used in progress lines

  std::vector<MachineCase> machines;  ///< built once, shared by const ref
  std::vector<MixSpec> mixes;
  std::vector<AllocatorKind> allocators{
      kAllAllocatorKinds,
      kAllAllocatorKinds + std::size(kAllAllocatorKinds)};
  /// Base seeds; empty uses {exp::base_seed()} (the COMMSCHED_SEED knob).
  std::vector<std::uint64_t> base_seeds;
  std::vector<OptionsVariant> variants{{}};

  /// Worker threads; <= 0 uses ThreadPool::default_thread_count()
  /// (COMMSCHED_THREADS env, then hardware concurrency).
  int threads = 0;

  /// Suppress progress reporting (also settable via COMMSCHED_QUIET).
  bool quiet = false;

  /// Optional cell filter: return false to skip a combination (e.g. run an
  /// extension mix on one machine only). Must be a pure function of the
  /// coordinates for the cell list to stay deterministic.
  std::function<bool(const CampaignSpec&, const CellCoord&)> filter;

  /// Testing hook: order in which cells are handed to the pool (a
  /// permutation of cell indices). Output must not depend on it; empty
  /// means natural order.
  std::vector<std::size_t> submission_order;

  // --- Persistence & process sharding (DESIGN.md "Campaign persistence,
  // sharding & resume"). ---

  /// When non-empty, every completed cell is appended to this JSONL stream
  /// as it finishes (exp/sink.hpp): an fsync'd header line carrying the
  /// spec fingerprint, then one fsync'd line per cell. Empty falls back to
  /// the COMMSCHED_STREAM_DIR env var (<dir>/<name>[.s<i>of<N>].jsonl);
  /// unset means no streaming.
  std::string stream_path;

  /// With streaming on and an existing stream whose header matches this
  /// spec's fingerprint and shard, already-streamed cells are loaded and
  /// skipped (their CellResult carries the summary but an empty SimResult,
  /// with `resumed` set) — a SIGKILL'd campaign continues where it left
  /// off. A fingerprint/shard mismatch throws InvariantError. false
  /// truncates any existing stream and starts fresh.
  bool resume = true;

  /// Process sharding: this process executes only the cells whose
  /// deterministic shard (hash of the cell's axis labels, mod shard_count)
  /// equals shard_index. shard_count == 0 resolves COMMSCHED_SHARD=i/N
  /// (default 0/1). The per-shard streams merge into the same reduced
  /// result a single process would produce (exp::merge_streams).
  int shard_index = 0;
  int shard_count = 0;

  /// Testing hook: called (under the sink lock) after each cell's line has
  /// been appended and fsync'd, with the number streamed so far by this
  /// process. The kill/resume test SIGKILLs itself from here.
  std::function<void(std::size_t)> on_cell_streamed;

  /// All admitted cells, in deterministic (machine, mix, allocator, seed,
  /// variant) row-major order — the reduction order of the result.
  std::vector<CellCoord> cells() const;
};

/// One executed cell: labels + seeds for table shaping, the full SimResult
/// (per-job series, cache stats) and its RunSummary.
struct CellResult {
  CellCoord coord;
  std::string machine;
  std::string mix;
  std::string allocator;
  std::string variant;
  std::uint64_t base_seed = 0;
  std::uint64_t mix_seed = 0;   ///< hash(base, machine, mix)
  std::uint64_t cell_seed = 0;  ///< hash(base, machine, mix, allocator)
  SimResult sim;
  RunSummary summary;
  /// True when this cell was loaded from a stream instead of executed: the
  /// summary/seeds/labels are exact, but `sim` is empty (per-job series are
  /// not persisted).
  bool resumed = false;
};

/// Campaign output, cells in CampaignSpec::cells() order.
struct CampaignResult {
  std::vector<CellResult> cells;

  /// The cell at the given axis indices; throws InvariantError when the
  /// combination was filtered out or out of range.
  const CellResult& at(std::size_t machine, std::size_t mix,
                       std::size_t allocator, std::size_t seed = 0,
                       std::size_t variant = 0) const;

  /// Linear lookup by axis indices; nullptr when absent.
  const CellResult* find(std::size_t machine, std::size_t mix,
                         std::size_t allocator, std::size_t seed = 0,
                         std::size_t variant = 0) const;
};

/// Deterministic seed for decorating a cell's job log: depends on exactly
/// (base seed, machine name, mix name). The allocator is excluded on
/// purpose — all allocator columns of a comparison group must see the same
/// decorated log.
std::uint64_t derive_mix_seed(std::uint64_t base, std::string_view machine,
                              std::string_view mix);

/// Deterministic per-cell seed: depends on exactly (base seed, machine
/// name, mix name, allocator name) — never on iteration order or thread id.
/// Recorded in CellResult and available to future stochastic cell stages.
std::uint64_t derive_cell_seed(std::uint64_t base, std::string_view machine,
                               std::string_view mix,
                               std::string_view allocator);

/// Execute every admitted cell of `spec` on a worker pool and reduce in
/// cell order. Exceptions thrown inside cells are rethrown on the calling
/// thread (lowest cell index wins) after the pool drains.
class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignSpec spec);

  CampaignResult run();

  const CampaignSpec& spec() const noexcept { return spec_; }

 private:
  CampaignSpec spec_;
};

/// Convenience for one-off runs outside a grid (single-cell harnesses like
/// bench_audit_overhead): decorate a copy of the machine's log with `mix`
/// (seeded via derive_mix_seed, so it matches the equivalent campaign cell
/// bit for bit) and run it under `kind`. `base` supplies non-allocator
/// SchedOptions; `seed` defaults to exp::base_seed().
SimResult run_one(const MachineCase& machine, const MixSpec& mix,
                  AllocatorKind kind, const SchedOptions* base = nullptr,
                  std::uint64_t seed = 0);

}  // namespace commsched::exp
