// Parallel experiment campaign engine (DESIGN.md "Campaign engine &
// parallel execution").
//
// The paper's whole evaluation (§6, Figures 6-9, Tables 3-4) is a grid of
// independent simulations: machine × job mix × allocator (× base seed ×
// scheduler-option variant). CampaignSpec declares that grid, CampaignRunner
// executes every cell as one independent run_continuous call on a
// fixed-size worker pool (util/thread_pool.hpp), and CampaignResult holds
// the per-cell SimResult + RunSummary in cell order for table shaping.
//
// Determinism is the spine of the design:
//   - every cell's RNG seed is *derived by hashing* (base seed, machine,
//     mix, allocator) — never from iteration order, submission order or
//     thread ids (derive_cell_seed / derive_mix_seed below);
//   - the mix-decoration seed deliberately excludes the allocator, so the
//     allocator columns of one comparison group run the exact same
//     decorated log (improvement-% columns compare like with like);
//   - ownership/sharing: the immutable Tree (and the CostModels the
//     simulator builds over it) are shared across workers by const
//     reference; each cell copies the base log for decoration and owns a
//     private CommCache + CostWorkspace inside its run_continuous call;
//   - results are reduced in cell order, so rendered tables/CSV are
//     bit-identical at any thread count and under any submission order.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/allocator_factory.hpp"
#include "exp/machines.hpp"
#include "metrics/summary.hpp"
#include "sched/simulator.hpp"
#include "workload/mixes.hpp"

namespace commsched::exp {

/// One named SchedOptions variant (ablation axis). The allocator field of
/// `options` is overwritten per cell by the spec's allocator axis.
struct OptionsVariant {
  std::string name = "base";
  SchedOptions options;
};

/// Coordinates of one cell in the campaign's cross product, as indices into
/// the spec's axes.
struct CellCoord {
  std::size_t machine = 0;
  std::size_t mix = 0;
  std::size_t allocator = 0;
  std::size_t seed = 0;
  std::size_t variant = 0;

  bool operator==(const CellCoord&) const = default;
};

/// The declarative campaign: every combination of the five axes (that the
/// optional filter admits) becomes one independent simulation cell.
struct CampaignSpec {
  std::string name = "campaign";  ///< used in progress lines

  std::vector<MachineCase> machines;  ///< built once, shared by const ref
  std::vector<MixSpec> mixes;
  std::vector<AllocatorKind> allocators{
      kAllAllocatorKinds,
      kAllAllocatorKinds + std::size(kAllAllocatorKinds)};
  /// Base seeds; empty uses {exp::base_seed()} (the COMMSCHED_SEED knob).
  std::vector<std::uint64_t> base_seeds;
  std::vector<OptionsVariant> variants{{}};

  /// Worker threads; <= 0 uses ThreadPool::default_thread_count()
  /// (COMMSCHED_THREADS env, then hardware concurrency).
  int threads = 0;

  /// Suppress progress reporting (also settable via COMMSCHED_QUIET).
  bool quiet = false;

  /// Optional cell filter: return false to skip a combination (e.g. run an
  /// extension mix on one machine only). Must be a pure function of the
  /// coordinates for the cell list to stay deterministic.
  std::function<bool(const CampaignSpec&, const CellCoord&)> filter;

  /// Testing hook: order in which cells are handed to the pool (a
  /// permutation of cell indices). Output must not depend on it; empty
  /// means natural order.
  std::vector<std::size_t> submission_order;

  /// All admitted cells, in deterministic (machine, mix, allocator, seed,
  /// variant) row-major order — the reduction order of the result.
  std::vector<CellCoord> cells() const;
};

/// One executed cell: labels + seeds for table shaping, the full SimResult
/// (per-job series, cache stats) and its RunSummary.
struct CellResult {
  CellCoord coord;
  std::string machine;
  std::string mix;
  std::string allocator;
  std::string variant;
  std::uint64_t base_seed = 0;
  std::uint64_t mix_seed = 0;   ///< hash(base, machine, mix)
  std::uint64_t cell_seed = 0;  ///< hash(base, machine, mix, allocator)
  SimResult sim;
  RunSummary summary;
};

/// Campaign output, cells in CampaignSpec::cells() order.
struct CampaignResult {
  std::vector<CellResult> cells;

  /// The cell at the given axis indices; throws InvariantError when the
  /// combination was filtered out or out of range.
  const CellResult& at(std::size_t machine, std::size_t mix,
                       std::size_t allocator, std::size_t seed = 0,
                       std::size_t variant = 0) const;

  /// Linear lookup by axis indices; nullptr when absent.
  const CellResult* find(std::size_t machine, std::size_t mix,
                         std::size_t allocator, std::size_t seed = 0,
                         std::size_t variant = 0) const;
};

/// Deterministic seed for decorating a cell's job log: depends on exactly
/// (base seed, machine name, mix name). The allocator is excluded on
/// purpose — all allocator columns of a comparison group must see the same
/// decorated log.
std::uint64_t derive_mix_seed(std::uint64_t base, std::string_view machine,
                              std::string_view mix);

/// Deterministic per-cell seed: depends on exactly (base seed, machine
/// name, mix name, allocator name) — never on iteration order or thread id.
/// Recorded in CellResult and available to future stochastic cell stages.
std::uint64_t derive_cell_seed(std::uint64_t base, std::string_view machine,
                               std::string_view mix,
                               std::string_view allocator);

/// Execute every admitted cell of `spec` on a worker pool and reduce in
/// cell order. Exceptions thrown inside cells are rethrown on the calling
/// thread (lowest cell index wins) after the pool drains.
class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignSpec spec);

  CampaignResult run();

  const CampaignSpec& spec() const noexcept { return spec_; }

 private:
  CampaignSpec spec_;
};

/// Convenience for one-off runs outside a grid (single-cell harnesses like
/// bench_audit_overhead): decorate a copy of the machine's log with `mix`
/// (seeded via derive_mix_seed, so it matches the equivalent campaign cell
/// bit for bit) and run it under `kind`. `base` supplies non-allocator
/// SchedOptions; `seed` defaults to exp::base_seed().
SimResult run_one(const MachineCase& machine, const MixSpec& mix,
                  AllocatorKind kind, const SchedOptions* base = nullptr,
                  std::uint64_t seed = 0);

}  // namespace commsched::exp
