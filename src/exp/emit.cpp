#include "exp/emit.hpp"

#include <iostream>

#include "exp/sink.hpp"
#include "util/file_io.hpp"

namespace commsched::exp {

void emit(const std::string& title, const TextTable& table,
          const std::string& stem) {
  std::cout << "\n== " << title << " ==\n" << table.render(2);
  const std::string path = "bench_out/" + stem + ".csv";
  if (table.write_csv(path))
    std::cout << "  [csv] " << path << "\n";
  else
    std::cout << "  [csv] failed to write " << path << "\n";
}

TextTable campaign_table(const CampaignResult& result) {
  TextTable table;
  table.set_header({"machine", "mix", "allocator", "variant", "base_seed",
                    "mix_seed", "jobs", "exec_h", "wait_h", "turnaround_h",
                    "node_h", "total_cost", "avg_cost", "makespan_h",
                    "sched_hit", "sched_miss", "prof_hit", "prof_miss",
                    "prof_hit_rate"});
  for (const CellResult& c : result.cells) {
    const RunSummary& s = c.summary;
    table.add_row({c.machine, c.mix, c.allocator, c.variant,
                   std::to_string(c.base_seed), std::to_string(c.mix_seed),
                   std::to_string(s.job_count), cell(s.total_exec_hours, 2),
                   cell(s.total_wait_hours, 2),
                   cell(s.avg_turnaround_hours, 3), cell(s.total_node_hours, 1),
                   cell(s.total_cost, 1), cell(s.avg_cost, 2),
                   cell(s.makespan_hours, 2),
                   std::to_string(s.cache.schedule_hits),
                   std::to_string(s.cache.schedule_misses),
                   std::to_string(s.cache.profile_hits),
                   std::to_string(s.cache.profile_misses),
                   cell(s.cache.profile_hit_rate(), 4)});
  }
  return table;
}

std::string campaign_json(const CampaignResult& result) {
  std::string out = "{\"cells\":[";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    if (i) out += ',';
    out += "\n" + cell_json(i, result.cells[i]);
  }
  out += "\n]}\n";
  return out;
}

void emit_campaign(const std::string& title, const CampaignResult& result,
                   const std::string& stem) {
  const TextTable table = campaign_table(result);
  const std::string csv_path = "bench_out/" + stem + ".csv";
  const std::string json_path = "bench_out/" + stem + ".json";
  std::cout << "\n== " << title << " ==\n  " << result.cells.size()
            << " cells";
  if (table.write_csv(csv_path))
    std::cout << "  [csv] " << csv_path;
  else
    std::cout << "  [csv] failed to write " << csv_path;
  write_file_atomic(json_path, campaign_json(result));
  std::cout << "  [json] " << json_path << "\n";
}

}  // namespace commsched::exp
