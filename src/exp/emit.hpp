// Shared output layer for benches/examples (DESIGN.md "Campaign engine &
// parallel execution"): the paper-shaped stdout table + bench_out/ CSV pair
// every harness used to hand-roll, plus the long-form per-cell campaign
// table (summary metrics and CommCache hit/miss stats per cell).
#pragma once

#include <string>

#include "exp/campaign.hpp"
#include "util/table.hpp"

namespace commsched::exp {

/// Print the table to stdout and write CSV to bench_out/<stem>.csv.
void emit(const std::string& title, const TextTable& table,
          const std::string& stem);

/// One row per cell, in cell order: axis labels, seeds, the RunSummary
/// metrics and the run's CommCache hit/miss counters. Deterministic — the
/// parity tests compare its CSV rendering bit for bit across thread counts.
TextTable campaign_table(const CampaignResult& result);

/// Machine-readable analogue of the long-form CSV: one JSON document,
/// {"cells": [<cell payload>, ...]} in cell order, each payload the same
/// deterministic object the persistence stream uses (exp/sink.hpp
/// cell_json: coordinates, labels, seeds, RunSummary, CacheStats).
/// Deterministic at any thread/shard count; regenerates the data behind
/// the BENCH_*.json snapshots and feeds plotting scripts.
std::string campaign_json(const CampaignResult& result);

/// Write campaign_table(result) as CSV to bench_out/<stem>.csv and
/// campaign_json(result) to bench_out/<stem>.json (atomically), with a
/// one-line stdout note (the long form is for plotting, not reading).
void emit_campaign(const std::string& title, const CampaignResult& result,
                   const std::string& stem);

}  // namespace commsched::exp
