#include "exp/machines.hpp"

#include <cstdlib>
#include <iostream>

#include "topology/builders.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic.hpp"

namespace commsched::exp {

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const auto parsed = parse_int(v);
  COMMSCHED_ASSERT_MSG(parsed.has_value() && *parsed > 0,
                       std::string(name) + " must be a positive integer");
  return static_cast<int>(*parsed);
}

JobLog load_or_generate(const std::string& name, const char* env,
                        int cores_per_node, const LogProfile& profile,
                        int n_jobs, std::uint64_t seed) {
  if (const char* path = std::getenv(env); path != nullptr && *path != '\0') {
    std::cerr << "[exp] " << name << ": loading real SWF log from " << path
              << "\n";
    SwfOptions opts;
    opts.cores_per_node = cores_per_node;
    opts.max_jobs = static_cast<std::size_t>(n_jobs);
    return filter_power_of_two(load_swf(path, opts));
  }
  return filter_power_of_two(generate_log(profile, n_jobs, seed));
}

}  // namespace

int jobs_per_log() { return env_int("COMMSCHED_JOBS", 1000); }

std::uint64_t base_seed() {
  return static_cast<std::uint64_t>(env_int("COMMSCHED_SEED", 20200817));
}

std::vector<MachineCase> paper_machines(int n_jobs) {
  if (n_jobs <= 0) n_jobs = jobs_per_log();
  const std::uint64_t seed = base_seed();
  std::vector<MachineCase> machines;
  machines.push_back({"Intrepid", make_intrepid(),
                      load_or_generate("Intrepid", "COMMSCHED_SWF_INTREPID", 4,
                                       intrepid_profile(), n_jobs, seed + 1)});
  machines.push_back({"Theta", make_theta(),
                      load_or_generate("Theta", "COMMSCHED_SWF_THETA", 64,
                                       theta_profile(), n_jobs, seed + 2)});
  machines.push_back({"Mira", make_mira(),
                      load_or_generate("Mira", "COMMSCHED_SWF_MIRA", 16,
                                       mira_profile(), n_jobs, seed + 3)});
  return machines;
}

MachineCase paper_machine(const std::string& name, int n_jobs) {
  auto machines = paper_machines(n_jobs);
  for (auto& m : machines)
    if (m.name == name) return std::move(m);
  throw InvariantError("unknown machine '" + name + "'");
}

}  // namespace commsched::exp
