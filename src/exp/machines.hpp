// The machines under evaluation, built once per campaign (DESIGN.md
// "Campaign engine & parallel execution").
//
// A MachineCase owns the immutable topology plus the undecorated job log of
// one machine; campaign cells share both by const reference and decorate a
// per-cell copy of the log (workload/mixes.hpp). Moved here from
// bench/bench_util.* so benches, examples, tools and tests all build their
// machines through one path instead of each harness regenerating them.
//
// Environment knobs:
//   COMMSCHED_JOBS          jobs per log (default 1000, the paper's slice)
//   COMMSCHED_SEED          base RNG seed (default 20200817, the ICPP date)
//   COMMSCHED_SWF_INTREPID  path to a real SWF log to use instead of the
//   COMMSCHED_SWF_THETA     synthetic Intrepid/Theta/Mira generators
//   COMMSCHED_SWF_MIRA      (cores/node: 4 / 64 / 16)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/tree.hpp"
#include "workload/job.hpp"

namespace commsched::exp {

/// One machine under evaluation: its topology plus an undecorated job log
/// (communication attributes are applied per cell by apply_mix).
struct MachineCase {
  std::string name;  // "Intrepid", "Theta", "Mira"
  Tree tree;
  JobLog base_log;   // power-of-two jobs, sorted by submit time
};

int jobs_per_log();
std::uint64_t base_seed();

/// Build the paper's three machine cases (synthetic unless the SWF env vars
/// point at real logs). `n_jobs` <= 0 uses jobs_per_log().
std::vector<MachineCase> paper_machines(int n_jobs = 0);

/// A single machine case by paper name ("Intrepid" / "Theta" / "Mira").
MachineCase paper_machine(const std::string& name, int n_jobs = 0);

}  // namespace commsched::exp
