#include "exp/sink.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/assert.hpp"

namespace commsched::exp {

namespace {

// Domain-separation tags (cf. the seed domains in campaign.cpp): a shard
// assignment can never collide with a fingerprint built from the same
// labels.
constexpr std::uint64_t kShardDomain = 0x73686172642f6f66ULL;        // "shard/of"
constexpr std::uint64_t kFingerprintDomain = 0x63616d7066707274ULL;  // "campfprt"

std::uint64_t absorb_u64(std::uint64_t h, std::uint64_t v) {
  return detail::mix64(h ^ v);
}

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

std::uint64_t parse_hex16(const std::string& text) {
  if (text.size() != 16) throw ParseError("bad fingerprint: " + text);
  std::uint64_t v = 0;
  for (const char c : text) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else throw ParseError("bad fingerprint: " + text);
  }
  return v;
}

std::uint64_t resolved_base_seed(const CampaignSpec& spec, std::size_t index) {
  return spec.base_seeds.empty() ? base_seed() : spec.base_seeds[index];
}

std::string summary_json(const RunSummary& s) {
  std::string out = "{";
  out += "\"allocator\":" + json_quote(s.allocator);
  out += ",\"jobs\":" + std::to_string(s.job_count);
  out += ",\"exec_h\":" + json_number(s.total_exec_hours);
  out += ",\"wait_h\":" + json_number(s.total_wait_hours);
  out += ",\"avg_wait_h\":" + json_number(s.avg_wait_hours);
  out += ",\"turnaround_h\":" + json_number(s.avg_turnaround_hours);
  out += ",\"node_h\":" + json_number(s.total_node_hours);
  out += ",\"avg_node_h\":" + json_number(s.avg_node_hours);
  out += ",\"cost\":" + json_number(s.total_cost);
  out += ",\"avg_cost\":" + json_number(s.avg_cost);
  out += ",\"makespan_h\":" + json_number(s.makespan_hours);
  out += "}";
  return out;
}

std::string cache_json(const CacheStats& c) {
  std::string out = "{";
  out += "\"sched_hit\":" + std::to_string(c.schedule_hits);
  out += ",\"sched_miss\":" + std::to_string(c.schedule_misses);
  out += ",\"prof_hit\":" + std::to_string(c.profile_hits);
  out += ",\"prof_miss\":" + std::to_string(c.profile_misses);
  out += "}";
  return out;
}

RunSummary parse_summary(const JsonValue& v) {
  RunSummary s;
  s.allocator = v.at("allocator").as_string();
  s.job_count = static_cast<std::size_t>(v.at("jobs").as_uint64());
  s.total_exec_hours = v.at("exec_h").as_double();
  s.total_wait_hours = v.at("wait_h").as_double();
  s.avg_wait_hours = v.at("avg_wait_h").as_double();
  s.avg_turnaround_hours = v.at("turnaround_h").as_double();
  s.total_node_hours = v.at("node_h").as_double();
  s.avg_node_hours = v.at("avg_node_h").as_double();
  s.total_cost = v.at("cost").as_double();
  s.avg_cost = v.at("avg_cost").as_double();
  s.makespan_hours = v.at("makespan_h").as_double();
  return s;
}

CacheStats parse_cache(const JsonValue& v) {
  CacheStats c;
  c.schedule_hits = v.at("sched_hit").as_uint64();
  c.schedule_misses = v.at("sched_miss").as_uint64();
  c.profile_hits = v.at("prof_hit").as_uint64();
  c.profile_misses = v.at("prof_miss").as_uint64();
  return c;
}

StreamHeader parse_header(const JsonValue& v) {
  if (v.find("commsched_campaign") == nullptr ||
      v.at("commsched_campaign").as_int64() != 1)
    throw ParseError("not a commsched campaign stream header");
  StreamHeader header;
  header.spec_name = v.at("spec").as_string();
  header.fingerprint = parse_hex16(v.at("fingerprint").as_string());
  header.total_cells = static_cast<std::size_t>(v.at("cells").as_uint64());
  if (const JsonValue* shard = v.find("shard")) {
    header.shard.index = static_cast<int>(shard->as_int64());
    header.shard.count = static_cast<int>(v.at("shard_count").as_int64());
  }
  return header;
}

std::string header_json_impl(const StreamHeader& header, bool with_shard) {
  std::string out = "{\"commsched_campaign\":1";
  out += ",\"spec\":" + json_quote(header.spec_name);
  out += ",\"fingerprint\":" + json_quote(hex16(header.fingerprint));
  out += ",\"cells\":" + std::to_string(header.total_cells);
  if (with_shard) {
    out += ",\"shard\":" + std::to_string(header.shard.index);
    out += ",\"shard_count\":" + std::to_string(header.shard.count);
  }
  out += "}";
  return out;
}

}  // namespace

ShardConfig parse_shard(std::string_view text) {
  const std::size_t slash = text.find('/');
  COMMSCHED_ASSERT_MSG(slash != std::string_view::npos,
                       "COMMSCHED_SHARD must be 'i/N', e.g. 0/4");
  const auto index = parse_int(text.substr(0, slash));
  const auto count = parse_int(text.substr(slash + 1));
  COMMSCHED_ASSERT_MSG(index.has_value() && count.has_value(),
                       "COMMSCHED_SHARD must be 'i/N' with integer i, N");
  ShardConfig shard;
  shard.index = static_cast<int>(*index);
  shard.count = static_cast<int>(*count);
  COMMSCHED_ASSERT_MSG(shard.count >= 1 && shard.index >= 0 &&
                           shard.index < shard.count,
                       "COMMSCHED_SHARD requires 0 <= i < N");
  return shard;
}

ShardConfig shard_from_env() {
  const char* v = std::getenv("COMMSCHED_SHARD");
  if (v == nullptr || *v == '\0') return ShardConfig{};
  return parse_shard(v);
}

ShardConfig resolve_shard(const CampaignSpec& spec) {
  if (spec.shard_count == 0) return shard_from_env();
  ShardConfig shard;
  shard.index = spec.shard_index;
  shard.count = spec.shard_count;
  COMMSCHED_ASSERT_MSG(shard.count >= 1 && shard.index >= 0 &&
                           shard.index < shard.count,
                       "CampaignSpec shard requires 0 <= index < count");
  return shard;
}

int shard_of_cell(const CampaignSpec& spec, const CellCoord& c,
                  int shard_count) {
  COMMSCHED_ASSERT_GE_MSG(shard_count, 1, "shard_count must be positive");
  std::uint64_t h = detail::mix64(kShardDomain);
  h = detail::absorb(h, spec.machines[c.machine].name);
  h = detail::absorb(h, spec.mixes[c.mix].name);
  h = detail::absorb(h, allocator_kind_name(spec.allocators[c.allocator]));
  h = absorb_u64(h, resolved_base_seed(spec, c.seed));
  h = detail::absorb(h, spec.variants[c.variant].name);
  return static_cast<int>(h % static_cast<std::uint64_t>(shard_count));
}

std::uint64_t spec_fingerprint(const CampaignSpec& spec) {
  std::uint64_t h = detail::mix64(kFingerprintDomain);
  h = detail::absorb(h, spec.name);

  h = absorb_u64(h, spec.machines.size());
  for (const MachineCase& m : spec.machines) {
    h = detail::absorb(h, m.name);
    h = absorb_u64(h, static_cast<std::uint64_t>(m.tree.node_count()));
    h = absorb_u64(h, m.base_log.size());
  }
  h = absorb_u64(h, spec.mixes.size());
  for (const MixSpec& mix : spec.mixes) h = detail::absorb(h, mix.name);
  h = absorb_u64(h, spec.allocators.size());
  for (const AllocatorKind kind : spec.allocators)
    h = detail::absorb(h, allocator_kind_name(kind));
  const std::size_t n_seeds =
      spec.base_seeds.empty() ? 1 : spec.base_seeds.size();
  h = absorb_u64(h, n_seeds);
  for (std::size_t s = 0; s < n_seeds; ++s)
    h = absorb_u64(h, resolved_base_seed(spec, s));
  h = absorb_u64(h, spec.variants.size());
  for (const OptionsVariant& v : spec.variants) h = detail::absorb(h, v.name);

  // The admitted cell list covers the filter: two specs whose filters admit
  // different subsets fingerprint differently.
  const std::vector<CellCoord> coords = spec.cells();
  h = absorb_u64(h, coords.size());
  for (const CellCoord& c : coords) {
    h = absorb_u64(h, c.machine);
    h = absorb_u64(h, c.mix);
    h = absorb_u64(h, c.allocator);
    h = absorb_u64(h, c.seed);
    h = absorb_u64(h, c.variant);
  }
  return h;
}

std::string header_json(const StreamHeader& header) {
  return header_json_impl(header, /*with_shard=*/true);
}

std::string canonical_header_json(const StreamHeader& header) {
  return header_json_impl(header, /*with_shard=*/false);
}

std::string cell_json(std::size_t cell_index, const CellResult& cell) {
  const CellCoord& c = cell.coord;
  std::string out = "{\"cell\":" + std::to_string(cell_index);
  out += ",\"coord\":[" + std::to_string(c.machine) + "," +
         std::to_string(c.mix) + "," + std::to_string(c.allocator) + "," +
         std::to_string(c.seed) + "," + std::to_string(c.variant) + "]";
  out += ",\"machine\":" + json_quote(cell.machine);
  out += ",\"mix\":" + json_quote(cell.mix);
  out += ",\"allocator\":" + json_quote(cell.allocator);
  out += ",\"variant\":" + json_quote(cell.variant);
  out += ",\"base_seed\":" + std::to_string(cell.base_seed);
  out += ",\"mix_seed\":" + std::to_string(cell.mix_seed);
  out += ",\"cell_seed\":" + std::to_string(cell.cell_seed);
  out += ",\"summary\":" + summary_json(cell.summary);
  out += ",\"cache\":" + cache_json(cell.summary.cache);
  out += "}";
  return out;
}

StreamedCell parse_cell_json(const JsonValue& v) {
  StreamedCell cell;
  cell.cell_index = static_cast<std::size_t>(v.at("cell").as_uint64());
  const std::vector<JsonValue>& coord = v.at("coord").items();
  if (coord.size() != 5) throw ParseError("cell coord must have 5 entries");
  cell.result.coord.machine = static_cast<std::size_t>(coord[0].as_uint64());
  cell.result.coord.mix = static_cast<std::size_t>(coord[1].as_uint64());
  cell.result.coord.allocator = static_cast<std::size_t>(coord[2].as_uint64());
  cell.result.coord.seed = static_cast<std::size_t>(coord[3].as_uint64());
  cell.result.coord.variant = static_cast<std::size_t>(coord[4].as_uint64());
  cell.result.machine = v.at("machine").as_string();
  cell.result.mix = v.at("mix").as_string();
  cell.result.allocator = v.at("allocator").as_string();
  cell.result.variant = v.at("variant").as_string();
  cell.result.base_seed = v.at("base_seed").as_uint64();
  cell.result.mix_seed = v.at("mix_seed").as_uint64();
  cell.result.cell_seed = v.at("cell_seed").as_uint64();
  cell.result.summary = parse_summary(v.at("summary"));
  cell.result.summary.cache = parse_cache(v.at("cache"));
  cell.result.resumed = true;
  if (const JsonValue* wall = v.find("wall_s"))
    cell.wall_seconds = wall->as_double();
  return cell;
}

CampaignStream load_stream(const std::string& path) {
  CampaignStream stream;
  const std::vector<std::string> lines =
      read_complete_lines(path, &stream.valid_bytes);
  if (lines.empty())
    throw ParseError("campaign stream '" + path + "' has no header line");
  stream.header = parse_header(parse_json(lines.front()));
  stream.cells.reserve(lines.size() - 1);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    stream.cells.push_back(parse_cell_json(parse_json(lines[i])));
  }
  return stream;
}

CampaignSink::CampaignSink(const std::string& path, const StreamHeader& header,
                           bool fresh)
    : file_(path, /*truncate=*/fresh) {
  if (file_.size() == 0) {
    file_.append_line(header_json(header));
    file_.sync();
  }
}

void CampaignSink::append(std::size_t cell_index, const CellResult& cell,
                          double wall_seconds,
                          const std::function<void(std::size_t)>& on_streamed) {
  std::string line = cell_json(cell_index, cell);
  COMMSCHED_ASSERT_MSG(!line.empty() && line.back() == '}',
                       "cell payload must be a JSON object");
  line.pop_back();
  line += ",\"wall_s\":" + json_number(wall_seconds) + "}";

  const std::lock_guard<std::mutex> lock(mutex_);
  file_.append_line(line);
  file_.sync();
  ++appended_;
  if (on_streamed) on_streamed(appended_);
}

std::size_t CampaignSink::appended() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

MergedCampaign merge_streams(const std::vector<std::string>& paths,
                             bool require_complete) {
  COMMSCHED_ASSERT_MSG(!paths.empty(), "merge_streams needs >= 1 stream");
  MergedCampaign merged;
  std::vector<StreamedCell> cells;
  bool first = true;
  for (const std::string& path : paths) {
    CampaignStream stream = load_stream(path);
    if (first) {
      merged.header = stream.header;
      merged.header.shard = ShardConfig{};  // merged output is shard-agnostic
      first = false;
    } else {
      COMMSCHED_ASSERT_MSG(
          stream.header.spec_name == merged.header.spec_name &&
              stream.header.fingerprint == merged.header.fingerprint &&
              stream.header.total_cells == merged.header.total_cells,
          "stream '" + path + "' belongs to a different campaign "
          "(spec name / fingerprint / cell count mismatch)");
    }
    for (StreamedCell& cell : stream.cells) {
      COMMSCHED_ASSERT_MSG(cell.cell_index < merged.header.total_cells,
                           "stream cell index out of range");
      cells.push_back(std::move(cell));
    }
  }

  std::sort(cells.begin(), cells.end(),
            [](const StreamedCell& a, const StreamedCell& b) {
              return a.cell_index < b.cell_index;
            });
  for (std::size_t i = 1; i < cells.size(); ++i)
    COMMSCHED_ASSERT_MSG(cells[i].cell_index != cells[i - 1].cell_index,
                         "cell " + std::to_string(cells[i].cell_index) +
                             " appears in more than one stream");
  if (require_complete)
    COMMSCHED_ASSERT_EQ_MSG(cells.size(), merged.header.total_cells,
                            "merged streams do not cover the whole campaign");

  merged.result.cells.reserve(cells.size());
  for (StreamedCell& cell : cells)
    merged.result.cells.push_back(std::move(cell.result));
  return merged;
}

std::string canonical_jsonl(const StreamHeader& header,
                            const CampaignResult& result) {
  StreamHeader canonical = header;
  canonical.shard = ShardConfig{};
  std::string out = canonical_header_json(canonical);
  out += '\n';
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    out += cell_json(i, result.cells[i]);
    out += '\n';
  }
  return out;
}

StreamHeader make_stream_header(const CampaignSpec& spec) {
  StreamHeader header;
  header.spec_name = spec.name;
  header.fingerprint = spec_fingerprint(spec);
  header.total_cells = spec.cells().size();
  header.shard = resolve_shard(spec);
  return header;
}

}  // namespace commsched::exp
