// Crash-safe campaign persistence and process sharding (DESIGN.md
// "Campaign persistence, sharding & resume").
//
// The campaign engine (exp/campaign.hpp) makes every cell a pure function
// of its axis labels; this layer makes a *campaign run* restartable and
// distributable without weakening that contract:
//
//   CampaignSink   appends one JSONL line per completed cell — coordinates,
//                  seeds, RunSummary metrics, CacheStats and wall time — as
//                  it finishes. The first line is an fsync'd header carrying
//                  the spec fingerprint; every cell line is one write(2) on
//                  an O_APPEND descriptor followed by fsync, so a SIGKILL at
//                  any instant leaves complete lines plus at most one
//                  partial trailing line.
//   load_stream    reads a (possibly truncated) stream back, dropping the
//                  partial trailing line; the runner skips loaded cells on
//                  resume and truncates the file to the last valid byte.
//   shard_of_cell  deterministic cell → shard assignment by hashing the
//                  cell's axis labels (never indices into a mutable config,
//                  never thread ids), so COMMSCHED_SHARD=i/N partitions the
//                  grid identically on every machine and thread count.
//   merge_streams  combines shard (or resumed single-run) stream files back
//                  into the CampaignResult a single uninterrupted process
//                  would reduce — same cell order, bit-identical emitted
//                  CSV/JSON.
//
// Two line flavors keep determinism honest: the *raw* stream line carries a
// trailing nondeterministic "wall_s" field (timing is real data, but differs
// run to run), while the *canonical* rendering (canonical_jsonl, the merge
// output) contains only the deterministic payload — {1 process, N shards,
// kill+resume} all produce byte-identical canonical files.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "exp/campaign.hpp"
#include "util/file_io.hpp"
#include "util/json.hpp"

namespace commsched::exp {

/// Which slice of the grid this process executes: cells whose
/// shard_of_cell(...) == index, out of `count` total shards.
struct ShardConfig {
  int index = 0;
  int count = 1;

  bool operator==(const ShardConfig&) const = default;
};

/// Parse "i/N" (0 <= i < N); throws InvariantError on malformed input.
ShardConfig parse_shard(std::string_view text);

/// COMMSCHED_SHARD when set (parse_shard), else {0, 1}.
ShardConfig shard_from_env();

/// Resolve a spec's shard fields: shard_count == 0 defers to
/// shard_from_env(); explicit values are validated (0 <= index < count).
ShardConfig resolve_shard(const CampaignSpec& spec);

/// Deterministic shard of one cell: hash of the cell's axis *labels*
/// (machine, mix, allocator, variant names and the resolved base seed) mod
/// shard_count. Independent of thread count, submission order, filter
/// shape and platform.
int shard_of_cell(const CampaignSpec& spec, const CellCoord& c,
                  int shard_count);

/// Stable fingerprint of a campaign's identity: spec name, each axis's
/// labels (machines also absorb node and job counts), resolved base seeds
/// and the admitted cell list (which covers the filter). Two specs with
/// equal fingerprints produce interchangeable streams; resume and merge
/// refuse mismatches. Variant SchedOptions are represented by the variant
/// *name* — rename a variant when its options change.
std::uint64_t spec_fingerprint(const CampaignSpec& spec);

/// Stream identity, written as the first line of every stream file.
struct StreamHeader {
  std::string spec_name;
  std::uint64_t fingerprint = 0;
  std::size_t total_cells = 0;  ///< admitted cells of the *whole* grid
  ShardConfig shard;            ///< {0, 1} for unsharded runs
};

/// The header's raw JSONL line (with shard fields).
std::string header_json(const StreamHeader& header);

/// The header's canonical JSONL line (no shard fields — merged output is
/// shard-agnostic).
std::string canonical_header_json(const StreamHeader& header);

/// Deterministic JSON payload of one executed cell: global cell index,
/// coordinates, labels, seeds, full RunSummary and CacheStats. No wall
/// time — this is the canonical line the merge emits and the JSON emitter
/// reuses. Doubles use shortest round-trip formatting (util/json.hpp), so
/// a parsed-back summary reproduces emitted CSV bytes exactly.
std::string cell_json(std::size_t cell_index, const CellResult& cell);

/// One parsed stream record.
struct StreamedCell {
  std::size_t cell_index = 0;
  CellResult result;         ///< resumed = true, sim empty
  double wall_seconds = 0.0; ///< 0 when absent (canonical lines)
};

/// Parse a cell line (raw or canonical) back. Throws ParseError on
/// malformed records.
StreamedCell parse_cell_json(const JsonValue& value);

/// A loaded stream file: header, complete records, and the byte offset one
/// past the last complete line (resume truncates to it).
struct CampaignStream {
  StreamHeader header;
  std::vector<StreamedCell> cells;
  std::uint64_t valid_bytes = 0;
};

/// Load a stream file, tolerating a partial trailing line (dropped).
/// Throws IoError when unreadable, ParseError when the header or a
/// complete line is malformed.
CampaignStream load_stream(const std::string& path);

/// Append-only writer for one process's stream. Thread-safe: workers
/// append concurrently; each line is written and fsync'd under one lock.
class CampaignSink {
 public:
  /// Open the stream. An empty (or `fresh`-truncated) file gets the header
  /// line, fsync'd before any cell can be appended. When resuming, the
  /// caller has already validated the existing header via load_stream and
  /// truncated off any partial trailing line.
  CampaignSink(const std::string& path, const StreamHeader& header,
               bool fresh);

  /// Append one completed cell (raw line: canonical payload + "wall_s"),
  /// fsync, and invoke `on_streamed` (when set) with the running count.
  void append(std::size_t cell_index, const CellResult& cell,
              double wall_seconds,
              const std::function<void(std::size_t)>& on_streamed);

  std::size_t appended() const;
  const std::string& path() const noexcept { return file_.path(); }

 private:
  mutable std::mutex mutex_;
  AppendFile file_;
  std::size_t appended_ = 0;
};

/// A merged campaign: the common header (shard cleared to {0, 1}) plus the
/// reduced result in cell order.
struct MergedCampaign {
  StreamHeader header;
  CampaignResult result;
};

/// Merge stream files (shards of one campaign, or a single possibly-resumed
/// stream) into the CampaignResult a single process would produce. Validates
/// that every file carries the same spec name/fingerprint/total, and that
/// no cell appears twice; with `require_complete`, every admitted cell must
/// be present. Cells are ordered by global cell index — the engine's
/// reduction order.
MergedCampaign merge_streams(const std::vector<std::string>& paths,
                             bool require_complete = true);

/// Canonical JSONL rendering of a complete campaign (header + one payload
/// line per cell, in cell order): byte-identical across {1 process,
/// N shards + merge, kill + resume} and any COMMSCHED_THREADS.
std::string canonical_jsonl(const StreamHeader& header,
                            const CampaignResult& result);

/// Convenience: header for an in-process run of `spec` (fingerprint
/// computed, shard taken from the spec/env).
StreamHeader make_stream_header(const CampaignSpec& spec);

}  // namespace commsched::exp
