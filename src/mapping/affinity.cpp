#include "mapping/affinity.hpp"

#include <algorithm>

#include "mapping/reorder.hpp"
#include "util/assert.hpp"

namespace commsched {

AffinityMatrix::AffinityMatrix(int nprocs, const CommSchedule& schedule)
    : nprocs_(nprocs) {
  COMMSCHED_ASSERT_MSG(nprocs >= 1 && nprocs <= 512,
                       "affinity matrices are dense; capped at 512 ranks");
  weights_.assign(static_cast<std::size_t>(nprocs) * nprocs, 0.0);
  for (const CommStep& step : schedule) {
    const double bytes = step.msize * step.repeat;
    for (const auto& [a, b] : step.pairs) {
      COMMSCHED_ASSERT(a >= 0 && a < nprocs && b >= 0 && b < nprocs);
      weights_[static_cast<std::size_t>(a) * nprocs + b] += bytes;
      weights_[static_cast<std::size_t>(b) * nprocs + a] += bytes;
    }
  }
}

double AffinityMatrix::at(int i, int j) const {
  COMMSCHED_ASSERT(i >= 0 && i < nprocs_ && j >= 0 && j < nprocs_);
  return weights_[static_cast<std::size_t>(i) * nprocs_ + j];
}

double AffinityMatrix::to_group(int i, std::span<const int> group) const {
  double total = 0.0;
  for (const int j : group) total += at(i, j);
  return total;
}

std::vector<NodeId> affinity_map(const Tree& tree,
                                 std::span<const NodeId> nodes,
                                 const CommSchedule& schedule) {
  const int p = static_cast<int>(nodes.size());
  const AffinityMatrix affinity(p, schedule);

  // Group the nodes per leaf, preserving switch-major order: group g gets
  // filled with a set of mutually-affine ranks of exactly its size.
  const std::vector<NodeId> ordered = switch_major_order(tree, nodes);
  std::vector<std::vector<NodeId>> leaf_groups;
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    if (i == 0 ||
        tree.leaf_of(ordered[i]) != tree.leaf_of(ordered[i - 1]))
      leaf_groups.emplace_back();
    leaf_groups.back().push_back(ordered[i]);
  }

  std::vector<bool> placed(static_cast<std::size_t>(p), false);
  std::vector<NodeId> rank_to_node(static_cast<std::size_t>(p), kInvalidNode);
  for (const auto& group_nodes : leaf_groups) {
    std::vector<int> group_ranks;
    // Seed: the unplaced rank with the largest total affinity (the most
    // communication to co-locate), ties to the lowest rank.
    int seed = -1;
    double best_total = -1.0;
    for (int r = 0; r < p; ++r) {
      if (placed[static_cast<std::size_t>(r)]) continue;
      double total = 0.0;
      for (int q = 0; q < p; ++q) total += affinity.at(r, q);
      if (total > best_total) {
        best_total = total;
        seed = r;
      }
    }
    COMMSCHED_ASSERT(seed >= 0);
    group_ranks.push_back(seed);
    placed[static_cast<std::size_t>(seed)] = true;
    // Grow: repeatedly add the rank most attached to the group so far.
    while (group_ranks.size() < group_nodes.size()) {
      int best = -1;
      double best_affinity = -1.0;
      for (int r = 0; r < p; ++r) {
        if (placed[static_cast<std::size_t>(r)]) continue;
        const double a = affinity.to_group(r, group_ranks);
        if (a > best_affinity) {
          best_affinity = a;
          best = r;
        }
      }
      COMMSCHED_ASSERT(best >= 0);
      group_ranks.push_back(best);
      placed[static_cast<std::size_t>(best)] = true;
    }
    // Assign the group's ranks (ascending, for determinism) to its nodes.
    std::sort(group_ranks.begin(), group_ranks.end());
    for (std::size_t k = 0; k < group_ranks.size(); ++k)
      rank_to_node[static_cast<std::size_t>(group_ranks[k])] =
          group_nodes[k];
  }
  return rank_to_node;
}

}  // namespace commsched
