// Affinity-based process mapping — a TREEMATCH-style comparator (the
// related-work approach of Georgiou et al. [12], §2): derive a rank-affinity
// matrix from the collective's schedule (bytes exchanged per rank pair) and
// greedily group heavily-communicating ranks onto the same leaf switch.
//
// Where switch_major_order() keeps rank-*adjacent* processes together (ideal
// for the vector-doubling allgather), affinity grouping adapts to whatever
// the schedule actually weighs — e.g. a collective whose heavy exchanges are
// between ranks i and i + p/2 gets those pairs co-located.
//
// This is the paper's §2 contrast made runnable: communication-matrix-driven
// mapping (this file) versus algorithm-structure-driven allocation (core/).
#pragma once

#include <span>
#include <vector>

#include "collectives/schedule.hpp"
#include "topology/tree.hpp"

namespace commsched {

/// Symmetric rank-affinity matrix: bytes exchanged between each rank pair
/// over the whole schedule (msize * repeat summed over steps). nprocs is
/// capped at 512 (the matrix is dense).
class AffinityMatrix {
 public:
  AffinityMatrix(int nprocs, const CommSchedule& schedule);

  int nprocs() const noexcept { return nprocs_; }
  double at(int i, int j) const;
  /// Total affinity of rank i to every rank in `group`.
  double to_group(int i, std::span<const int> group) const;

 private:
  int nprocs_;
  std::vector<double> weights_;  // row-major nprocs x nprocs
};

/// Map ranks onto `nodes` so heavily-communicating ranks share leaves:
/// nodes are grouped per leaf (switch-major), then each leaf group is
/// filled greedily — seed with the highest-affinity unplaced rank, then
/// repeatedly add the rank with the largest affinity to the group.
/// Returns the node list reordered so nodes[r] hosts rank r.
std::vector<NodeId> affinity_map(const Tree& tree,
                                 std::span<const NodeId> nodes,
                                 const CommSchedule& schedule);

}  // namespace commsched
