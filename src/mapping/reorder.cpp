#include "mapping/reorder.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/assert.hpp"

namespace commsched {

std::vector<NodeId> switch_major_order(const Tree& tree,
                                       std::span<const NodeId> nodes) {
  // Assign each leaf a rank by first appearance so the ordering is stable
  // with respect to the allocator's leaf preference.
  std::unordered_map<SwitchId, int> leaf_rank;
  for (const NodeId n : nodes) {
    const SwitchId leaf = tree.leaf_of(n);
    leaf_rank.emplace(leaf, static_cast<int>(leaf_rank.size()));
  }
  std::vector<NodeId> out(nodes.begin(), nodes.end());
  std::stable_sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
    const int la = leaf_rank.at(tree.leaf_of(a));
    const int lb = leaf_rank.at(tree.leaf_of(b));
    if (la != lb) return la < lb;
    return a < b;
  });
  return out;
}

std::vector<NodeId> improve_mapping(const ClusterState& state,
                                    const CostModel& model,
                                    const CommSchedule& schedule,
                                    std::span<const NodeId> nodes,
                                    bool comm_intensive,
                                    const MappingOptions& options) {
  COMMSCHED_ASSERT(options.max_passes >= 0);
  std::vector<NodeId> best = switch_major_order(state.tree(), nodes);
  if (static_cast<int>(best.size()) > options.max_swap_nodes) return best;

  double best_cost =
      model.candidate_cost(state, best, comm_intensive, schedule);
  const Tree& tree = state.tree();
  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool improved = false;
    for (std::size_t i = 0; i + 1 < best.size(); ++i) {
      for (std::size_t j = i + 1; j < best.size(); ++j) {
        // Swapping two nodes on the same leaf cannot change any distance
        // or contention term; skip the cost evaluation.
        if (tree.leaf_of(best[i]) == tree.leaf_of(best[j])) continue;
        std::swap(best[i], best[j]);
        const double cost =
            model.candidate_cost(state, best, comm_intensive, schedule);
        if (cost < best_cost) {
          best_cost = cost;
          improved = true;
        } else {
          std::swap(best[i], best[j]);  // revert
        }
      }
    }
    if (!improved) break;
  }
  return best;
}

}  // namespace commsched
