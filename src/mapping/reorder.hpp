// Post-allocation process mapping — the paper's §7 future work ("process
// mapping after node allocation can provide further improvements"),
// implemented as an optional extension.
//
// Given the node set an allocator selected, the rank -> node assignment still
// matters: recursive-doubling-style schedules pair rank-adjacent processes
// in their heaviest steps, so grouping consecutive ranks on the same leaf
// switch cuts inter-switch traffic without changing the allocation at all.
//
// Two levels are provided:
//   - switch_major_order: sort nodes by (leaf switch, node id) — O(p log p),
//     always safe, usually captures most of the benefit;
//   - improve_mapping: greedy pairwise-swap hill climbing on the Eq. 6 cost,
//     for small/medium jobs where the O(p^2) swap scan is affordable.
#pragma once

#include <span>
#include <vector>

#include "cluster/state.hpp"
#include "collectives/schedule.hpp"
#include "core/cost_model.hpp"
#include "topology/tree.hpp"

namespace commsched {

/// Reorder an allocation so ranks are contiguous per leaf switch (stable:
/// preserves relative order within a leaf and the leaves' first-appearance
/// order).
std::vector<NodeId> switch_major_order(const Tree& tree,
                                       std::span<const NodeId> nodes);

struct MappingOptions {
  /// Hill-climbing passes over all rank pairs (each pass is O(p^2) cost
  /// evaluations); the climb stops early when a pass finds no improvement.
  int max_passes = 3;
  /// Jobs larger than this skip the swap scan and only get
  /// switch_major_order (the scan would be O(p^3 log p) work overall).
  int max_swap_nodes = 128;
};

/// Minimize the Eq. 6 cost of `schedule` over rank orderings of `nodes`.
/// Starts from switch_major_order, then hill-climbs with pairwise swaps.
/// Never returns an ordering costlier than switch_major_order.
std::vector<NodeId> improve_mapping(const ClusterState& state,
                                    const CostModel& model,
                                    const CommSchedule& schedule,
                                    std::span<const NodeId> nodes,
                                    bool comm_intensive,
                                    const MappingOptions& options = {});

}  // namespace commsched
