#include "metrics/extended.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace commsched {

DistSummary summarize_distribution(std::vector<double> values) {
  DistSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.mean = mean(values);
  s.p50 = percentile(values, 50.0);
  s.p90 = percentile(values, 90.0);
  s.p99 = percentile(values, 99.0);
  s.max = *std::max_element(values.begin(), values.end());
  return s;
}

double bounded_slowdown(const JobResult& job, double tau) {
  COMMSCHED_ASSERT(tau > 0.0);
  const double run = job.actual_runtime;
  const double denom = std::max(run, tau);
  return std::max(1.0, (job.wait_time() + run) / denom);
}

DistSummary slowdown_summary(const SimResult& result, double tau) {
  std::vector<double> xs;
  xs.reserve(result.jobs.size());
  for (const JobResult& j : result.jobs) xs.push_back(bounded_slowdown(j, tau));
  return summarize_distribution(std::move(xs));
}

DistSummary wait_summary(const SimResult& result) {
  std::vector<double> xs;
  xs.reserve(result.jobs.size());
  for (const JobResult& j : result.jobs) xs.push_back(j.wait_time());
  return summarize_distribution(std::move(xs));
}

RunSummary summarize_class(const SimResult& result, bool comm_intensive) {
  SimResult filtered;
  filtered.allocator_name = result.allocator_name;
  filtered.makespan = result.makespan;
  for (const JobResult& j : result.jobs)
    if (j.comm_intensive == comm_intensive) filtered.jobs.push_back(j);
  return summarize(filtered);
}

double walltime_kill_fraction(const SimResult& result) {
  if (result.jobs.empty()) return 0.0;
  std::size_t killed = 0;
  for (const JobResult& j : result.jobs)
    if (j.hit_walltime) ++killed;
  return static_cast<double>(killed) / static_cast<double>(result.jobs.size());
}

std::vector<double> utilization_timeline(const SimResult& result,
                                         int machine_nodes,
                                         double bucket_seconds) {
  COMMSCHED_ASSERT(machine_nodes > 0 && bucket_seconds > 0.0);
  if (result.makespan <= 0.0) return {};
  const auto buckets = static_cast<std::size_t>(
      std::ceil(result.makespan / bucket_seconds));
  std::vector<double> busy_node_seconds(buckets, 0.0);
  for (const JobResult& j : result.jobs) {
    // Spread the job's node-seconds over the buckets it overlaps.
    const double t0 = j.start_time;
    const double t1 = j.end_time;
    auto b = static_cast<std::size_t>(t0 / bucket_seconds);
    for (; b < buckets; ++b) {
      const double lo = static_cast<double>(b) * bucket_seconds;
      const double hi = lo + bucket_seconds;
      const double overlap = std::min(t1, hi) - std::max(t0, lo);
      if (overlap <= 0.0) break;
      busy_node_seconds[b] += overlap * static_cast<double>(j.num_nodes);
    }
  }
  std::vector<double> util(buckets);
  for (std::size_t b = 0; b < buckets; ++b)
    util[b] = busy_node_seconds[b] /
              (bucket_seconds * static_cast<double>(machine_nodes));
  return util;
}

double average_utilization(const SimResult& result, int machine_nodes) {
  COMMSCHED_ASSERT(machine_nodes > 0);
  if (result.makespan <= 0.0) return 0.0;
  double node_seconds = 0.0;
  for (const JobResult& j : result.jobs)
    node_seconds += j.actual_runtime * static_cast<double>(j.num_nodes);
  return node_seconds /
         (result.makespan * static_cast<double>(machine_nodes));
}

}  // namespace commsched
