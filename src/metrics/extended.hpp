// Extended scheduling metrics beyond the paper's five (§5.4): bounded
// slowdown (the standard queueing-fairness metric of the scheduling
// literature), distribution summaries of waits/runtimes, per-class
// (communication vs compute) breakdowns, and machine-utilization timelines.
// These support the analysis examples and the ablation benches; the paper
// reproduction itself only needs metrics/summary.hpp.
#pragma once

#include <vector>

#include "metrics/summary.hpp"
#include "sched/result.hpp"

namespace commsched {

/// Distribution summary of a per-job quantity.
struct DistSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

DistSummary summarize_distribution(std::vector<double> values);

/// Bounded slowdown of one job: max(1, (wait + run) / max(run, tau)) with
/// the customary tau = 10 s guard against microscopic jobs dominating.
double bounded_slowdown(const JobResult& job, double tau = 10.0);

/// Distribution of bounded slowdowns over a run.
DistSummary slowdown_summary(const SimResult& result, double tau = 10.0);

/// Distribution of wait times (seconds).
DistSummary wait_summary(const SimResult& result);

/// Summary restricted to one job class (§6.1 discusses compute-intensive
/// jobs benefiting indirectly; this makes that visible).
RunSummary summarize_class(const SimResult& result, bool comm_intensive);

/// Fraction of jobs that were truncated at their walltime
/// (SchedOptions::enforce_walltime).
double walltime_kill_fraction(const SimResult& result);

/// Machine utilization over time: bucket b covers
/// [b * bucket_seconds, (b+1) * bucket_seconds) and holds the average
/// fraction of `machine_nodes` busy during that interval. The timeline
/// spans [0, makespan].
std::vector<double> utilization_timeline(const SimResult& result,
                                         int machine_nodes,
                                         double bucket_seconds);

/// Node-seconds of work divided by machine capacity over the makespan.
double average_utilization(const SimResult& result, int machine_nodes);

}  // namespace commsched
