#include "metrics/summary.hpp"

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace commsched {

namespace {
constexpr double kSecondsPerHour = 3600.0;
}

RunSummary summarize(const SimResult& result) {
  RunSummary s;
  s.allocator = result.allocator_name;
  s.job_count = result.jobs.size();
  s.makespan_hours = result.makespan / kSecondsPerHour;
  s.cache = result.cache_stats;

  double total_turnaround = 0.0;
  std::size_t comm_jobs = 0;
  for (const JobResult& j : result.jobs) {
    s.total_exec_hours += j.actual_runtime / kSecondsPerHour;
    s.total_wait_hours += j.wait_time() / kSecondsPerHour;
    total_turnaround += j.turnaround_time() / kSecondsPerHour;
    s.total_node_hours += j.node_hours();
    if (j.comm_intensive) {
      s.total_cost += j.cost;
      ++comm_jobs;
    }
  }
  if (s.job_count > 0) {
    const auto n = static_cast<double>(s.job_count);
    s.avg_wait_hours = s.total_wait_hours / n;
    s.avg_turnaround_hours = total_turnaround / n;
    s.avg_node_hours = s.total_node_hours / n;
  }
  if (comm_jobs > 0)
    s.avg_cost = s.total_cost / static_cast<double>(comm_jobs);
  return s;
}

double improvement_percent(double baseline, double value) {
  if (baseline == 0.0) return 0.0;
  return (baseline - value) / baseline * 100.0;
}

std::vector<double> power_of_two_bin_edges(int min_exp, int max_exp,
                                           int stride) {
  COMMSCHED_ASSERT(min_exp >= 0 && max_exp >= min_exp && stride >= 1);
  std::vector<double> edges;
  for (int e = min_exp; e <= max_exp; e += stride)
    edges.push_back(static_cast<double>(1LL << e));
  if (edges.back() < static_cast<double>(1LL << max_exp))
    edges.push_back(static_cast<double>(1LL << max_exp));
  // A closing edge so the top power of two falls inside the last bin.
  edges.push_back(edges.back() * 2.0);
  return edges;
}

std::vector<double> average_cost_by_node_bin(const SimResult& result,
                                             const std::vector<double>& edges) {
  Histogram hist(edges);
  for (const JobResult& j : result.jobs)
    if (j.comm_intensive)
      hist.add(static_cast<double>(j.num_nodes), j.cost);
  std::vector<double> means(hist.bin_count());
  for (std::size_t b = 0; b < hist.bin_count(); ++b) means[b] = hist.bin_mean(b);
  return means;
}

std::vector<std::size_t> job_count_by_node_bin(
    const SimResult& result, const std::vector<double>& edges) {
  Histogram hist(edges);
  for (const JobResult& j : result.jobs)
    if (j.comm_intensive) hist.add(static_cast<double>(j.num_nodes));
  return hist.counts;
}

}  // namespace commsched
