// Aggregation of simulator output into the paper's five evaluation metrics
// (§5.4): execution time, wait time, turnaround time, node-hours and
// communication cost — as run totals/averages (Tables 3, Figure 9) and as
// per-node-range averages (Figure 8).
#pragma once

#include <string>
#include <vector>

#include "sched/result.hpp"

namespace commsched {

struct RunSummary {
  std::string allocator;
  std::size_t job_count = 0;

  double total_exec_hours = 0.0;        ///< sum of actual runtimes
  double total_wait_hours = 0.0;        ///< sum of (start - submit)
  double avg_wait_hours = 0.0;
  double avg_turnaround_hours = 0.0;
  double total_node_hours = 0.0;
  double avg_node_hours = 0.0;
  double total_cost = 0.0;              ///< Eq. 6, comm-intensive jobs only
  double avg_cost = 0.0;                ///< over comm-intensive jobs
  double makespan_hours = 0.0;
  CacheStats cache;                     ///< run-wide CommCache hit/miss stats
};

RunSummary summarize(const SimResult& result);

/// (baseline - value) / baseline * 100; 0 when the baseline is 0.
double improvement_percent(double baseline, double value);

/// Bin edges [2^min_exp, 2^(min_exp+stride), ...] up to and including
/// 2^max_exp, for Figure 8's node-range x-axis.
std::vector<double> power_of_two_bin_edges(int min_exp, int max_exp,
                                           int stride = 1);

/// Figure 8: average Eq. 6 cost of communication-intensive jobs, binned by
/// node count. Returns one value per bin (0 for empty bins).
std::vector<double> average_cost_by_node_bin(const SimResult& result,
                                             const std::vector<double>& edges);

/// Jobs-per-bin companion to average_cost_by_node_bin.
std::vector<std::size_t> job_count_by_node_bin(const SimResult& result,
                                               const std::vector<double>& edges);

}  // namespace commsched
