#include "netsim/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace commsched {

FlowNetwork::FlowNetwork(const Tree& tree, const LinkConfig& config)
    : tree_(&tree), per_hop_latency_(config.per_hop_latency) {
  COMMSCHED_ASSERT(config.node_link_bw > 0.0);
  COMMSCHED_ASSERT(config.uplink_multiplier > 0.0);
  COMMSCHED_ASSERT(config.per_hop_latency >= 0.0);
  capacity_.resize(static_cast<std::size_t>(tree.node_count()) +
                   static_cast<std::size_t>(tree.switch_count()));
  for (NodeId n = 0; n < tree.node_count(); ++n)
    capacity_[static_cast<std::size_t>(n)] = config.node_link_bw;
  for (SwitchId s = 0; s < tree.switch_count(); ++s) {
    // The root has no uplink; give it zero capacity and never route over it.
    const double cap =
        tree.parent(s) == kInvalidSwitch
            ? 0.0
            : config.node_link_bw *
                  std::pow(config.uplink_multiplier, tree.level(s));
    capacity_[static_cast<std::size_t>(tree.node_count() + s)] = cap;
  }
}

double FlowNetwork::capacity(int link) const {
  COMMSCHED_ASSERT(link >= 0 && link < link_count());
  return capacity_[static_cast<std::size_t>(link)];
}

int FlowNetwork::uplink(SwitchId s) const {
  COMMSCHED_ASSERT(tree_->parent(s) != kInvalidSwitch);
  return tree_->node_count() + static_cast<int>(s);
}

std::vector<int> FlowNetwork::path(NodeId a, NodeId b) const {
  COMMSCHED_ASSERT_MSG(a != b, "no path from a node to itself");
  std::vector<int> links;
  links.push_back(node_link(a));
  const SwitchId lca = tree_->lowest_common_switch(a, b);
  for (SwitchId s = tree_->leaf_of(a); s != lca; s = tree_->parent(s))
    links.push_back(uplink(s));
  for (SwitchId s = tree_->leaf_of(b); s != lca; s = tree_->parent(s))
    links.push_back(uplink(s));
  links.push_back(node_link(b));
  return links;
}

double FlowNetwork::path_latency(const std::vector<int>& links) const {
  return per_hop_latency_ * static_cast<double>(links.size());
}

void FlowNetwork::compute_maxmin_rates(std::span<Flow> flows) const {
  // Progressive filling: repeatedly find the bottleneck link (smallest
  // equal-share of residual capacity among its unfrozen flows), freeze its
  // flows at that share, and continue until every flow is frozen.
  std::vector<double> residual = capacity_;
  std::vector<int> unfrozen_count(capacity_.size(), 0);
  std::vector<bool> frozen(flows.size(), false);

  std::size_t active = 0;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    flows[f].rate = 0.0;
    // Finished flows and flows still in their startup-latency phase occupy
    // no bandwidth.
    if (flows[f].remaining <= 0.0 || flows[f].latency > 0.0) {
      frozen[f] = true;
      continue;
    }
    ++active;
    for (const int l : flows[f].links)
      ++unfrozen_count[static_cast<std::size_t>(l)];
  }

  while (active > 0) {
    // Find the bottleneck share.
    double share = std::numeric_limits<double>::infinity();
    int bottleneck = -1;
    for (std::size_t l = 0; l < capacity_.size(); ++l) {
      if (unfrozen_count[l] == 0) continue;
      const double s = residual[l] / static_cast<double>(unfrozen_count[l]);
      if (s < share) {
        share = s;
        bottleneck = static_cast<int>(l);
      }
    }
    COMMSCHED_ASSERT_MSG(bottleneck >= 0, "active flow with no usable link");
    // Freeze every unfrozen flow crossing the bottleneck at `share`.
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (frozen[f]) continue;
      const bool crosses =
          std::find(flows[f].links.begin(), flows[f].links.end(),
                    bottleneck) != flows[f].links.end();
      if (!crosses) continue;
      flows[f].rate = share;
      frozen[f] = true;
      --active;
      for (const int l : flows[f].links) {
        residual[static_cast<std::size_t>(l)] -= share;
        --unfrozen_count[static_cast<std::size_t>(l)];
      }
    }
  }
}

}  // namespace commsched
