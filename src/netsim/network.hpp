// Flow-level model of a tree network (DESIGN.md §3, substitution 4).
//
// Links: one access link per compute node (node <-> its leaf switch) and one
// uplink per non-root switch (switch <-> parent).  A flow between two nodes
// traverses its source access link, the uplinks on both sides of the lowest
// common switch, and the destination access link.  Concurrent flows share
// link capacity max-min fairly — the fluid approximation of TCP-ish fair
// sharing on the paper's 1G Ethernet department cluster.
//
// This is what turns "two jobs share switches" into measurable slowdown:
// when J2's allgather traffic crosses the same leaf uplinks as J1's, the
// max-min rates of J1's flows drop and its collective stretches — the spike
// mechanism of the paper's Figure 1.
#pragma once

#include <span>
#include <vector>

#include "topology/tree.hpp"

namespace commsched {

struct LinkConfig {
  /// Access (node <-> leaf) link capacity, bytes/second. 1 Gbit/s default,
  /// matching the paper's department cluster.
  double node_link_bw = 125.0e6;
  /// Uplink thickening factor per switch level: the uplink of a level-l
  /// switch has capacity node_link_bw * pow(uplink_multiplier, l). 1.0
  /// models the single-GigE trunks of the department cluster; >1 models
  /// fat-tree thickening toward the core.
  double uplink_multiplier = 1.0;
  /// Per-link traversal latency (the alpha of the alpha-beta model),
  /// seconds. A flow starts transferring only after latency * path-length
  /// has elapsed, so longer-hop exchanges pay more even for tiny messages.
  /// 0 (default) reproduces the pure bandwidth-sharing model.
  double per_hop_latency = 0.0;
};

/// An active transfer between two nodes; `remaining` counts down as the
/// simulator integrates rates over time.
struct Flow {
  std::vector<int> links;   ///< link indices along the path
  double remaining = 0.0;   ///< bytes left
  double rate = 0.0;        ///< bytes/second, set by compute_maxmin_rates
  /// Startup latency left (alpha term); the flow occupies no bandwidth and
  /// transfers nothing until this reaches 0.
  double latency = 0.0;
  int job = -1;             ///< owning simulated job (netsim bookkeeping)
};

class FlowNetwork {
 public:
  FlowNetwork(const Tree& tree, const LinkConfig& config);

  const Tree& tree() const noexcept { return *tree_; }
  int link_count() const noexcept { return static_cast<int>(capacity_.size()); }
  double capacity(int link) const;

  /// Link path between two distinct nodes (access links + uplinks to/from
  /// the lowest common switch).
  std::vector<int> path(NodeId a, NodeId b) const;

  /// Startup latency of a path: per_hop_latency * path length.
  double path_latency(const std::vector<int>& links) const;

  /// Progressive-filling max-min fair rates for all flows with
  /// remaining > 0 (zero-remaining flows get rate 0 and occupy no capacity).
  void compute_maxmin_rates(std::span<Flow> flows) const;

 private:
  int node_link(NodeId n) const { return static_cast<int>(n); }
  int uplink(SwitchId s) const;  ///< valid for non-root switches

  const Tree* tree_;
  std::vector<double> capacity_;  // node links first, then switch uplinks
  double per_hop_latency_ = 0.0;
};

}  // namespace commsched
