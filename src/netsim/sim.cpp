#include "netsim/sim.hpp"

#include <algorithm>
#include <limits>

#include "audit/auditor.hpp"
#include "util/assert.hpp"

namespace commsched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Guard against float drift when deciding whether a flow has finished.
constexpr double kByteEpsilon = 1e-6;

struct JobState {
  CommSchedule schedule;
  int execution = 0;      // completed executions
  int step = 0;           // current step index while running
  int step_repeat = 0;    // repeats of the current step still to run
  int round = 0;          // current round within the execution
  bool running = false;
  double next_start = 0.0;
  double exec_start = 0.0;
  std::vector<std::size_t> flow_indices;  // into the flow pool
};

}  // namespace

NetSimResult simulate_network(const FlowNetwork& network,
                              const std::vector<RepeatingJob>& jobs,
                              double duration, LinkUsage* usage) {
  COMMSCHED_ASSERT(duration > 0.0);
  const Tree& tree = network.tree();
  for (const auto& job : jobs) {
    COMMSCHED_ASSERT_MSG(job.nodes.size() >= 2, "netsim job needs >= 2 nodes");
    COMMSCHED_ASSERT(job.rounds >= 1 && job.msize > 0.0);
    for (const NodeId n : job.nodes)
      COMMSCHED_ASSERT(n >= 0 && n < tree.node_count());
  }

  std::vector<JobState> states(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    states[j].schedule = make_schedule(jobs[j].pattern,
                                       static_cast<int>(jobs[j].nodes.size()),
                                       jobs[j].msize);
    COMMSCHED_ASSERT_MSG(!states[j].schedule.empty(),
                         "job schedule has no communication");
    states[j].next_start = jobs[j].first_start;
  }

  std::vector<Flow> flows;  // compacted each event round
  NetSimResult result;
  result.per_job.resize(jobs.size());

  const auto launch_step = [&](std::size_t j) {
    JobState& st = states[j];
    const CommStep& step = st.schedule[static_cast<std::size_t>(st.step)];
    st.flow_indices.clear();
    for (const auto& [ra, rb] : step.pairs) {
      Flow f;
      f.links = network.path(jobs[j].nodes[static_cast<std::size_t>(ra)],
                             jobs[j].nodes[static_cast<std::size_t>(rb)]);
      f.remaining = step.msize;
      f.latency = network.path_latency(f.links);
      f.job = static_cast<int>(j);
      st.flow_indices.push_back(flows.size());
      flows.push_back(std::move(f));
    }
  };

  const auto start_execution = [&](std::size_t j, double now) {
    JobState& st = states[j];
    st.running = true;
    st.exec_start = now;
    st.step = 0;
    st.round = 0;
    st.step_repeat = st.schedule.front().repeat;
    launch_step(j);
  };

  // Runtime invariant auditing (COMMSCHED_AUDIT): monotone event clock at
  // cheap, per-flow sanity after every rate computation at full.
  StateAuditor auditor(tree, audit_level_from_env());

  double now = 0.0;
  while (now < duration) {
    if (auditor.enabled()) auditor.on_event(now, "netsim step");
    // Start any job whose start time has arrived.
    for (std::size_t j = 0; j < jobs.size(); ++j)
      if (!states[j].running && states[j].next_start <= now)
        start_execution(j, now);

    network.compute_maxmin_rates(flows);
    if (auditor.level() == AuditLevel::kFull)
      for (const Flow& f : flows)
        auditor.check_flow(f.remaining, f.rate, f.latency, f.job);

    // Next event: earliest latency expiry, flow completion, or pending job
    // start.
    double dt = kInf;
    for (const Flow& f : flows) {
      if (f.remaining <= kByteEpsilon) continue;
      if (f.latency > 0.0)
        dt = std::min(dt, f.latency);
      else if (f.rate > 0.0)
        dt = std::min(dt, f.remaining / f.rate);
    }
    for (std::size_t j = 0; j < jobs.size(); ++j)
      if (!states[j].running && states[j].next_start > now)
        dt = std::min(dt, states[j].next_start - now);
    if (dt == kInf) break;  // nothing active and nothing scheduled
    dt = std::min(dt, duration - now);
    if (usage != nullptr) usage->record(flows, dt);

    for (Flow& f : flows) {
      if (f.remaining <= kByteEpsilon) continue;
      if (f.latency > 0.0)
        f.latency -= dt;  // rate is 0 while latent; dt <= latency
      else
        f.remaining -= f.rate * dt;
    }
    now += dt;
    if (now >= duration) break;

    // Advance jobs whose current step completed.
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      JobState& st = states[j];
      if (!st.running) continue;
      const bool step_done = std::all_of(
          st.flow_indices.begin(), st.flow_indices.end(),
          [&](std::size_t fi) { return flows[fi].remaining <= kByteEpsilon; });
      if (!step_done) continue;

      if (--st.step_repeat > 0) {
        launch_step(j);  // same step again (ring rounds)
        continue;
      }
      ++st.step;
      if (st.step < static_cast<int>(st.schedule.size())) {
        st.step_repeat = st.schedule[static_cast<std::size_t>(st.step)].repeat;
        launch_step(j);
        continue;
      }
      // Collective finished; next round or end of execution.
      ++st.round;
      if (st.round < jobs[j].rounds) {
        st.step = 0;
        st.step_repeat = st.schedule.front().repeat;
        launch_step(j);
        continue;
      }
      st.running = false;
      st.flow_indices.clear();
      result.per_job[j].push_back({st.exec_start, now - st.exec_start});
      ++st.execution;
      if (jobs[j].period <= 0.0) {
        st.next_start = now;  // back-to-back
      } else {
        const double scheduled =
            jobs[j].first_start +
            static_cast<double>(st.execution) * jobs[j].period;
        st.next_start = std::max(scheduled, now);
      }
    }

    // Compact finished flows so the pool does not grow unboundedly.
    // Rebuild job flow indices afterwards.
    std::vector<Flow> live;
    std::vector<std::size_t> remap(flows.size(),
                                   std::numeric_limits<std::size_t>::max());
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (flows[f].remaining > kByteEpsilon) {
        remap[f] = live.size();
        live.push_back(std::move(flows[f]));
      }
    }
    flows = std::move(live);
    for (auto& st : states) {
      if (!st.running) continue;
      // Remap surviving flows; drop indices of flows that completed (a step
      // with some pairs done and some pending keeps only the pending ones,
      // which is consistent with the all-done check above).
      std::vector<std::size_t> kept;
      kept.reserve(st.flow_indices.size());
      for (const std::size_t fi : st.flow_indices)
        if (remap[fi] != std::numeric_limits<std::size_t>::max())
          kept.push_back(remap[fi]);
      st.flow_indices = std::move(kept);
    }
  }
  return result;
}

}  // namespace commsched
