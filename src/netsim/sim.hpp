// Event-driven fluid simulation of concurrent collective jobs on a
// FlowNetwork — the engine behind the Figure 1 reproduction.
//
// Each job repeatedly executes a collective (its CommSchedule) for a number
// of back-to-back rounds; one such burst is an "execution" whose duration we
// record.  A job either restarts immediately after each execution (the
// paper's J1, run "repeatedly") or starts an execution at a fixed period
// (J2, "every 30 minutes").  Steps inside a collective are synchronized:
// the next step starts when the slowest pair of the current step finishes,
// which is exactly why the cost model uses the per-step max (Eq. 6).
#pragma once

#include <string>
#include <vector>

#include "collectives/schedule.hpp"
#include "netsim/network.hpp"
#include "netsim/usage.hpp"

namespace commsched {

struct RepeatingJob {
  std::string name;
  std::vector<NodeId> nodes;  ///< rank r runs on nodes[r]
  Pattern pattern = Pattern::kRecursiveHalvingVD;
  double msize = 1 << 20;     ///< bytes per base message (paper: 1 MB)
  int rounds = 1;             ///< collective rounds per execution
  double first_start = 0.0;   ///< seconds
  /// 0 = restart immediately after finishing (J1); > 0 = execution k starts
  /// at first_start + k * period (J2's 30-minute cadence). If an execution
  /// overruns the period, the next starts as soon as the previous ends.
  double period = 0.0;
};

struct ExecutionSample {
  double start = 0.0;     ///< seconds
  double duration = 0.0;  ///< seconds
};

struct NetSimResult {
  /// per_job[j] = the execution samples of jobs[j], in time order.
  std::vector<std::vector<ExecutionSample>> per_job;
};

/// Simulate all jobs concurrently for `duration` simulated seconds.
/// Executions still in flight at the horizon are discarded. Pass a
/// LinkUsage (constructed over the same network) to collect per-link bytes
/// and busy time.
NetSimResult simulate_network(const FlowNetwork& network,
                              const std::vector<RepeatingJob>& jobs,
                              double duration, LinkUsage* usage = nullptr);

}  // namespace commsched
