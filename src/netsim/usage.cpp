#include "netsim/usage.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace commsched {

LinkUsage::LinkUsage(const FlowNetwork& network)
    : bytes_(static_cast<std::size_t>(network.link_count()), 0.0),
      busy_(static_cast<std::size_t>(network.link_count()), 0.0),
      active_scratch_(static_cast<std::size_t>(network.link_count()), 0) {}

void LinkUsage::record(std::span<const Flow> flows, double dt) {
  COMMSCHED_ASSERT(dt >= 0.0);
  std::fill(active_scratch_.begin(), active_scratch_.end(), 0);
  for (const Flow& f : flows) {
    if (f.remaining <= 0.0 || f.latency > 0.0 || f.rate <= 0.0) continue;
    const double moved = f.rate * dt;
    for (const int l : f.links) {
      bytes_[static_cast<std::size_t>(l)] += moved;
      active_scratch_[static_cast<std::size_t>(l)] = 1;
    }
  }
  for (std::size_t l = 0; l < busy_.size(); ++l)
    if (active_scratch_[l]) busy_[l] += dt;
}

double LinkUsage::bytes(int link) const {
  COMMSCHED_ASSERT(link >= 0 && link < link_count());
  return bytes_[static_cast<std::size_t>(link)];
}

double LinkUsage::busy_time(int link) const {
  COMMSCHED_ASSERT(link >= 0 && link < link_count());
  return busy_[static_cast<std::size_t>(link)];
}

double LinkUsage::total_link_bytes() const {
  double total = 0.0;
  for (const double b : bytes_) total += b;
  return total;
}

}  // namespace commsched
