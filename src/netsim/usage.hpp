// Per-link usage accounting for the flow-level simulator: bytes carried and
// busy time per link, recorded while the fluid simulation advances. Used to
// show *where* the Figure 1 contention lives (the two leaf uplinks) and to
// assert flow conservation in tests.
#pragma once

#include <vector>

#include "netsim/network.hpp"

namespace commsched {

class LinkUsage {
 public:
  explicit LinkUsage(const FlowNetwork& network);

  /// Integrate all transferring flows over an interval of length dt.
  void record(std::span<const Flow> flows, double dt);

  double bytes(int link) const;
  double busy_time(int link) const;  ///< time with >= 1 transferring flow
  int link_count() const { return static_cast<int>(bytes_.size()); }

  /// Total bytes over all links (each flow counts once per link crossed).
  double total_link_bytes() const;

 private:
  std::vector<double> bytes_;
  std::vector<double> busy_;
  std::vector<char> active_scratch_;
};

}  // namespace commsched
