#include "sched/individual.hpp"

#include <algorithm>
#include <memory>

#include "cluster/state.hpp"
#include "collectives/comm_cache.hpp"
#include "core/allocator.hpp"
#include "core/allocator_common.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace commsched {

namespace {

// Occupy ~options.occupancy of the machine with a spread of block jobs.
// Blocks are sized relative to a leaf so leaves end up partially filled —
// the regime where the policies actually differ.
void prefill(ClusterState& state, const IndividualOptions& options, Rng& rng) {
  const Tree& tree = state.tree();
  const auto target = static_cast<int>(
      options.occupancy * static_cast<double>(tree.node_count()));
  const int leaf_size =
      static_cast<int>(tree.nodes_of_leaf(tree.leaves().front()).size());
  JobId next_job = 1'000'000;  // disjoint from probe ids
  int occupied = 0;
  int failures = 0;
  while (occupied < target && failures < 64) {
    // Between an eighth of a leaf and 1.5 leaves, so some jobs span leaves.
    const int lo = std::max(1, leaf_size / 8);
    const int hi = std::max(lo + 1, (3 * leaf_size) / 2);
    int size = static_cast<int>(rng.uniform_int(lo, hi));
    size = std::min(size, target - occupied + lo);
    if (state.total_free() < size) break;

    // Scatter: pick a random start leaf and walk forward taking free nodes.
    const auto leaves = tree.leaves();
    const auto start =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(leaves.size()) - 1));
    std::vector<NodeId> nodes;
    for (std::size_t k = 0; k < leaves.size() && static_cast<int>(nodes.size()) < size; ++k) {
      const SwitchId leaf = leaves[(start + k) % leaves.size()];
      for (const NodeId n : tree.nodes_of_leaf(leaf)) {
        if (static_cast<int>(nodes.size()) == size) break;
        if (state.is_free(n)) nodes.push_back(n);
      }
    }
    if (static_cast<int>(nodes.size()) < size) {
      ++failures;
      continue;
    }
    const bool comm = rng.bernoulli(options.comm_prefill_fraction);
    state.allocate(next_job++, comm, nodes);
    occupied += size;
  }
}

}  // namespace

std::vector<IndividualOutcome> run_individual(const Tree& tree,
                                              const JobLog& probes,
                                              const IndividualOptions& options) {
  COMMSCHED_ASSERT(options.occupancy >= 0.0 && options.occupancy < 1.0);
  ClusterState state(tree);
  Rng rng(options.seed);
  prefill(state, options, rng);

  // One shared schedule/profile cache serves the four policies' internal
  // pricing and the probe pricing below.
  const auto cache = std::make_shared<CommCache>(
      probes.empty() ? double{1 << 20} : probes.front().msize);
  std::array<std::unique_ptr<Allocator>, kNumAllocatorKinds> allocators;
  for (const AllocatorKind kind : kAllAllocatorKinds)
    allocators[static_cast<std::size_t>(kind)] =
        make_allocator(kind, options.cost_options, cache);
  const CostModel model(tree, options.cost_options);
  CostWorkspace workspace;

  std::vector<IndividualOutcome> outcomes;
  outcomes.reserve(probes.size());
  for (const JobRecord& job : probes) {
    if (job.num_nodes > state.total_free()) continue;  // cannot probe

    AllocationRequest request;
    request.job = job.id;
    request.num_nodes = job.num_nodes;
    request.comm_intensive = job.comm_intensive;
    request.pattern = job.pattern;
    request.msize = job.msize;

    IndividualOutcome out;
    out.id = job.id;
    out.num_nodes = job.num_nodes;
    out.comm_intensive = job.comm_intensive;
    out.pattern = job.pattern;

    for (const AllocatorKind kind : kAllAllocatorKinds) {
      const auto i = static_cast<std::size_t>(kind);
      const auto nodes = allocators[i]->select(state, request);
      COMMSCHED_ASSERT_MSG(nodes.has_value(),
                           "policy failed although the probe fits");
      out.cost[i] = (job.comm_intensive && job.num_nodes >= 2)
                        ? profiled_candidate_cost(model, *cache, state,
                                                  *nodes, job.comm_intensive,
                                                  job.pattern, workspace)
                        : 0.0;
    }
    for (const AllocatorKind kind : kAllAllocatorKinds) {
      const auto i = static_cast<std::size_t>(kind);
      out.exec_time[i] =
          job.comm_intensive
              ? modified_runtime(job.runtime, job.comm_fraction, out.cost[i],
                                 out.cost[0], options.runtime_options)
              : job.runtime;
    }
    outcomes.push_back(out);
  }
  return outcomes;
}

}  // namespace commsched
