// Individual-run driver (§5.4, §6.3).
//
// The paper's second experiment type removes the divergent-cluster-state
// confound of continuous runs: the cluster is first partially occupied, then
// each probe job is submitted alone (the next only after the previous
// completes), so every allocation policy sees the *same* cluster state for
// every probe job and the allocations are directly comparable.
//
// Because only one probe runs at a time and frees its nodes before the next,
// evaluating a probe is equivalent to: select nodes under each policy from
// the common prefilled state, price each candidate with Eq. 6, and derive
// the Eq. 7 runtime — without committing anything.
#pragma once

#include <array>
#include <vector>

#include "core/allocator_factory.hpp"
#include "core/cost_model.hpp"
#include "core/runtime_model.hpp"
#include "topology/tree.hpp"
#include "workload/job.hpp"

namespace commsched {

inline constexpr std::size_t kNumAllocatorKinds = 4;

struct IndividualOutcome {
  WorkloadJobId id = 0;
  int num_nodes = 0;
  bool comm_intensive = false;
  Pattern pattern = Pattern::kRecursiveDoubling;
  /// Indexed by AllocatorKind (0 default, 1 greedy, 2 balanced, 3 adaptive).
  std::array<double, kNumAllocatorKinds> cost{};
  std::array<double, kNumAllocatorKinds> exec_time{};

  double improvement_percent(AllocatorKind kind) const {
    const double base = exec_time[0];
    if (base <= 0.0) return 0.0;
    return (base - exec_time[static_cast<std::size_t>(kind)]) / base * 100.0;
  }
};

struct IndividualOptions {
  /// Target fraction of the machine occupied before probing (the paper's
  /// "partially occupy the cluster" step).
  double occupancy = 0.5;
  /// Fraction of prefill jobs that are communication-intensive, so the
  /// probes see contended leaves.
  double comm_prefill_fraction = 0.5;
  /// Seed for prefill sizing/placement randomness.
  std::uint64_t seed = 12345;
  /// Pricing metric for the recorded costs and Eq. 7 runtimes (hop-byte
  /// weighted by default, matching SchedOptions — see simulator.hpp).
  CostOptions cost_options{.hop_bytes = true};
  RuntimeModelOptions runtime_options{};
};

/// Evaluate every probe job under all four policies against one common
/// prefilled cluster state. Probes that cannot fit in the remaining free
/// nodes are skipped (not reported).
std::vector<IndividualOutcome> run_individual(const Tree& tree,
                                              const JobLog& probes,
                                              const IndividualOptions& options);

}  // namespace commsched
