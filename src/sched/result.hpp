// Per-job and per-run outputs of the scheduler simulator, carrying exactly
// the quantities the paper's evaluation metrics need (§5.4): execution time,
// wait time, turnaround time, node-hours and communication cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/job.hpp"

namespace commsched {

struct JobResult {
  WorkloadJobId id = 0;
  int num_nodes = 0;
  bool comm_intensive = false;
  Pattern pattern = Pattern::kRecursiveDoubling;

  double submit_time = 0.0;
  double start_time = 0.0;
  double end_time = 0.0;

  double original_runtime = 0.0;  ///< logged runtime T
  double actual_runtime = 0.0;    ///< simulated runtime T' (Eq. 7)

  double cost = 0.0;          ///< Eq. 6 cost of the committed allocation
  double cost_default = 0.0;  ///< hypothetical default-allocator cost, same state

  /// §7 I/O extension: IoModel costs (0 unless the job is I/O-intensive).
  double io_cost = 0.0;
  double io_cost_default = 0.0;

  /// True when SchedOptions::enforce_walltime truncated the job.
  bool hit_walltime = false;

  double wait_time() const { return start_time - submit_time; }
  double turnaround_time() const { return end_time - submit_time; }
  double node_hours() const {
    return static_cast<double>(num_nodes) * actual_runtime / 3600.0;
  }
};

/// Hit/miss counters of the run's shared CommCache (schedule and leaf-comm
/// profile lookups by the allocator and both pricing models). A plain copy
/// of CommCache::Stats so result consumers (metrics, exp) do not need the
/// collectives headers.
struct CacheStats {
  std::uint64_t schedule_hits = 0;
  std::uint64_t schedule_misses = 0;
  std::uint64_t profile_hits = 0;
  std::uint64_t profile_misses = 0;

  double profile_hit_rate() const {
    const std::uint64_t total = profile_hits + profile_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(profile_hits) /
                            static_cast<double>(total);
  }
};

struct SimResult {
  std::string allocator_name;
  std::vector<JobResult> jobs;  ///< in job-log order
  double makespan = 0.0;        ///< last completion time, seconds
  CacheStats cache_stats;       ///< run-wide CommCache hit/miss counters
};

}  // namespace commsched
