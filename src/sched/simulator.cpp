#include "sched/simulator.hpp"

#include <algorithm>
#include <deque>
#include <queue>

#include "audit/auditor.hpp"
#include "cluster/state.hpp"
#include "collectives/comm_cache.hpp"
#include "core/default_allocator.hpp"
#include "core/io_model.hpp"
#include "util/assert.hpp"

namespace commsched {

namespace {

struct Completion {
  double time = 0.0;
  std::size_t job_index = 0;  // index into the log
  bool operator>(const Completion& other) const {
    if (time != other.time) return time > other.time;
    return job_index > other.job_index;  // deterministic tie-break
  }
};

struct RunningInfo {
  double est_end = 0.0;  // start + walltime: what the scheduler believes
  int num_nodes = 0;
};

class Simulation {
 public:
  Simulation(const Tree& tree, const JobLog& log, const SchedOptions& options)
      : tree_(tree),
        log_(log),
        options_(options),
        state_(tree),
        comm_cache_(std::make_shared<CommCache>(
            log.empty() ? double{1 << 20} : log.front().msize)),
        allocator_(make_allocator(options.allocator, options.cost_options,
                                  comm_cache_)),
        pricing_model_(tree, options.cost_options),
        metric_model_(tree,
                      CostOptions{.hop_bytes = false,
                                  .include_candidate =
                                      options.cost_options.include_candidate}),
        io_model_(tree),
        auditor_(tree, options.audit.value_or(audit_level_from_env())) {
    results_.resize(log.size());
    running_info_.resize(log.size());
  }

  SimResult run() {
    validate_log();
    std::size_t next_submit = 0;
    double makespan = 0.0;

    while (next_submit < log_.size() || !completions_.empty() ||
           !pending_.empty()) {
      // Next event: completions win ties so freed nodes are visible to jobs
      // submitted at the same instant.
      double t;
      const bool have_completion = !completions_.empty();
      const bool have_submit = next_submit < log_.size();
      COMMSCHED_ASSERT_MSG(have_completion || have_submit,
                           "queue is non-empty but no future event exists — "
                           "a pending job can never start");
      if (have_completion &&
          (!have_submit || completions_.top().time <= log_[next_submit].submit_time))
        t = completions_.top().time;
      else
        t = log_[next_submit].submit_time;

      while (!completions_.empty() && completions_.top().time <= t) {
        const Completion c = completions_.top();
        completions_.pop();
        const std::vector<NodeId> freed = state_.release(job_id(c.job_index));
        if (auditor_.enabled()) {
          auditor_.on_event(c.time, "end job", log_[c.job_index].id);
          auditor_.on_release(state_, job_id(c.job_index), freed);
        }
        std::erase(running_, c.job_index);
        makespan = std::max(makespan, c.time);
        emit(TraceEvent::Kind::kEnd, c.time, c.job_index);
      }
      while (next_submit < log_.size() &&
             log_[next_submit].submit_time <= t) {
        if (auditor_.enabled())
          auditor_.on_event(log_[next_submit].submit_time, "submit job",
                            log_[next_submit].id);
        emit(TraceEvent::Kind::kSubmit, log_[next_submit].submit_time,
             next_submit);
        pending_.push_back(next_submit);
        ++next_submit;
      }
      try_schedule(t);
      auditor_.check_state(state_);  // no-op below AuditLevel::kFull
    }

    SimResult result;
    result.allocator_name = allocator_->name();
    result.jobs = std::move(results_);
    result.makespan = makespan;
    const CommCache::Stats& cache = comm_cache_->stats();
    result.cache_stats = {cache.schedule_hits, cache.schedule_misses,
                          cache.profile_hits, cache.profile_misses};
    return result;
  }

 private:
  static JobId job_id(std::size_t log_index) {
    return static_cast<JobId>(log_index) + 1;
  }

  void emit(TraceEvent::Kind kind, double time, std::size_t idx) const {
    if (!options_.trace) return;
    TraceEvent event;
    event.kind = kind;
    event.time = time;
    event.job = log_[idx].id;
    event.num_nodes = log_[idx].num_nodes;
    options_.trace(event);
  }

  void validate_log() const {
    double prev_submit = 0.0;
    for (const auto& job : log_) {
      COMMSCHED_ASSERT_MSG(job.num_nodes >= 1 &&
                               job.num_nodes <= tree_.node_count(),
                           "job does not fit the machine");
      COMMSCHED_ASSERT_GT_MSG(job.runtime, 0.0,
                              "job runtime must be positive");
      COMMSCHED_ASSERT_GE_MSG(job.walltime, job.runtime,
                              "walltime below runtime");
      COMMSCHED_ASSERT_LE_MSG(job.comm_fraction + job.io_fraction,
                              1.0 + 1e-12,
                              "comm and I/O fractions exceed the runtime");
      COMMSCHED_ASSERT_GE_MSG(job.submit_time, prev_submit,
                              "log must be sorted by submit time");
      prev_submit = job.submit_time;
    }
  }

  // Ask the policy for nodes. The count pre-check is only an optimization:
  // policies such as `exclusive` may refuse a job the count test admits.
  std::optional<std::vector<NodeId>> try_select(std::size_t idx) {
    const JobRecord& job = log_[idx];
    if (state_.total_free() < job.num_nodes) return std::nullopt;
    return allocator_->select(state_, request_for(idx));
  }

  AllocationRequest request_for(std::size_t idx) const {
    const JobRecord& job = log_[idx];
    AllocationRequest request;
    request.job = job_id(idx);
    request.num_nodes = job.num_nodes;
    request.comm_intensive = job.comm_intensive;
    request.pattern = job.pattern;
    request.msize = job.msize;
    request.io_intensive = job.io_intensive;
    request.comm_fraction = job.comm_fraction;
    request.io_fraction = job.io_fraction;
    return request;
  }

  // Reorder the pending queue per the configured policy. FIFO keeps submit
  // order; the alternatives sort stably so equal keys stay FIFO.
  void apply_queue_policy() {
    if (options_.queue_policy == QueuePolicy::kFifo) return;
    std::stable_sort(
        pending_.begin(), pending_.end(), [&](std::size_t a, std::size_t b) {
          if (options_.queue_policy == QueuePolicy::kShortestJobFirst)
            return log_[a].walltime < log_[b].walltime;
          return log_[a].num_nodes < log_[b].num_nodes;
        });
  }

  void try_schedule(double t) {
    apply_queue_policy();
    // FIFO phase: start queue-head jobs while the policy grants them nodes.
    while (!pending_.empty()) {
      const std::size_t head = pending_.front();
      auto nodes = try_select(head);
      if (!nodes) break;
      start_job(head, t, std::move(*nodes));
      pending_.pop_front();
    }
    if (pending_.empty() || !options_.easy_backfill) return;
    backfill(t);
  }

  // EASY backfill: reserve the head job's start, then let later jobs jump
  // ahead only when they cannot delay that reservation.
  void backfill(double t) {
    int examined = 0;
    // The head reservation depends only on the running set and the free-node
    // count, both of which change within this pass only when a backfilled
    // job actually starts — so compute it once and refresh after starts
    // instead of re-sorting the running jobs per examined candidate.
    auto reservation = head_reservation();
    for (std::size_t qi = 1; qi < pending_.size();) {
      if (++examined > options_.backfill_depth) break;
      const auto [shadow_time, extra_nodes] = reservation;
      const std::size_t idx = pending_[qi];
      const JobRecord& job = log_[idx];
      const bool harmless = (t + job.walltime <= shadow_time) ||
                            (job.num_nodes <= extra_nodes);
      std::optional<std::vector<NodeId>> nodes;
      if (harmless) nodes = try_select(idx);
      if (nodes) {
        auditor_.check_backfill(t, job_id(idx), job.walltime, job.num_nodes,
                                shadow_time, extra_nodes);
        start_job(idx, t, std::move(*nodes));
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(qi));
        reservation = head_reservation();
      } else {
        ++qi;
      }
    }
  }

  // When (by walltime estimates) the queue head can start, and how many
  // nodes beyond its need will be free at that time.
  std::pair<double, int> head_reservation() {
    const int needed = log_[pending_.front()].num_nodes;
    std::vector<std::pair<double, int>> ends;  // (est_end, nodes)
    ends.reserve(running_.size());
    for (const std::size_t idx : running_)
      ends.emplace_back(running_info_[idx].est_end,
                        running_info_[idx].num_nodes);
    std::sort(ends.begin(), ends.end());
    int available = state_.total_free();
    for (const auto& [end, nodes] : ends) {
      available += nodes;
      if (available >= needed) return {end, available - needed};
    }
    COMMSCHED_ASSERT_MSG(false,
                         "head job cannot start even with an empty machine");
    return {0.0, 0};
  }

  void start_job(std::size_t idx, double t, std::vector<NodeId> selected) {
    const JobRecord& job = log_[idx];
    const AllocationRequest request = request_for(idx);
    const std::optional<std::vector<NodeId>> nodes(std::move(selected));
    const bool is_default = options_.allocator == AllocatorKind::kDefault;
    const bool price_comm = job.comm_intensive && job.num_nodes >= 2;
    const bool price_io = job.io_intensive && job.io_fraction > 0.0;

    // What stock SLURM would have done with this very state — the Eq. 7
    // baseline for both the communication and the I/O terms.
    std::optional<std::vector<NodeId>> default_nodes;
    if (!is_default && (price_comm || price_io)) {
      default_nodes = default_allocator_.select(state_, request);
      COMMSCHED_ASSERT(default_nodes.has_value());
    }

    double cost = 0.0;
    double cost_default = 0.0;
    double priced = 0.0, priced_default = 0.0;  // comm pricing metric
    const LeafCommProfile* profile = nullptr;
    if (price_comm) {
      // One canonical-shape profile per allocation serves both pricing
      // models (and the auditor's consistency check below).
      profile = &comm_cache_->profile(job.pattern, /*ranks_per_node=*/1,
                                      make_shape_key(tree_, *nodes));
      // Recorded metric: the paper's unweighted Eq. 6 cost (Figure 8).
      cost = metric_model_.candidate_cost(state_, *nodes, job.comm_intensive,
                                          *profile, workspace_);
      if (is_default) {
        cost_default = cost;
      } else {
        const LeafCommProfile& default_profile = comm_cache_->profile(
            job.pattern, /*ranks_per_node=*/1,
            make_shape_key(tree_, *default_nodes));
        cost_default = metric_model_.candidate_cost(
            state_, *default_nodes, job.comm_intensive, default_profile,
            workspace_);
        // Runtime ratio uses the (possibly msize-weighted) pricing metric.
        priced = pricing_model_.candidate_cost(state_, *nodes,
                                               job.comm_intensive, *profile,
                                               workspace_);
        priced_default = pricing_model_.candidate_cost(
            state_, *default_nodes, job.comm_intensive, default_profile,
            workspace_);
      }
    }
    double io_cost = 0.0, io_cost_default = 0.0;
    if (price_io) {
      io_cost = io_model_.candidate_cost(state_, *nodes, job.io_intensive);
      io_cost_default =
          is_default ? io_cost
                     : io_model_.candidate_cost(state_, *default_nodes,
                                                job.io_intensive);
    }

    double actual_runtime = job.runtime;
    if (!is_default && (price_comm || price_io))
      actual_runtime = modified_runtime_with_io(
          job.runtime, price_comm ? job.comm_fraction : 0.0, priced,
          priced_default, price_io ? job.io_fraction : 0.0, io_cost,
          io_cost_default, options_.runtime_options);

    bool hit_walltime = false;
    if (options_.enforce_walltime && actual_runtime > job.walltime) {
      actual_runtime = job.walltime;
      hit_walltime = true;
    }

    state_.allocate(request.job, job.comm_intensive, *nodes,
                    job.io_intensive);
    if (auditor_.enabled()) {
      auditor_.on_event(t, "start job", job.id);
      auditor_.on_allocate(state_, request.job, *nodes);
      if (price_comm) {
        auditor_.check_cost(cost, request.job, "Eq. 6 cost");
        auditor_.check_cost(cost_default, request.job, "Eq. 6 default cost");
        auditor_.check_cost_symmetry(metric_model_, state_, *nodes,
                                     request.job);
        auditor_.check_profile(job.pattern, *profile, *nodes, request.job);
      }
      if (price_io) {
        auditor_.check_cost(io_cost, request.job, "I/O cost");
        auditor_.check_cost(io_cost_default, request.job, "I/O default cost");
      }
    }
    running_.push_back(idx);
    running_info_[idx] = {t + job.walltime, job.num_nodes};
    completions_.push({t + actual_runtime, idx});
    emit(TraceEvent::Kind::kStart, t, idx);

    JobResult& r = results_[idx];
    r.id = job.id;
    r.num_nodes = job.num_nodes;
    r.comm_intensive = job.comm_intensive;
    r.pattern = job.pattern;
    r.submit_time = job.submit_time;
    r.start_time = t;
    r.end_time = t + actual_runtime;
    r.original_runtime = job.runtime;
    r.actual_runtime = actual_runtime;
    r.cost = cost;
    r.cost_default = cost_default;
    r.io_cost = io_cost;
    r.io_cost_default = io_cost_default;
    r.hit_walltime = hit_walltime;
  }

  const Tree& tree_;
  const JobLog& log_;
  const SchedOptions& options_;
  ClusterState state_;
  // The run-wide schedule/profile cache; declared before allocator_ so it
  // exists when make_allocator hands it to the pricing policies. Exactly one
  // per simulation run.
  std::shared_ptr<CommCache> comm_cache_;
  std::unique_ptr<Allocator> allocator_;
  DefaultAllocator default_allocator_;
  CostModel pricing_model_;  // Eq. 7 ratio + adaptive comparisons
  CostModel metric_model_;   // pure Eq. 6, recorded in JobResult
  IoModel io_model_;         // §7 I/O extension
  CostWorkspace workspace_;  // cost-kernel scratch for the pricing models
  StateAuditor auditor_;     // runtime invariant checks (src/audit)

  std::deque<std::size_t> pending_;  // log indices, FIFO
  std::vector<std::size_t> running_;
  std::vector<RunningInfo> running_info_;
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completions_;
  std::vector<JobResult> results_;
};

}  // namespace

SimResult run_continuous(const Tree& tree, const JobLog& log,
                         const SchedOptions& options) {
  return Simulation(tree, log, options).run();
}

}  // namespace commsched
