#include "sched/simulator.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>

#include "audit/auditor.hpp"
#include "cluster/state.hpp"
#include "collectives/comm_cache.hpp"
#include "core/default_allocator.hpp"
#include "core/io_model.hpp"
#include "util/assert.hpp"
#include "util/index_set.hpp"

namespace commsched {

namespace {

struct Completion {
  double time = 0.0;
  std::size_t job_index = 0;  // index into the log
  bool operator<(const Completion& other) const {
    if (time != other.time) return time < other.time;
    return job_index < other.job_index;  // deterministic tie-break
  }
};

// Indexed min-heap over completion events, replacing std::priority_queue so
// dynamic re-evaluation can reschedule a running job's end in O(log n)
// (sift the one moved entry) instead of rebuilding the queue. The key order
// (time, job_index) is total, so the pop sequence is fully determined by the
// heap's *contents* — both engines produce bit-identical event streams no
// matter in which order they fixed up the entries.
class CompletionHeap {
 public:
  void reset(std::size_t n_jobs, std::size_t capacity) {
    pos_.assign(n_jobs, kNone);
    heap_.reserve(capacity);
  }
  bool empty() const { return heap_.empty(); }
  const Completion& top() const { return heap_.front(); }

  // hot-path: no-alloc
  void push(double time, std::size_t job_index) {
    COMMSCHED_ASSERT_MSG(pos_[job_index] == kNone,
                         "job already has a completion scheduled");
    // contract-trusted: no-alloc: capacity reserved up front to the trace's
    // peak concurrency (reset() in the simulation constructor)
    heap_.push_back({time, job_index});
    pos_[job_index] = heap_.size() - 1;
    sift_up(heap_.size() - 1);
  }

  // hot-path: no-alloc
  void pop() {
    pos_[heap_.front().job_index] = kNone;
    if (heap_.size() > 1) {
      heap_.front() = heap_.back();
      pos_[heap_.front().job_index] = 0;
    }
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  /// Reschedule the pending completion of `job_index` to `time` — the
  /// re-evaluation fix-up. The entry sifts from its tracked position.
  // hot-path: no-alloc
  void update(std::size_t job_index, double time) {
    const std::size_t at = pos_[job_index];
    COMMSCHED_ASSERT_MSG(at != kNone, "rescheduling a job with no completion");
    const double old_time = heap_[at].time;
    heap_[at].time = time;
    if (time < old_time)
      sift_up(at);
    else if (old_time < time)
      sift_down(at);
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  // hot-path: no-alloc
  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!(heap_[i] < heap_[parent])) break;
      swap_entries(i, parent);
      i = parent;
    }
  }

  // hot-path: no-alloc
  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < n && heap_[l] < heap_[smallest]) smallest = l;
      if (r < n && heap_[r] < heap_[smallest]) smallest = r;
      if (smallest == i) return;
      swap_entries(i, smallest);
      i = smallest;
    }
  }

  void swap_entries(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a].job_index] = a;
    pos_[heap_[b].job_index] = b;
  }

  std::vector<Completion> heap_;
  std::vector<std::size_t> pos_;  // log index -> heap slot (kNone if absent)
};

struct RunningInfo {
  double est_end = 0.0;  // start + walltime: what the scheduler believes
  int num_nodes = 0;
  // Dynamic-interference state (only meaningful when degradation is on):
  // the factor most recently applied to this job and the completion time it
  // implies. est_end doubles as the walltime kill time, so the live heap key
  // is min(end_dyn, est_end) under enforce_walltime.
  double factor = 1.0;
  double end_dyn = 0.0;
};

// Fast-engine running-set entry, kept sorted by (est_end, num_nodes, idx).
// That order is consistent with the reference engine's std::sort over
// (est_end, num_nodes) pairs: entries equal in both keys contribute
// identically to the head-reservation accumulation scan, so the extra idx
// tie-break changes nothing observable while making the order total (needed
// for the binary-search erase on completion).
struct RunEntry {
  double est_end = 0.0;
  int num_nodes = 0;
  std::size_t idx = 0;
  bool operator<(const RunEntry& other) const {
    if (est_end != other.est_end) return est_end < other.est_end;
    if (num_nodes != other.num_nodes) return num_nodes < other.num_nodes;
    return idx < other.idx;
  }
};

// The SA allocator's in-anneal delta-vs-full verification rides on the audit
// level: cheap samples every 64th accepted move, full re-derives every one.
// An explicit nonzero stride in the options wins over the bump.
SaOptions sa_options_for(const SchedOptions& options) {
  SaOptions sa = options.sa;
  if (sa.verify_stride == 0) {
    switch (options.audit.value_or(audit_level_from_env())) {
      case AuditLevel::kOff: break;
      case AuditLevel::kCheap: sa.verify_stride = 64; break;
      case AuditLevel::kFull: sa.verify_stride = 1; break;
    }
  }
  return sa;
}

class Simulation {
 public:
  Simulation(const Tree& tree, const JobLog& log, const SchedOptions& options)
      : tree_(tree),
        log_(log),
        options_(options),
        state_(tree),
        comm_cache_(std::make_shared<CommCache>(
            log.empty() ? double{1 << 20} : log.front().msize)),
        allocator_(make_allocator(options.allocator, options.cost_options,
                                  comm_cache_, sa_options_for(options))),
        sa_allocator_(dynamic_cast<const SaAllocator*>(allocator_.get())),
        pricing_model_(tree, options.cost_options),
        metric_model_(tree,
                      CostOptions{.hop_bytes = false,
                                  .include_candidate =
                                      options.cost_options.include_candidate}),
        io_model_(tree),
        runtime_opts_(runtime_options_from_env(options.runtime_options)),
        degrade_(tree, options.degradation, runtime_opts_),
        dynamic_(options.degradation.enabled),
        auditor_(tree, options.audit.value_or(audit_level_from_env())) {
    results_.resize(log.size());
    running_info_.resize(log.size());
    // Per-job communication load, the quantity the ClusterState accumulators
    // track: comm-intensive multi-node jobs only, mirroring the price_comm
    // predicate in start_job. Precomputed because the colocation queue order
    // keys on it.
    load_of_.resize(log.size());
    for (std::size_t i = 0; i < log.size(); ++i)
      load_of_[i] = DegradationModel::quantize_load(
          log[i].comm_intensive && log[i].num_nodes >= 2,
          log[i].comm_fraction);
    // At most one outstanding completion per running job, and each job holds
    // at least one node, so the heap never outgrows the machine (or the log).
    completions_.reset(log.size(),
                       std::min(log.size(),
                                static_cast<std::size_t>(tree.node_count())));
    if (options_.engine == SimEngine::kFast) {
      running_sorted_.reserve(
          std::min(log.size(), static_cast<std::size_t>(tree.node_count())));
      build_queue_ranks();
      if (dynamic_) {
        leaf_jobs_.resize(static_cast<std::size_t>(tree.leaf_count()));
        leaf_mark_.assign(static_cast<std::size_t>(tree.leaf_count()), 0);
        job_mark_.assign(log.size(), 0);
      }
    }
  }

  SimResult run() {
    validate_log();
    std::size_t next_submit = 0;
    double makespan = 0.0;

    while (next_submit < log_.size() || !completions_.empty() ||
           !queue_empty()) {
      // Next event: completions win ties so freed nodes are visible to jobs
      // submitted at the same instant.
      double t;
      const bool have_completion = !completions_.empty();
      const bool have_submit = next_submit < log_.size();
      COMMSCHED_ASSERT_MSG(have_completion || have_submit,
                           "queue is non-empty but no future event exists — "
                           "a pending job can never start");
      if (have_completion &&
          (!have_submit || completions_.top().time <= log_[next_submit].submit_time))
        t = completions_.top().time;
      else
        t = log_[next_submit].submit_time;

      while (!completions_.empty() && completions_.top().time <= t) {
        const Completion c = completions_.top();
        if (auditor_.enabled()) {
          auditor_.on_event(c.time, "end job", log_[c.job_index].id);
          auditor_.check_end_event(state_, job_id(c.job_index), c.time);
        }
        completions_.pop();
        if (dynamic_) finalize_dynamic(c.job_index, c.time);
        state_.release_into(job_id(c.job_index), freed_scratch_);
        if (auditor_.enabled())
          auditor_.on_release(state_, job_id(c.job_index), freed_scratch_);
        running_remove(c.job_index);
        if (dynamic_ && options_.engine == SimEngine::kFast)
          leaf_jobs_remove(c.job_index, freed_scratch_);
        // The freed load deflates every co-located running job: rescale
        // their remaining time at the release instant and fix up the heap.
        if (dynamic_) reevaluate(c.time, c.job_index, freed_scratch_);
        makespan = std::max(makespan, c.time);
        emit(TraceEvent::Kind::kEnd, c.time, c.job_index);
      }
      while (next_submit < log_.size() &&
             log_[next_submit].submit_time <= t) {
        if (auditor_.enabled())
          auditor_.on_event(log_[next_submit].submit_time, "submit job",
                            log_[next_submit].id);
        emit(TraceEvent::Kind::kSubmit, log_[next_submit].submit_time,
             next_submit);
        queue_push(next_submit);
        ++next_submit;
      }
      if (options_.engine == SimEngine::kFast)
        try_schedule_fast(t);
      else
        try_schedule_reference(t);
      auditor_.check_state(state_);  // no-op below AuditLevel::kFull
    }

    SimResult result;
    result.allocator_name = allocator_->name();
    result.jobs = std::move(results_);
    result.makespan = makespan;
    const CommCache::Stats& cache = comm_cache_->stats();
    result.cache_stats = {cache.schedule_hits, cache.schedule_misses,
                          cache.profile_hits, cache.profile_misses};
    return result;
  }

 private:
  static JobId job_id(std::size_t log_index) {
    return static_cast<JobId>(log_index) + 1;
  }

  void emit(TraceEvent::Kind kind, double time, std::size_t idx) const {
    if (!options_.trace) return;
    TraceEvent event;
    event.kind = kind;
    event.time = time;
    event.job = log_[idx].id;
    event.num_nodes = log_[idx].num_nodes;
    options_.trace(event);
  }

  void validate_log() const {
    double prev_submit = 0.0;
    for (const auto& job : log_) {
      COMMSCHED_ASSERT_MSG(job.num_nodes >= 1 &&
                               job.num_nodes <= tree_.node_count(),
                           "job does not fit the machine");
      COMMSCHED_ASSERT_GT_MSG(job.runtime, 0.0,
                              "job runtime must be positive");
      COMMSCHED_ASSERT_GE_MSG(job.walltime, job.runtime,
                              "walltime below runtime");
      COMMSCHED_ASSERT_LE_MSG(job.comm_fraction + job.io_fraction,
                              1.0 + 1e-12,
                              "comm and I/O fractions exceed the runtime");
      COMMSCHED_ASSERT_GE_MSG(job.submit_time, prev_submit,
                              "log must be sorted by submit time");
      prev_submit = job.submit_time;
    }
  }

  // ---- Queue structure, engine-dispatched --------------------------------
  //
  // The reference engine keeps the original deque re-sorted with
  // std::stable_sort on every scheduling pass. The fast engine exploits the
  // fact that the ordering keys (walltime / node count) never change: the
  // repeated stable sort converges to the static total order by
  // (key, log index), so one upfront stable sort fixes every job's queue
  // rank for the whole run, and the pending queue shrinks to a hierarchical
  // bitmap over those ranks — O(log64 n) insert/erase/successor and zero
  // steady-state allocation, with iteration order bit-identical to the
  // reference deque after its re-sort (new submissions always carry larger
  // log indices than anything already pending, so stability ≡ index order).

  bool queue_empty() const {
    return options_.engine == SimEngine::kFast ? pending_set_.empty()
                                               : pending_.empty();
  }

  void queue_push(std::size_t idx) {
    if (options_.engine == SimEngine::kFast)
      pending_set_.insert(rank_of_[idx]);
    else
      pending_.push_back(idx);
  }

  void build_queue_ranks() {
    const std::size_t n = log_.size();
    idx_of_rank_.resize(n);
    for (std::size_t i = 0; i < n; ++i) idx_of_rank_[i] = i;
    if (options_.queue_policy != QueuePolicy::kFifo) {
      std::stable_sort(
          idx_of_rank_.begin(), idx_of_rank_.end(),
          [&](std::size_t a, std::size_t b) { return queue_before(a, b); });
    }
    rank_of_.resize(n);
    for (std::size_t r = 0; r < n; ++r) rank_of_[idx_of_rank_[r]] = r;
    pending_set_.reset(n);
  }

  // ---- Running set, engine-dispatched ------------------------------------

  // hot-path: no-alloc
  void running_add(std::size_t idx, double est_end, int num_nodes) {
    running_info_[idx] = {est_end, num_nodes};
    if (options_.engine == SimEngine::kFast) {
      const RunEntry entry{est_end, num_nodes, idx};
      const auto pos = std::lower_bound(running_sorted_.begin(),
                                        running_sorted_.end(), entry);
      // contract-trusted: no-alloc: capacity reserved up front to the
      // trace's peak concurrency (see the constructor's reserve)
      running_sorted_.insert(pos, entry);
    } else {
      // contract-trusted: no-alloc: reference engine; bounded by peak
      // concurrent jobs, capacity reused across the run
      running_.push_back(idx);
    }
  }

  void running_remove(std::size_t idx) {
    if (options_.engine == SimEngine::kFast) {
      const RunEntry entry{running_info_[idx].est_end,
                           running_info_[idx].num_nodes, idx};
      const auto pos = std::lower_bound(running_sorted_.begin(),
                                        running_sorted_.end(), entry);
      COMMSCHED_ASSERT_MSG(pos != running_sorted_.end() && pos->idx == idx,
                           "running set out of sync with completion");
      running_sorted_.erase(pos);
    } else {
      std::erase(running_, idx);
    }
  }

  // Ask the policy for nodes into the reusable scratch buffer. The count
  // pre-check is only an optimization: policies such as `exclusive` may
  // refuse a job the count test admits.
  // hot-path: no-alloc
  bool try_select_into(std::size_t idx, std::vector<NodeId>& out) {
    const JobRecord& job = log_[idx];
    if (state_.total_free() < job.num_nodes) {
      out.clear();
      return false;
    }
    if (!allocator_->select_into(state_, request_for(idx), out)) return false;
    // kColocation admission gate: defer a communication-intensive job while
    // the antagonist load already on its prospective leaves is too high
    // (own_load = 0: the job is not committed, nothing to subtract). The
    // deferral cannot live-lock — a positive external load implies a running
    // job, hence a pending completion event that will lower it.
    if (options_.queue_policy == QueuePolicy::kColocation &&
        load_of_[idx] > 0 &&
        degrade_.external_load(state_, out, 0, degrade_ws_) >
            options_.coloc_max_external) {
      out.clear();
      return false;
    }
    return true;
  }

  // hot-path: no-alloc
  AllocationRequest request_for(std::size_t idx) const {
    const JobRecord& job = log_[idx];
    AllocationRequest request;
    request.job = job_id(idx);
    request.num_nodes = job.num_nodes;
    request.comm_intensive = job.comm_intensive;
    request.pattern = job.pattern;
    request.msize = job.msize;
    request.io_intensive = job.io_intensive;
    request.comm_fraction = job.comm_fraction;
    request.io_fraction = job.io_fraction;
    return request;
  }

  // ---- Reference engine: the original O(n log n)-per-event loop ----------

  // Reorder the pending queue per the configured policy. FIFO keeps submit
  // order; the alternatives sort stably so equal keys stay FIFO.
  void apply_queue_policy() {
    if (options_.queue_policy == QueuePolicy::kFifo) return;
    std::stable_sort(
        pending_.begin(), pending_.end(),
        [&](std::size_t a, std::size_t b) { return queue_before(a, b); });
  }

  // Strict-weak queue order for the non-FIFO policies; ties stay FIFO via
  // the callers' stable sorts. kColocation ranks by quantized communication
  // load ascending — a *static* key, so the fast engine's precomputed ranks
  // stay valid; the dynamic half of the policy is the admission gate in
  // try_select_into.
  bool queue_before(std::size_t a, std::size_t b) const {
    switch (options_.queue_policy) {
      case QueuePolicy::kShortestJobFirst:
        return log_[a].walltime < log_[b].walltime;
      case QueuePolicy::kColocation:
        return load_of_[a] < load_of_[b];
      default:
        return log_[a].num_nodes < log_[b].num_nodes;
    }
  }

  void try_schedule_reference(double t) {
    apply_queue_policy();
    // FIFO phase: start queue-head jobs while the policy grants them nodes.
    while (!pending_.empty()) {
      const std::size_t head = pending_.front();
      if (!try_select_into(head, select_scratch_)) break;
      start_job(head, t, select_scratch_);
      pending_.pop_front();
    }
    if (pending_.empty() || !options_.easy_backfill) return;
    backfill_reference(t);
  }

  // EASY backfill: reserve the head job's start, then let later jobs jump
  // ahead only when they cannot delay that reservation.
  void backfill_reference(double t) {
    int examined = 0;
    // The head reservation depends only on the running set and the free-node
    // count, both of which change within this pass only when a backfilled
    // job actually starts — so compute it once and refresh after starts
    // instead of re-sorting the running jobs per examined candidate.
    auto reservation = head_reservation_reference();
    for (std::size_t qi = 1; qi < pending_.size();) {
      if (++examined > options_.backfill_depth) break;
      const auto [shadow_time, extra_nodes] = reservation;
      const std::size_t idx = pending_[qi];
      const JobRecord& job = log_[idx];
      const bool harmless = (t + job.walltime <= shadow_time) ||
                            (job.num_nodes <= extra_nodes);
      const bool started = harmless && try_select_into(idx, select_scratch_);
      if (started) {
        auditor_.check_backfill(t, job_id(idx), job.walltime, job.num_nodes,
                                shadow_time, extra_nodes);
        start_job(idx, t, select_scratch_);
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(qi));
        reservation = head_reservation_reference();
      } else {
        ++qi;
      }
    }
  }

  // When (by walltime estimates) the queue head can start, and how many
  // nodes beyond its need will be free at that time.
  std::pair<double, int> head_reservation_reference() {
    const int needed = log_[pending_.front()].num_nodes;
    std::vector<std::pair<double, int>> ends;  // (est_end, nodes)
    ends.reserve(running_.size());
    for (const std::size_t idx : running_)
      ends.emplace_back(running_info_[idx].est_end,
                        running_info_[idx].num_nodes);
    std::sort(ends.begin(), ends.end());
    int available = state_.total_free();
    for (const auto& [end, nodes] : ends) {
      available += nodes;
      if (available >= needed) return {end, available - needed};
    }
    COMMSCHED_ASSERT_MSG(false,
                         "head job cannot start even with an empty machine");
    return {0.0, 0};
  }

  // ---- Fast engine: indexed queue + incremental reservation --------------

  // hot-path: no-alloc
  void try_schedule_fast(double t) {
    // FIFO phase over the rank bitmap: identical visit order to the
    // reference deque after its re-sort (see build_queue_ranks).
    while (!pending_set_.empty()) {
      const std::size_t head_rank = pending_set_.first();
      const std::size_t head = idx_of_rank_[head_rank];
      if (!try_select_into(head, select_scratch_)) break;
      start_job(head, t, select_scratch_);
      pending_set_.erase(head_rank);
    }
    if (pending_set_.empty() || !options_.easy_backfill) return;
    backfill_fast(t);
  }

  // hot-path: no-alloc
  void backfill_fast(double t) {
    int examined = 0;
    auto reservation = head_reservation_fast();
    const std::size_t head_rank = pending_set_.first();
    std::size_t r = pending_set_.next(head_rank);
    while (r != IndexSet::npos) {
      if (++examined > options_.backfill_depth) break;
      const auto [shadow_time, extra_nodes] = reservation;
      const std::size_t idx = idx_of_rank_[r];
      const JobRecord& job = log_[idx];
      const bool harmless = (t + job.walltime <= shadow_time) ||
                            (job.num_nodes <= extra_nodes);
      const bool started = harmless && try_select_into(idx, select_scratch_);
      if (started) {
        auditor_.check_backfill(t, job_id(idx), job.walltime, job.num_nodes,
                                shadow_time, extra_nodes);
        start_job(idx, t, select_scratch_);
        // Successor before erase: the erased rank's next is the candidate
        // the reference engine's position-preserving erase lands on.
        const std::size_t nr = pending_set_.next(r);
        pending_set_.erase(r);
        r = nr;
        reservation = head_reservation_fast();
      } else {
        r = pending_set_.next(r);
      }
    }
  }

  // Incremental variant of head_reservation_reference: running_sorted_ is
  // maintained in (est_end, num_nodes, idx) order across starts and ends,
  // so the reservation is a prefix scan instead of a copy + sort.
  // hot-path: no-alloc
  std::pair<double, int> head_reservation_fast() {
    const int needed = log_[idx_of_rank_[pending_set_.first()]].num_nodes;
    int available = state_.total_free();
    for (const RunEntry& entry : running_sorted_) {
      available += entry.num_nodes;
      if (available >= needed) return {entry.est_end, available - needed};
    }
    COMMSCHED_ASSERT_MSG(false,
                         "head job cannot start even with an empty machine");
    return {0.0, 0};
  }

  // ---- Shared job-start path (pricing + commit), both engines ------------

  // hot-path: no-alloc
  void start_job(std::size_t idx, double t, const std::vector<NodeId>& nodes) {
    const JobRecord& job = log_[idx];
    const AllocationRequest request = request_for(idx);
    const bool is_default = options_.allocator == AllocatorKind::kDefault;
    const bool price_comm = job.comm_intensive && job.num_nodes >= 2;
    const bool price_io = job.io_intensive && job.io_fraction > 0.0;

    // What stock SLURM would have done with this very state — the Eq. 7
    // baseline for both the communication and the I/O terms.
    const std::vector<NodeId>& default_nodes = default_scratch_;
    if (!is_default && (price_comm || price_io)) {
      const bool have_default =
          default_allocator_.select_into(state_, request, default_scratch_);
      COMMSCHED_ASSERT(have_default);
    }

    double cost = 0.0;
    double cost_default = 0.0;
    double priced = 0.0, priced_default = 0.0;  // comm pricing metric
    const LeafCommProfile* profile = nullptr;
    if (price_comm) {
      // One canonical-shape profile per allocation serves both pricing
      // models (and the auditor's consistency check below).
      profile = &comm_cache_->profile(job.pattern, /*ranks_per_node=*/1,
                                      make_shape_key(tree_, nodes));
      // Recorded metric: the paper's unweighted Eq. 6 cost (Figure 8).
      cost = metric_model_.candidate_cost(state_, nodes, job.comm_intensive,
                                          *profile, workspace_);
      if (is_default) {
        cost_default = cost;
      } else {
        const LeafCommProfile& default_profile = comm_cache_->profile(
            job.pattern, /*ranks_per_node=*/1,
            make_shape_key(tree_, default_nodes));
        cost_default = metric_model_.candidate_cost(
            state_, default_nodes, job.comm_intensive, default_profile,
            workspace_);
        // Runtime ratio uses the (possibly msize-weighted) pricing metric.
        priced = pricing_model_.candidate_cost(state_, nodes,
                                               job.comm_intensive, *profile,
                                               workspace_);
        priced_default = pricing_model_.candidate_cost(
            state_, default_nodes, job.comm_intensive, default_profile,
            workspace_);
      }
    }
    // Cross-check the SA allocator's delta-evaluated claim against an
    // independent full recompute while the pre-allocation state (what the
    // anneal priced) is still intact.
    if (sa_allocator_ != nullptr && price_comm && auditor_.enabled() &&
        sa_allocator_->last_has_cost())
      auditor_.check_sa_cost(pricing_model_, state_, nodes,
                             job.comm_intensive, *profile,
                             sa_allocator_->last_cost(), request.job);
    double io_cost = 0.0, io_cost_default = 0.0;
    if (price_io) {
      io_cost = io_model_.candidate_cost(state_, nodes, job.io_intensive);
      io_cost_default =
          is_default ? io_cost
                     : io_model_.candidate_cost(state_, default_nodes,
                                                job.io_intensive);
    }

    double actual_runtime = job.runtime;
    if (!is_default && (price_comm || price_io))
      actual_runtime = modified_runtime_with_io(
          job.runtime, price_comm ? job.comm_fraction : 0.0, priced,
          priced_default, price_io ? job.io_fraction : 0.0, io_cost,
          io_cost_default, runtime_opts_);

    // Static mode clamps the Eq. 7 runtime at allocation time; dynamic mode
    // leaves the base runtime unclamped and lets the walltime cap act on the
    // live heap key instead (effective_end), since deflation may yet bring
    // the job back under its limit.
    bool hit_walltime = false;
    if (!dynamic_ && options_.enforce_walltime &&
        actual_runtime > job.walltime) {
      actual_runtime = job.walltime;
      hit_walltime = true;
    }

    const LoadUnits load = load_of_[idx];
    state_.allocate(request.job, job.comm_intensive, nodes,
                    job.io_intensive, load);
    if (auditor_.enabled()) {
      auditor_.on_event(t, "start job", job.id);
      auditor_.on_allocate(state_, request.job, nodes, load);
      if (price_comm) {
        auditor_.check_cost(cost, request.job, "Eq. 6 cost");
        auditor_.check_cost(cost_default, request.job, "Eq. 6 default cost");
        auditor_.check_cost_symmetry(metric_model_, state_, nodes,
                                     request.job);
        auditor_.check_profile(job.pattern, *profile, nodes, request.job);
      }
      if (price_io) {
        auditor_.check_cost(io_cost, request.job, "I/O cost");
        auditor_.check_cost(io_cost_default, request.job, "I/O default cost");
      }
    }
    running_add(idx, t + job.walltime, job.num_nodes);

    // Initial completion. Dynamic mode inflates the static Eq. 7 runtime by
    // the degradation factor under the load already on the job's leaves
    // (own contribution excluded); zero co-located load gives factor 1 and
    // recovers the static end time bit for bit.
    RunningInfo& info = running_info_[idx];
    info.factor = 1.0;
    info.end_dyn = t + actual_runtime;
    if (dynamic_ && load > 0) {
      info.factor = degrade_.factor(state_, nodes, load, degrade_ws_);
      info.end_dyn = t + actual_runtime * info.factor;
    }
    const double end_key = dynamic_ ? effective_end(idx) : info.end_dyn;
    completions_.push(end_key, idx);
    auditor_.on_end_scheduled(request.job, end_key);
    if (dynamic_ && options_.engine == SimEngine::kFast)
      leaf_jobs_add(idx, nodes);
    emit(TraceEvent::Kind::kStart, t, idx);

    // Dynamic mode records values consistent with the *initial* end key
    // (finalize_dynamic overwrites them if the end later moves); with no
    // effective degradation these are the static Eq. 7 values, bit for bit.
    if (dynamic_) {
      if (options_.enforce_walltime && info.end_dyn > info.est_end) {
        hit_walltime = true;
        actual_runtime = job.walltime;
      } else if (info.factor != 1.0) {
        actual_runtime *= info.factor;
      }
    }

    JobResult& r = results_[idx];
    r.id = job.id;
    r.num_nodes = job.num_nodes;
    r.comm_intensive = job.comm_intensive;
    r.pattern = job.pattern;
    r.submit_time = job.submit_time;
    r.start_time = t;
    r.end_time = end_key;  // dynamic mode re-finalizes at the completion pop
    r.original_runtime = job.runtime;
    r.actual_runtime = actual_runtime;
    r.cost = cost;
    r.cost_default = cost_default;
    r.io_cost = io_cost;
    r.io_cost_default = io_cost_default;
    r.hit_walltime = hit_walltime;

    // The new job's load inflates every running job sharing a leaf with it.
    if (dynamic_ && load > 0) reevaluate(t, idx, nodes);
  }

  // ---- Dynamic interference (DESIGN.md "Dynamic interference") -----------

  // The completion-heap key for a running job: its dynamic end, capped at
  // the walltime kill time when enforcement is on.
  // hot-path: no-alloc
  double effective_end(std::size_t idx) const {
    const RunningInfo& info = running_info_[idx];
    return options_.enforce_walltime ? std::min(info.end_dyn, info.est_end)
                                     : info.end_dyn;
  }

  // Dynamic mode defers end_time/actual_runtime to the completion pop: the
  // end moved with every co-located allocation and release, so only the
  // popped event time is authoritative. A job whose end never moved keeps
  // the values computed at start — so a run with no effective degradation
  // (zero co-located load, or alpha = 0) reproduces the static Eq. 7
  // results bit for bit, not merely within rounding.
  void finalize_dynamic(std::size_t idx, double time) {
    JobResult& r = results_[idx];
    if (time == r.end_time) return;
    r.end_time = time;
    r.actual_runtime = time - r.start_time;
    r.hit_walltime = options_.enforce_walltime &&
                     running_info_[idx].end_dyn > running_info_[idx].est_end;
  }

  // Re-evaluate the running jobs whose co-located load just changed because
  // `changed` (occupying `changed_nodes`) started or ended. The fast engine
  // walks the per-leaf running-job index with epoch stamps (each affected
  // job exactly once); the reference engine scans every running job. They
  // agree bit for bit because rescale() is a no-op whenever the recomputed
  // factor is unchanged — which is exactly the case for every job the fast
  // engine skips — and a genuine rescale reads only the job's own state and
  // the settled load accumulators, so the visit order is immaterial.
  // hot-path: no-alloc
  void reevaluate(double now, std::size_t changed,
                  std::span<const NodeId> changed_nodes) {
    if (options_.engine == SimEngine::kFast) {
      ++epoch_;
      job_mark_[changed] = epoch_;  // the trigger itself is never rescaled
      for (const NodeId n : changed_nodes) {
        const auto li =
            static_cast<std::size_t>(tree_.leaf_index(tree_.leaf_of(n)));
        if (leaf_mark_[li] == epoch_) continue;
        leaf_mark_[li] = epoch_;
        for (const std::size_t j : leaf_jobs_[li]) {
          if (job_mark_[j] == epoch_) continue;
          job_mark_[j] = epoch_;
          rescale(now, j);
        }
      }
    } else {
      for (const std::size_t j : running_)
        if (j != changed) rescale(now, j);
    }
  }

  // Rescale one running job's remaining time to the degradation factor the
  // current load implies, and fix up its heap entry. The remaining fraction
  // of work is preserved: remaining' = remaining * d_new / d_old.
  // hot-path: no-alloc
  void rescale(double now, std::size_t j) {
    if (load_of_[j] == 0) return;  // compute-bound jobs never degrade
    RunningInfo& info = running_info_[j];
    const double d_new = degrade_.factor(state_, state_.job_nodes(job_id(j)),
                                         load_of_[j], degrade_ws_);
    if (d_new == info.factor) return;
    const double remaining = info.end_dyn - now;
    COMMSCHED_ASSERT_GE_MSG(remaining, 0.0,
                            "rescaling a job past its scheduled end");
    info.end_dyn = now + remaining * (d_new / info.factor);
    info.factor = d_new;
    const double end_key = effective_end(j);
    completions_.update(j, end_key);
    auditor_.on_end_scheduled(job_id(j), end_key);
  }

  // Per-leaf index of running jobs (fast engine): which jobs to visit when
  // a leaf's load changes. A job appears once per distinct leaf it touches.
  // hot-path: no-alloc
  void leaf_jobs_add(std::size_t idx, std::span<const NodeId> nodes) {
    ++epoch_;
    for (const NodeId n : nodes) {
      const auto li =
          static_cast<std::size_t>(tree_.leaf_index(tree_.leaf_of(n)));
      if (leaf_mark_[li] == epoch_) continue;
      leaf_mark_[li] = epoch_;
      // contract-trusted: no-alloc: bounded by the leaf's peak concurrent
      // jobs; capacity is reused across the run
      leaf_jobs_[li].push_back(idx);
    }
  }

  // hot-path: no-alloc
  void leaf_jobs_remove(std::size_t idx, std::span<const NodeId> nodes) {
    ++epoch_;
    for (const NodeId n : nodes) {
      const auto li =
          static_cast<std::size_t>(tree_.leaf_index(tree_.leaf_of(n)));
      if (leaf_mark_[li] == epoch_) continue;
      leaf_mark_[li] = epoch_;
      std::erase(leaf_jobs_[li], idx);
    }
  }

  const Tree& tree_;
  const JobLog& log_;
  const SchedOptions& options_;
  ClusterState state_;
  // The run-wide schedule/profile cache; declared before allocator_ so it
  // exists when make_allocator hands it to the pricing policies. Exactly one
  // per simulation run.
  std::shared_ptr<CommCache> comm_cache_;
  std::unique_ptr<Allocator> allocator_;
  // Non-owning view of allocator_ when it is the SA policy (null otherwise):
  // start_job reads the anneal's claimed cost for the auditor cross-check.
  const SaAllocator* sa_allocator_ = nullptr;
  DefaultAllocator default_allocator_;
  CostModel pricing_model_;  // Eq. 7 ratio + adaptive comparisons
  CostModel metric_model_;   // pure Eq. 6, recorded in JobResult
  IoModel io_model_;         // §7 I/O extension
  // Eq. 7 clamps after the COMMSCHED_RUNTIME_CLAMP env override; feeds both
  // the static runtime model and the degradation model's upper clamp.
  RuntimeModelOptions runtime_opts_;
  DegradationModel degrade_;  // colocation degradation (DESIGN.md)
  const bool dynamic_;        // degradation.enabled: runtime re-evaluation on
  CostWorkspace workspace_;   // cost-kernel scratch for the pricing models
  DegradationWorkspace degrade_ws_;  // degradation-kernel scratch
  StateAuditor auditor_;      // runtime invariant checks (src/audit)

  // Reference engine queue/running structures.
  std::deque<std::size_t> pending_;  // log indices, queue order
  std::vector<std::size_t> running_;

  // Fast engine queue/running structures (see build_queue_ranks).
  IndexSet pending_set_;                  // pending jobs, by queue rank
  std::vector<std::size_t> idx_of_rank_;  // queue rank -> log index
  std::vector<std::size_t> rank_of_;      // log index -> queue rank
  std::vector<RunEntry> running_sorted_;  // (est_end, nodes, idx) ascending

  // Fast-engine dynamic-interference index: per-leaf running jobs, plus
  // epoch stamps that dedupe leaves/jobs within one add/remove/reevaluate
  // pass (a 64-bit counter cannot wrap within a run).
  std::vector<std::vector<std::size_t>> leaf_jobs_;
  std::vector<std::uint64_t> leaf_mark_;
  std::vector<std::uint64_t> job_mark_;
  std::uint64_t epoch_ = 0;

  // Shared state and steady-state scratch (reused capacity, no per-event
  // allocation once warm).
  std::vector<RunningInfo> running_info_;
  std::vector<LoadUnits> load_of_;  // per log index, quantized comm load
  CompletionHeap completions_;
  std::vector<JobResult> results_;
  std::vector<NodeId> select_scratch_;   // policy picks
  std::vector<NodeId> default_scratch_;  // Eq. 7 baseline picks
  std::vector<NodeId> freed_scratch_;    // release_into target
};

}  // namespace

SimResult run_continuous(const Tree& tree, const JobLog& log,
                         const SchedOptions& options) {
  return Simulation(tree, log, options).run();
}

}  // namespace commsched
