#include "sched/simulator.hpp"

#include <algorithm>
#include <deque>
#include <queue>

#include "audit/auditor.hpp"
#include "cluster/state.hpp"
#include "collectives/comm_cache.hpp"
#include "core/default_allocator.hpp"
#include "core/io_model.hpp"
#include "util/assert.hpp"
#include "util/index_set.hpp"

namespace commsched {

namespace {

struct Completion {
  double time = 0.0;
  std::size_t job_index = 0;  // index into the log
  bool operator>(const Completion& other) const {
    if (time != other.time) return time > other.time;
    return job_index > other.job_index;  // deterministic tie-break
  }
};

struct RunningInfo {
  double est_end = 0.0;  // start + walltime: what the scheduler believes
  int num_nodes = 0;
};

// Fast-engine running-set entry, kept sorted by (est_end, num_nodes, idx).
// That order is consistent with the reference engine's std::sort over
// (est_end, num_nodes) pairs: entries equal in both keys contribute
// identically to the head-reservation accumulation scan, so the extra idx
// tie-break changes nothing observable while making the order total (needed
// for the binary-search erase on completion).
struct RunEntry {
  double est_end = 0.0;
  int num_nodes = 0;
  std::size_t idx = 0;
  bool operator<(const RunEntry& other) const {
    if (est_end != other.est_end) return est_end < other.est_end;
    if (num_nodes != other.num_nodes) return num_nodes < other.num_nodes;
    return idx < other.idx;
  }
};

class Simulation {
 public:
  Simulation(const Tree& tree, const JobLog& log, const SchedOptions& options)
      : tree_(tree),
        log_(log),
        options_(options),
        state_(tree),
        comm_cache_(std::make_shared<CommCache>(
            log.empty() ? double{1 << 20} : log.front().msize)),
        allocator_(make_allocator(options.allocator, options.cost_options,
                                  comm_cache_)),
        pricing_model_(tree, options.cost_options),
        metric_model_(tree,
                      CostOptions{.hop_bytes = false,
                                  .include_candidate =
                                      options.cost_options.include_candidate}),
        io_model_(tree),
        auditor_(tree, options.audit.value_or(audit_level_from_env())) {
    results_.resize(log.size());
    running_info_.resize(log.size());
    // At most one outstanding completion per running job, and each job holds
    // at least one node, so the heap never outgrows the machine (or the log).
    std::vector<Completion> heap;
    heap.reserve(std::min(log.size(),
                          static_cast<std::size_t>(tree.node_count())));
    completions_ = decltype(completions_)(std::greater<Completion>{},
                                          std::move(heap));
    if (options_.engine == SimEngine::kFast) {
      running_sorted_.reserve(
          std::min(log.size(), static_cast<std::size_t>(tree.node_count())));
      build_queue_ranks();
    }
  }

  SimResult run() {
    validate_log();
    std::size_t next_submit = 0;
    double makespan = 0.0;

    while (next_submit < log_.size() || !completions_.empty() ||
           !queue_empty()) {
      // Next event: completions win ties so freed nodes are visible to jobs
      // submitted at the same instant.
      double t;
      const bool have_completion = !completions_.empty();
      const bool have_submit = next_submit < log_.size();
      COMMSCHED_ASSERT_MSG(have_completion || have_submit,
                           "queue is non-empty but no future event exists — "
                           "a pending job can never start");
      if (have_completion &&
          (!have_submit || completions_.top().time <= log_[next_submit].submit_time))
        t = completions_.top().time;
      else
        t = log_[next_submit].submit_time;

      while (!completions_.empty() && completions_.top().time <= t) {
        const Completion c = completions_.top();
        completions_.pop();
        state_.release_into(job_id(c.job_index), freed_scratch_);
        if (auditor_.enabled()) {
          auditor_.on_event(c.time, "end job", log_[c.job_index].id);
          auditor_.on_release(state_, job_id(c.job_index), freed_scratch_);
        }
        running_remove(c.job_index);
        makespan = std::max(makespan, c.time);
        emit(TraceEvent::Kind::kEnd, c.time, c.job_index);
      }
      while (next_submit < log_.size() &&
             log_[next_submit].submit_time <= t) {
        if (auditor_.enabled())
          auditor_.on_event(log_[next_submit].submit_time, "submit job",
                            log_[next_submit].id);
        emit(TraceEvent::Kind::kSubmit, log_[next_submit].submit_time,
             next_submit);
        queue_push(next_submit);
        ++next_submit;
      }
      if (options_.engine == SimEngine::kFast)
        try_schedule_fast(t);
      else
        try_schedule_reference(t);
      auditor_.check_state(state_);  // no-op below AuditLevel::kFull
    }

    SimResult result;
    result.allocator_name = allocator_->name();
    result.jobs = std::move(results_);
    result.makespan = makespan;
    const CommCache::Stats& cache = comm_cache_->stats();
    result.cache_stats = {cache.schedule_hits, cache.schedule_misses,
                          cache.profile_hits, cache.profile_misses};
    return result;
  }

 private:
  static JobId job_id(std::size_t log_index) {
    return static_cast<JobId>(log_index) + 1;
  }

  void emit(TraceEvent::Kind kind, double time, std::size_t idx) const {
    if (!options_.trace) return;
    TraceEvent event;
    event.kind = kind;
    event.time = time;
    event.job = log_[idx].id;
    event.num_nodes = log_[idx].num_nodes;
    options_.trace(event);
  }

  void validate_log() const {
    double prev_submit = 0.0;
    for (const auto& job : log_) {
      COMMSCHED_ASSERT_MSG(job.num_nodes >= 1 &&
                               job.num_nodes <= tree_.node_count(),
                           "job does not fit the machine");
      COMMSCHED_ASSERT_GT_MSG(job.runtime, 0.0,
                              "job runtime must be positive");
      COMMSCHED_ASSERT_GE_MSG(job.walltime, job.runtime,
                              "walltime below runtime");
      COMMSCHED_ASSERT_LE_MSG(job.comm_fraction + job.io_fraction,
                              1.0 + 1e-12,
                              "comm and I/O fractions exceed the runtime");
      COMMSCHED_ASSERT_GE_MSG(job.submit_time, prev_submit,
                              "log must be sorted by submit time");
      prev_submit = job.submit_time;
    }
  }

  // ---- Queue structure, engine-dispatched --------------------------------
  //
  // The reference engine keeps the original deque re-sorted with
  // std::stable_sort on every scheduling pass. The fast engine exploits the
  // fact that the ordering keys (walltime / node count) never change: the
  // repeated stable sort converges to the static total order by
  // (key, log index), so one upfront stable sort fixes every job's queue
  // rank for the whole run, and the pending queue shrinks to a hierarchical
  // bitmap over those ranks — O(log64 n) insert/erase/successor and zero
  // steady-state allocation, with iteration order bit-identical to the
  // reference deque after its re-sort (new submissions always carry larger
  // log indices than anything already pending, so stability ≡ index order).

  bool queue_empty() const {
    return options_.engine == SimEngine::kFast ? pending_set_.empty()
                                               : pending_.empty();
  }

  void queue_push(std::size_t idx) {
    if (options_.engine == SimEngine::kFast)
      pending_set_.insert(rank_of_[idx]);
    else
      pending_.push_back(idx);
  }

  void build_queue_ranks() {
    const std::size_t n = log_.size();
    idx_of_rank_.resize(n);
    for (std::size_t i = 0; i < n; ++i) idx_of_rank_[i] = i;
    if (options_.queue_policy != QueuePolicy::kFifo) {
      std::stable_sort(
          idx_of_rank_.begin(), idx_of_rank_.end(),
          [&](std::size_t a, std::size_t b) {
            if (options_.queue_policy == QueuePolicy::kShortestJobFirst)
              return log_[a].walltime < log_[b].walltime;
            return log_[a].num_nodes < log_[b].num_nodes;
          });
    }
    rank_of_.resize(n);
    for (std::size_t r = 0; r < n; ++r) rank_of_[idx_of_rank_[r]] = r;
    pending_set_.reset(n);
  }

  // ---- Running set, engine-dispatched ------------------------------------

  // hot-path: no-alloc
  void running_add(std::size_t idx, double est_end, int num_nodes) {
    running_info_[idx] = {est_end, num_nodes};
    if (options_.engine == SimEngine::kFast) {
      const RunEntry entry{est_end, num_nodes, idx};
      const auto pos = std::lower_bound(running_sorted_.begin(),
                                        running_sorted_.end(), entry);
      // contract-trusted: no-alloc: capacity reserved up front to the
      // trace's peak concurrency (see the constructor's reserve)
      running_sorted_.insert(pos, entry);
    } else {
      // contract-trusted: no-alloc: reference engine; bounded by peak
      // concurrent jobs, capacity reused across the run
      running_.push_back(idx);
    }
  }

  void running_remove(std::size_t idx) {
    if (options_.engine == SimEngine::kFast) {
      const RunEntry entry{running_info_[idx].est_end,
                           running_info_[idx].num_nodes, idx};
      const auto pos = std::lower_bound(running_sorted_.begin(),
                                        running_sorted_.end(), entry);
      COMMSCHED_ASSERT_MSG(pos != running_sorted_.end() && pos->idx == idx,
                           "running set out of sync with completion");
      running_sorted_.erase(pos);
    } else {
      std::erase(running_, idx);
    }
  }

  // Ask the policy for nodes into the reusable scratch buffer. The count
  // pre-check is only an optimization: policies such as `exclusive` may
  // refuse a job the count test admits.
  // hot-path: no-alloc
  bool try_select_into(std::size_t idx, std::vector<NodeId>& out) {
    const JobRecord& job = log_[idx];
    if (state_.total_free() < job.num_nodes) {
      out.clear();
      return false;
    }
    return allocator_->select_into(state_, request_for(idx), out);
  }

  // hot-path: no-alloc
  AllocationRequest request_for(std::size_t idx) const {
    const JobRecord& job = log_[idx];
    AllocationRequest request;
    request.job = job_id(idx);
    request.num_nodes = job.num_nodes;
    request.comm_intensive = job.comm_intensive;
    request.pattern = job.pattern;
    request.msize = job.msize;
    request.io_intensive = job.io_intensive;
    request.comm_fraction = job.comm_fraction;
    request.io_fraction = job.io_fraction;
    return request;
  }

  // ---- Reference engine: the original O(n log n)-per-event loop ----------

  // Reorder the pending queue per the configured policy. FIFO keeps submit
  // order; the alternatives sort stably so equal keys stay FIFO.
  void apply_queue_policy() {
    if (options_.queue_policy == QueuePolicy::kFifo) return;
    std::stable_sort(
        pending_.begin(), pending_.end(), [&](std::size_t a, std::size_t b) {
          if (options_.queue_policy == QueuePolicy::kShortestJobFirst)
            return log_[a].walltime < log_[b].walltime;
          return log_[a].num_nodes < log_[b].num_nodes;
        });
  }

  void try_schedule_reference(double t) {
    apply_queue_policy();
    // FIFO phase: start queue-head jobs while the policy grants them nodes.
    while (!pending_.empty()) {
      const std::size_t head = pending_.front();
      if (!try_select_into(head, select_scratch_)) break;
      start_job(head, t, select_scratch_);
      pending_.pop_front();
    }
    if (pending_.empty() || !options_.easy_backfill) return;
    backfill_reference(t);
  }

  // EASY backfill: reserve the head job's start, then let later jobs jump
  // ahead only when they cannot delay that reservation.
  void backfill_reference(double t) {
    int examined = 0;
    // The head reservation depends only on the running set and the free-node
    // count, both of which change within this pass only when a backfilled
    // job actually starts — so compute it once and refresh after starts
    // instead of re-sorting the running jobs per examined candidate.
    auto reservation = head_reservation_reference();
    for (std::size_t qi = 1; qi < pending_.size();) {
      if (++examined > options_.backfill_depth) break;
      const auto [shadow_time, extra_nodes] = reservation;
      const std::size_t idx = pending_[qi];
      const JobRecord& job = log_[idx];
      const bool harmless = (t + job.walltime <= shadow_time) ||
                            (job.num_nodes <= extra_nodes);
      const bool started = harmless && try_select_into(idx, select_scratch_);
      if (started) {
        auditor_.check_backfill(t, job_id(idx), job.walltime, job.num_nodes,
                                shadow_time, extra_nodes);
        start_job(idx, t, select_scratch_);
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(qi));
        reservation = head_reservation_reference();
      } else {
        ++qi;
      }
    }
  }

  // When (by walltime estimates) the queue head can start, and how many
  // nodes beyond its need will be free at that time.
  std::pair<double, int> head_reservation_reference() {
    const int needed = log_[pending_.front()].num_nodes;
    std::vector<std::pair<double, int>> ends;  // (est_end, nodes)
    ends.reserve(running_.size());
    for (const std::size_t idx : running_)
      ends.emplace_back(running_info_[idx].est_end,
                        running_info_[idx].num_nodes);
    std::sort(ends.begin(), ends.end());
    int available = state_.total_free();
    for (const auto& [end, nodes] : ends) {
      available += nodes;
      if (available >= needed) return {end, available - needed};
    }
    COMMSCHED_ASSERT_MSG(false,
                         "head job cannot start even with an empty machine");
    return {0.0, 0};
  }

  // ---- Fast engine: indexed queue + incremental reservation --------------

  // hot-path: no-alloc
  void try_schedule_fast(double t) {
    // FIFO phase over the rank bitmap: identical visit order to the
    // reference deque after its re-sort (see build_queue_ranks).
    while (!pending_set_.empty()) {
      const std::size_t head_rank = pending_set_.first();
      const std::size_t head = idx_of_rank_[head_rank];
      if (!try_select_into(head, select_scratch_)) break;
      start_job(head, t, select_scratch_);
      pending_set_.erase(head_rank);
    }
    if (pending_set_.empty() || !options_.easy_backfill) return;
    backfill_fast(t);
  }

  // hot-path: no-alloc
  void backfill_fast(double t) {
    int examined = 0;
    auto reservation = head_reservation_fast();
    const std::size_t head_rank = pending_set_.first();
    std::size_t r = pending_set_.next(head_rank);
    while (r != IndexSet::npos) {
      if (++examined > options_.backfill_depth) break;
      const auto [shadow_time, extra_nodes] = reservation;
      const std::size_t idx = idx_of_rank_[r];
      const JobRecord& job = log_[idx];
      const bool harmless = (t + job.walltime <= shadow_time) ||
                            (job.num_nodes <= extra_nodes);
      const bool started = harmless && try_select_into(idx, select_scratch_);
      if (started) {
        auditor_.check_backfill(t, job_id(idx), job.walltime, job.num_nodes,
                                shadow_time, extra_nodes);
        start_job(idx, t, select_scratch_);
        // Successor before erase: the erased rank's next is the candidate
        // the reference engine's position-preserving erase lands on.
        const std::size_t nr = pending_set_.next(r);
        pending_set_.erase(r);
        r = nr;
        reservation = head_reservation_fast();
      } else {
        r = pending_set_.next(r);
      }
    }
  }

  // Incremental variant of head_reservation_reference: running_sorted_ is
  // maintained in (est_end, num_nodes, idx) order across starts and ends,
  // so the reservation is a prefix scan instead of a copy + sort.
  // hot-path: no-alloc
  std::pair<double, int> head_reservation_fast() {
    const int needed = log_[idx_of_rank_[pending_set_.first()]].num_nodes;
    int available = state_.total_free();
    for (const RunEntry& entry : running_sorted_) {
      available += entry.num_nodes;
      if (available >= needed) return {entry.est_end, available - needed};
    }
    COMMSCHED_ASSERT_MSG(false,
                         "head job cannot start even with an empty machine");
    return {0.0, 0};
  }

  // ---- Shared job-start path (pricing + commit), both engines ------------

  // hot-path: no-alloc
  void start_job(std::size_t idx, double t, const std::vector<NodeId>& nodes) {
    const JobRecord& job = log_[idx];
    const AllocationRequest request = request_for(idx);
    const bool is_default = options_.allocator == AllocatorKind::kDefault;
    const bool price_comm = job.comm_intensive && job.num_nodes >= 2;
    const bool price_io = job.io_intensive && job.io_fraction > 0.0;

    // What stock SLURM would have done with this very state — the Eq. 7
    // baseline for both the communication and the I/O terms.
    const std::vector<NodeId>& default_nodes = default_scratch_;
    if (!is_default && (price_comm || price_io)) {
      const bool have_default =
          default_allocator_.select_into(state_, request, default_scratch_);
      COMMSCHED_ASSERT(have_default);
    }

    double cost = 0.0;
    double cost_default = 0.0;
    double priced = 0.0, priced_default = 0.0;  // comm pricing metric
    const LeafCommProfile* profile = nullptr;
    if (price_comm) {
      // One canonical-shape profile per allocation serves both pricing
      // models (and the auditor's consistency check below).
      profile = &comm_cache_->profile(job.pattern, /*ranks_per_node=*/1,
                                      make_shape_key(tree_, nodes));
      // Recorded metric: the paper's unweighted Eq. 6 cost (Figure 8).
      cost = metric_model_.candidate_cost(state_, nodes, job.comm_intensive,
                                          *profile, workspace_);
      if (is_default) {
        cost_default = cost;
      } else {
        const LeafCommProfile& default_profile = comm_cache_->profile(
            job.pattern, /*ranks_per_node=*/1,
            make_shape_key(tree_, default_nodes));
        cost_default = metric_model_.candidate_cost(
            state_, default_nodes, job.comm_intensive, default_profile,
            workspace_);
        // Runtime ratio uses the (possibly msize-weighted) pricing metric.
        priced = pricing_model_.candidate_cost(state_, nodes,
                                               job.comm_intensive, *profile,
                                               workspace_);
        priced_default = pricing_model_.candidate_cost(
            state_, default_nodes, job.comm_intensive, default_profile,
            workspace_);
      }
    }
    double io_cost = 0.0, io_cost_default = 0.0;
    if (price_io) {
      io_cost = io_model_.candidate_cost(state_, nodes, job.io_intensive);
      io_cost_default =
          is_default ? io_cost
                     : io_model_.candidate_cost(state_, default_nodes,
                                                job.io_intensive);
    }

    double actual_runtime = job.runtime;
    if (!is_default && (price_comm || price_io))
      actual_runtime = modified_runtime_with_io(
          job.runtime, price_comm ? job.comm_fraction : 0.0, priced,
          priced_default, price_io ? job.io_fraction : 0.0, io_cost,
          io_cost_default, options_.runtime_options);

    bool hit_walltime = false;
    if (options_.enforce_walltime && actual_runtime > job.walltime) {
      actual_runtime = job.walltime;
      hit_walltime = true;
    }

    state_.allocate(request.job, job.comm_intensive, nodes,
                    job.io_intensive);
    if (auditor_.enabled()) {
      auditor_.on_event(t, "start job", job.id);
      auditor_.on_allocate(state_, request.job, nodes);
      if (price_comm) {
        auditor_.check_cost(cost, request.job, "Eq. 6 cost");
        auditor_.check_cost(cost_default, request.job, "Eq. 6 default cost");
        auditor_.check_cost_symmetry(metric_model_, state_, nodes,
                                     request.job);
        auditor_.check_profile(job.pattern, *profile, nodes, request.job);
      }
      if (price_io) {
        auditor_.check_cost(io_cost, request.job, "I/O cost");
        auditor_.check_cost(io_cost_default, request.job, "I/O default cost");
      }
    }
    running_add(idx, t + job.walltime, job.num_nodes);
    completions_.push({t + actual_runtime, idx});
    emit(TraceEvent::Kind::kStart, t, idx);

    JobResult& r = results_[idx];
    r.id = job.id;
    r.num_nodes = job.num_nodes;
    r.comm_intensive = job.comm_intensive;
    r.pattern = job.pattern;
    r.submit_time = job.submit_time;
    r.start_time = t;
    r.end_time = t + actual_runtime;
    r.original_runtime = job.runtime;
    r.actual_runtime = actual_runtime;
    r.cost = cost;
    r.cost_default = cost_default;
    r.io_cost = io_cost;
    r.io_cost_default = io_cost_default;
    r.hit_walltime = hit_walltime;
  }

  const Tree& tree_;
  const JobLog& log_;
  const SchedOptions& options_;
  ClusterState state_;
  // The run-wide schedule/profile cache; declared before allocator_ so it
  // exists when make_allocator hands it to the pricing policies. Exactly one
  // per simulation run.
  std::shared_ptr<CommCache> comm_cache_;
  std::unique_ptr<Allocator> allocator_;
  DefaultAllocator default_allocator_;
  CostModel pricing_model_;  // Eq. 7 ratio + adaptive comparisons
  CostModel metric_model_;   // pure Eq. 6, recorded in JobResult
  IoModel io_model_;         // §7 I/O extension
  CostWorkspace workspace_;  // cost-kernel scratch for the pricing models
  StateAuditor auditor_;     // runtime invariant checks (src/audit)

  // Reference engine queue/running structures.
  std::deque<std::size_t> pending_;  // log indices, queue order
  std::vector<std::size_t> running_;

  // Fast engine queue/running structures (see build_queue_ranks).
  IndexSet pending_set_;                  // pending jobs, by queue rank
  std::vector<std::size_t> idx_of_rank_;  // queue rank -> log index
  std::vector<std::size_t> rank_of_;      // log index -> queue rank
  std::vector<RunEntry> running_sorted_;  // (est_end, nodes, idx) ascending

  // Shared state and steady-state scratch (reused capacity, no per-event
  // allocation once warm).
  std::vector<RunningInfo> running_info_;
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completions_;
  std::vector<JobResult> results_;
  std::vector<NodeId> select_scratch_;   // policy picks
  std::vector<NodeId> default_scratch_;  // Eq. 7 baseline picks
  std::vector<NodeId> freed_scratch_;    // release_into target
};

}  // namespace

SimResult run_continuous(const Tree& tree, const JobLog& log,
                         const SchedOptions& options) {
  return Simulation(tree, log, options).run();
}

}  // namespace commsched
