// Discrete-event SLURM-like scheduler simulator (DESIGN.md §3,
// substitution 1).
//
// Reproduces the scheduling semantics the paper runs inside SLURM 19.05:
//   - FIFO priority order with EASY backfilling (§3.1): the queue head gets
//     a walltime-based reservation; later jobs may jump ahead only if they
//     cannot delay that reservation.
//   - Whole-node allocation through a pluggable Allocator (select/linear +
//     topology/tree equivalents, §4).
//   - Runtime estimation per the paper's Eq. 7: when a job-aware policy
//     places a communication-intensive job, the simulator prices the chosen
//     allocation and the hypothetical default allocation for the *same*
//     cluster state with Eq. 6 and scales the job's communication time by
//     the ratio. The default policy therefore runs at ratio 1.
//
// The simulation is deterministic: no randomness, event order is total
// (completions before submissions at equal times, job order within a time
// by queue position).
#pragma once

#include <memory>
#include <optional>

#include "audit/level.hpp"
#include "core/allocator_factory.hpp"
#include "core/cost_model.hpp"
#include "core/degradation_model.hpp"
#include "core/runtime_model.hpp"
#include "sched/result.hpp"
#include "sched/trace.hpp"
#include "topology/tree.hpp"
#include "workload/job.hpp"

namespace commsched {

/// Queue ordering, the SLURM priority-plugin axis. The paper runs FIFO
/// (+ backfill); the alternatives are provided for substrate completeness
/// and ablations.
enum class QueuePolicy : std::uint8_t {
  kFifo,              ///< submit order (the paper's configuration)
  kShortestJobFirst,  ///< ascending walltime estimate
  kSmallestJobFirst,  ///< ascending node count
  /// Colocation-aware (DESIGN.md "Dynamic interference"): light
  /// communication loads first (they pack with anything), FIFO within equal
  /// loads, and a communication-intensive job is deferred while the
  /// antagonist load already on its prospective leaves exceeds
  /// SchedOptions::coloc_max_external — packing compatible jobs while
  /// separating antagonists.
  kColocation,
};

/// Event-loop engine (DESIGN.md "Million-job event loop"). kFast is the
/// production core: the pending queue is a hierarchical bitmap over
/// precomputed queue ranks (O(log n) insert/erase/successor instead of a
/// stable sort per event), the head reservation is a prefix scan over an
/// incrementally sorted running set, and the steady state allocates
/// nothing. kReference keeps the original per-event-sort loop as the
/// differential baseline; both produce bit-identical SimResults (pinned by
/// tests/sched/engine_diff_test).
enum class SimEngine : std::uint8_t {
  kFast,       ///< indexed million-job core (default)
  kReference,  ///< original loop, kept as the differential oracle
};

struct SchedOptions {
  AllocatorKind allocator = AllocatorKind::kDefault;
  /// Pricing metric for the Eq. 7 runtime ratio and the adaptive policy's
  /// candidate comparison. Defaults to hop-byte weighting (§5.3: effective
  /// hop-bytes "gives an indication of communication time"; msize doubles
  /// per step under vector doubling). For constant-msize patterns (RD,
  /// binomial, ring) the ratio is identical to the pure Eq. 6 ratio; for
  /// RHVD the weighting is what gives balanced allocation its larger win
  /// (§6.1). JobResult.cost / cost_default always record the *unweighted*
  /// Eq. 6 cost, as plotted in Figure 8.
  CostOptions cost_options{.hop_bytes = true};
  /// Eq. 7 ratio clamps. The simulator resolves these through
  /// runtime_options_from_env(), so COMMSCHED_RUNTIME_CLAMP ("min:max")
  /// overrides whatever is set here — mirroring the COMMSCHED_AUDIT knob.
  RuntimeModelOptions runtime_options{};
  /// Dynamic interference (DESIGN.md "Dynamic interference"): when
  /// degradation.enabled, every running communication-intensive job's
  /// remaining time is rescaled whenever an allocation or release changes
  /// the co-located load on a leaf it touches, and its end event is
  /// rescheduled. Off reproduces the paper's allocation-time-frozen Eq. 7
  /// bit for bit.
  DegradationOptions degradation{};
  /// QueuePolicy::kColocation admission threshold: a communication-intensive
  /// job is deferred while the external load on its prospective leaves
  /// (DegradationModel::external_load, 1.0 == fully loaded neighbours)
  /// exceeds this. Deferral is live-lock free: a nonzero external load
  /// implies a running job, hence a pending completion event.
  double coloc_max_external = 0.25;
  /// AllocatorKind::kSa annealing knobs (ignored by the other policies).
  /// The simulator bumps sa.verify_stride with the audit level (cheap ->
  /// sampled delta-vs-full checks, full -> every accepted move) unless it is
  /// already nonzero, and the auditor re-derives the SA allocator's claimed
  /// cost after every communication-intensive start.
  SaOptions sa{};
  /// EASY backfilling on/off (off = plain FIFO, blocks on the head job).
  bool easy_backfill = true;
  /// Max queued jobs examined per backfill pass (SLURM's bf_max_job_test).
  int backfill_depth = 200;
  /// Queue ordering (FIFO in the paper).
  QueuePolicy queue_policy = QueuePolicy::kFifo;
  /// Event-loop implementation; kReference is the bit-identical oracle for
  /// differential tests and should not be needed outside them.
  SimEngine engine = SimEngine::kFast;
  /// Kill jobs at their requested walltime, as production SLURM does. Off
  /// by default: the paper's Eq. 7 lets degraded placements overrun their
  /// logged runtime, and killing them would hide that signal.
  bool enforce_walltime = false;
  /// Optional event sink (submit/start/end, non-decreasing time order).
  TraceCallback trace;
  /// Runtime invariant auditing (src/audit): off disables all checks, cheap
  /// runs O(event) shadow-table checks, full re-validates every counter
  /// after every event. Unset reads the COMMSCHED_AUDIT environment
  /// variable (off when that is unset too).
  std::optional<AuditLevel> audit;
};

/// Run a job log to completion under one allocation policy.
/// Preconditions: every job fits the machine (num_nodes <= tree nodes) and
/// has positive runtime; the log is sorted by submit_time.
SimResult run_continuous(const Tree& tree, const JobLog& log,
                         const SchedOptions& options);

}  // namespace commsched
