#include "sched/trace.hpp"

#include <cstdio>
#include <ostream>

#include "util/strings.hpp"

namespace commsched {

const char* trace_kind_name(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kSubmit: return "submit";
    case TraceEvent::Kind::kStart: return "start";
    case TraceEvent::Kind::kEnd: return "end";
  }
  return "?";
}

std::string trace_event_to_json(const TraceEvent& event) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                R"({"ev":"%s","t":%.6f,"job":%lld,"nodes":%d})",
                trace_kind_name(event.kind), event.time,
                static_cast<long long>(event.job), event.num_nodes);
  return buf;
}

std::optional<TraceEvent> trace_event_from_json(std::string_view line) {
  // Deliberately narrow: parse only the writer's own field order.
  const auto grab = [&](std::string_view key) -> std::optional<std::string> {
    const std::string marker = "\"" + std::string(key) + "\":";
    const auto pos = line.find(marker);
    if (pos == std::string_view::npos) return std::nullopt;
    auto rest = line.substr(pos + marker.size());
    std::size_t end = 0;
    if (!rest.empty() && rest.front() == '"') {
      rest.remove_prefix(1);
      end = rest.find('"');
      if (end == std::string_view::npos) return std::nullopt;
    } else {
      end = rest.find_first_of(",}");
      if (end == std::string_view::npos) return std::nullopt;
    }
    return std::string(rest.substr(0, end));
  };

  const auto ev = grab("ev");
  const auto t = grab("t");
  const auto job = grab("job");
  const auto nodes = grab("nodes");
  if (!ev || !t || !job || !nodes) return std::nullopt;

  TraceEvent event;
  if (*ev == "submit") event.kind = TraceEvent::Kind::kSubmit;
  else if (*ev == "start") event.kind = TraceEvent::Kind::kStart;
  else if (*ev == "end") event.kind = TraceEvent::Kind::kEnd;
  else return std::nullopt;
  const auto time = parse_double(*t);
  const auto job_id = parse_int(*job);
  const auto node_count = parse_int(*nodes);
  if (!time || !job_id || !node_count) return std::nullopt;
  event.time = *time;
  event.job = *job_id;
  event.num_nodes = static_cast<int>(*node_count);
  return event;
}

TraceCallback make_json_trace_sink(std::ostream& out) {
  return [&out](const TraceEvent& event) {
    out << trace_event_to_json(event) << '\n';
  };
}

}  // namespace commsched
