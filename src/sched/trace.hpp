// Scheduler event tracing: a stream of submit/start/end events emitted by
// the simulator, and a JSON-lines writer/reader for offline analysis
// (node-occupancy timelines, Gantt charts, queue-depth plots).
//
// The trace is also the strongest test oracle the simulator has: replaying
// the event stream must never over-subscribe the machine, start a job
// before its submit, or end a job that never started (see
// tests/sched/trace_test.cpp).
#pragma once

#include <functional>
#include <iosfwd>
#include <optional>
#include <string>

#include "workload/job.hpp"

namespace commsched {

struct TraceEvent {
  enum class Kind : std::uint8_t { kSubmit, kStart, kEnd };
  Kind kind = Kind::kSubmit;
  double time = 0.0;
  WorkloadJobId job = 0;
  int num_nodes = 0;
};

const char* trace_kind_name(TraceEvent::Kind kind);

/// Invoked by the simulator for every event, in non-decreasing time order.
using TraceCallback = std::function<void(const TraceEvent&)>;

/// One event as a JSON line: {"ev":"start","t":12.5,"job":3,"nodes":64}.
std::string trace_event_to_json(const TraceEvent& event);

/// Parse one JSON trace line (accepts exactly the writer's format).
/// std::nullopt on malformed input.
std::optional<TraceEvent> trace_event_from_json(std::string_view line);

/// Convenience sink: stream every event to an ostream as JSON lines.
TraceCallback make_json_trace_sink(std::ostream& out);

}  // namespace commsched
