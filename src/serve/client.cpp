#include "serve/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace commsched::serve {

Client::~Client() { close(); }

bool Client::fail(const std::string& message) {
  error_ = message;
  close();
  return false;
}

bool Client::connect(const std::string& socket_path) {
  close();
  if (socket_path.empty() ||
      socket_path.size() >= sizeof(sockaddr_un{}.sun_path))
    return fail("invalid socket path: " + socket_path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    return fail("socket() failed: " + std::string(std::strerror(errno)));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size());
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0)
    return fail("connect(" + socket_path +
                ") failed: " + std::string(std::strerror(errno)));
  error_.clear();
  recv_buf_.clear();
  recv_offset_ = 0;
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::send_request(const Request& request) {
  if (fd_ < 0) return fail("not connected");
  send_buf_.clear();
  encode_request(request, send_buf_);
  std::size_t off = 0;
  while (off < send_buf_.size()) {
    const ssize_t n = ::send(fd_, send_buf_.data() + off,
                             send_buf_.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return fail("send failed: " + std::string(std::strerror(errno)));
  }
  return true;
}

bool Client::recv_reply(Reply& out, int timeout_ms) {
  if (fd_ < 0) return fail("not connected");
  for (;;) {
    // Try to peel a complete frame from what we already buffered.
    std::span<const std::uint8_t> payload;
    const DecodeResult framed = peel_frame(recv_buf_, recv_offset_, payload);
    if (framed == DecodeResult::kOk) {
      const DecodeResult decoded = decode_reply(payload, out);
      if (recv_offset_ == recv_buf_.size()) {
        recv_buf_.clear();
        recv_offset_ = 0;
      }
      if (decoded != DecodeResult::kOk)
        return fail(std::string("bad reply frame: ") +
                    decode_result_name(decoded));
      return true;
    }
    if (framed != DecodeResult::kNeedMore)
      return fail(std::string("bad reply framing: ") +
                  decode_result_name(framed));
    if (timeout_ms >= 0) {
      pollfd p{};
      p.fd = fd_;
      p.events = POLLIN;
      const int ready = ::poll(&p, 1, timeout_ms);
      if (ready == 0) return fail("recv timeout");
      if (ready < 0) {
        if (errno == EINTR) continue;
        return fail("poll failed: " + std::string(std::strerror(errno)));
      }
    }
    std::uint8_t chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) return fail("connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("recv failed: " + std::string(std::strerror(errno)));
    }
    recv_buf_.insert(recv_buf_.end(), chunk, chunk + n);
  }
}

bool Client::call(const Request& request, Reply& out, int timeout_ms) {
  if (!send_request(request)) return false;
  return recv_reply(out, timeout_ms);
}

}  // namespace commsched::serve
