// Blocking client for the allocator daemon (DESIGN.md "Allocator service").
//
// One Client wraps one connected stream socket. send_request() frames and
// writes a message; recv_reply() blocks (with an optional timeout) until
// the next complete reply frame arrives; call() does both. Replies come
// back in whatever order the server finishes them — admission rejections
// are written by the reader thread and can overtake strand replies — so
// pipelining callers (the load generator) match replies to requests by
// req_id, never by position.
//
// Every method reports failure by returning false and setting error();
// nothing throws. A connection error leaves the client dead (connected()
// == false) — callers reconnect and re-send unacknowledged request ids,
// which the service answers idempotently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace commsched::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a daemon's unix socket. False + error() on failure.
  bool connect(const std::string& socket_path);
  void close();
  bool connected() const noexcept { return fd_ >= 0; }
  const std::string& error() const noexcept { return error_; }

  /// Frame and write one request. Blocks until fully written.
  bool send_request(const Request& request);
  /// Block until the next reply frame. timeout_ms < 0 waits forever;
  /// expiry or connection loss returns false.
  bool recv_reply(Reply& out, int timeout_ms = -1);
  /// send_request + recv_reply. Only valid when no replies are in flight.
  bool call(const Request& request, Reply& out, int timeout_ms = -1);

 private:
  bool fail(const std::string& message);

  int fd_ = -1;
  std::string error_;
  std::vector<std::uint8_t> send_buf_;
  std::vector<std::uint8_t> recv_buf_;
  std::size_t recv_offset_ = 0;
};

}  // namespace commsched::serve
