#include "serve/loadgen.hpp"

#include <chrono>
#include <cmath>
#include <numbers>
#include <queue>
#include <thread>
#include <unordered_map>
#include <utility>

#include "util/assert.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace commsched::serve {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LoadStream build_stream(const LoadSpec& spec, int machine_nodes) {
  COMMSCHED_ASSERT(machine_nodes > 0);
  COMMSCHED_ASSERT(spec.min_exp >= 0 && spec.min_exp <= spec.max_exp);
  LoadStream stream;
  stream.requests.reserve(spec.requests);
  stream.send_time.assign(spec.requests, 0.0);
  Rng rng(spec.seed);
  // Jobs no larger than half the machine so the generator exercises
  // packing, not just wall-to-wall no-fits.
  int hi = spec.max_exp;
  while (hi > spec.min_exp && (1 << hi) > machine_nodes / 2) --hi;
  // Planned releases, ordered by stream slot (min-heap).
  using Hold = std::pair<std::int64_t, std::int64_t>;  // (slot, job)
  std::priority_queue<Hold, std::vector<Hold>, std::greater<Hold>> holds;
  std::uint64_t next_req = 1;
  std::int64_t next_job = 1;
  double t = 0.0;
  for (std::size_t i = 0; i < spec.requests; ++i) {
    Request req;
    req.req_id = next_req++;
    req.deadline_ms = spec.deadline_ms;
    req.allocator = spec.allocator;
    if (!holds.empty() &&
        holds.top().first <= static_cast<std::int64_t>(i)) {
      req.type = MsgType::kRelease;
      req.job = holds.top().second;
      holds.pop();
    } else {
      req.type = MsgType::kAlloc;
      req.job = next_job++;
      req.num_nodes =
          1 << rng.uniform_int(spec.min_exp, hi);
      req.comm_intensive = rng.uniform_real(0.0, 1.0) < spec.comm_percent;
      req.io_intensive = rng.uniform_real(0.0, 1.0) < spec.io_percent;
      req.comm_fraction = req.comm_intensive ? spec.comm_fraction : 0.0;
      req.io_fraction = req.io_intensive ? 0.2 : 0.0;
      const double u = rng.uniform_real(0.0, 1.0);
      req.pattern = u < 0.35   ? Pattern::kRecursiveDoubling
                    : u < 0.60 ? Pattern::kRecursiveHalvingVD
                    : u < 0.80 ? Pattern::kBinomial
                               : Pattern::kPairwiseAlltoall;
      // 64 KiB .. 16 MiB, power-of-two (the paper's msize axis).
      req.msize =
          static_cast<double>(1 << (16 + rng.uniform_int(0, 8)));
      const double hold = rng.exponential(spec.hold_mean);
      holds.emplace(static_cast<std::int64_t>(i) + 1 +
                        static_cast<std::int64_t>(hold),
                    req.job);
    }
    if (spec.arrival_rate > 0.0) {
      double rate = spec.arrival_rate;
      if (spec.burstiness > 0.0 && spec.burst_period > 0.0)
        rate *= 1.0 + spec.burstiness *
                          std::sin(2.0 * std::numbers::pi *
                                   static_cast<double>(i) /
                                   spec.burst_period);
      t += rng.exponential(1.0 / rate);
      stream.send_time[i] = t;
    }
    stream.requests.push_back(req);
  }
  return stream;
}

void encode_stream(const LoadStream& stream, std::vector<std::uint8_t>& out) {
  for (const Request& req : stream.requests) encode_request(req, out);
}

std::string canonical_reply_line(const Reply& reply) {
  std::string line = "req=" + std::to_string(reply.req_id);
  line += " type=";
  line += msg_type_name(reply.type);
  line += " status=";
  line += serve_status_name(reply.status);
  if (reply.type == MsgType::kAllocReply &&
      reply.status == ServeStatus::kOk) {
    line += " cost=" + json_number(reply.cost);
    line += " nodes=[";
    for (std::size_t i = 0; i < reply.nodes.size(); ++i) {
      if (i > 0) line += ',';
      line += std::to_string(reply.nodes[i]);
    }
    line += ']';
  } else if (reply.type == MsgType::kReleaseReply &&
             reply.status == ServeStatus::kOk) {
    line += " freed=" + std::to_string(reply.freed);
  }
  return line;
}

std::vector<std::string> reference_log(const LoadStream& stream,
                                       const Tree& tree,
                                       const ServiceOptions& options) {
  AllocatorService service(tree, options);
  std::vector<std::string> log;
  log.reserve(stream.requests.size());
  Reply reply;
  for (const Request& req : stream.requests) {
    service.handle(req, reply);
    log.push_back(canonical_reply_line(reply));
  }
  return log;
}

ReplayResult replay(Client& client, const LoadStream& stream,
                    const ReplayOptions& options) {
  ReplayResult result;
  if (options.collect_log)
    result.log.assign(stream.requests.size(), std::string());
  // req_id -> (stream index, send timestamp). Replies can arrive out of
  // order (admission rejections overtake strand replies).
  std::unordered_map<std::uint64_t, std::pair<std::size_t, std::int64_t>>
      outstanding;
  outstanding.reserve(options.window * 2);
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t next = 0;
  std::size_t answered = 0;
  Reply reply;
  bool failed = false;
  while (answered < stream.requests.size()) {
    while (next < stream.requests.size() &&
           outstanding.size() < options.window) {
      if (options.paced && stream.send_time[next] > 0.0) {
        const auto target =
            t0 + std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(stream.send_time[next]));
        if (std::chrono::steady_clock::now() < target) {
          if (!outstanding.empty()) break;  // drain replies meanwhile
          std::this_thread::sleep_until(target);
        }
      }
      const std::int64_t sent_at = now_ns();
      if (!client.send_request(stream.requests[next])) {
        failed = true;
        break;
      }
      outstanding.emplace(stream.requests[next].req_id,
                          std::make_pair(next, sent_at));
      ++next;
    }
    if (failed || outstanding.empty()) break;
    if (!client.recv_reply(reply, options.recv_timeout_ms)) {
      failed = true;
      break;
    }
    const auto it = outstanding.find(reply.req_id);
    if (it == outstanding.end()) continue;  // stale/unknown id: ignore
    result.latency.record(static_cast<std::uint64_t>(
        (now_ns() - it->second.second) / 1000));
    switch (reply.status) {
      case ServeStatus::kOk: ++result.ok; break;
      case ServeStatus::kNoFit: ++result.no_fit; break;
      case ServeStatus::kRejected: ++result.rejected; break;
      case ServeStatus::kTimeout: ++result.timeouts; break;
      case ServeStatus::kBadRequest: ++result.bad; break;
      default: ++result.other; break;
    }
    if (options.collect_log)
      result.log[it->second.first] = canonical_reply_line(reply);
    outstanding.erase(it);
    ++answered;
  }
  result.complete = answered == stream.requests.size();
  if (!result.complete)
    result.io_errors = stream.requests.size() - answered;
  return result;
}

}  // namespace commsched::serve
