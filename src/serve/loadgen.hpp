// Deterministic load generator for the allocator daemon.
//
// build_stream() turns (LoadSpec, machine size) into a fully materialized
// request stream: every field of every request, including the request ids
// and the open-loop send schedule, is a pure function of the seed — the
// same spec always produces a byte-identical encode_stream() image
// (pinned by tests/serve/loadgen_golden_test.cpp). Jobs allocate
// power-of-two node counts and release after an exponentially distributed
// hold measured in stream slots, so the cluster reaches a seed-determined
// steady occupancy instead of filling up monotonically.
//
// replay() drives a connected Client with a bounded pipeline window,
// matching replies to requests by req_id (rejections overtake strand
// replies), recording wall-clock latency per request into a
// LatencyHistogram, and optionally collecting a canonical reply log.
// The log is indexed by stream position and strips every wall-time field,
// so it is byte-comparable across runs, worker counts, and daemon
// restarts — the load generator doubles as the differential test driver.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/service.hpp"
#include "util/latency_histogram.hpp"

namespace commsched::serve {

struct LoadSpec {
  std::uint64_t seed = 20200817;
  std::size_t requests = 10000;  ///< total stream length (allocs + releases)
  int min_exp = 0;               ///< smallest job: 2^min_exp nodes
  int max_exp = 5;               ///< largest job: 2^max_exp nodes
  double comm_percent = 0.9;     ///< fraction of jobs that are comm-intensive
  double comm_fraction = 0.5;    ///< their time under communication (f_c)
  double io_percent = 0.1;
  double hold_mean = 24.0;       ///< mean job lifetime in stream slots
  std::uint32_t deadline_ms = 0;  ///< per-request deadline (0 = none)
  std::uint8_t allocator = kServerAllocator;
  /// Open-loop pacing for replay(.paced): mean requests/second; 0 = as
  /// fast as the window allows (send_time all zero).
  double arrival_rate = 0.0;
  /// Sinusoidal rate modulation in [0,1): peak rate = (1+b)*arrival_rate,
  /// trough = (1-b)*arrival_rate — the bursty open-loop traffic shape.
  double burstiness = 0.0;
  double burst_period = 1000.0;  ///< slots per burst cycle
};

struct LoadStream {
  std::vector<Request> requests;
  /// Planned send time of requests[i], seconds from replay start (paced).
  std::vector<double> send_time;
};

/// Materialize the request stream for a machine with `machine_nodes` nodes.
LoadStream build_stream(const LoadSpec& spec, int machine_nodes);

/// Append every request's wire frame to `out` (the golden-file image).
void encode_stream(const LoadStream& stream, std::vector<std::uint8_t>& out);

/// One reply as a canonical text line: req id, type, status, cost
/// (shortest round-trip form), nodes/freed. No wall-time fields.
std::string canonical_reply_line(const Reply& reply);

/// The reply log an inline AllocatorService produces for `stream` — the
/// oracle the daemon's log must match byte-for-byte.
std::vector<std::string> reference_log(const LoadStream& stream,
                                       const Tree& tree,
                                       const ServiceOptions& options);

struct ReplayOptions {
  std::size_t window = 64;     ///< max in-flight requests
  bool paced = false;          ///< honor stream.send_time
  int recv_timeout_ms = 10000;
  bool collect_log = false;    ///< fill ReplayResult::log
};

struct ReplayResult {
  LatencyHistogram latency;  ///< microseconds, send to matching reply
  std::uint64_t ok = 0;
  std::uint64_t no_fit = 0;
  std::uint64_t rejected = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t bad = 0;        ///< kBadRequest / kErrorReply
  std::uint64_t other = 0;      ///< any remaining status
  std::uint64_t io_errors = 0;  ///< requests lost to connection failure
  /// canonical_reply_line() per stream position ("" = no reply received).
  std::vector<std::string> log;
  bool complete = false;  ///< every request got a reply
};

/// Replay the stream over a connected client. On connection failure the
/// unanswered and unsent requests are counted as io_errors and replay
/// stops (complete == false) — the caller reconnects and replays again,
/// relying on idempotent request ids.
ReplayResult replay(Client& client, const LoadStream& stream,
                    const ReplayOptions& options = {});

}  // namespace commsched::serve
