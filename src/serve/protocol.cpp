#include "serve/protocol.hpp"

#include "util/wire.hpp"

namespace commsched::serve {

namespace {

constexpr std::uint8_t kFlagComm = 1;
constexpr std::uint8_t kFlagIo = 2;

bool valid_pattern(std::uint8_t p) {
  return p <= static_cast<std::uint8_t>(Pattern::kPairwiseAlltoall);
}

bool valid_status(std::uint8_t s) {
  return s <= static_cast<std::uint8_t>(ServeStatus::kDraining);
}

}  // namespace

const char* msg_type_name(MsgType t) noexcept {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kHelloAck: return "hello_ack";
    case MsgType::kAlloc: return "alloc";
    case MsgType::kAllocReply: return "alloc_reply";
    case MsgType::kRelease: return "release";
    case MsgType::kReleaseReply: return "release_reply";
    case MsgType::kQuery: return "query";
    case MsgType::kQueryReply: return "query_reply";
    case MsgType::kDrain: return "drain";
    case MsgType::kDrainReply: return "drain_reply";
    case MsgType::kErrorReply: return "error_reply";
  }
  return "unknown";
}

const char* serve_status_name(ServeStatus s) noexcept {
  switch (s) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kNoFit: return "no_fit";
    case ServeStatus::kRejected: return "rejected";
    case ServeStatus::kTimeout: return "timeout";
    case ServeStatus::kUnknownJob: return "unknown_job";
    case ServeStatus::kDuplicateJob: return "duplicate_job";
    case ServeStatus::kBadRequest: return "bad_request";
    case ServeStatus::kDraining: return "draining";
  }
  return "unknown";
}

const char* decode_result_name(DecodeResult r) noexcept {
  switch (r) {
    case DecodeResult::kOk: return "ok";
    case DecodeResult::kNeedMore: return "need_more";
    case DecodeResult::kTruncated: return "truncated";
    case DecodeResult::kOversized: return "oversized";
    case DecodeResult::kBadType: return "bad_type";
    case DecodeResult::kBadValue: return "bad_value";
    case DecodeResult::kTrailing: return "trailing";
  }
  return "unknown";
}

MsgType reply_type_for(MsgType request) noexcept {
  switch (request) {
    case MsgType::kHello: return MsgType::kHelloAck;
    case MsgType::kAlloc: return MsgType::kAllocReply;
    case MsgType::kRelease: return MsgType::kReleaseReply;
    case MsgType::kQuery: return MsgType::kQueryReply;
    case MsgType::kDrain: return MsgType::kDrainReply;
    default: return MsgType::kErrorReply;
  }
}

void encode_request(const Request& request, std::vector<std::uint8_t>& out) {
  const std::size_t len_at = out.size();
  WireWriter w(out);
  w.u32(0);  // patched below
  w.u8(static_cast<std::uint8_t>(request.type));
  w.u64(request.req_id);
  switch (request.type) {
    case MsgType::kHello:
      w.u32(request.version);
      break;
    case MsgType::kAlloc: {
      w.i64(request.job);
      w.u32(static_cast<std::uint32_t>(request.num_nodes));
      w.u8(request.allocator);
      std::uint8_t flags = 0;
      if (request.comm_intensive) flags |= kFlagComm;
      if (request.io_intensive) flags |= kFlagIo;
      w.u8(flags);
      w.u8(static_cast<std::uint8_t>(request.pattern));
      w.u32(request.deadline_ms);
      w.f64(request.msize);
      w.f64(request.comm_fraction);
      w.f64(request.io_fraction);
      break;
    }
    case MsgType::kRelease:
      w.i64(request.job);
      w.u32(request.deadline_ms);
      break;
    case MsgType::kQuery:
    case MsgType::kDrain:
      break;
    default:
      break;  // reply types never encode as requests; callers pass requests
  }
  const std::uint32_t payload =
      static_cast<std::uint32_t>(out.size() - len_at - 4);
  out[len_at] = static_cast<std::uint8_t>(payload);
  out[len_at + 1] = static_cast<std::uint8_t>(payload >> 8);
  out[len_at + 2] = static_cast<std::uint8_t>(payload >> 16);
  out[len_at + 3] = static_cast<std::uint8_t>(payload >> 24);
}

void encode_reply(const Reply& reply, std::vector<std::uint8_t>& out) {
  const std::size_t len_at = out.size();
  WireWriter w(out);
  w.u32(0);  // patched below
  w.u8(static_cast<std::uint8_t>(reply.type));
  w.u64(reply.req_id);
  w.u8(static_cast<std::uint8_t>(reply.status));
  switch (reply.type) {
    case MsgType::kHelloAck:
      w.u32(reply.version);
      w.u32(reply.max_frame);
      break;
    case MsgType::kAllocReply:
      w.f64(reply.cost);
      w.u32(static_cast<std::uint32_t>(reply.nodes.size()));
      for (const std::uint32_t n : reply.nodes) w.u32(n);
      break;
    case MsgType::kReleaseReply:
      w.u32(reply.freed);
      break;
    case MsgType::kQueryReply:
      w.u32(reply.total_nodes);
      w.u32(reply.free_nodes);
      w.u32(reply.running_jobs);
      w.u64(reply.served);
      w.u64(reply.allocs);
      w.u64(reply.releases);
      w.u64(reply.no_fit);
      w.u64(reply.idempotent_hits);
      w.u64(reply.bad_requests);
      w.u64(reply.rejected);
      w.u64(reply.timeouts);
      break;
    case MsgType::kDrainReply:
    case MsgType::kErrorReply:
      break;
    default:
      break;  // request types never encode as replies
  }
  const std::uint32_t payload =
      static_cast<std::uint32_t>(out.size() - len_at - 4);
  out[len_at] = static_cast<std::uint8_t>(payload);
  out[len_at + 1] = static_cast<std::uint8_t>(payload >> 8);
  out[len_at + 2] = static_cast<std::uint8_t>(payload >> 16);
  out[len_at + 3] = static_cast<std::uint8_t>(payload >> 24);
}

DecodeResult peel_frame(std::span<const std::uint8_t> buffer,
                        std::size_t& offset,
                        std::span<const std::uint8_t>& payload) {
  if (buffer.size() - offset < 4) return DecodeResult::kNeedMore;
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i) len = (len << 8) | buffer[offset + i];
  if (len > kMaxFramePayload) return DecodeResult::kOversized;
  if (buffer.size() - offset - 4 < len) return DecodeResult::kNeedMore;
  payload = buffer.subspan(offset + 4, len);
  offset += 4 + static_cast<std::size_t>(len);
  return DecodeResult::kOk;
}

DecodeResult decode_request(std::span<const std::uint8_t> payload,
                            Request& out) {
  WireReader r(payload);
  const std::uint8_t type = r.u8();
  out.req_id = r.u64();
  if (!r.ok()) return DecodeResult::kTruncated;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kHello:
      out.type = MsgType::kHello;
      out.version = r.u32();
      break;
    case MsgType::kAlloc: {
      out.type = MsgType::kAlloc;
      out.job = r.i64();
      out.num_nodes = static_cast<std::int32_t>(r.u32());
      out.allocator = r.u8();
      const std::uint8_t flags = r.u8();
      out.comm_intensive = (flags & kFlagComm) != 0;
      out.io_intensive = (flags & kFlagIo) != 0;
      const std::uint8_t pattern = r.u8();
      out.deadline_ms = r.u32();
      out.msize = r.f64();
      out.comm_fraction = r.f64();
      out.io_fraction = r.f64();
      if (!r.ok()) return DecodeResult::kTruncated;
      if (!valid_pattern(pattern) || (flags & ~(kFlagComm | kFlagIo)) != 0)
        return DecodeResult::kBadValue;
      out.pattern = static_cast<Pattern>(pattern);
      break;
    }
    case MsgType::kRelease:
      out.type = MsgType::kRelease;
      out.job = r.i64();
      out.deadline_ms = r.u32();
      break;
    case MsgType::kQuery:
      out.type = MsgType::kQuery;
      break;
    case MsgType::kDrain:
      out.type = MsgType::kDrain;
      break;
    default:
      return DecodeResult::kBadType;
  }
  if (!r.ok()) return DecodeResult::kTruncated;
  if (r.remaining() != 0) return DecodeResult::kTrailing;
  return DecodeResult::kOk;
}

DecodeResult decode_reply(std::span<const std::uint8_t> payload, Reply& out) {
  WireReader r(payload);
  const std::uint8_t type = r.u8();
  out.req_id = r.u64();
  const std::uint8_t status = r.u8();
  if (!r.ok()) return DecodeResult::kTruncated;
  if (!valid_status(status)) return DecodeResult::kBadValue;
  out.status = static_cast<ServeStatus>(status);
  out.nodes.clear();
  switch (static_cast<MsgType>(type)) {
    case MsgType::kHelloAck:
      out.type = MsgType::kHelloAck;
      out.version = r.u32();
      out.max_frame = r.u32();
      break;
    case MsgType::kAllocReply: {
      out.type = MsgType::kAllocReply;
      out.cost = r.f64();
      const std::uint32_t count = r.u32();
      if (!r.ok()) return DecodeResult::kTruncated;
      // Each node id takes 4 bytes; a count beyond the remaining payload is
      // a truncated (or corrupt) frame — check before reserving anything.
      if (r.remaining() / 4 < count) return DecodeResult::kTruncated;
      out.nodes.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) out.nodes.push_back(r.u32());
      break;
    }
    case MsgType::kReleaseReply:
      out.type = MsgType::kReleaseReply;
      out.freed = r.u32();
      break;
    case MsgType::kQueryReply:
      out.type = MsgType::kQueryReply;
      out.total_nodes = r.u32();
      out.free_nodes = r.u32();
      out.running_jobs = r.u32();
      out.served = r.u64();
      out.allocs = r.u64();
      out.releases = r.u64();
      out.no_fit = r.u64();
      out.idempotent_hits = r.u64();
      out.bad_requests = r.u64();
      out.rejected = r.u64();
      out.timeouts = r.u64();
      break;
    case MsgType::kDrainReply:
      out.type = MsgType::kDrainReply;
      break;
    case MsgType::kErrorReply:
      out.type = MsgType::kErrorReply;
      break;
    default:
      return DecodeResult::kBadType;
  }
  if (!r.ok()) return DecodeResult::kTruncated;
  if (r.remaining() != 0) return DecodeResult::kTrailing;
  return DecodeResult::kOk;
}

}  // namespace commsched::serve
