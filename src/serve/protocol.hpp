// Allocator-service wire protocol (DESIGN.md "Allocator service").
//
// Length-prefixed binary frames over a local stream socket:
//
//   frame   := u32 payload_len (LE) payload
//   payload := u8 msg_type  u64 req_id  <type-specific fields>
//
// The message surface is select-plugin-shaped, mirroring the boundary a
// SLURM select plugin sees (cf. select/bluegene's bg_job_place and the
// colocation wrapper in the related repos): an opaque job descriptor goes
// in (job id, node count, communication class, dominant collective, message
// size, I/O class), an ordered node set plus its Eq. 6 cost comes out.
// Request ids are the idempotency keys: the service remembers recent
// replies, so a client that re-sends a request id after a connection error
// gets the original answer instead of a double allocation.
//
// Decoding is total: any byte sequence produces either a message or a
// DecodeResult error code — never an exception, never a partial write into
// the output struct that the caller might mistake for a message. Framing
// errors (oversized/garbage) are connection-fatal; value errors inside a
// well-formed frame are answered with ServeStatus::kBadRequest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "collectives/schedule.hpp"

namespace commsched::serve {

inline constexpr std::uint32_t kProtocolVersion = 1;
/// Upper bound on one frame's payload. Large enough for a full-machine
/// allocation reply on any tree we build (64k nodes ~ 256 KiB), small
/// enough that a corrupt length field cannot make the reader buffer GBs.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;
/// AllocRequest::allocator value selecting the server's configured policy.
inline constexpr std::uint8_t kServerAllocator = 0xff;

enum class MsgType : std::uint8_t {
  kHello = 1,      ///< version handshake (client -> server)
  kHelloAck = 2,
  kAlloc = 3,      ///< allocate nodes for a job descriptor
  kAllocReply = 4,
  kRelease = 5,    ///< free a job's nodes
  kReleaseReply = 6,
  kQuery = 7,      ///< server/state counters snapshot
  kQueryReply = 8,
  kDrain = 9,      ///< request graceful shutdown
  kDrainReply = 10,
  kErrorReply = 11,  ///< server-side framing error (connection-fatal)
};

enum class ServeStatus : std::uint8_t {
  kOk = 0,
  kNoFit = 1,         ///< cluster cannot satisfy the request right now
  kRejected = 2,      ///< admission queue full — retry later
  kTimeout = 3,       ///< deadline expired before the request was served
  kUnknownJob = 4,    ///< release of a job that holds no nodes
  kDuplicateJob = 5,  ///< alloc of a job id that already holds nodes
  kBadRequest = 6,    ///< malformed values in a well-formed frame
  kDraining = 7,      ///< server is shutting down
};

const char* msg_type_name(MsgType t) noexcept;
const char* serve_status_name(ServeStatus s) noexcept;

/// Client -> server message (tagged by `type`; unrelated fields ignored).
struct Request {
  MsgType type = MsgType::kAlloc;
  std::uint64_t req_id = 0;

  // kAlloc / kRelease
  std::int64_t job = 0;
  // kAlloc: the opaque job descriptor (paper §4 job parameters).
  std::int32_t num_nodes = 0;
  std::uint8_t allocator = kServerAllocator;  ///< AllocatorKind or 0xff
  bool comm_intensive = false;
  bool io_intensive = false;
  Pattern pattern = Pattern::kRecursiveDoubling;
  double msize = double{1 << 20};
  double comm_fraction = 0.5;
  double io_fraction = 0.0;
  /// Per-request deadline in milliseconds from arrival; 0 = server default.
  std::uint32_t deadline_ms = 0;

  // kHello
  std::uint32_t version = kProtocolVersion;
};

/// Server -> client message (tagged by `type`).
struct Reply {
  MsgType type = MsgType::kAllocReply;
  std::uint64_t req_id = 0;
  ServeStatus status = ServeStatus::kOk;

  // kAllocReply (status kOk)
  double cost = 0.0;                   ///< unweighted Eq. 6 candidate cost
  std::vector<std::uint32_t> nodes;    ///< rank r runs on nodes[r]

  // kReleaseReply (status kOk)
  std::uint32_t freed = 0;

  // kQueryReply
  std::uint32_t total_nodes = 0;
  std::uint32_t free_nodes = 0;
  std::uint32_t running_jobs = 0;
  std::uint64_t served = 0;            ///< requests answered by the service
  std::uint64_t allocs = 0;
  std::uint64_t releases = 0;
  std::uint64_t no_fit = 0;
  std::uint64_t idempotent_hits = 0;
  std::uint64_t bad_requests = 0;
  std::uint64_t rejected = 0;          ///< admission-control rejections
  std::uint64_t timeouts = 0;          ///< deadline expiries

  // kHelloAck
  std::uint32_t version = kProtocolVersion;
  std::uint32_t max_frame = static_cast<std::uint32_t>(kMaxFramePayload);
};

enum class DecodeResult : std::uint8_t {
  kOk = 0,
  kNeedMore,    ///< buffer holds a frame prefix only — read more bytes
  kTruncated,   ///< payload ended mid-field
  kOversized,   ///< length prefix exceeds kMaxFramePayload
  kBadType,     ///< unknown or out-of-place message type
  kBadValue,    ///< enum field outside its domain
  kTrailing,    ///< well-formed message followed by extra payload bytes
};

const char* decode_result_name(DecodeResult r) noexcept;

/// The reply type answering a request type (kAlloc -> kAllocReply, ...).
MsgType reply_type_for(MsgType request) noexcept;

/// Append one length-prefixed frame for the message to `out`.
void encode_request(const Request& request, std::vector<std::uint8_t>& out);
void encode_reply(const Reply& reply, std::vector<std::uint8_t>& out);

/// Extract the next frame from `buffer` starting at `offset`. On kOk,
/// `payload` refers into `buffer` and `offset` advances past the frame.
/// kNeedMore leaves `offset` untouched; kOversized is connection-fatal.
DecodeResult peel_frame(std::span<const std::uint8_t> buffer,
                        std::size_t& offset,
                        std::span<const std::uint8_t>& payload);

/// Decode one frame payload. On any error the output struct contents are
/// unspecified but the object is valid; req_id is filled whenever the
/// header decoded, so errors can be answered. Only client -> server types
/// decode as requests and only server -> client types as replies.
DecodeResult decode_request(std::span<const std::uint8_t> payload,
                            Request& out);
DecodeResult decode_reply(std::span<const std::uint8_t> payload, Reply& out);

}  // namespace commsched::serve
