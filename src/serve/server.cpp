#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <span>
#include <utility>

namespace commsched::serve {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Reply quick_reply(MsgType request_type, std::uint64_t req_id,
                  ServeStatus status) {
  Reply r;
  r.type = reply_type_for(request_type);
  r.req_id = req_id;
  r.status = status;
  return r;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Server::Server(const Tree& tree, ServiceOptions service_options,
               ServerOptions options)
    : service_(tree, service_options),
      options_(std::move(options)),
      pool_(options_.threads) {}

Server::~Server() { drain(); }

bool Server::start() {
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    error_ = "invalid socket path: " + options_.socket_path;
    return false;
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = "socket() failed: " + std::string(std::strerror(errno));
    return false;
  }
  ::unlink(options_.socket_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    error_ = "bind(" + options_.socket_path +
             ") failed: " + std::string(std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    error_ = "listen() failed: " + std::string(std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
    return false;
  }
  set_nonblocking(listen_fd_);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::drain() {
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns.swap(conns_);
  }
  // Stop readers (no new admissions), serve what was already admitted,
  // then release the sockets.
  for (const auto& conn : conns)
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
  for (const auto& conn : conns)
    if (conn->reader.joinable()) conn->reader.join();
  pool_.wait_idle();
  for (const auto& conn : conns) {
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  running_.store(false);
  request_drain();
}

void Server::wait_drain_requested() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [this] { return drain_requested_; });
}

void Server::request_drain() {
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drain_requested_ = true;
  }
  drain_cv_.notify_all();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_dropped = connections_dropped_.load();
  s.frames_in = frames_in_.load();
  s.rejected = rejected_.load();
  s.timeouts = timeouts_.load();
  s.decode_errors = decode_errors_.load();
  return s;
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    pollfd p{};
    p.fd = listen_fd_;
    p.events = POLLIN;
    const int ready = ::poll(&p, 1, 100);
    reap_finished_readers();
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    set_nonblocking(fd);
    if (options_.send_buffer_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.send_buffer_bytes,
                   sizeof(options_.send_buffer_bytes));
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(conn);
    }
    connections_accepted_.fetch_add(1);
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void Server::reap_finished_readers() {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (std::size_t i = 0; i < conns_.size();) {
    const std::shared_ptr<Connection>& conn = conns_[i];
    bool settled = conn->reader_done.load();
    if (settled) {
      std::lock_guard<std::mutex> conn_lock(conn->mutex);
      settled = !conn->strand_active && conn->pending.empty();
    }
    if (!settled) {
      ++i;
      continue;
    }
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
    conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  std::vector<std::uint8_t> buf;
  std::size_t offset = 0;
  std::uint32_t idle_ms = 0;
  constexpr int kTickMs = 100;
  Request req;
  while (!stopping_.load() && !conn->dead.load()) {
    pollfd p{};
    p.fd = conn->fd;
    p.events = POLLIN;
    const int ready = ::poll(&p, 1, kTickMs);
    if (ready == 0) {
      idle_ms += static_cast<std::uint32_t>(kTickMs);
      if (options_.idle_timeout_ms > 0 && idle_ms >= options_.idle_timeout_ms) {
        conn->dead.store(true);
        ::shutdown(conn->fd, SHUT_RDWR);
        connections_dropped_.fetch_add(1);
        break;
      }
      continue;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    std::uint8_t chunk[4096];
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n == 0) break;  // peer closed (or drain shut the read side)
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;
    }
    idle_ms = 0;
    buf.insert(buf.end(), chunk, chunk + n);
    bool fatal = false;
    for (;;) {
      std::span<const std::uint8_t> payload;
      const DecodeResult framed = peel_frame(buf, offset, payload);
      if (framed == DecodeResult::kNeedMore) break;
      if (framed == DecodeResult::kOversized) {
        decode_errors_.fetch_add(1);
        write_reply(*conn, quick_reply(MsgType::kHello, /*req_id=*/0,
                                       ServeStatus::kBadRequest));
        fatal = true;
        break;
      }
      frames_in_.fetch_add(1);
      const DecodeResult decoded = decode_request(payload, req);
      if (decoded != DecodeResult::kOk) {
        decode_errors_.fetch_add(1);
        Reply err = quick_reply(MsgType::kHello, req.req_id,
                                ServeStatus::kBadRequest);
        err.type = MsgType::kErrorReply;
        write_reply(*conn, err);
        // A value error sits inside a well-formed frame — the stream is
        // still in sync. Anything else means corruption: close.
        if (decoded != DecodeResult::kBadValue) {
          fatal = true;
          break;
        }
        continue;
      }
      admit(conn, req);
    }
    if (offset > 0) {
      buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(offset));
      offset = 0;
    }
    if (fatal) {
      conn->dead.store(true);
      ::shutdown(conn->fd, SHUT_RDWR);
      connections_dropped_.fetch_add(1);
      break;
    }
  }
  conn->reader_done.store(true);
}

void Server::admit(const std::shared_ptr<Connection>& conn,
                   const Request& request) {
  PendingRequest pending;
  pending.request = request;
  const std::uint32_t deadline_ms = request.deadline_ms != 0
                                        ? request.deadline_ms
                                        : options_.default_deadline_ms;
  pending.deadline_ns =
      deadline_ms != 0
          ? now_ns() + static_cast<std::int64_t>(deadline_ms) * 1000000
          : std::numeric_limits<std::int64_t>::max();
  const std::size_t admitted = pending_total_.fetch_add(1);
  if (admitted >= options_.queue_depth) {
    pending_total_.fetch_sub(1);
    rejected_.fetch_add(1);
    write_reply(*conn, quick_reply(request.type, request.req_id,
                                   ServeStatus::kRejected));
    return;
  }
  bool spawn = false;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->pending.push_back(std::move(pending));
    if (!conn->strand_active) {
      conn->strand_active = true;
      spawn = true;
    }
  }
  if (spawn)
    pool_.submit([this, conn] { run_strand(conn); });
}

void Server::run_strand(std::shared_ptr<Connection> conn) {
  std::vector<PendingRequest> batch;
  Reply reply;
  for (;;) {
    batch.clear();
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      while (conn->pending_head < conn->pending.size() &&
             batch.size() < options_.batch)
        batch.push_back(std::move(conn->pending[conn->pending_head++]));
      if (conn->pending_head == conn->pending.size()) {
        conn->pending.clear();
        conn->pending_head = 0;
      }
      if (batch.empty()) {
        conn->strand_active = false;
        return;
      }
    }
    if (options_.test_delay) options_.test_delay();
    bool drain_after = false;
    for (PendingRequest& item : batch) {
      if (now_ns() > item.deadline_ns) {
        // Expired before service — answered without touching any state,
        // so a client retry with the same request id is safe.
        timeouts_.fetch_add(1);
        reply = quick_reply(item.request.type, item.request.req_id,
                            ServeStatus::kTimeout);
      } else {
        std::lock_guard<std::mutex> service_lock(service_mutex_);
        service_.handle(item.request, reply);
        if (reply.type == MsgType::kQueryReply) {
          reply.rejected = rejected_.load();
          reply.timeouts = timeouts_.load();
        }
      }
      write_reply(*conn, reply);
      if (item.request.type == MsgType::kDrain) drain_after = true;
      pending_total_.fetch_sub(1);
    }
    if (drain_after) request_drain();
  }
}

bool Server::write_reply(Connection& conn, const Reply& reply) {
  std::lock_guard<std::mutex> lock(conn.write_mutex);
  if (conn.fd < 0 || conn.dead.load()) return false;
  conn.write_buf.clear();
  encode_reply(reply, conn.write_buf);
  std::size_t off = 0;
  while (off < conn.write_buf.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.write_buf.data() + off,
               conn.write_buf.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{};
      p.fd = conn.fd;
      p.events = POLLOUT;
      const int ready =
          ::poll(&p, 1, static_cast<int>(options_.write_timeout_ms));
      if (ready > 0) continue;  // writable (or error — send will tell)
    }
    // Stalled past write_timeout_ms or hard error: a slow client must not
    // wedge a strand worker. Drop the connection.
    conn.dead.store(true);
    ::shutdown(conn.fd, SHUT_RDWR);
    connections_dropped_.fetch_add(1);
    return false;
  }
  return true;
}

}  // namespace commsched::serve
