// Socket front-end of the allocator daemon (DESIGN.md "Allocator service").
//
// Concurrency model — strand per connection on the shared ThreadPool:
// a reader thread per connection decodes frames and appends them to that
// connection's FIFO queue; at most one pool task (the "strand") drains a
// given queue at a time, so requests from one client are processed in
// arrival order at ANY worker count. That per-stream FIFO, plus the
// deterministic AllocatorService underneath, is the determinism contract:
// one client's reply stream is bit-identical whether the pool runs 1 or 8
// workers (tests/serve/server_diff_test.cpp). Different connections
// interleave nondeterministically — determinism is per stream, exactly
// like one slurmctld RPC socket.
//
// Admission control: a global bound on queued-but-unserved requests
// (ServerOptions::queue_depth). The reader answers overflow with an
// immediate kRejected reply instead of queueing — bounded memory, and the
// client learns about overload instead of watching latency grow.
//
// Deadlines: each request carries (or inherits) a deadline; the strand
// checks it at dequeue, before touching any allocator state, and answers
// kTimeout for expired requests. A request that got a kTimeout never
// mutated the cluster, so the client can safely retry with the same
// request id.
//
// Slow clients cannot wedge a worker: replies are written with a bounded
// poll(POLLOUT) (write_timeout_ms); a stalled reader gets its connection
// shut down, and a stalled writer trips idle_timeout_ms in the reader.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "util/thread_pool.hpp"

namespace commsched::serve {

struct ServerOptions {
  std::string socket_path;
  /// Strand workers; 0 = ThreadPool::default_thread_count()
  /// (COMMSCHED_THREADS or hardware concurrency).
  int threads = 0;
  /// Max requests admitted (queued or in service) across all connections;
  /// overflow is answered kRejected by the reader thread.
  std::size_t queue_depth = 1024;
  /// Max requests one strand pass takes from its queue before re-checking.
  std::size_t batch = 16;
  /// Deadline for requests that carry deadline_ms == 0; 0 = no deadline.
  std::uint32_t default_deadline_ms = 0;
  /// Reader poll timeout: a connection silent for this long is dropped.
  std::uint32_t idle_timeout_ms = 30000;
  /// Max time a reply write may block on a slow client before the
  /// connection is shut down.
  std::uint32_t write_timeout_ms = 5000;
  int listen_backlog = 64;
  /// When > 0, SO_SNDBUF for accepted sockets (tests shrink it to force
  /// reply-write backpressure).
  int send_buffer_bytes = 0;
  /// Test hook: run once per strand batch before processing (lets tests
  /// hold requests in the queue deterministically). Must be thread-safe.
  std::function<void()> test_delay;
};

/// Monotonic counters, snapshot via Server::stats().
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_dropped = 0;  ///< idle/stalled/corrupt streams
  std::uint64_t frames_in = 0;
  std::uint64_t rejected = 0;       ///< admission-control rejections
  std::uint64_t timeouts = 0;       ///< deadline expiries
  std::uint64_t decode_errors = 0;  ///< malformed frames answered/dropped
};

class Server {
 public:
  Server(const Tree& tree, ServiceOptions service_options,
         ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the accept thread. False on failure (error()).
  bool start();
  /// Stop accepting, shut down connections, serve already-admitted
  /// requests, then release everything. Idempotent.
  void drain();

  /// Block until a client sent kDrain (or `stop` was requested).
  void wait_drain_requested();
  /// Make wait_drain_requested() return (signal handlers, tests).
  void request_drain();

  bool running() const noexcept { return running_.load(); }
  const std::string& error() const noexcept { return error_; }
  ServerStats stats() const;
  /// The underlying service. Only safe to inspect after drain().
  const AllocatorService& service() const noexcept { return service_; }

 private:
  struct PendingRequest {
    Request request;
    /// steady_clock deadline in ns since epoch; INT64_MAX = none.
    std::int64_t deadline_ns = 0;
  };

  struct Connection {
    int fd = -1;
    std::thread reader;
    std::mutex mutex;  // guards pending/strand_active
    std::vector<PendingRequest> pending;
    std::size_t pending_head = 0;
    bool strand_active = false;
    std::atomic<bool> dead{false};
    std::atomic<bool> reader_done{false};
    std::mutex write_mutex;  // serializes whole-frame writes
    std::vector<std::uint8_t> write_buf;
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  /// Admission control: queue the request on its connection's strand or
  /// answer kRejected immediately when queue_depth is exhausted.
  void admit(const std::shared_ptr<Connection>& conn, const Request& request);
  void run_strand(std::shared_ptr<Connection> conn);
  /// Encode + write one reply with bounded blocking; drops the connection
  /// on a stalled client. Returns false if the connection is dead.
  bool write_reply(Connection& conn, const Reply& reply);
  void close_connection(Connection& conn);
  void reap_finished_readers();

  AllocatorService service_;
  ServerOptions options_;
  ThreadPool pool_;
  std::mutex service_mutex_;  // serializes AllocatorService::handle

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::string error_;

  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Connection>> conns_;

  std::atomic<std::size_t> pending_total_{0};

  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  bool drain_requested_ = false;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_dropped_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
};

}  // namespace commsched::serve
