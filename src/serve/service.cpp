#include "serve/service.hpp"

#include <cmath>

#include "core/degradation_model.hpp"
#include "util/assert.hpp"

namespace commsched::serve {

namespace {

/// Reset every reply field to its default for a fresh answer, keeping the
/// node vector's capacity (the server reuses one Reply per strand pass).
void reset_reply(Reply& reply, MsgType type, std::uint64_t req_id) {
  reply.type = type;
  reply.req_id = req_id;
  reply.status = ServeStatus::kOk;
  reply.cost = 0.0;
  reply.nodes.clear();
  reply.freed = 0;
  reply.total_nodes = 0;
  reply.free_nodes = 0;
  reply.running_jobs = 0;
  reply.served = 0;
  reply.allocs = 0;
  reply.releases = 0;
  reply.no_fit = 0;
  reply.idempotent_hits = 0;
  reply.bad_requests = 0;
  reply.rejected = 0;
  reply.timeouts = 0;
  reply.version = kProtocolVersion;
  reply.max_frame = static_cast<std::uint32_t>(kMaxFramePayload);
}

bool valid_fraction(double f) {
  return std::isfinite(f) && f >= 0.0 && f <= 1.0;
}

}  // namespace

AllocatorService::AllocatorService(const Tree& tree, ServiceOptions options)
    : tree_(&tree),
      options_(options),
      state_(tree),
      cache_(std::make_shared<CommCache>(options.base_msize)),
      metric_model_(tree,
                    CostOptions{.hop_bytes = false,
                                .include_candidate =
                                    options.cost_options.include_candidate}),
      auditor_(tree,
               options.audit ? *options.audit : audit_level_from_env()) {}

void AllocatorService::handle(const Request& request, Reply& out) {
  reset_reply(out, reply_type_for(request.type), request.req_id);
  switch (request.type) {
    case MsgType::kHello:
      if (request.version != kProtocolVersion)
        out.status = ServeStatus::kBadRequest;
      break;
    case MsgType::kAlloc:
      handle_alloc(request, out);
      break;
    case MsgType::kRelease:
      handle_release(request, out);
      break;
    case MsgType::kQuery:
      fill_query(out);
      break;
    case MsgType::kDrain:
      break;  // acknowledged; the server performs the drain
    default:
      out.type = MsgType::kErrorReply;
      out.status = ServeStatus::kBadRequest;
      ++counters_.bad_requests;
      break;
  }
  ++counters_.served;
}

void AllocatorService::handle_alloc(const Request& request, Reply& out) {
  if (const Reply* cached = recall(request.req_id)) {
    ++counters_.idempotent_hits;
    out = *cached;
    return;
  }
  Allocator* allocator = allocator_for(request.allocator);
  if (request.job < 0 || request.num_nodes <= 0 || allocator == nullptr ||
      !std::isfinite(request.msize) || request.msize <= 0.0 ||
      !valid_fraction(request.comm_fraction) ||
      !valid_fraction(request.io_fraction) ||
      request.comm_fraction + request.io_fraction > 1.0) {
    out.status = ServeStatus::kBadRequest;
    ++counters_.bad_requests;
    return;
  }
  if (state_.has_job(request.job)) {
    out.status = ServeStatus::kDuplicateJob;
    remember(request.req_id, out);
    return;
  }
  AllocationRequest areq;
  areq.job = request.job;
  areq.num_nodes = request.num_nodes;
  areq.comm_intensive = request.comm_intensive;
  areq.pattern = request.pattern;
  areq.msize = request.msize;
  areq.io_intensive = request.io_intensive;
  areq.comm_fraction = request.comm_fraction;
  areq.io_fraction = request.io_fraction;
  if (!allocator->select_into(state_, areq, nodes_scratch_)) {
    out.status = ServeStatus::kNoFit;
    ++counters_.no_fit;
    remember(request.req_id, out);
    return;
  }
  // Reported metric: the paper's unweighted Eq. 6 candidate cost, priced on
  // the pre-commit state exactly like the simulator's start_job.
  const bool price_comm = request.comm_intensive && request.num_nodes >= 2;
  if (price_comm) {
    const LeafCommProfile& profile = cache_->profile(
        request.pattern, /*ranks_per_node=*/1,
        make_shape_key(*tree_, nodes_scratch_));
    out.cost = metric_model_.candidate_cost(state_, nodes_scratch_,
                                            /*comm_intensive=*/true, profile,
                                            workspace_);
    if (auditor_.enabled())
      auditor_.check_cost(out.cost, request.job, "Eq. 6 cost");
  }
  const LoadUnits load =
      DegradationModel::quantize_load(price_comm, request.comm_fraction);
  state_.allocate(request.job, request.comm_intensive, nodes_scratch_,
                  request.io_intensive, load);
  auditor_.on_allocate(state_, request.job, nodes_scratch_, load);
  out.nodes.reserve(nodes_scratch_.size());
  for (const NodeId n : nodes_scratch_)
    out.nodes.push_back(static_cast<std::uint32_t>(n));
  ++counters_.allocs;
  remember(request.req_id, out);
}

void AllocatorService::handle_release(const Request& request, Reply& out) {
  if (const Reply* cached = recall(request.req_id)) {
    ++counters_.idempotent_hits;
    out = *cached;
    return;
  }
  if (request.job < 0) {
    out.status = ServeStatus::kBadRequest;
    ++counters_.bad_requests;
    return;
  }
  if (!state_.has_job(request.job)) {
    out.status = ServeStatus::kUnknownJob;
    remember(request.req_id, out);
    return;
  }
  state_.release_into(request.job, nodes_scratch_);
  auditor_.on_release(state_, request.job, nodes_scratch_);
  out.freed = static_cast<std::uint32_t>(nodes_scratch_.size());
  ++counters_.releases;
  remember(request.req_id, out);
}

void AllocatorService::fill_query(Reply& out) const {
  out.total_nodes = static_cast<std::uint32_t>(state_.total_nodes());
  out.free_nodes = static_cast<std::uint32_t>(state_.total_free());
  out.running_jobs = static_cast<std::uint32_t>(state_.job_count());
  out.served = counters_.served;
  out.allocs = counters_.allocs;
  out.releases = counters_.releases;
  out.no_fit = counters_.no_fit;
  out.idempotent_hits = counters_.idempotent_hits;
  out.bad_requests = counters_.bad_requests;
  // rejected/timeouts happen in the server layer, which overlays them.
}

Allocator* AllocatorService::allocator_for(std::uint8_t code) {
  AllocatorKind kind = options_.default_allocator;
  if (code != kServerAllocator) {
    if (code > static_cast<std::uint8_t>(AllocatorKind::kSa)) return nullptr;
    kind = static_cast<AllocatorKind>(code);
  }
  auto& slot = allocators_[static_cast<std::size_t>(kind)];
  if (!slot)
    slot = make_allocator(kind, options_.cost_options, cache_, options_.sa);
  return slot.get();
}

void AllocatorService::remember(std::uint64_t req_id, const Reply& reply) {
  if (options_.idempotency_window == 0) return;
  const auto [it, inserted] = replay_.try_emplace(req_id, reply);
  if (!inserted) return;  // keep the first answer for a duplicate id
  replay_order_.push_back(req_id);
  while (replay_order_.size() > options_.idempotency_window) {
    replay_.erase(replay_order_.front());
    replay_order_.pop_front();
  }
}

const Reply* AllocatorService::recall(std::uint64_t req_id) const {
  const auto it = replay_.find(req_id);
  return it == replay_.end() ? nullptr : &it->second;
}

}  // namespace commsched::serve
