// In-process core of the allocator daemon (DESIGN.md "Allocator service").
//
// AllocatorService is the deterministic request -> reply state machine the
// socket server (serve/server.hpp) fronts: one immutable Tree, one
// ClusterState, one warm CommCache and one allocator instance per
// registered policy, answering the select-plugin-shaped protocol messages
// (serve/protocol.hpp). It contains *no* networking, no clocks and no
// threads, which is what makes the daemon's determinism contract testable:
// replaying the same request sequence into a fresh service — in process or
// across a daemon restart — produces bit-identical replies, and every
// reply equals what an inline Allocator::select() plus
// CostModel::candidate_cost() on the same state would return (pinned by
// tests/serve/server_diff_test.cpp).
//
// Idempotency: alloc/release request ids are remembered in a bounded FIFO
// window; a re-sent id inside the window returns the stored reply without
// touching the cluster state, so clients can retry over a broken
// connection without double-allocating. TIMEOUT/REJECTED answers are
// produced by the server *before* the service runs and are never cached —
// a retried id gets the real answer.
//
// Concurrency: handle() is NOT internally synchronized. The server
// serializes calls (the cluster state is one shared resource, exactly like
// slurmctld's select plugin lock); everything reachable from handle() is
// audited by the contracts gate's thread-safety family.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "audit/auditor.hpp"
#include "collectives/comm_cache.hpp"
#include "core/allocator_factory.hpp"
#include "core/cost_model.hpp"
#include "serve/protocol.hpp"
#include "topology/tree.hpp"

namespace commsched::serve {

struct ServiceOptions {
  /// Policy answering requests with allocator == kServerAllocator.
  AllocatorKind default_allocator = AllocatorKind::kAdaptive;
  /// Pricing options handed to the allocators (hop-bytes weighting like
  /// SchedOptions); reply costs always report the unweighted Eq. 6 value.
  CostOptions cost_options{.hop_bytes = true};
  SaOptions sa{};
  double base_msize = double{1 << 20};
  /// Replies remembered for idempotent retry, FIFO-evicted. Retries must
  /// arrive within this many subsequent alloc/release requests.
  std::size_t idempotency_window = 1u << 16;
  /// Runtime invariant auditing; unset reads COMMSCHED_AUDIT.
  std::optional<AuditLevel> audit{};
};

struct ServiceCounters {
  std::uint64_t served = 0;  ///< requests answered (including cached hits)
  std::uint64_t allocs = 0;
  std::uint64_t releases = 0;
  std::uint64_t no_fit = 0;
  std::uint64_t idempotent_hits = 0;
  std::uint64_t bad_requests = 0;
};

class AllocatorService {
 public:
  explicit AllocatorService(const Tree& tree, ServiceOptions options = {});

  /// Answer one request. Deterministic in the request sequence; never
  /// throws on any decodable request (invalid values -> kBadRequest).
  /// Not internally synchronized — callers serialize.
  void handle(const Request& request, Reply& out);

  const ServiceCounters& counters() const noexcept { return counters_; }
  const ClusterState& state() const noexcept { return state_; }
  const Tree& tree() const noexcept { return *tree_; }
  const ServiceOptions& options() const noexcept { return options_; }

 private:
  void handle_alloc(const Request& request, Reply& out);
  void handle_release(const Request& request, Reply& out);
  void fill_query(Reply& out) const;
  /// Allocator for a request's policy byte; nullptr on an invalid byte.
  Allocator* allocator_for(std::uint8_t code);
  void remember(std::uint64_t req_id, const Reply& reply);
  /// Stored reply for a seen request id, nullptr otherwise.
  const Reply* recall(std::uint64_t req_id) const;

  const Tree* tree_;
  ServiceOptions options_;
  ClusterState state_;
  std::shared_ptr<CommCache> cache_;
  CostModel metric_model_;  ///< unweighted Eq. 6 (the reported cost)
  StateAuditor auditor_;
  CostWorkspace workspace_;
  std::array<std::unique_ptr<Allocator>,
             static_cast<std::size_t>(AllocatorKind::kSa) + 1>
      allocators_;  // lazily constructed per kind
  std::vector<NodeId> nodes_scratch_;

  std::unordered_map<std::uint64_t, Reply> replay_;
  std::deque<std::uint64_t> replay_order_;  // FIFO eviction
  ServiceCounters counters_;
};

}  // namespace commsched::serve
