#include "slurm/conf.hpp"

#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace commsched {

namespace {

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            int lineno) {
  throw ParseError("slurm.conf:" + std::to_string(lineno) +
                   ": unsupported value '" + value + "' for " + key);
}

constexpr const char* kSaParams =
    "sa, sa_budget=<int>, sa_seed=<int>, sa_t0=<float>, sa_cooling=<float>, "
    "sa_patience=<int>, sa_proposal=uniform|locality, sa_verify=<int>";

/// One SelectTypeParameters token: `sa` selects the SA policy, the sa_*
/// knobs map onto SaOptions.
void apply_select_param(SlurmConf& conf, const std::string& tok, int lineno) {
  if (tok == "sa") {
    conf.sched.allocator = AllocatorKind::kSa;
    return;
  }
  const auto eq = tok.find('=');
  if (eq == std::string::npos)
    throw ParseError("slurm.conf:" + std::to_string(lineno) +
                     ": unknown SelectTypeParameters token '" + tok +
                     "' (expected " + kSaParams + ")");
  const std::string pkey(trim(tok.substr(0, eq)));
  const std::string pval(trim(tok.substr(eq + 1)));
  SaOptions& sa = conf.sched.sa;
  if (pkey == "sa_budget") {
    const auto v = parse_int(pval);
    if (!v) bad_value(pkey, pval, lineno);
    sa.budget = static_cast<int>(*v);
  } else if (pkey == "sa_seed") {
    const auto v = parse_int(pval);
    if (!v) bad_value(pkey, pval, lineno);
    sa.seed = static_cast<std::uint64_t>(*v);
  } else if (pkey == "sa_t0") {
    const auto v = parse_double(pval);
    if (!v || *v < 0.0) bad_value(pkey, pval, lineno);
    sa.init_temp_frac = *v;
  } else if (pkey == "sa_cooling") {
    const auto v = parse_double(pval);
    if (!v || *v <= 0.0 || *v > 1.0) bad_value(pkey, pval, lineno);
    sa.cooling = *v;
  } else if (pkey == "sa_patience") {
    const auto v = parse_int(pval);
    if (!v || *v < 0) bad_value(pkey, pval, lineno);
    sa.patience = static_cast<int>(*v);
  } else if (pkey == "sa_proposal") {
    const auto kind = sa_proposal_kind_from_string(pval);
    if (!kind) bad_value(pkey, pval, lineno);
    sa.proposal = *kind;
  } else if (pkey == "sa_verify") {
    const auto v = parse_int(pval);
    if (!v || *v < 0) bad_value(pkey, pval, lineno);
    sa.verify_stride = static_cast<int>(*v);
  } else {
    throw ParseError("slurm.conf:" + std::to_string(lineno) +
                     ": unknown SelectTypeParameters token '" + tok +
                     "' (expected " + kSaParams + ")");
  }
}

constexpr const char* kAllocdParams =
    "socket=<path>, threads=<int>, queue=<int>, batch=<int>, "
    "deadline_ms=<int>, idle_ms=<int>, write_ms=<int>";

/// One AllocdParameters token: allocator-daemon knobs (ServeConf).
void apply_allocd_param(SlurmConf& conf, const std::string& tok, int lineno) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos)
    throw ParseError("slurm.conf:" + std::to_string(lineno) +
                     ": unknown AllocdParameters token '" + tok +
                     "' (expected " + kAllocdParams + ")");
  const std::string pkey(trim(tok.substr(0, eq)));
  const std::string pval(trim(tok.substr(eq + 1)));
  ServeConf& serve = conf.serve;
  if (pkey == "socket") {
    if (pval.empty()) bad_value(pkey, pval, lineno);
    serve.socket_path = pval;
  } else if (pkey == "threads") {
    const auto v = parse_int(pval);
    if (!v || *v < 0) bad_value(pkey, pval, lineno);
    serve.threads = static_cast<int>(*v);
  } else if (pkey == "queue") {
    const auto v = parse_int(pval);
    if (!v || *v < 1) bad_value(pkey, pval, lineno);
    serve.queue_depth = static_cast<int>(*v);
  } else if (pkey == "batch") {
    const auto v = parse_int(pval);
    if (!v || *v < 1) bad_value(pkey, pval, lineno);
    serve.batch = static_cast<int>(*v);
  } else if (pkey == "deadline_ms") {
    const auto v = parse_int(pval);
    if (!v || *v < 0) bad_value(pkey, pval, lineno);
    serve.default_deadline_ms = static_cast<int>(*v);
  } else if (pkey == "idle_ms") {
    const auto v = parse_int(pval);
    if (!v || *v < 0) bad_value(pkey, pval, lineno);
    serve.idle_timeout_ms = static_cast<int>(*v);
  } else if (pkey == "write_ms") {
    const auto v = parse_int(pval);
    if (!v || *v < 0) bad_value(pkey, pval, lineno);
    serve.write_timeout_ms = static_cast<int>(*v);
  } else {
    throw ParseError("slurm.conf:" + std::to_string(lineno) +
                     ": unknown AllocdParameters token '" + tok +
                     "' (expected " + kAllocdParams + ")");
  }
}

}  // namespace

SlurmConf parse_slurm_conf(std::istream& in) {
  SlurmConf conf;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto t = trim(line);
    if (t.empty()) continue;
    const auto eq = t.find('=');
    if (eq == std::string_view::npos)
      throw ParseError("slurm.conf:" + std::to_string(lineno) +
                       ": expected Key=Value, got '" + std::string(t) + "'");
    const std::string key(trim(t.substr(0, eq)));
    const std::string value(trim(t.substr(eq + 1)));

    if (key == "SchedulerType") {
      if (value == "sched/backfill") conf.sched.easy_backfill = true;
      else if (value == "sched/builtin") conf.sched.easy_backfill = false;
      else bad_value(key, value, lineno);
    } else if (key == "SelectType") {
      if (value != "select/linear") bad_value(key, value, lineno);
    } else if (key == "TopologyPlugin") {
      if (value == "topology/tree") conf.topology_aware = true;
      else if (value == "topology/none") conf.topology_aware = false;
      else bad_value(key, value, lineno);
    } else if (key == "PriorityType") {
      if (value == "priority/fifo")
        conf.sched.queue_policy = QueuePolicy::kFifo;
      else if (value == "priority/sjf")
        conf.sched.queue_policy = QueuePolicy::kShortestJobFirst;
      else if (value == "priority/smallest")
        conf.sched.queue_policy = QueuePolicy::kSmallestJobFirst;
      else if (value == "priority/colocation")
        conf.sched.queue_policy = QueuePolicy::kColocation;
      else bad_value(key, value, lineno);
    } else if (key == "JobAware") {
      const auto kind = allocator_kind_from_string(value);
      if (!kind)
        throw ParseError("slurm.conf:" + std::to_string(lineno) +
                         ": unsupported value '" + value +
                         "' for JobAware (expected one of " +
                         allocator_kind_names() + ")");
      conf.sched.allocator = *kind;
    } else if (key == "SelectTypeParameters") {
      for (const auto& raw : split(value, ',')) {
        const std::string tok(trim(raw));
        if (!tok.empty()) apply_select_param(conf, tok, lineno);
      }
    } else if (key == "AllocdParameters") {
      for (const auto& raw : split(value, ',')) {
        const std::string tok(trim(raw));
        if (!tok.empty()) apply_allocd_param(conf, tok, lineno);
      }
    } else if (key == "BackfillDepth") {
      const auto depth = parse_int(value);
      if (!depth || *depth < 1) bad_value(key, value, lineno);
      conf.sched.backfill_depth = static_cast<int>(*depth);
    } else if (key == "EnforceWallTime") {
      if (value == "yes") conf.sched.enforce_walltime = true;
      else if (value == "no") conf.sched.enforce_walltime = false;
      else bad_value(key, value, lineno);
    }
    // Unrecognized keys: silently accepted, like real slurm.conf parsing
    // of plugin-specific options.
  }
  return conf;
}

SlurmConf load_slurm_conf(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw ParseError("cannot open slurm.conf '" + path + "'");
  return parse_slurm_conf(f);
}

std::string write_slurm_conf(const SlurmConf& conf) {
  std::ostringstream out;
  out << "SchedulerType="
      << (conf.sched.easy_backfill ? "sched/backfill" : "sched/builtin")
      << "\n";
  out << "SelectType=select/linear\n";
  out << "TopologyPlugin="
      << (conf.topology_aware ? "topology/tree" : "topology/none") << "\n";
  switch (conf.sched.queue_policy) {
    case QueuePolicy::kFifo: out << "PriorityType=priority/fifo\n"; break;
    case QueuePolicy::kShortestJobFirst:
      out << "PriorityType=priority/sjf\n";
      break;
    case QueuePolicy::kSmallestJobFirst:
      out << "PriorityType=priority/smallest\n";
      break;
    case QueuePolicy::kColocation:
      out << "PriorityType=priority/colocation\n";
      break;
  }
  out << "JobAware=" << allocator_kind_name(conf.sched.allocator) << "\n";
  // SelectTypeParameters: the `sa` selector rides on JobAware above; the
  // knobs are emitted only when they differ from the defaults, so a
  // write/parse round trip reproduces the SaOptions exactly.
  {
    const SaOptions def{};
    const SaOptions& sa = conf.sched.sa;
    std::ostringstream params;
    const char* sep = "";
    const auto add = [&](const std::string& token) {
      params << sep << token;
      sep = ",";
    };
    if (conf.sched.allocator == AllocatorKind::kSa) add("sa");
    if (sa.budget != def.budget) add("sa_budget=" + std::to_string(sa.budget));
    if (sa.seed != def.seed) add("sa_seed=" + std::to_string(sa.seed));
    if (sa.init_temp_frac != def.init_temp_frac) {
      std::ostringstream v;
      v.precision(17);
      v << "sa_t0=" << sa.init_temp_frac;
      add(v.str());
    }
    if (sa.cooling != def.cooling) {
      std::ostringstream v;
      v.precision(17);
      v << "sa_cooling=" << sa.cooling;
      add(v.str());
    }
    if (sa.patience != def.patience)
      add("sa_patience=" + std::to_string(sa.patience));
    if (sa.proposal != def.proposal)
      add(std::string("sa_proposal=") + sa_proposal_kind_name(sa.proposal));
    if (sa.verify_stride != def.verify_stride)
      add("sa_verify=" + std::to_string(sa.verify_stride));
    const std::string rendered = params.str();
    if (!rendered.empty()) out << "SelectTypeParameters=" << rendered << "\n";
  }
  // AllocdParameters: daemon knobs, emitted only when they differ from the
  // defaults, so a write/parse round trip reproduces the ServeConf exactly.
  {
    const ServeConf def{};
    const ServeConf& serve = conf.serve;
    std::ostringstream params;
    const char* sep = "";
    const auto add = [&](const std::string& token) {
      params << sep << token;
      sep = ",";
    };
    if (serve.socket_path != def.socket_path)
      add("socket=" + serve.socket_path);
    if (serve.threads != def.threads)
      add("threads=" + std::to_string(serve.threads));
    if (serve.queue_depth != def.queue_depth)
      add("queue=" + std::to_string(serve.queue_depth));
    if (serve.batch != def.batch) add("batch=" + std::to_string(serve.batch));
    if (serve.default_deadline_ms != def.default_deadline_ms)
      add("deadline_ms=" + std::to_string(serve.default_deadline_ms));
    if (serve.idle_timeout_ms != def.idle_timeout_ms)
      add("idle_ms=" + std::to_string(serve.idle_timeout_ms));
    if (serve.write_timeout_ms != def.write_timeout_ms)
      add("write_ms=" + std::to_string(serve.write_timeout_ms));
    const std::string rendered = params.str();
    if (!rendered.empty()) out << "AllocdParameters=" << rendered << "\n";
  }
  out << "BackfillDepth=" << conf.sched.backfill_depth << "\n";
  out << "EnforceWallTime=" << (conf.sched.enforce_walltime ? "yes" : "no")
      << "\n";
  return out.str();
}

}  // namespace commsched
