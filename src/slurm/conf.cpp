#include "slurm/conf.hpp"

#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace commsched {

namespace {

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            int lineno) {
  throw ParseError("slurm.conf:" + std::to_string(lineno) +
                   ": unsupported value '" + value + "' for " + key);
}

}  // namespace

SlurmConf parse_slurm_conf(std::istream& in) {
  SlurmConf conf;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto t = trim(line);
    if (t.empty()) continue;
    const auto eq = t.find('=');
    if (eq == std::string_view::npos)
      throw ParseError("slurm.conf:" + std::to_string(lineno) +
                       ": expected Key=Value, got '" + std::string(t) + "'");
    const std::string key(trim(t.substr(0, eq)));
    const std::string value(trim(t.substr(eq + 1)));

    if (key == "SchedulerType") {
      if (value == "sched/backfill") conf.sched.easy_backfill = true;
      else if (value == "sched/builtin") conf.sched.easy_backfill = false;
      else bad_value(key, value, lineno);
    } else if (key == "SelectType") {
      if (value != "select/linear") bad_value(key, value, lineno);
    } else if (key == "TopologyPlugin") {
      if (value == "topology/tree") conf.topology_aware = true;
      else if (value == "topology/none") conf.topology_aware = false;
      else bad_value(key, value, lineno);
    } else if (key == "PriorityType") {
      if (value == "priority/fifo")
        conf.sched.queue_policy = QueuePolicy::kFifo;
      else if (value == "priority/sjf")
        conf.sched.queue_policy = QueuePolicy::kShortestJobFirst;
      else if (value == "priority/smallest")
        conf.sched.queue_policy = QueuePolicy::kSmallestJobFirst;
      else if (value == "priority/colocation")
        conf.sched.queue_policy = QueuePolicy::kColocation;
      else bad_value(key, value, lineno);
    } else if (key == "JobAware") {
      const auto kind = allocator_kind_from_string(value);
      if (!kind) bad_value(key, value, lineno);
      conf.sched.allocator = *kind;
    } else if (key == "BackfillDepth") {
      const auto depth = parse_int(value);
      if (!depth || *depth < 1) bad_value(key, value, lineno);
      conf.sched.backfill_depth = static_cast<int>(*depth);
    } else if (key == "EnforceWallTime") {
      if (value == "yes") conf.sched.enforce_walltime = true;
      else if (value == "no") conf.sched.enforce_walltime = false;
      else bad_value(key, value, lineno);
    }
    // Unrecognized keys: silently accepted, like real slurm.conf parsing
    // of plugin-specific options.
  }
  return conf;
}

SlurmConf load_slurm_conf(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw ParseError("cannot open slurm.conf '" + path + "'");
  return parse_slurm_conf(f);
}

std::string write_slurm_conf(const SlurmConf& conf) {
  std::ostringstream out;
  out << "SchedulerType="
      << (conf.sched.easy_backfill ? "sched/backfill" : "sched/builtin")
      << "\n";
  out << "SelectType=select/linear\n";
  out << "TopologyPlugin="
      << (conf.topology_aware ? "topology/tree" : "topology/none") << "\n";
  switch (conf.sched.queue_policy) {
    case QueuePolicy::kFifo: out << "PriorityType=priority/fifo\n"; break;
    case QueuePolicy::kShortestJobFirst:
      out << "PriorityType=priority/sjf\n";
      break;
    case QueuePolicy::kSmallestJobFirst:
      out << "PriorityType=priority/smallest\n";
      break;
    case QueuePolicy::kColocation:
      out << "PriorityType=priority/colocation\n";
      break;
  }
  out << "JobAware=" << allocator_kind_name(conf.sched.allocator) << "\n";
  out << "BackfillDepth=" << conf.sched.backfill_depth << "\n";
  out << "EnforceWallTime=" << (conf.sched.enforce_walltime ? "yes" : "no")
      << "\n";
  return out.str();
}

}  // namespace commsched
