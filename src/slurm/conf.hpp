// slurm.conf subset — the configuration surface the paper's deployment
// touches (§3.1, §5.2): the scheduler plugin, the node-selection plugin,
// the topology plugin, and our JOBAWARE job-aware switch, plus a few knobs
// that map onto SchedOptions.
//
// Recognized keys (case-sensitive, Key=Value, '#' comments):
//   SchedulerType      = sched/backfill | sched/builtin
//   SelectType         = select/linear            (only supported value)
//   TopologyPlugin     = topology/tree | topology/none
//   PriorityType       = priority/fifo | priority/sjf | priority/smallest |
//                        priority/colocation
//   JobAware           = any registered policy name (default, greedy,
//                        balanced, adaptive, exclusive, io_aware, sa)
//   SelectTypeParameters = comma list tuning the sa policy: `sa` selects it
//                        (same as JobAware=sa); sa_budget=<int>,
//                        sa_seed=<int>, sa_t0=<float>, sa_cooling=<float>,
//                        sa_patience=<int>, sa_proposal=uniform|locality,
//                        sa_verify=<int> map onto SaOptions
//   BackfillDepth      = <int>
//   EnforceWallTime    = yes | no
//   AllocdParameters   = comma list configuring the allocator daemon
//                        (tools/allocd, src/serve): socket=<path>,
//                        threads=<int>, queue=<int>, batch=<int>,
//                        deadline_ms=<int>, idle_ms=<int>, write_ms=<int>
// Unknown keys are ignored (slurm.conf carries dozens we do not model).
#pragma once

#include <iosfwd>
#include <string>

#include "sched/simulator.hpp"

namespace commsched {

/// AllocdParameters: knobs for the allocator-as-a-service daemon. Defaults
/// mirror serve::ServerOptions so an empty key is the stock daemon.
struct ServeConf {
  std::string socket_path;      ///< socket=<path>; empty = daemon default
  int threads = 0;              ///< 0 = COMMSCHED_THREADS / hw concurrency
  int queue_depth = 1024;       ///< admission bound (queue=<int>)
  int batch = 16;               ///< max requests per strand pass
  int default_deadline_ms = 0;  ///< deadline for requests that carry none
  int idle_timeout_ms = 30000;  ///< drop connections silent this long
  int write_timeout_ms = 5000;  ///< drop clients stalling reply writes
};

struct SlurmConf {
  SchedOptions sched;          ///< derived scheduling options
  bool topology_aware = true;  ///< TopologyPlugin=topology/tree
  ServeConf serve;             ///< AllocdParameters (allocator daemon)
};

/// Parse slurm.conf text. Throws ParseError on malformed lines or
/// unsupported values of recognized keys.
SlurmConf parse_slurm_conf(std::istream& in);

/// Parse from disk. Throws ParseError if unreadable.
SlurmConf load_slurm_conf(const std::string& path);

/// Render back to slurm.conf text.
std::string write_slurm_conf(const SlurmConf& conf);

}  // namespace commsched
