// slurm.conf subset — the configuration surface the paper's deployment
// touches (§3.1, §5.2): the scheduler plugin, the node-selection plugin,
// the topology plugin, and our JOBAWARE job-aware switch, plus a few knobs
// that map onto SchedOptions.
//
// Recognized keys (case-sensitive, Key=Value, '#' comments):
//   SchedulerType      = sched/backfill | sched/builtin
//   SelectType         = select/linear            (only supported value)
//   TopologyPlugin     = topology/tree | topology/none
//   PriorityType       = priority/fifo | priority/sjf | priority/smallest |
//                        priority/colocation
//   JobAware           = any registered policy name (default, greedy,
//                        balanced, adaptive, exclusive, io_aware, sa)
//   SelectTypeParameters = comma list tuning the sa policy: `sa` selects it
//                        (same as JobAware=sa); sa_budget=<int>,
//                        sa_seed=<int>, sa_t0=<float>, sa_cooling=<float>,
//                        sa_patience=<int>, sa_proposal=uniform|locality,
//                        sa_verify=<int> map onto SaOptions
//   BackfillDepth      = <int>
//   EnforceWallTime    = yes | no
// Unknown keys are ignored (slurm.conf carries dozens we do not model).
#pragma once

#include <iosfwd>
#include <string>

#include "sched/simulator.hpp"

namespace commsched {

struct SlurmConf {
  SchedOptions sched;          ///< derived scheduling options
  bool topology_aware = true;  ///< TopologyPlugin=topology/tree
};

/// Parse slurm.conf text. Throws ParseError on malformed lines or
/// unsupported values of recognized keys.
SlurmConf parse_slurm_conf(std::istream& in);

/// Parse from disk. Throws ParseError if unreadable.
SlurmConf load_slurm_conf(const std::string& path);

/// Render back to slurm.conf text.
std::string write_slurm_conf(const SlurmConf& conf);

}  // namespace commsched
