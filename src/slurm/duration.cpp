#include "slurm/duration.hpp"

#include <cmath>
#include <string>

#include "util/strings.hpp"

namespace commsched {

std::optional<double> parse_slurm_duration(std::string_view text) {
  const auto t = trim(text);
  if (t == "UNLIMITED" || t == "INFINITE")
    return 365.0 * 24.0 * 3600.0;

  // Optional "D-" prefix.
  double days = 0.0;
  std::string_view rest = t;
  if (const auto dash = t.find('-'); dash != std::string_view::npos) {
    const auto d = parse_int(t.substr(0, dash));
    if (!d || *d < 0) return std::nullopt;
    days = static_cast<double>(*d);
    rest = t.substr(dash + 1);
    if (rest.empty()) return std::nullopt;
  }
  const bool has_days = rest.data() != t.data();

  const auto fields = split(std::string(rest), ':');
  if (fields.size() > 3) return std::nullopt;
  long long parts[3] = {0, 0, 0};
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const auto v = parse_int(fields[i]);
    if (!v || *v < 0) return std::nullopt;
    parts[i] = *v;
  }

  double seconds = days * 86400.0;
  if (has_days) {
    // D-HH[:MM[:SS]] — fields are hours-first.
    seconds += static_cast<double>(parts[0]) * 3600.0 +
               static_cast<double>(parts[1]) * 60.0 +
               static_cast<double>(parts[2]);
  } else if (fields.size() == 1) {
    seconds += static_cast<double>(parts[0]) * 60.0;  // "MM"
  } else if (fields.size() == 2) {
    seconds += static_cast<double>(parts[0]) * 60.0 +
               static_cast<double>(parts[1]);  // "MM:SS"
  } else {
    seconds += static_cast<double>(parts[0]) * 3600.0 +
               static_cast<double>(parts[1]) * 60.0 +
               static_cast<double>(parts[2]);  // "HH:MM:SS"
  }
  if (seconds <= 0.0) return std::nullopt;
  return seconds;
}

std::string format_slurm_duration(double seconds) {
  auto total = static_cast<long long>(std::llround(seconds));
  if (total < 0) total = 0;
  const long long days = total / 86400;
  total %= 86400;
  const long long h = total / 3600;
  const long long m = (total % 3600) / 60;
  const long long s = total % 60;
  char buf[48];
  if (days > 0)
    std::snprintf(buf, sizeof buf, "%lld-%02lld:%02lld:%02lld", days, h, m, s);
  else
    std::snprintf(buf, sizeof buf, "%02lld:%02lld:%02lld", h, m, s);
  return buf;
}

}  // namespace commsched
