// SLURM time-limit grammar (the sbatch --time formats):
//   "MM", "MM:SS", "HH:MM:SS", "D-HH", "D-HH:MM", "D-HH:MM:SS"
// plus the special values "0" (no limit here: rejected) and "UNLIMITED".
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace commsched {

/// Parse a SLURM duration into seconds. std::nullopt on malformed input or
/// non-positive results. "UNLIMITED"/"INFINITE" map to a year.
std::optional<double> parse_slurm_duration(std::string_view text);

/// Render seconds in SLURM's canonical "D-HH:MM:SS" / "HH:MM:SS" form.
std::string format_slurm_duration(double seconds);

}  // namespace commsched
