#include "slurm/sbatch.hpp"

#include <fstream>
#include <sstream>

#include "slurm/duration.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

namespace commsched {

namespace {

std::optional<Pattern> pattern_from_string(std::string_view s) {
  if (s == "RD") return Pattern::kRecursiveDoubling;
  if (s == "RHVD") return Pattern::kRecursiveHalvingVD;
  if (s == "Binomial") return Pattern::kBinomial;
  if (s == "Ring") return Pattern::kRing;
  if (s == "Alltoall") return Pattern::kPairwiseAlltoall;
  return std::nullopt;
}

// Normalize "-N 4" / "--nodes 4" / "--nodes=4" into (key, value) form.
struct Directive {
  std::string key;
  std::string value;
};

std::optional<Directive> parse_directive(std::string_view line, int lineno) {
  auto rest = trim(line);
  if (!starts_with(rest, "#SBATCH")) return std::nullopt;
  rest = trim(rest.substr(7));
  if (rest.empty())
    throw ParseError("sbatch:" + std::to_string(lineno) + ": empty #SBATCH");
  Directive d;
  if (starts_with(rest, "--")) {
    const auto eq = rest.find('=');
    const auto sp = rest.find(' ');
    const auto cut = std::min(eq, sp);
    d.key = std::string(rest.substr(2, cut == std::string_view::npos
                                           ? std::string_view::npos
                                           : cut - 2));
    if (cut != std::string_view::npos)
      d.value = std::string(trim(rest.substr(cut + 1)));
  } else if (starts_with(rest, "-") && rest.size() >= 2) {
    const char flag = rest[1];
    switch (flag) {
      case 'J': d.key = "job-name"; break;
      case 'N': d.key = "nodes"; break;
      case 't': d.key = "time"; break;
      default:
        return std::nullopt;  // unknown short flag: ignore like sbatch
    }
    d.value = std::string(trim(rest.substr(2)));
  } else {
    throw ParseError("sbatch:" + std::to_string(lineno) +
                     ": malformed directive '" + std::string(rest) + "'");
  }
  return d;
}

// One comma-separated clause of the comment annotation:
//   compute | comm:<PATTERN>[:frac[:msize]] | io:<frac>
void apply_comment_clause(SbatchJob& job, const std::string& clause,
                          int lineno) {
  const auto fields = split(clause, ':');
  if (fields[0] == "compute") {
    job.record.comm_intensive = false;
    job.record.comm_fraction = 0.0;
    return;
  }
  if (fields[0] == "io") {
    if (fields.size() != 2)
      throw ParseError("sbatch:" + std::to_string(lineno) +
                       ": io clause is io:<fraction>");
    const auto frac = parse_double(fields[1]);
    if (!frac || *frac < 0.0 || *frac > 1.0)
      throw ParseError("sbatch:" + std::to_string(lineno) +
                       ": io fraction must be in [0,1]");
    job.record.io_intensive = *frac > 0.0;
    job.record.io_fraction = *frac;
    return;
  }
  if (fields[0] != "comm")
    return;  // unrelated comment text: not ours to interpret
  if (fields.size() < 2)
    throw ParseError("sbatch:" + std::to_string(lineno) +
                     ": comm comment needs a pattern (comm:<PATTERN>[:frac[:msize]])");
  const auto pattern = pattern_from_string(fields[1]);
  if (!pattern)
    throw ParseError("sbatch:" + std::to_string(lineno) +
                     ": unknown pattern '" + fields[1] + "'");
  job.record.comm_intensive = true;
  job.record.pattern = *pattern;
  job.record.comm_fraction = 0.5;
  if (fields.size() >= 3) {
    const auto frac = parse_double(fields[2]);
    if (!frac || *frac < 0.0 || *frac > 1.0)
      throw ParseError("sbatch:" + std::to_string(lineno) +
                       ": comm fraction must be in [0,1]");
    job.record.comm_fraction = *frac;
  }
  if (fields.size() >= 4) {
    const auto msize = parse_double(fields[3]);
    if (!msize || *msize <= 0.0)
      throw ParseError("sbatch:" + std::to_string(lineno) +
                       ": msize must be positive");
    job.record.msize = *msize;
  }
}

void apply_comment(SbatchJob& job, const std::string& value, int lineno) {
  for (const auto& clause : split(value, ','))
    apply_comment_clause(job, clause, lineno);
  if (job.record.comm_fraction + job.record.io_fraction > 1.0)
    throw ParseError("sbatch:" + std::to_string(lineno) +
                     ": comm and io fractions exceed the runtime");
}

}  // namespace

SbatchJob parse_sbatch_script(std::istream& in) {
  SbatchJob job;
  job.record.walltime = 3600.0;  // sbatch default when --time is absent
  bool saw_nodes = false;

  std::string line;
  int lineno = 0;
  bool past_header = false;
  while (std::getline(in, line)) {
    ++lineno;
    const auto t = trim(line);
    if (lineno == 1 && starts_with(t, "#!")) continue;
    if (t.empty()) continue;
    if (!starts_with(t, "#")) {
      past_header = true;  // script body begins; sbatch stops scanning
      continue;
    }
    if (past_header || !starts_with(t, "#SBATCH")) continue;

    const auto directive = parse_directive(t, lineno);
    if (!directive) continue;
    const auto& [key, value] = *directive;
    if (key == "job-name") {
      job.name = value;
    } else if (key == "nodes") {
      // "N" or SLURM's "min-max"; use the minimum.
      const auto dash = value.find('-');
      const auto n = parse_int(dash == std::string::npos
                                   ? std::string_view(value)
                                   : std::string_view(value).substr(0, dash));
      if (!n || *n < 1)
        throw ParseError("sbatch:" + std::to_string(lineno) +
                         ": bad --nodes '" + value + "'");
      job.record.num_nodes = static_cast<int>(*n);
      saw_nodes = true;
    } else if (key == "time") {
      const auto secs = parse_slurm_duration(value);
      if (!secs)
        throw ParseError("sbatch:" + std::to_string(lineno) +
                         ": bad --time '" + value + "'");
      job.record.walltime = *secs;
    } else if (key == "begin") {
      std::string_view v = value;
      if (starts_with(v, "now+")) v = v.substr(4);
      const auto at = parse_double(v);
      if (!at || *at < 0.0)
        throw ParseError("sbatch:" + std::to_string(lineno) +
                         ": bad --begin '" + value + "'");
      job.record.submit_time = *at;
    } else if (key == "comment") {
      apply_comment(job, value, lineno);
    }
    // Other long options (mem, partition, ...) are accepted and ignored.
  }
  if (!saw_nodes)
    throw ParseError("sbatch: script does not request nodes (--nodes)");
  return job;
}

SbatchJob load_sbatch_script(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw ParseError("cannot open sbatch script '" + path + "'");
  return parse_sbatch_script(f);
}

std::string write_sbatch_script(const SbatchJob& job) {
  std::ostringstream out;
  out << "#!/bin/bash\n";
  out << "#SBATCH --job-name=" << job.name << "\n";
  out << "#SBATCH --nodes=" << job.record.num_nodes << "\n";
  out << "#SBATCH --time=" << format_slurm_duration(job.record.walltime)
      << "\n";
  if (job.record.submit_time > 0.0)
    out << "#SBATCH --begin=now+"
        << static_cast<long long>(job.record.submit_time) << "\n";
  if (job.record.comm_intensive) {
    out << "#SBATCH --comment=comm:" << pattern_name(job.record.pattern) << ':'
        << job.record.comm_fraction << ':' << job.record.msize;
    if (job.record.io_intensive) out << ",io:" << job.record.io_fraction;
    out << "\n";
  } else if (job.record.io_intensive) {
    out << "#SBATCH --comment=io:" << job.record.io_fraction << "\n";
  } else {
    out << "#SBATCH --comment=compute\n";
  }
  return out.str();
}

}  // namespace commsched
