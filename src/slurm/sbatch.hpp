// sbatch batch-script front end.
//
// The paper's workflow submits jobs to SLURM with an extra job attribute —
// whether the job is communication-intensive and which collective dominates
// it ("It can also be done through user input", §4). The natural SLURM
// channel for such annotations is the job comment, so this parser reads
// standard #SBATCH headers plus:
//
//   #SBATCH --comment=comm:<PATTERN>[:<comm_fraction>[:<msize_bytes>]]
//   #SBATCH --comment=compute
//   #SBATCH --comment=io:<io_fraction>            (§7 I/O extension)
//   #SBATCH --comment=comm:RHVD:0.5,io:0.3        (clauses combine)
//
// with <PATTERN> one of RD / RHVD / Binomial / Ring / Alltoall.
//
// Supported directives: --job-name/-J, --nodes/-N (a plain count or the
// SLURM "min-max" form, of which the minimum is used), --time/-t,
// --begin (seconds offset or "now+<sec>"), --comment. Unknown directives
// are ignored, as sbatch does for plugins it does not know.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/job.hpp"

namespace commsched {

struct SbatchJob {
  std::string name = "job";
  JobRecord record;  ///< runtime is left 0 (unknown until execution)
};

/// Parse one batch script. Throws ParseError on malformed directives or if
/// --nodes is missing. The returned record has walltime from --time
/// (default 1 hour), submit_time from --begin (default 0), and the
/// communication annotation from --comment.
SbatchJob parse_sbatch_script(std::istream& in);

/// Parse a script file from disk. Throws ParseError if unreadable.
SbatchJob load_sbatch_script(const std::string& path);

/// Render a JobRecord back into an equivalent #SBATCH script.
std::string write_sbatch_script(const SbatchJob& job);

}  // namespace commsched
