#include "topology/builders.hpp"

#include "util/assert.hpp"

namespace commsched {

namespace {

std::vector<std::string> node_range(const std::string& prefix, int first,
                                    int count) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    names.push_back(prefix + std::to_string(first + i));
  return names;
}

}  // namespace

Tree make_two_level_tree(int leaves, int nodes_per_leaf,
                         const std::string& node_prefix,
                         const std::string& switch_prefix) {
  COMMSCHED_ASSERT(leaves >= 1 && nodes_per_leaf >= 1);
  TreeBuilder b;
  std::vector<SwitchId> leaf_ids;
  int next_node = 0;
  for (int i = 0; i < leaves; ++i) {
    leaf_ids.push_back(b.add_leaf(switch_prefix + std::to_string(i),
                                  node_range(node_prefix, next_node,
                                             nodes_per_leaf)));
    next_node += nodes_per_leaf;
  }
  b.add_switch(switch_prefix + std::to_string(leaves), leaf_ids);
  return b.build();
}

Tree make_three_level_tree(int groups, int leaves_per_group,
                           int nodes_per_leaf, const std::string& node_prefix,
                           const std::string& switch_prefix) {
  COMMSCHED_ASSERT(groups >= 1 && leaves_per_group >= 1 && nodes_per_leaf >= 1);
  TreeBuilder b;
  std::vector<SwitchId> group_ids;
  int next_node = 0;
  int next_switch = 0;
  for (int g = 0; g < groups; ++g) {
    std::vector<SwitchId> leaf_ids;
    for (int l = 0; l < leaves_per_group; ++l) {
      leaf_ids.push_back(
          b.add_leaf(switch_prefix + std::to_string(next_switch++),
                     node_range(node_prefix, next_node, nodes_per_leaf)));
      next_node += nodes_per_leaf;
    }
    group_ids.push_back(b.add_switch(
        switch_prefix + std::to_string(next_switch++), leaf_ids));
  }
  b.add_switch(switch_prefix + std::to_string(next_switch), group_ids);
  return b.build();
}

Tree make_figure2_tree() { return make_two_level_tree(2, 4); }

Tree make_department_cluster() {
  TreeBuilder b;
  std::vector<SwitchId> leaves;
  leaves.push_back(b.add_leaf("sw0", node_range("csews", 0, 16)));
  leaves.push_back(b.add_leaf("sw1", node_range("csews", 16, 16)));
  leaves.push_back(b.add_leaf("sw2", node_range("csews", 32, 16)));
  leaves.push_back(b.add_leaf("sw3", node_range("csews", 48, 2)));
  b.add_switch("swroot", leaves);
  return b.build();
}

Tree make_iitk_hpc2010() {
  return make_two_level_tree(48, 16, "hpc", "isw");
}

Tree make_lbnl_style() {
  // Irregular big leaves: cycle through the 330-380 range the paper cites.
  constexpr int kLeafSizes[] = {330, 350, 366, 380};
  TreeBuilder b;
  std::vector<SwitchId> leaves;
  int next_node = 0;
  for (int i = 0; i < 12; ++i) {
    const int size = kLeafSizes[i % 4];
    leaves.push_back(
        b.add_leaf("lsw" + std::to_string(i), node_range("cori", next_node, size)));
    next_node += size;
  }
  b.add_switch("lswroot", leaves);
  return b.build();
}

Tree make_theta() { return make_two_level_tree(12, 366, "theta", "tsw"); }

Tree make_intrepid() {
  return make_two_level_tree(128, 320, "ib", "ibsw");
}

Tree make_mira() { return make_two_level_tree(128, 384, "mira", "msw"); }

Tree make_machine(const std::string& name) {
  if (name == "figure2") return make_figure2_tree();
  if (name == "department") return make_department_cluster();
  if (name == "iitk") return make_iitk_hpc2010();
  if (name == "lbnl") return make_lbnl_style();
  if (name == "theta") return make_theta();
  if (name == "intrepid") return make_intrepid();
  if (name == "mira") return make_mira();
  COMMSCHED_ASSERT_MSG(false, "unknown machine profile '" + name + "'");
  return make_figure2_tree();  // unreachable
}

}  // namespace commsched
