// Topology generators: regular two-/three-level trees plus profiles of the
// machines the paper evaluates (§5.1–§5.2).
//
// Substitution note (see DESIGN.md §3): we could not ship the proprietary
// IITK HPC2010 / LBNL Cori topology.conf files, so these builders generate
// trees with the shapes the paper states — 16 nodes/leaf (IITK) and 330–380
// nodes/leaf (LBNL-style) — and machine-scale trees for Intrepid / Theta /
// Mira sized to the logs' node counts.
#pragma once

#include <string>

#include "topology/tree.hpp"

namespace commsched {

/// Regular two-level tree: `leaves` leaf switches, `nodes_per_leaf` nodes
/// each, one root. Node names "<node_prefix><i>", switch names
/// "<switch_prefix><i>" with the root last (matching Figure 2's style).
Tree make_two_level_tree(int leaves, int nodes_per_leaf,
                         const std::string& node_prefix = "n",
                         const std::string& switch_prefix = "s");

/// Regular three-level tree: `groups` level-2 switches, each over
/// `leaves_per_group` leaf switches of `nodes_per_leaf` nodes, one root.
Tree make_three_level_tree(int groups, int leaves_per_group,
                           int nodes_per_leaf,
                           const std::string& node_prefix = "n",
                           const std::string& switch_prefix = "s");

/// The exact 8-node, 2-leaf fat-tree of the paper's Figure 2
/// (s0=n0..n3, s1=n4..n7, s2 root).
Tree make_figure2_tree();

/// 50-node departmental cluster used in the paper's Figure 1 experiment:
/// four leaf switches (16+16+16+2 nodes) under one root, 1G links.
Tree make_department_cluster();

/// IITK HPC2010-style tree: 48 leaf switches x 16 nodes (768 nodes),
/// two levels.
Tree make_iitk_hpc2010();

/// LBNL/Cori-style tree: big leaves (330-380 nodes/switch). 12 leaves with
/// node counts cycling through {330, 350, 366, 380} under one root.
Tree make_lbnl_style();

/// Theta-scale tree: 4392 nodes as 12 leaves x 366 nodes (paper max request
/// is 512 nodes, so jobs regularly span leaves).
Tree make_theta();

/// Intrepid-scale tree: 40960 nodes as 128 leaves x 320 nodes. The paper
/// emulates all logs on LBNL-style big-leaf trees (330-380 nodes/switch,
/// §2/§5.2), so the big machines are flat two-level trees of big leaves.
Tree make_intrepid();

/// Mira-scale tree: 49152 nodes as 128 leaves x 384 nodes (two levels, see
/// make_intrepid).
Tree make_mira();

/// Look up a builder by machine name ("figure2", "department", "iitk",
/// "lbnl", "theta", "intrepid", "mira"). Throws InvariantError on unknown
/// names.
Tree make_machine(const std::string& name);

}  // namespace commsched
