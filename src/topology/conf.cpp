#include "topology/conf.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace commsched {

namespace {

struct ConfEntry {
  std::string name;
  std::vector<std::string> nodes;     // set for leaf entries
  std::vector<std::string> switches;  // set for internal entries
};

ConfEntry parse_line(std::string_view line, int lineno) {
  ConfEntry entry;
  for (const auto& tok : split_ws(line)) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos)
      throw ParseError("topology.conf:" + std::to_string(lineno) +
                       ": expected key=value, got '" + tok + "'");
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (key == "SwitchName") {
      entry.name = value;
    } else if (key == "Nodes") {
      entry.nodes = expand_hostlist(value);
    } else if (key == "Switches") {
      entry.switches = expand_hostlist(value);
    } else {
      throw ParseError("topology.conf:" + std::to_string(lineno) +
                       ": unknown key '" + key + "'");
    }
  }
  if (entry.name.empty())
    throw ParseError("topology.conf:" + std::to_string(lineno) +
                     ": missing SwitchName");
  if (entry.nodes.empty() == entry.switches.empty())
    throw ParseError("topology.conf:" + std::to_string(lineno) +
                     ": switch '" + entry.name +
                     "' needs exactly one of Nodes= or Switches=");
  return entry;
}

}  // namespace

Tree parse_topology_conf(std::istream& in) {
  std::vector<ConfEntry> entries;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto t = trim(line);
    if (t.empty()) continue;
    entries.push_back(parse_line(t, lineno));
  }
  if (entries.empty()) throw ParseError("topology.conf: no switches defined");

  // Build leaves first, then repeatedly build internal switches whose
  // children are all constructed (children may appear after their parent).
  TreeBuilder builder;
  std::map<std::string, SwitchId> built;
  for (const auto& e : entries) {
    if (!e.nodes.empty()) {
      if (built.contains(e.name))
        throw ParseError("topology.conf: duplicate switch '" + e.name + "'");
      built[e.name] = builder.add_leaf(e.name, e.nodes);
    }
  }
  std::vector<const ConfEntry*> pending;
  for (const auto& e : entries)
    if (!e.switches.empty()) {
      if (built.contains(e.name))
        throw ParseError("topology.conf: duplicate switch '" + e.name + "'");
      pending.push_back(&e);
    }
  while (!pending.empty()) {
    bool progressed = false;
    for (auto it = pending.begin(); it != pending.end();) {
      const ConfEntry& e = **it;
      const bool ready = std::all_of(
          e.switches.begin(), e.switches.end(),
          [&](const std::string& child) { return built.contains(child); });
      if (!ready) {
        ++it;
        continue;
      }
      std::vector<SwitchId> children;
      children.reserve(e.switches.size());
      for (const auto& child : e.switches) children.push_back(built.at(child));
      built[e.name] = builder.add_switch(e.name, children);
      it = pending.erase(it);
      progressed = true;
    }
    if (!progressed) {
      std::string missing;
      for (const auto* e : pending) missing += " '" + e->name + "'";
      throw ParseError(
          "topology.conf: unresolvable switch references (cycle or missing "
          "child) involving" + missing);
    }
  }
  return builder.build();
}

Tree load_topology_conf(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw ParseError("cannot open topology file '" + path + "'");
  return parse_topology_conf(f);
}

std::string write_topology_conf(const Tree& tree) {
  std::ostringstream out;
  // Leaves first, then internal switches in ascending level order, so the
  // output is also valid input for stricter parsers.
  for (int lvl = 1; lvl <= tree.depth(); ++lvl) {
    for (const SwitchId s : tree.switches_at_level(lvl)) {
      out << "SwitchName=" << tree.switch_name(s);
      if (tree.is_leaf(s)) {
        std::vector<std::string> names;
        for (const NodeId n : tree.nodes_of_leaf(s))
          names.push_back(tree.node_name(n));
        out << " Nodes=" << compress_hostlist(names);
      } else {
        std::vector<std::string> names;
        for (const SwitchId c : tree.children(s))
          names.push_back(tree.switch_name(c));
        out << " Switches=" << compress_hostlist(names);
      }
      out << '\n';
    }
  }
  return out.str();
}

bool save_topology_conf(const Tree& tree, const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << write_topology_conf(tree);
  return static_cast<bool>(f);
}

}  // namespace commsched
