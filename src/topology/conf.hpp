// SLURM topology.conf reader/writer (§5.2 of the paper).
//
// Grammar (the subset SLURM's topology/tree plugin uses):
//   SwitchName=<name> Nodes=<hostlist>      # leaf switch
//   SwitchName=<name> Switches=<hostlist>   # internal switch
// '#' starts a comment; blank lines are ignored.  Children may be declared
// after the parent that references them (SLURM allows this), so parsing is
// two-pass: gather entries, then build leaves-first.
#pragma once

#include <iosfwd>
#include <string>

#include "topology/tree.hpp"

namespace commsched {

/// Parse topology.conf text. Throws ParseError on malformed syntax and
/// InvariantError on structurally invalid topologies (cycles, several roots).
Tree parse_topology_conf(std::istream& in);

/// Parse a topology.conf file from disk. Throws ParseError if unreadable.
Tree load_topology_conf(const std::string& path);

/// Render a Tree back to topology.conf text (leaves first, then internal
/// switches by ascending level; node/switch lists in hostlist notation).
std::string write_topology_conf(const Tree& tree);

/// Write to a file; returns false on I/O failure.
bool save_topology_conf(const Tree& tree, const std::string& path);

}  // namespace commsched
