#include "topology/stats.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace commsched {

TopologyStats compute_topology_stats(const Tree& tree) {
  TopologyStats s;
  s.nodes = tree.node_count();
  s.switches = tree.switch_count();
  s.leaves = tree.leaf_count();
  s.depth = tree.depth();

  s.min_leaf_nodes = tree.node_count();
  s.max_leaf_nodes = 0;
  double leaf_sum = 0.0;
  for (const SwitchId leaf : tree.leaves()) {
    const int n = static_cast<int>(tree.nodes_of_leaf(leaf).size());
    s.min_leaf_nodes = std::min(s.min_leaf_nodes, n);
    s.max_leaf_nodes = std::max(s.max_leaf_nodes, n);
    leaf_sum += n;
  }
  s.mean_leaf_nodes = leaf_sum / static_cast<double>(tree.leaf_count());

  for (int lvl = 1; lvl <= tree.depth(); ++lvl) {
    LevelStats level;
    level.level = lvl;
    for (const SwitchId sw : tree.switches_at_level(lvl)) {
      ++level.switches;
      level.downlinks += tree.is_leaf(sw)
                             ? static_cast<int>(tree.nodes_of_leaf(sw).size())
                             : static_cast<int>(tree.children(sw).size());
      if (tree.parent(sw) != kInvalidSwitch) ++level.uplinks;
    }
    s.levels.push_back(level);
  }
  if (!s.levels.empty() && s.levels.front().uplinks > 0)
    s.leaf_oversubscription =
        static_cast<double>(s.levels.front().downlinks) /
        static_cast<double>(s.levels.front().uplinks);
  return s;
}

std::string format_topology_stats(const TopologyStats& stats) {
  std::ostringstream out;
  out << stats.nodes << " nodes, " << stats.switches << " switches ("
      << stats.leaves << " leaves), " << stats.depth << " levels\n";
  out << "nodes/leaf: " << stats.min_leaf_nodes << " - "
      << stats.max_leaf_nodes << " (mean "
      << format_double(stats.mean_leaf_nodes, 1) << ")\n";
  for (const LevelStats& level : stats.levels)
    out << "level " << level.level << ": " << level.switches << " switches, "
        << level.downlinks << " downlinks, " << level.uplinks << " uplinks\n";
  if (stats.leaf_oversubscription > 0.0)
    out << "leaf oversubscription " +
               format_double(stats.leaf_oversubscription, 1) +
               ":1 (single-trunk tree)\n";
  return out.str();
}

}  // namespace commsched
