// Structural statistics of a tree topology: per-level switch/link counts,
// leaf-size spread, and an oversubscription estimate — the quantities one
// checks before trusting a topology.conf (and the reason the paper's
// "links double as we move up" factor appears in Eq. 3).
#pragma once

#include <string>
#include <vector>

#include "topology/tree.hpp"

namespace commsched {

struct LevelStats {
  int level = 0;       ///< 1 = leaves
  int switches = 0;    ///< switches at this level
  int downlinks = 0;   ///< child links (nodes for leaves, switches above)
  int uplinks = 0;     ///< links toward the parent level (0 for the root)
};

struct TopologyStats {
  int nodes = 0;
  int switches = 0;
  int leaves = 0;
  int depth = 0;
  int min_leaf_nodes = 0;
  int max_leaf_nodes = 0;
  double mean_leaf_nodes = 0.0;
  std::vector<LevelStats> levels;  ///< index 0 = level 1 (leaves)
  /// Downlinks per uplink at the leaf level (nodes per leaf switch when
  /// every switch has one uplink) — the classic oversubscription ratio of
  /// a single-trunk tree. 0 for a single-switch topology.
  double leaf_oversubscription = 0.0;
};

TopologyStats compute_topology_stats(const Tree& tree);

/// Multi-line human-readable rendering.
std::string format_topology_stats(const TopologyStats& stats);

}  // namespace commsched
