#include "topology/tree.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/assert.hpp"

namespace commsched {

namespace {
void check_switch(const Tree& t, SwitchId s) {
  COMMSCHED_ASSERT_MSG(s >= 0 && s < t.switch_count(), "switch id out of range");
}
}  // namespace

int Tree::level(SwitchId s) const {
  check_switch(*this, s);
  return switches_[static_cast<std::size_t>(s)].level;
}

SwitchId Tree::parent(SwitchId s) const {
  check_switch(*this, s);
  return switches_[static_cast<std::size_t>(s)].parent;
}

std::span<const SwitchId> Tree::children(SwitchId s) const {
  check_switch(*this, s);
  return switches_[static_cast<std::size_t>(s)].children;
}

std::vector<SwitchId> Tree::switches_at_level(int lvl) const {
  std::vector<SwitchId> out;
  for (SwitchId s = 0; s < switch_count(); ++s)
    if (switches_[static_cast<std::size_t>(s)].level == lvl) out.push_back(s);
  return out;
}

std::span<const SwitchId> Tree::leaves_under(SwitchId s) const {
  check_switch(*this, s);
  return switches_[static_cast<std::size_t>(s)].leaves_below;
}

std::span<const NodeId> Tree::nodes_of_leaf(SwitchId s) const {
  check_switch(*this, s);
  COMMSCHED_ASSERT_MSG(is_leaf(s), "nodes_of_leaf on a non-leaf switch");
  return switches_[static_cast<std::size_t>(s)].nodes;
}

int Tree::node_count_under(SwitchId s) const {
  check_switch(*this, s);
  return switches_[static_cast<std::size_t>(s)].subtree_nodes;
}

SwitchId Tree::leaf_of(NodeId n) const {
  COMMSCHED_ASSERT_MSG(n >= 0 && n < node_count(), "node id out of range");
  return node_leaf_[static_cast<std::size_t>(n)];
}

SwitchId Tree::lowest_common_switch(NodeId a, NodeId b) const {
  const SwitchId la = leaf_of(a);
  const SwitchId lb = leaf_of(b);
  if (la == lb) return la;
  // Walk the root-first ancestor chains in lockstep; the last matching entry
  // is the lowest common switch.  Chains are at most depth() long.
  const auto& ca = leaf_chain_[static_cast<std::size_t>(la)];
  const auto& cb = leaf_chain_[static_cast<std::size_t>(lb)];
  const std::size_t n = std::min(ca.size(), cb.size());
  SwitchId lca = root_;
  for (std::size_t i = 0; i < n; ++i) {
    if (ca[i] != cb[i]) break;
    lca = ca[i];
  }
  return lca;
}

int Tree::lca_level(NodeId a, NodeId b) const {
  return level(lowest_common_switch(a, b));
}

int Tree::distance(NodeId a, NodeId b) const {
  if (a == b) return 0;
  return 2 * lca_level(a, b);
}

const std::string& Tree::node_name(NodeId n) const {
  COMMSCHED_ASSERT(n >= 0 && n < node_count());
  return node_names_[static_cast<std::size_t>(n)];
}

const std::string& Tree::switch_name(SwitchId s) const {
  check_switch(*this, s);
  return switches_[static_cast<std::size_t>(s)].name;
}

std::optional<NodeId> Tree::node_by_name(const std::string& name) const {
  for (NodeId n = 0; n < node_count(); ++n)
    if (node_names_[static_cast<std::size_t>(n)] == name) return n;
  return std::nullopt;
}

std::optional<SwitchId> Tree::switch_by_name(const std::string& name) const {
  for (SwitchId s = 0; s < switch_count(); ++s)
    if (switches_[static_cast<std::size_t>(s)].name == name) return s;
  return std::nullopt;
}

SwitchId TreeBuilder::add_leaf(std::string name,
                               std::vector<std::string> node_names) {
  COMMSCHED_ASSERT_MSG(!node_names.empty(), "a leaf switch needs nodes");
  const auto id = static_cast<SwitchId>(tree_.switches_.size());
  Tree::SwitchRec rec;
  rec.name = std::move(name);
  rec.level = 1;
  rec.subtree_nodes = static_cast<int>(node_names.size());
  for (auto& nn : node_names) {
    const auto nid = static_cast<NodeId>(tree_.node_names_.size());
    tree_.node_names_.push_back(std::move(nn));
    tree_.node_leaf_.push_back(id);
    rec.nodes.push_back(nid);
  }
  rec.leaves_below.push_back(id);
  tree_.switches_.push_back(std::move(rec));
  tree_.leaves_.push_back(id);
  has_parent_.push_back(false);
  return id;
}

SwitchId TreeBuilder::add_switch(std::string name,
                                 std::vector<SwitchId> child_switches) {
  COMMSCHED_ASSERT_MSG(!child_switches.empty(),
                       "an internal switch needs children");
  const auto id = static_cast<SwitchId>(tree_.switches_.size());
  Tree::SwitchRec rec;
  rec.name = std::move(name);
  int max_child_level = 0;
  for (const SwitchId c : child_switches) {
    COMMSCHED_ASSERT_MSG(c >= 0 && c < id, "child switch must already exist");
    COMMSCHED_ASSERT_MSG(!has_parent_[static_cast<std::size_t>(c)],
                         "child switch already has a parent");
    auto& child = tree_.switches_[static_cast<std::size_t>(c)];
    child.parent = id;
    has_parent_[static_cast<std::size_t>(c)] = true;
    max_child_level = std::max(max_child_level, child.level);
    rec.subtree_nodes += child.subtree_nodes;
    rec.leaves_below.insert(rec.leaves_below.end(), child.leaves_below.begin(),
                            child.leaves_below.end());
  }
  rec.level = max_child_level + 1;
  rec.children = std::move(child_switches);
  tree_.switches_.push_back(std::move(rec));
  has_parent_.push_back(false);
  return id;
}

Tree TreeBuilder::build() {
  COMMSCHED_ASSERT_MSG(!tree_.switches_.empty(), "empty topology");

  // Exactly one parentless switch: the root.
  SwitchId root = kInvalidSwitch;
  for (SwitchId s = 0; s < tree_.switch_count(); ++s) {
    if (!has_parent_[static_cast<std::size_t>(s)]) {
      COMMSCHED_ASSERT_MSG(root == kInvalidSwitch,
                           "topology has multiple roots (switch '" +
                               tree_.switches_[static_cast<std::size_t>(s)].name +
                               "' is disconnected)");
      root = s;
    }
  }
  COMMSCHED_ASSERT_MSG(root != kInvalidSwitch, "topology has a cycle");
  tree_.root_ = root;
  tree_.depth_ = tree_.switches_[static_cast<std::size_t>(root)].level;

  // Unique names.
  std::unordered_set<std::string> names;
  for (const auto& sw : tree_.switches_)
    COMMSCHED_ASSERT_MSG(names.insert(sw.name).second,
                         "duplicate switch name '" + sw.name + "'");
  names.clear();
  for (const auto& nn : tree_.node_names_)
    COMMSCHED_ASSERT_MSG(names.insert(nn).second,
                         "duplicate node name '" + nn + "'");

  // The root must span every node.
  COMMSCHED_ASSERT_MSG(
      tree_.switches_[static_cast<std::size_t>(root)].subtree_nodes ==
          tree_.node_count(),
      "root does not span all nodes — disconnected topology");

  // Precompute root-first ancestor chains per leaf for LCA queries.
  tree_.leaf_chain_.assign(tree_.switches_.size(), {});
  for (const SwitchId leaf : tree_.leaves_) {
    std::vector<SwitchId> chain;
    for (SwitchId s = leaf; s != kInvalidSwitch;
         s = tree_.switches_[static_cast<std::size_t>(s)].parent)
      chain.push_back(s);
    std::reverse(chain.begin(), chain.end());
    tree_.leaf_chain_[static_cast<std::size_t>(leaf)] = std::move(chain);
  }
  return std::move(tree_);
}

}  // namespace commsched
