#include "topology/tree.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace commsched {

namespace {
// hot-path: no-alloc
void check_switch(const Tree& t, SwitchId s) {
  COMMSCHED_ASSERT_MSG(s >= 0 && s < t.switch_count(), "switch id out of range");
}
}  // namespace

// hot-path: no-alloc
int Tree::level(SwitchId s) const {
  check_switch(*this, s);
  return switches_[static_cast<std::size_t>(s)].level;
}

// hot-path: no-alloc
SwitchId Tree::parent(SwitchId s) const {
  check_switch(*this, s);
  return switches_[static_cast<std::size_t>(s)].parent;
}

// hot-path: no-alloc
std::span<const SwitchId> Tree::children(SwitchId s) const {
  check_switch(*this, s);
  return switches_[static_cast<std::size_t>(s)].children;
}

// hot-path: no-alloc
std::span<const SwitchId> Tree::switches_at_level(int lvl) const {
  if (lvl < 1 || static_cast<std::size_t>(lvl) > levels_.size()) return {};
  return levels_[static_cast<std::size_t>(lvl) - 1];
}

// hot-path: no-alloc
std::span<const SwitchId> Tree::leaves_under(SwitchId s) const {
  check_switch(*this, s);
  return switches_[static_cast<std::size_t>(s)].leaves_below;
}

// hot-path: no-alloc
std::span<const NodeId> Tree::nodes_of_leaf(SwitchId s) const {
  check_switch(*this, s);
  COMMSCHED_ASSERT_MSG(is_leaf(s), "nodes_of_leaf on a non-leaf switch");
  return switches_[static_cast<std::size_t>(s)].nodes;
}

// hot-path: no-alloc
int Tree::node_count_under(SwitchId s) const {
  check_switch(*this, s);
  return switches_[static_cast<std::size_t>(s)].subtree_nodes;
}

// hot-path: no-alloc
SwitchId Tree::leaf_of(NodeId n) const {
  COMMSCHED_ASSERT_MSG(n >= 0 && n < node_count(), "node id out of range");
  return node_leaf_[static_cast<std::size_t>(n)];
}

// hot-path: no-alloc
int Tree::leaf_index(SwitchId s) const {
  check_switch(*this, s);
  const std::int32_t idx = leaf_index_[static_cast<std::size_t>(s)];
  COMMSCHED_ASSERT_MSG(idx >= 0, "leaf_index on a non-leaf switch");
  return idx;
}

// hot-path: no-alloc
SwitchId Tree::leaf_lca(SwitchId la, SwitchId lb) const {
  const auto row = static_cast<std::size_t>(leaf_index(la));
  const auto col = static_cast<std::size_t>(leaf_index(lb));
  return leaf_lca_[row * static_cast<std::size_t>(leaf_count()) + col];
}

// hot-path: no-alloc
int Tree::leaf_distance(SwitchId la, SwitchId lb) const {
  const auto row = static_cast<std::size_t>(leaf_index(la));
  const auto col = static_cast<std::size_t>(leaf_index(lb));
  return leaf_dist_[row * static_cast<std::size_t>(leaf_count()) + col];
}

// hot-path: no-alloc
SwitchId Tree::lowest_common_switch(NodeId a, NodeId b) const {
  return leaf_lca(leaf_of(a), leaf_of(b));
}

// hot-path: no-alloc
int Tree::lca_level(NodeId a, NodeId b) const {
  return leaf_distance(leaf_of(a), leaf_of(b)) / 2;
}

// hot-path: no-alloc
int Tree::distance(NodeId a, NodeId b) const {
  if (a == b) return 0;
  return leaf_distance(leaf_of(a), leaf_of(b));
}

const std::string& Tree::node_name(NodeId n) const {
  COMMSCHED_ASSERT(n >= 0 && n < node_count());
  return node_names_[static_cast<std::size_t>(n)];
}

const std::string& Tree::switch_name(SwitchId s) const {
  check_switch(*this, s);
  return switches_[static_cast<std::size_t>(s)].name;
}

std::optional<NodeId> Tree::node_by_name(const std::string& name) const {
  const auto it = node_index_.find(name);
  if (it == node_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<SwitchId> Tree::switch_by_name(const std::string& name) const {
  const auto it = switch_index_.find(name);
  if (it == switch_index_.end()) return std::nullopt;
  return it->second;
}

SwitchId TreeBuilder::add_leaf(std::string name,
                               std::vector<std::string> node_names) {
  COMMSCHED_ASSERT_MSG(!node_names.empty(), "a leaf switch needs nodes");
  const auto id = static_cast<SwitchId>(tree_.switches_.size());
  Tree::SwitchRec rec;
  rec.name = std::move(name);
  rec.level = 1;
  rec.subtree_nodes = static_cast<int>(node_names.size());
  for (auto& nn : node_names) {
    const auto nid = static_cast<NodeId>(tree_.node_names_.size());
    tree_.node_names_.push_back(std::move(nn));
    tree_.node_leaf_.push_back(id);
    rec.nodes.push_back(nid);
  }
  rec.leaves_below.push_back(id);
  tree_.switches_.push_back(std::move(rec));
  tree_.leaves_.push_back(id);
  has_parent_.push_back(false);
  return id;
}

SwitchId TreeBuilder::add_switch(std::string name,
                                 std::vector<SwitchId> child_switches) {
  COMMSCHED_ASSERT_MSG(!child_switches.empty(),
                       "an internal switch needs children");
  const auto id = static_cast<SwitchId>(tree_.switches_.size());
  Tree::SwitchRec rec;
  rec.name = std::move(name);
  int max_child_level = 0;
  for (const SwitchId c : child_switches) {
    COMMSCHED_ASSERT_MSG(c >= 0 && c < id, "child switch must already exist");
    COMMSCHED_ASSERT_MSG(!has_parent_[static_cast<std::size_t>(c)],
                         "child switch already has a parent");
    auto& child = tree_.switches_[static_cast<std::size_t>(c)];
    child.parent = id;
    has_parent_[static_cast<std::size_t>(c)] = true;
    max_child_level = std::max(max_child_level, child.level);
    rec.subtree_nodes += child.subtree_nodes;
    rec.leaves_below.insert(rec.leaves_below.end(), child.leaves_below.begin(),
                            child.leaves_below.end());
  }
  rec.level = max_child_level + 1;
  rec.children = std::move(child_switches);
  tree_.switches_.push_back(std::move(rec));
  has_parent_.push_back(false);
  return id;
}

Tree TreeBuilder::build() {
  COMMSCHED_ASSERT_MSG(!tree_.switches_.empty(), "empty topology");

  // Exactly one parentless switch: the root.
  SwitchId root = kInvalidSwitch;
  for (SwitchId s = 0; s < tree_.switch_count(); ++s) {
    if (!has_parent_[static_cast<std::size_t>(s)]) {
      COMMSCHED_ASSERT_MSG(root == kInvalidSwitch,
                           "topology has multiple roots (switch '" +
                               tree_.switches_[static_cast<std::size_t>(s)].name +
                               "' is disconnected)");
      root = s;
    }
  }
  COMMSCHED_ASSERT_MSG(root != kInvalidSwitch, "topology has a cycle");
  tree_.root_ = root;
  tree_.depth_ = tree_.switches_[static_cast<std::size_t>(root)].level;

  // Unique names; the maps double as the O(1) by-name lookup indices.
  tree_.switch_index_.reserve(tree_.switches_.size());
  for (SwitchId s = 0; s < tree_.switch_count(); ++s) {
    const auto& sw = tree_.switches_[static_cast<std::size_t>(s)];
    COMMSCHED_ASSERT_MSG(tree_.switch_index_.emplace(sw.name, s).second,
                         "duplicate switch name '" + sw.name + "'");
  }
  tree_.node_index_.reserve(tree_.node_names_.size());
  for (NodeId n = 0; n < tree_.node_count(); ++n) {
    const auto& nn = tree_.node_names_[static_cast<std::size_t>(n)];
    COMMSCHED_ASSERT_MSG(tree_.node_index_.emplace(nn, n).second,
                         "duplicate node name '" + nn + "'");
  }

  // The root must span every node.
  COMMSCHED_ASSERT_MSG(
      tree_.switches_[static_cast<std::size_t>(root)].subtree_nodes ==
          tree_.node_count(),
      "root does not span all nodes — disconnected topology");

  // Per-level switch lists (id order), so the allocators' level scans are
  // allocation-free span iterations.
  tree_.levels_.assign(static_cast<std::size_t>(tree_.depth_), {});
  for (SwitchId s = 0; s < tree_.switch_count(); ++s) {
    const int lvl = tree_.switches_[static_cast<std::size_t>(s)].level;
    COMMSCHED_ASSERT_MSG(lvl >= 1 && lvl <= tree_.depth_,
                         "switch level outside [1, depth]");
    tree_.levels_[static_cast<std::size_t>(lvl) - 1].push_back(s);
  }

  // Precompute the dense leaf×leaf LCA/distance tables. Root-first ancestor
  // chains are walked once per leaf pair here — O(L² · depth) at build time —
  // so every later pairwise query is a single array load.
  const auto n_leaves = tree_.leaves_.size();
  tree_.leaf_index_.assign(tree_.switches_.size(), -1);
  for (std::size_t i = 0; i < n_leaves; ++i)
    tree_.leaf_index_[static_cast<std::size_t>(tree_.leaves_[i])] =
        static_cast<std::int32_t>(i);
  std::vector<std::vector<SwitchId>> chains(n_leaves);
  for (std::size_t i = 0; i < n_leaves; ++i) {
    auto& chain = chains[i];
    for (SwitchId s = tree_.leaves_[i]; s != kInvalidSwitch;
         s = tree_.switches_[static_cast<std::size_t>(s)].parent)
      chain.push_back(s);
    std::reverse(chain.begin(), chain.end());
  }
  tree_.leaf_lca_.assign(n_leaves * n_leaves, kInvalidSwitch);
  tree_.leaf_dist_.assign(n_leaves * n_leaves, 0);
  for (std::size_t i = 0; i < n_leaves; ++i) {
    // Diagonal: distinct nodes on one leaf meet at the leaf itself (level 1).
    tree_.leaf_lca_[i * n_leaves + i] = tree_.leaves_[i];
    tree_.leaf_dist_[i * n_leaves + i] = 2;
    for (std::size_t j = i + 1; j < n_leaves; ++j) {
      const auto& ca = chains[i];
      const auto& cb = chains[j];
      const std::size_t common = std::min(ca.size(), cb.size());
      SwitchId lca = root;
      for (std::size_t d = 0; d < common; ++d) {
        if (ca[d] != cb[d]) break;
        lca = ca[d];
      }
      const auto dist = static_cast<std::int16_t>(
          2 * tree_.switches_[static_cast<std::size_t>(lca)].level);
      tree_.leaf_lca_[i * n_leaves + j] = lca;
      tree_.leaf_lca_[j * n_leaves + i] = lca;
      tree_.leaf_dist_[i * n_leaves + j] = dist;
      tree_.leaf_dist_[j * n_leaves + i] = dist;
    }
  }
  return std::move(tree_);
}

}  // namespace commsched
