// Tree / fat-tree network topology model (SLURM topology/tree equivalent).
//
// The model matches the paper's abstraction (§3.2): compute nodes hang off
// level-1 "leaf" switches; higher-level switches connect switches below them;
// a single root spans the machine.  Every structural query the allocators and
// the cost model need is answered here: leaf membership, lowest common
// switch, the paper's distance metric d(i,j) = 2 * level(LCA) (Eq. 4), and
// subtree node counts for the lowest-level-switch search.
//
// Node and switch handles are dense indices (NodeId / SwitchId), assigned in
// construction order; names are retained for topology.conf round-trips.
//
// Pairwise queries are O(1): build() precomputes a dense leaf×leaf table of
// lowest-common-switch ids and Eq. 4 distances (O(L²) memory, L = leaf
// count; big-leaf machines keep L in the low hundreds), so the cost model's
// hot path never walks ancestor chains. Name lookups are hash maps.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace commsched {

using NodeId = std::int32_t;
using SwitchId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr SwitchId kInvalidSwitch = -1;

/// Immutable tree topology. Construct via TreeBuilder or topology-conf I/O.
class Tree {
 public:
  int node_count() const noexcept { return static_cast<int>(node_names_.size()); }
  int switch_count() const noexcept { return static_cast<int>(switches_.size()); }
  int leaf_count() const noexcept { return static_cast<int>(leaves_.size()); }

  /// Number of switch levels; leaves are level 1, the root is level `depth()`.
  int depth() const noexcept { return depth_; }

  SwitchId root() const noexcept { return root_; }

  // hot-path: no-alloc
  bool is_leaf(SwitchId s) const { return level(s) == 1; }
  int level(SwitchId s) const;
  SwitchId parent(SwitchId s) const;  ///< kInvalidSwitch for the root
  std::span<const SwitchId> children(SwitchId s) const;  ///< empty for leaves

  /// All leaf switches, in id order.
  std::span<const SwitchId> leaves() const noexcept { return leaves_; }

  /// All switches with the given level (1 = leaves), precomputed in build()
  /// so the allocators' per-select lowest-level-switch search allocates
  /// nothing. Levels outside [1, depth()] yield an empty span.
  std::span<const SwitchId> switches_at_level(int lvl) const;

  /// Leaf switches in the subtree rooted at `s` (s itself if a leaf).
  std::span<const SwitchId> leaves_under(SwitchId s) const;

  /// Compute nodes attached to leaf switch `s`. Requires is_leaf(s).
  std::span<const NodeId> nodes_of_leaf(SwitchId s) const;

  /// Total compute nodes in the subtree rooted at `s`.
  int node_count_under(SwitchId s) const;

  /// Leaf switch a node is attached to.
  SwitchId leaf_of(NodeId n) const;

  /// Dense index of a leaf switch in leaves() order, in [0, leaf_count()).
  /// Requires is_leaf(s).
  int leaf_index(SwitchId s) const;

  /// Lowest common switch of two leaves (the leaf itself when la == lb).
  /// O(1) table lookup.
  SwitchId leaf_lca(SwitchId la, SwitchId lb) const;

  /// Paper Eq. 4 distance between two *distinct* nodes attached to leaves
  /// `la` and `lb` (2 when la == lb: the shared leaf is the LCA). O(1).
  int leaf_distance(SwitchId la, SwitchId lb) const;

  /// Lowest common switch of two nodes (their shared leaf if co-located).
  SwitchId lowest_common_switch(NodeId a, NodeId b) const;

  /// Level of the lowest common switch (1 when both are on the same leaf).
  int lca_level(NodeId a, NodeId b) const;

  /// Paper Eq. 4: d(i,j) = 2 * level(lowest common switch); 0 when i == j.
  int distance(NodeId a, NodeId b) const;

  const std::string& node_name(NodeId n) const;
  const std::string& switch_name(SwitchId s) const;
  std::optional<NodeId> node_by_name(const std::string& name) const;
  std::optional<SwitchId> switch_by_name(const std::string& name) const;

 private:
  friend class TreeBuilder;
  Tree() = default;

  struct SwitchRec {
    std::string name;
    SwitchId parent = kInvalidSwitch;
    int level = 1;
    std::vector<SwitchId> children;      // child switches (empty for leaves)
    std::vector<NodeId> nodes;           // directly attached (leaves only)
    std::vector<SwitchId> leaves_below;  // descendant leaves (self if leaf)
    int subtree_nodes = 0;
  };

  std::vector<SwitchRec> switches_;
  std::vector<SwitchId> leaves_;
  // levels_[lvl - 1] = switches at that level, id order (built in build()).
  std::vector<std::vector<SwitchId>> levels_;
  std::vector<std::string> node_names_;
  std::vector<SwitchId> node_leaf_;
  // Per switch: dense leaf index, or -1 for internal switches.
  std::vector<std::int32_t> leaf_index_;
  // Dense leaf×leaf tables, indexed [leaf_index(la) * leaf_count() +
  // leaf_index(lb)]: lowest common switch and Eq. 4 distance. O(L²) memory
  // buys O(1) pairwise queries (the cost model's hot path).
  std::vector<SwitchId> leaf_lca_;
  std::vector<std::int16_t> leaf_dist_;
  std::unordered_map<std::string, NodeId> node_index_;
  std::unordered_map<std::string, SwitchId> switch_index_;
  SwitchId root_ = kInvalidSwitch;
  int depth_ = 0;
};

/// Incremental construction of a Tree. Leaves must be added before any
/// internal switch that references them; build() validates the result.
class TreeBuilder {
 public:
  /// Add a leaf switch with its attached node names. Node ids are assigned
  /// in the order nodes are added across all leaves.
  SwitchId add_leaf(std::string name, std::vector<std::string> node_names);

  /// Add an internal switch over previously added child switches.
  SwitchId add_switch(std::string name, std::vector<SwitchId> child_switches);

  /// Finalize. Validates: a unique root exists, every non-root switch has a
  /// parent, levels are consistent, node/switch names are unique, every leaf
  /// has at least one node. Throws InvariantError on violation.
  Tree build();

 private:
  Tree tree_;
  std::vector<bool> has_parent_;
};

}  // namespace commsched
