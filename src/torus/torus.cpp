#include "torus/torus.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace commsched {

Torus::Torus(int x, int y, int z) : x_(x), y_(y), z_(z) {
  COMMSCHED_ASSERT_MSG(x >= 1 && y >= 1 && z >= 1,
                       "torus dimensions must be positive");
}

// hot-path: no-alloc
TorusCoord Torus::coord_of(TorusNodeId n) const {
  COMMSCHED_ASSERT(n >= 0 && n < node_count());
  TorusCoord c;
  c.x = n % x_;
  c.y = (n / x_) % y_;
  c.z = n / (x_ * y_);
  return c;
}

TorusNodeId Torus::id_of(const TorusCoord& c) const {
  const auto wrap = [](int v, int dim) {
    const int m = v % dim;
    return m < 0 ? m + dim : m;
  };
  return wrap(c.x, x_) + wrap(c.y, y_) * x_ + wrap(c.z, z_) * x_ * y_;
}

// hot-path: no-alloc
int Torus::ring_distance(int a, int b, int dim) {
  const int direct = std::abs(a - b);
  return std::min(direct, dim - direct);
}

// hot-path: no-alloc
int Torus::distance(TorusNodeId a, TorusNodeId b) const {
  const TorusCoord ca = coord_of(a);
  const TorusCoord cb = coord_of(b);
  return ring_distance(ca.x, cb.x, x_) + ring_distance(ca.y, cb.y, y_) +
         ring_distance(ca.z, cb.z, z_);
}

TorusState::TorusState(const Torus& torus)
    : torus_(&torus),
      busy_(static_cast<std::size_t>(torus.node_count()), 0),
      comm_(static_cast<std::size_t>(torus.node_count()), 0),
      free_(torus.node_count()) {}

void TorusState::occupy(std::span<const TorusNodeId> nodes,
                        bool comm_intensive) {
  for (const TorusNodeId n : nodes) {
    COMMSCHED_ASSERT(n >= 0 && n < torus_->node_count());
    COMMSCHED_ASSERT_MSG(!busy_[static_cast<std::size_t>(n)],
                         "torus node already occupied");
  }
  for (const TorusNodeId n : nodes) {
    busy_[static_cast<std::size_t>(n)] = 1;
    comm_[static_cast<std::size_t>(n)] = comm_intensive ? 1 : 0;
    --free_;
  }
}

void TorusState::release(std::span<const TorusNodeId> nodes) {
  for (const TorusNodeId n : nodes) {
    COMMSCHED_ASSERT(n >= 0 && n < torus_->node_count());
    COMMSCHED_ASSERT_MSG(busy_[static_cast<std::size_t>(n)],
                         "releasing a free torus node");
    busy_[static_cast<std::size_t>(n)] = 0;
    comm_[static_cast<std::size_t>(n)] = 0;
    ++free_;
  }
}

bool TorusState::is_free(TorusNodeId n) const {
  COMMSCHED_ASSERT(n >= 0 && n < torus_->node_count());
  return !busy_[static_cast<std::size_t>(n)];
}

bool TorusState::is_comm(TorusNodeId n) const {
  COMMSCHED_ASSERT(n >= 0 && n < torus_->node_count());
  return comm_[static_cast<std::size_t>(n)] != 0;
}

namespace {

// Iterate the minimal wraparound box spanned by two coordinates: for each
// dimension pick the shorter arc (ties toward the direct direction).
struct Arc {
  int start = 0;
  int length = 1;  // number of coordinates covered, >= 1
};

Arc minimal_arc(int a, int b, int dim) {
  const int direct = std::abs(a - b);
  const int wrapped = dim - direct;
  Arc arc;
  if (direct <= wrapped) {
    arc.start = std::min(a, b);
    arc.length = direct + 1;
  } else {
    arc.start = std::max(a, b);
    arc.length = wrapped + 1;
  }
  return arc;
}

}  // namespace

double torus_contention(const TorusState& state, TorusNodeId a,
                        TorusNodeId b) {
  const Torus& torus = state.torus();
  const TorusCoord ca = torus.coord_of(a);
  const TorusCoord cb = torus.coord_of(b);
  const Arc ax = minimal_arc(ca.x, cb.x, torus.dim_x());
  const Arc ay = minimal_arc(ca.y, cb.y, torus.dim_y());
  const Arc az = minimal_arc(ca.z, cb.z, torus.dim_z());

  int comm_nodes = 0;
  const int box = ax.length * ay.length * az.length;
  for (int dz = 0; dz < az.length; ++dz)
    for (int dy = 0; dy < ay.length; ++dy)
      for (int dx = 0; dx < ax.length; ++dx) {
        TorusCoord c;
        c.x = ax.start + dx;
        c.y = ay.start + dy;
        c.z = az.start + dz;
        if (state.is_comm(torus.id_of(c))) ++comm_nodes;
      }
  return static_cast<double>(comm_nodes) / static_cast<double>(box);
}

double torus_effective_hops(const TorusState& state, TorusNodeId a,
                            TorusNodeId b) {
  if (a == b) return 0.0;
  const double d = state.torus().distance(a, b);
  return d * (1.0 + torus_contention(state, a, b));
}

double torus_cost(const TorusState& state,
                  std::span<const TorusNodeId> nodes,
                  const CommSchedule& schedule) {
  double total = 0.0;
  for (const CommStep& step : schedule) {
    double worst = 0.0;
    for (const auto& [ri, rj] : step.pairs) {
      COMMSCHED_ASSERT(static_cast<std::size_t>(ri) < nodes.size() &&
                       static_cast<std::size_t>(rj) < nodes.size());
      worst = std::max(worst,
                       torus_effective_hops(state,
                                            nodes[static_cast<std::size_t>(ri)],
                                            nodes[static_cast<std::size_t>(rj)]));
    }
    total += worst * static_cast<double>(step.repeat);
  }
  return total;
}

std::optional<std::vector<TorusNodeId>> cuboid_allocation(
    const TorusState& state, int num_nodes) {
  COMMSCHED_ASSERT(num_nodes >= 1);
  const Torus& torus = state.torus();
  if (state.total_free() < num_nodes) return std::nullopt;

  // Enumerate cuboid shapes (sx, sy, sz) with volume >= num_nodes, smallest
  // surface first, and find a fully-free anchored placement. Shapes and
  // anchors are bounded by the torus dimensions, so this is
  // O(X^2 Y^2 Z^2) worst case — fine for partition-sized machines.
  struct Shape {
    int sx, sy, sz;
    double badness;  // surface area, then volume slack
  };
  std::vector<Shape> shapes;
  for (int sx = 1; sx <= torus.dim_x(); ++sx)
    for (int sy = 1; sy <= torus.dim_y(); ++sy)
      for (int sz = 1; sz <= torus.dim_z(); ++sz) {
        const int volume = sx * sy * sz;
        if (volume < num_nodes) continue;
        const double surface = 2.0 * (sx * sy + sy * sz + sx * sz);
        shapes.push_back({sx, sy, sz,
                          surface + (volume - num_nodes) * 0.001});
      }
  std::sort(shapes.begin(), shapes.end(),
            [](const Shape& a, const Shape& b) { return a.badness < b.badness; });

  for (const Shape& shape : shapes) {
    for (int ox = 0; ox < torus.dim_x(); ++ox)
      for (int oy = 0; oy < torus.dim_y(); ++oy)
        for (int oz = 0; oz < torus.dim_z(); ++oz) {
          std::vector<TorusNodeId> nodes;
          nodes.reserve(static_cast<std::size_t>(num_nodes));
          bool ok = true;
          for (int dz = 0; ok && dz < shape.sz; ++dz)
            for (int dy = 0; ok && dy < shape.sy; ++dy)
              for (int dx = 0; ok && dx < shape.sx; ++dx) {
                TorusCoord c{ox + dx, oy + dy, oz + dz};
                const TorusNodeId n = torus.id_of(c);
                if (!state.is_free(n)) {
                  ok = false;
                  break;
                }
                if (static_cast<int>(nodes.size()) < num_nodes)
                  nodes.push_back(n);
              }
          if (ok) {
            nodes.resize(static_cast<std::size_t>(num_nodes));
            return nodes;
          }
        }
  }
  return std::nullopt;  // free space exists but no free cuboid fits
}

std::optional<std::vector<TorusNodeId>> first_fit_allocation(
    const TorusState& state, int num_nodes) {
  COMMSCHED_ASSERT(num_nodes >= 1);
  if (state.total_free() < num_nodes) return std::nullopt;
  std::vector<TorusNodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(num_nodes));
  for (TorusNodeId n = 0; n < state.torus().node_count(); ++n) {
    if (!state.is_free(n)) continue;
    nodes.push_back(n);
    if (static_cast<int>(nodes.size()) == num_nodes) return nodes;
  }
  return std::nullopt;
}

}  // namespace commsched
