// 3D-torus topology extension — the paper's §7 future work ("we would also
// like to extend our optimizations to other topologies using appropriate
// contention factor").
//
// Intrepid and Mira are physically Blue Gene tori; the paper evaluates them
// as trees because that is what SLURM's topology plugin models. This module
// carries the paper's machinery over to the real geometry:
//
//   d(i,j)  = wraparound Manhattan distance                  (replaces Eq. 4)
//   C(i,j)  = fraction of communication-intensive nodes inside the minimal
//             routing box spanned by i and j — the region whose links
//             dimension-ordered routing can use                (replaces Eqs. 2-3)
//   Hops    = d * (1 + C)                                     (Eq. 5 unchanged)
//   Cost    = sum over steps of max-pair Hops                 (Eq. 6 unchanged)
//
// and provides the torus analogue of the balanced allocator: compact
// sub-cuboid partitions (what the Blue Gene control system actually handed
// out) versus scattered free nodes. bench_torus quantifies the gap.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "collectives/schedule.hpp"

namespace commsched {

using TorusNodeId = std::int32_t;

struct TorusCoord {
  int x = 0;
  int y = 0;
  int z = 0;
  bool operator==(const TorusCoord&) const = default;
};

/// Immutable X x Y x Z torus geometry with wraparound links.
class Torus {
 public:
  Torus(int x, int y, int z);

  int dim_x() const noexcept { return x_; }
  int dim_y() const noexcept { return y_; }
  int dim_z() const noexcept { return z_; }
  int node_count() const noexcept { return x_ * y_ * z_; }

  TorusCoord coord_of(TorusNodeId n) const;
  TorusNodeId id_of(const TorusCoord& c) const;  ///< coordinates wrap

  /// Wraparound (shortest-path) distance along one dimension of size `dim`.
  static int ring_distance(int a, int b, int dim);

  /// Manhattan distance with wraparound — the dimension-ordered hop count.
  int distance(TorusNodeId a, TorusNodeId b) const;

 private:
  int x_, y_, z_;
};

/// Node occupancy on a torus (the ClusterState analogue, reduced to what
/// the cost evaluation needs: who is busy and who is communication-heavy).
class TorusState {
 public:
  explicit TorusState(const Torus& torus);

  const Torus& torus() const noexcept { return *torus_; }

  void occupy(std::span<const TorusNodeId> nodes, bool comm_intensive);
  void release(std::span<const TorusNodeId> nodes);

  bool is_free(TorusNodeId n) const;
  bool is_comm(TorusNodeId n) const;
  int total_free() const noexcept { return free_; }

 private:
  const Torus* torus_;
  std::vector<char> busy_;
  std::vector<char> comm_;
  int free_ = 0;
};

/// §7's "appropriate contention factor": the communication-intensive node
/// density inside the minimal wraparound box spanned by a and b (the links
/// dimension-ordered routing may traverse). In [0, 1].
double torus_contention(const TorusState& state, TorusNodeId a,
                        TorusNodeId b);

/// Hops(i,j) = d(i,j) * (1 + C(i,j)); 0 for i == j.
double torus_effective_hops(const TorusState& state, TorusNodeId a,
                            TorusNodeId b);

/// Eq. 6 over a rank -> node map and a collective schedule.
double torus_cost(const TorusState& state,
                  std::span<const TorusNodeId> nodes,
                  const CommSchedule& schedule);

/// Compact-partition allocation (the Blue Gene analogue of the balanced
/// policy): the free sub-cuboid with the smallest surface that holds
/// `num_nodes`, filled in x-major order. std::nullopt when no free cuboid
/// of the required volume exists.
std::optional<std::vector<TorusNodeId>> cuboid_allocation(
    const TorusState& state, int num_nodes);

/// Baseline scatter: the first `num_nodes` free nodes in id order (what a
/// topology-oblivious allocator hands out on a fragmented machine).
std::optional<std::vector<TorusNodeId>> first_fit_allocation(
    const TorusState& state, int num_nodes);

}  // namespace commsched
