// Invariant checking for commsched.
//
// COMMSCHED_ASSERT is an always-on precondition/invariant check (these guards
// sit on scheduling decisions, not inner loops, so the cost is negligible).
// Violations throw commsched::InvariantError so tests can assert on them and
// long-running simulations fail loudly instead of corrupting state.
#pragma once

#include <stdexcept>
#include <string>

namespace commsched {

/// Thrown when an internal invariant or precondition is violated.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::string what = std::string("invariant violated: ") + expr + " at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) what += " (" + msg + ")";
  throw InvariantError(what);
}
}  // namespace detail

}  // namespace commsched

#define COMMSCHED_ASSERT(expr)                                              \
  do {                                                                      \
    if (!(expr))                                                            \
      ::commsched::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
  } while (false)

#define COMMSCHED_ASSERT_MSG(expr, msg)                                     \
  do {                                                                      \
    if (!(expr))                                                            \
      ::commsched::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
  } while (false)
