// Invariant checking for commsched.
//
// COMMSCHED_ASSERT is an always-on precondition/invariant check (these guards
// sit on scheduling decisions, not inner loops, so the cost is negligible).
// Violations throw commsched::InvariantError so tests can assert on them and
// long-running simulations fail loudly instead of corrupting state.
//
// The comparison forms (COMMSCHED_ASSERT_EQ/NE/LT/LE/GT/GE) report both
// operand values in the violation message, so a failed check in a week-long
// trace replay says "expected free == 12, got 11" instead of just naming the
// expression. Operands are evaluated exactly once.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace commsched {

/// Thrown when an internal invariant or precondition is violated.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::string what = std::string("invariant violated: ") + expr + " at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) what += " (" + msg + ")";
  throw InvariantError(what);
}

/// Render an operand for a violation message via operator<<.
template <typename T>
std::string value_repr(const T& value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

[[noreturn]] inline void assert_cmp_fail(const char* lhs_expr, const char* op,
                                         const char* rhs_expr,
                                         const std::string& lhs_value,
                                         const std::string& rhs_value,
                                         const char* file, int line,
                                         const std::string& msg) {
  std::string what = std::string("invariant violated: ") + lhs_expr + " " +
                     op + " " + rhs_expr + " (with " + lhs_expr + " = " +
                     lhs_value + ", " + rhs_expr + " = " + rhs_value +
                     ") at " + file + ":" + std::to_string(line);
  if (!msg.empty()) what += " (" + msg + ")";
  throw InvariantError(what);
}

}  // namespace detail

}  // namespace commsched

#define COMMSCHED_ASSERT(expr)                                              \
  do {                                                                      \
    if (!(expr))                                                            \
      ::commsched::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
  } while (false)

#define COMMSCHED_ASSERT_MSG(expr, msg)                                     \
  do {                                                                      \
    if (!(expr))                                                            \
      ::commsched::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
  } while (false)

// Shared implementation of the comparison asserts. Operands bind to
// forwarding references so each is evaluated once even when the check fires.
#define COMMSCHED_ASSERT_CMP_(lhs, op, rhs, msg)                            \
  do {                                                                      \
    auto&& commsched_lhs_ = (lhs);                                          \
    auto&& commsched_rhs_ = (rhs);                                          \
    if (!(commsched_lhs_ op commsched_rhs_))                                \
      ::commsched::detail::assert_cmp_fail(                                 \
          #lhs, #op, #rhs, ::commsched::detail::value_repr(commsched_lhs_), \
          ::commsched::detail::value_repr(commsched_rhs_), __FILE__,        \
          __LINE__, (msg));                                                 \
  } while (false)

#define COMMSCHED_ASSERT_EQ(lhs, rhs) COMMSCHED_ASSERT_CMP_(lhs, ==, rhs, "")
#define COMMSCHED_ASSERT_NE(lhs, rhs) COMMSCHED_ASSERT_CMP_(lhs, !=, rhs, "")
#define COMMSCHED_ASSERT_LT(lhs, rhs) COMMSCHED_ASSERT_CMP_(lhs, <, rhs, "")
#define COMMSCHED_ASSERT_LE(lhs, rhs) COMMSCHED_ASSERT_CMP_(lhs, <=, rhs, "")
#define COMMSCHED_ASSERT_GT(lhs, rhs) COMMSCHED_ASSERT_CMP_(lhs, >, rhs, "")
#define COMMSCHED_ASSERT_GE(lhs, rhs) COMMSCHED_ASSERT_CMP_(lhs, >=, rhs, "")

#define COMMSCHED_ASSERT_EQ_MSG(lhs, rhs, msg) \
  COMMSCHED_ASSERT_CMP_(lhs, ==, rhs, (msg))
#define COMMSCHED_ASSERT_NE_MSG(lhs, rhs, msg) \
  COMMSCHED_ASSERT_CMP_(lhs, !=, rhs, (msg))
#define COMMSCHED_ASSERT_LT_MSG(lhs, rhs, msg) \
  COMMSCHED_ASSERT_CMP_(lhs, <, rhs, (msg))
#define COMMSCHED_ASSERT_LE_MSG(lhs, rhs, msg) \
  COMMSCHED_ASSERT_CMP_(lhs, <=, rhs, (msg))
#define COMMSCHED_ASSERT_GT_MSG(lhs, rhs, msg) \
  COMMSCHED_ASSERT_CMP_(lhs, >, rhs, (msg))
#define COMMSCHED_ASSERT_GE_MSG(lhs, rhs, msg) \
  COMMSCHED_ASSERT_CMP_(lhs, >=, rhs, (msg))
