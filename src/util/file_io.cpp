#include "util/file_io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/assert.hpp"

namespace commsched {

namespace {

[[noreturn]] void io_fail(const std::string& what, const std::string& path) {
  throw IoError(what + " '" + path + "': " + std::strerror(errno));
}

void create_parent_dirs(const std::string& path) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
  if (ec) throw IoError("cannot create directory '" + parent.string() +
                        "': " + ec.message());
}

}  // namespace

AppendFile::AppendFile(const std::string& path, bool truncate) : path_(path) {
  create_parent_dirs(path);
  int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  do {
    fd_ = ::open(path.c_str(), flags, 0644);
  } while (fd_ < 0 && errno == EINTR);
  if (fd_ < 0) io_fail("cannot open", path);
}

AppendFile::~AppendFile() { close(); }

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

void AppendFile::append_line(std::string_view line) {
  COMMSCHED_ASSERT_MSG(is_open(), "append_line on a closed AppendFile");
  COMMSCHED_ASSERT_MSG(line.find('\n') == std::string_view::npos,
                       "a stream line must not contain '\\n'");
  std::string buf;
  buf.reserve(line.size() + 1);
  buf.append(line);
  buf.push_back('\n');
  const char* p = buf.data();
  std::size_t left = buf.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_fail("write failed on", path_);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

void AppendFile::sync() {
  COMMSCHED_ASSERT_MSG(is_open(), "sync on a closed AppendFile");
  int rc;
  do {
    rc = ::fsync(fd_);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) io_fail("fsync failed on", path_);
}

void AppendFile::truncate_to(std::uint64_t size) {
  COMMSCHED_ASSERT_MSG(is_open(), "truncate_to on a closed AppendFile");
  int rc;
  do {
    rc = ::ftruncate(fd_, static_cast<off_t>(size));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) io_fail("ftruncate failed on", path_);
}

std::uint64_t AppendFile::size() const {
  COMMSCHED_ASSERT_MSG(is_open(), "size on a closed AppendFile");
  struct stat st{};
  if (::fstat(fd_, &st) < 0) io_fail("fstat failed on", path_);
  return static_cast<std::uint64_t>(st.st_size);
}

void AppendFile::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::vector<std::string> read_complete_lines(const std::string& path,
                                             std::uint64_t* valid_bytes) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw IoError("cannot read '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();

  std::vector<std::string> lines;
  std::size_t start = 0;
  std::size_t valid = 0;
  for (;;) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) break;  // trailing partial line (if any) dropped
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
    valid = start;
  }
  if (valid_bytes != nullptr) *valid_bytes = valid;
  return lines;
}

void write_file_atomic(const std::string& path, std::string_view content) {
  create_parent_dirs(path);
  const std::string tmp = path + ".tmp";
  int fd;
  do {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) io_fail("cannot open", tmp);

  const char* p = content.data();
  std::size_t left = content.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      io_fail("write failed on", tmp);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    ::close(fd);
    io_fail("fsync failed on", tmp);
  }
  ::close(fd);

  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) throw IoError("rename '" + tmp + "' -> '" + path +
                        "' failed: " + ec.message());
}

}  // namespace commsched
