// Crash-safe file primitives for the campaign persistence layer
// (DESIGN.md "Campaign persistence, sharding & resume").
//
// The campaign stream's durability contract is line-granular: a process
// killed at any instant leaves a file whose complete '\n'-terminated lines
// are all valid records, plus at most one partial trailing line that the
// loader drops (and the resuming writer truncates away). AppendFile gives
// the writer side — one write(2) per line on an O_APPEND descriptor, with
// explicit fsync — and read_complete_lines the loader side.
//
// POSIX-only (the project targets Linux). Failures throw IoError with the
// errno text; callers treat persistence errors as fatal rather than
// silently dropping results.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace commsched {

/// Thrown on filesystem failures in the persistence layer.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only line writer over a POSIX descriptor. Not thread-safe; the
/// campaign sink serializes access externally.
class AppendFile {
 public:
  AppendFile() = default;

  /// Open (creating parent directories and the file as needed) for
  /// appending; `truncate` discards existing content first.
  explicit AppendFile(const std::string& path, bool truncate = false);

  ~AppendFile();

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;

  bool is_open() const noexcept { return fd_ >= 0; }
  const std::string& path() const noexcept { return path_; }

  /// Append `line` plus a trailing '\n' as one write(2) call (looping only
  /// on EINTR/short writes). `line` must not itself contain '\n'.
  void append_line(std::string_view line);

  /// fsync(2) — the line is durable once this returns.
  void sync();

  /// Shrink the file to `size` bytes (drop a partial trailing line before
  /// resuming a stream).
  void truncate_to(std::uint64_t size);

  /// Current size in bytes (fstat).
  std::uint64_t size() const;

  void close() noexcept;

 private:
  int fd_ = -1;
  std::string path_;
};

/// Read a file and split it into its complete '\n'-terminated lines
/// (without the terminator). A partial trailing line is dropped; when
/// `valid_bytes` is non-null it receives the offset one past the last
/// complete line (the resume truncation point). Throws IoError when the
/// file cannot be read.
std::vector<std::string> read_complete_lines(const std::string& path,
                                             std::uint64_t* valid_bytes = nullptr);

/// Write `content` to `path` atomically: temp file in the same directory,
/// fsync, rename. Readers never observe a partial file. Creates parent
/// directories as needed.
void write_file_atomic(const std::string& path, std::string_view content);

}  // namespace commsched
