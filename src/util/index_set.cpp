#include "util/index_set.hpp"

#include <bit>

#include "util/assert.hpp"

namespace commsched {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t words_for(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}
}  // namespace

void IndexSet::reset(std::size_t universe) {
  universe_ = universe;
  count_ = 0;
  levels_.clear();
  std::size_t bits = universe == 0 ? 1 : universe;
  for (;;) {
    const std::size_t words = words_for(bits);
    levels_.emplace_back(words, std::uint64_t{0});
    if (words == 1) break;
    bits = words;
  }
}

bool IndexSet::contains(std::size_t r) const {
  COMMSCHED_ASSERT_LT_MSG(r, universe_, "IndexSet element out of range");
  return (levels_[0][r / kWordBits] >> (r % kWordBits)) & 1u;
}

// hot-path: no-alloc
void IndexSet::insert(std::size_t r) {
  COMMSCHED_ASSERT_LT_MSG(r, universe_, "IndexSet element out of range");
  if (contains(r)) return;
  ++count_;
  for (auto& level : levels_) {
    const std::size_t word = r / kWordBits;
    const std::uint64_t bit = std::uint64_t{1} << (r % kWordBits);
    const bool was_empty = level[word] == 0;
    level[word] |= bit;
    if (!was_empty) return;  // summaries above are already set
    r = word;
  }
}

// hot-path: no-alloc
void IndexSet::erase(std::size_t r) {
  COMMSCHED_ASSERT_LT_MSG(r, universe_, "IndexSet element out of range");
  if (!contains(r)) return;
  --count_;
  for (auto& level : levels_) {
    const std::size_t word = r / kWordBits;
    const std::uint64_t bit = std::uint64_t{1} << (r % kWordBits);
    level[word] &= ~bit;
    if (level[word] != 0) return;  // word still summarized as non-empty
    r = word;
  }
}

// hot-path: no-alloc
std::size_t IndexSet::first() const {
  if (count_ == 0) return npos;
  // Descend from the single top word, following lowest set bits.
  std::size_t word = 0;
  for (std::size_t k = levels_.size(); k-- > 0;) {
    const std::uint64_t w = levels_[k][word];
    COMMSCHED_ASSERT_MSG(w != 0, "IndexSet summary desynchronized");
    word = word * kWordBits +
           static_cast<std::size_t>(std::countr_zero(w));
  }
  return word;
}

// hot-path: no-alloc
std::size_t IndexSet::next(std::size_t r) const {
  COMMSCHED_ASSERT_LT_MSG(r, universe_, "IndexSet element out of range");
  // Climb until a word holds a set bit above the current position, then
  // descend to the lowest set bit of that subtree.
  std::size_t k = 0;
  std::size_t pos = r;
  for (; k < levels_.size(); ++k) {
    const std::size_t word = pos / kWordBits;
    const std::size_t bit = pos % kWordBits;
    if (bit + 1 < kWordBits) {
      const std::uint64_t above = levels_[k][word] >> (bit + 1);
      if (above != 0) {
        pos = word * kWordBits + bit + 1 +
              static_cast<std::size_t>(std::countr_zero(above));
        break;
      }
    }
    pos = word;
  }
  if (k == levels_.size()) return npos;
  for (std::size_t j = k; j-- > 0;) {
    const std::uint64_t w = levels_[j][pos];
    COMMSCHED_ASSERT_MSG(w != 0, "IndexSet summary desynchronized");
    pos = pos * kWordBits + static_cast<std::size_t>(std::countr_zero(w));
  }
  return pos < universe_ ? pos : npos;
}

}  // namespace commsched
