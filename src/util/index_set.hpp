// Hierarchical-bitmap ordered set over a fixed universe [0, n).
//
// The million-job scheduler event loop (DESIGN.md "Million-job event loop")
// needs a pending-queue index with O(log n) insert/erase and in-order
// traversal that never allocates after construction. IndexSet stores one bit
// per universe element plus a 64-ary summary tree over the words: every
// operation touches at most ceil(log64 n) + 1 cache lines, and all storage
// is reserved up front by reset(), so steady-state scheduler events perform
// no heap allocation.
//
// The element values are *ranks* in some externally defined total order
// (e.g. the queue-policy order of a job log); the set itself is just a fast
// ordered bag of integers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace commsched {

class IndexSet {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  IndexSet() = default;
  explicit IndexSet(std::size_t universe) { reset(universe); }

  /// Resize to an empty set over [0, universe). The only allocating call.
  void reset(std::size_t universe);

  std::size_t universe() const noexcept { return universe_; }
  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  bool contains(std::size_t r) const;

  // hot-path: no-alloc
  void insert(std::size_t r);

  // hot-path: no-alloc
  void erase(std::size_t r);

  /// Smallest element, or npos when empty.
  // hot-path: no-alloc
  std::size_t first() const;

  /// Smallest element strictly greater than `r`, or npos.
  // hot-path: no-alloc
  std::size_t next(std::size_t r) const;

 private:
  // levels_[0] holds the element bits; levels_[k][w] bit b summarizes
  // whether word (w * 64 + b) of level k-1 is non-zero. The top level is a
  // single word.
  std::vector<std::vector<std::uint64_t>> levels_;
  std::size_t universe_ = 0;
  std::size_t count_ = 0;
};

}  // namespace commsched
