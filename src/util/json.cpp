#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <system_error>

#include "util/assert.hpp"

namespace commsched {

namespace {

[[noreturn]] void parse_fail(const std::string& what) { throw ParseError("json: " + what); }

void append_u16_as_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) parse_fail("trailing characters after value");
    return v;
  }

 private:
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char next() {
    if (pos_ >= text_.size()) parse_fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  void expect_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      parse_fail("invalid literal at offset " + std::to_string(pos_));
    pos_ += word.size();
  }

  JsonValue parse_value() {
    switch (peek()) {
      case 'n': expect_literal("null"); return JsonValue::null();
      case 't': expect_literal("true"); return JsonValue::boolean(true);
      case 'f': expect_literal("false"); return JsonValue::boolean(false);
      case '"': return JsonValue::string(parse_string());
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else parse_fail("invalid \\u escape");
    }
    return v;
  }

  std::string parse_string() {
    if (next() != '"') parse_fail("expected string");
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        parse_fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = next();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (next() != '\\' || next() != 'u')
              parse_fail("unpaired surrogate in \\u escape");
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF)
              parse_fail("invalid low surrogate in \\u escape");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            parse_fail("unpaired surrogate in \\u escape");
          }
          append_u16_as_utf8(out, cp);
          break;
        }
        default: parse_fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (peek() < '0' || peek() > '9')
      parse_fail("invalid value at offset " + std::to_string(start));
    while (peek() >= '0' && peek() <= '9') ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (peek() < '0' || peek() > '9') parse_fail("digit required after '.'");
      while (peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (peek() < '0' || peek() > '9') parse_fail("digit required in exponent");
      while (peek() >= '0' && peek() <= '9') ++pos_;
    }
    return JsonValue::number(std::string(text_.substr(start, pos_ - start)));
  }

  JsonValue parse_array() {
    (void)next();  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') return JsonValue::array(std::move(items));
      if (c != ',') parse_fail("expected ',' or ']' in array");
      skip_ws();
    }
  }

  JsonValue parse_object() {
    (void)next();  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      if (next() != ':') parse_fail("expected ':' after object key");
      skip_ws();
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') return JsonValue::object(std::move(members));
      if (c != ',') parse_fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

std::string json_number(double v) {
  COMMSCHED_ASSERT_MSG(std::isfinite(v), "JSON numbers must be finite");
  char buf[64];
  const std::to_chars_result res = std::to_chars(buf, buf + sizeof(buf), v);
  COMMSCHED_ASSERT_MSG(res.ec == std::errc(), "double formatting failed");
  return std::string(buf, res.ptr);
}

JsonValue JsonValue::null() { return JsonValue(); }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(std::string raw) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.scalar_ = std::move(raw);
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.scalar_ = std::move(s);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) parse_fail("value is not a boolean");
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) parse_fail("value is not a number");
  double out = 0.0;
  const char* first = scalar_.data();
  const char* last = first + scalar_.size();
  const std::from_chars_result res = std::from_chars(first, last, out);
  if (res.ec != std::errc() || res.ptr != last)
    parse_fail("number out of double range: " + scalar_);
  return out;
}

std::int64_t JsonValue::as_int64() const {
  if (kind_ != Kind::kNumber) parse_fail("value is not a number");
  std::int64_t out = 0;
  const char* first = scalar_.data();
  const char* last = first + scalar_.size();
  const std::from_chars_result res = std::from_chars(first, last, out);
  if (res.ec != std::errc() || res.ptr != last)
    parse_fail("number is not an int64: " + scalar_);
  return out;
}

std::uint64_t JsonValue::as_uint64() const {
  if (kind_ != Kind::kNumber) parse_fail("value is not a number");
  std::uint64_t out = 0;
  const char* first = scalar_.data();
  const char* last = first + scalar_.size();
  const std::from_chars_result res = std::from_chars(first, last, out);
  if (res.ec != std::errc() || res.ptr != last)
    parse_fail("number is not a uint64: " + scalar_);
  return out;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) parse_fail("value is not a string");
  return scalar_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) parse_fail("value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) parse_fail("value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) parse_fail("value is not an object");
  for (const auto& [name, value] : members_)
    if (name == key) return &value;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) parse_fail("missing object key: " + std::string(key));
  return *v;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace commsched
