// Minimal JSON reading/writing for the campaign persistence layer
// (DESIGN.md "Campaign persistence, sharding & resume").
//
// The campaign stream (exp/sink.hpp) and the campaign JSON emitter
// (exp/emit.hpp) need exactly two properties from their serialization:
//
//   1. *Exact* round-trips. Doubles are written with the shortest
//      representation that std::from_chars parses back to the identical
//      bits (std::to_chars), and 64-bit integers (seeds, fingerprints) are
//      preserved digit for digit — a resumed campaign must reproduce the
//      uninterrupted run's reduced CSV byte for byte.
//   2. Determinism. Writers are plain string builders (callers control
//      field order); the parser keeps object members in document order.
//
// This is intentionally not a general JSON library: no DOM mutation, no
// formatting options, no streaming. parse_json handles the full value
// grammar (incl. \uXXXX escapes with surrogate pairs) so foreign files are
// read correctly, and throws ParseError on malformed input.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/strings.hpp"

namespace commsched {

/// Escape a string's content for embedding inside a JSON string literal
/// (no surrounding quotes): ", \, and control characters. Non-ASCII bytes
/// pass through verbatim (the files are UTF-8).
std::string json_escape(std::string_view s);

/// `"escaped"` — json_escape with surrounding quotes.
std::string json_quote(std::string_view s);

/// Shortest round-trip decimal form of a finite double (std::to_chars):
/// parse_json(...).as_double() returns the identical bits. Throws
/// InvariantError on NaN/infinity (not representable in JSON).
std::string json_number(double v);

/// A parsed JSON value. Accessors throw ParseError when the value's kind
/// does not match (so malformed campaign streams fail loudly, not with
/// default-constructed garbage).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  static JsonValue null();
  static JsonValue boolean(bool b);
  /// `raw` is the number's source text (kept verbatim for exact integer
  /// and double round-trips).
  static JsonValue number(std::string raw);
  static JsonValue string(std::string s);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(std::vector<std::pair<std::string, JsonValue>> members);

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }

  bool as_bool() const;
  /// Exact bits of the source text (std::from_chars).
  double as_double() const;
  /// Throws unless the number is a plain base-10 integer in range.
  std::int64_t as_int64() const;
  std::uint64_t as_uint64() const;
  const std::string& as_string() const;

  /// Array elements (throws unless kind() == kArray).
  const std::vector<JsonValue>& items() const;

  /// Object members in document order (throws unless kind() == kObject).
  const std::vector<std::pair<std::string, JsonValue>>& members() const;
  /// First member with the given key; nullptr when absent.
  const JsonValue* find(std::string_view key) const;
  /// find() that throws ParseError naming the missing key.
  const JsonValue& at(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;  // number source text, or string value
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse one complete JSON document (trailing whitespace allowed, anything
/// else after the value throws). Throws ParseError on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace commsched
