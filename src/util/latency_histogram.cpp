#include "util/latency_histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace commsched {

std::size_t LatencyHistogram::bucket_of(std::uint64_t value) noexcept {
  if (value < kLinear) return static_cast<std::size_t>(value);
  // v in [2^e, 2^(e+1)): range index (e - kLinearBits), sub-bucket from the
  // kLinearBits bits below the leading one.
  const int e = std::bit_width(value) - 1;  // >= kLinearBits
  const std::uint64_t sub = (value >> (e - kLinearBits)) & (kLinear - 1);
  return kLinear +
         static_cast<std::size_t>(e - kLinearBits) * kLinear +
         static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::bucket_upper(std::size_t bucket) noexcept {
  if (bucket < kLinear) return bucket;
  const std::size_t range = (bucket - kLinear) / kLinear;
  const std::uint64_t sub = (bucket - kLinear) % kLinear;
  const int e = static_cast<int>(range) + kLinearBits;
  const std::uint64_t lower =
      (std::uint64_t{1} << e) + (sub << (e - kLinearBits));
  const std::uint64_t width = std::uint64_t{1} << (e - kLinearBits);
  return lower + width - 1;
}

void LatencyHistogram::record(std::uint64_t value) noexcept {
  ++counts_[bucket_of(value)];
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value);
}

double LatencyHistogram::mean() const noexcept {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::uint64_t LatencyHistogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const double want = p / 100.0 * static_cast<double>(count_);
  std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(want));
  if (target == 0) target = 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (seen >= target)
      return std::clamp(bucket_upper(b), min_, max_);
  }
  return max_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
  count_ += other.count_;
  if (other.count_) {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
}

}  // namespace commsched
