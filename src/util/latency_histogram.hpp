// Log-linear latency histogram (DESIGN.md "Allocator service").
//
// HDR-histogram-style binning over unsigned nanosecond values: exact counts
// below 32 ns, then 32 linear sub-buckets per power-of-two range, giving a
// worst-case quantile error of ~3% at any magnitude with a fixed ~2 KB
// footprint. record() is a couple of shifts — cheap enough to sit on the
// load generator's per-response path at millions of requests — and
// histograms merge exactly, so per-connection recorders reduce to one
// machine-wide distribution without resampling.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace commsched {

class LatencyHistogram {
 public:
  /// Record one sample (any u64; typically nanoseconds).
  void record(std::uint64_t value) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return count_ ? max_ : 0; }
  /// Mean of the exact recorded values (sums are kept exactly).
  double mean() const noexcept;

  /// Smallest recorded-bucket upper bound covering at least p percent of
  /// the samples (p in [0, 100]; p = 0 returns min()). The true sample
  /// quantile lies within one sub-bucket (~3%) below the returned value.
  /// Returns 0 on an empty histogram.
  std::uint64_t percentile(double p) const noexcept;

  /// Exact pointwise sum of two histograms.
  void merge(const LatencyHistogram& other) noexcept;

  /// Bucket count of the fixed layout (for tests).
  static constexpr std::size_t bucket_count() noexcept { return kBuckets; }

 private:
  // Values < kLinear are their own bucket; value v >= kLinear with bit
  // width w lands in range (w - kLinearBits) at sub-bucket
  // (v >> (w - kLinearBits - 1)) & (kLinear/2 - 1)... see bucket_of.
  static constexpr std::uint64_t kLinear = 32;   // exact region bound
  static constexpr int kLinearBits = 5;          // log2(kLinear)
  static constexpr std::size_t kBuckets =
      kLinear + (64 - kLinearBits) * kLinear;

  static std::size_t bucket_of(std::uint64_t value) noexcept;
  static std::uint64_t bucket_upper(std::size_t bucket) noexcept;

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace commsched
