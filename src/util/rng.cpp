#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace commsched {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // SplitMix64 stream seeded at `seed` (the stateless mixer in rng.hpp is
  // exactly one step of this stream).
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
    s += 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  COMMSCHED_ASSERT(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire-style rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t x;
  do {
    x = (*this)();
  } while (x > limit);
  return lo + static_cast<std::int64_t>(x % range);
}

double Rng::uniform_real(double lo, double hi) {
  COMMSCHED_ASSERT(lo <= hi);
  // 53 random bits -> [0, 1) double.
  const double u = static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

double Rng::normal() {
  // Box–Muller; reject u1 == 0 so log() is finite.
  double u1 = 0.0;
  while (u1 == 0.0) u1 = uniform_real(0.0, 1.0);
  const double u2 = uniform_real(0.0, 1.0);
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * normal());
}

double Rng::exponential(double mean) {
  COMMSCHED_ASSERT(mean > 0.0);
  double u = 0.0;
  while (u == 0.0) u = uniform_real(0.0, 1.0);
  return -mean * std::log(u);
}

double Rng::weibull(double shape, double scale) {
  COMMSCHED_ASSERT(shape > 0.0 && scale > 0.0);
  double u = 0.0;
  while (u == 0.0) u = uniform_real(0.0, 1.0);
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

// hot-path: no-alloc
bool Rng::bernoulli(double p) {
  COMMSCHED_ASSERT(p >= 0.0 && p <= 1.0);
  return uniform_real(0.0, 1.0) < p;
}

std::size_t Rng::discrete(std::span<const double> weights) {
  COMMSCHED_ASSERT(!weights.empty());
  double total = 0.0;
  for (const double w : weights) {
    COMMSCHED_ASSERT_MSG(w >= 0.0, "discrete() weights must be non-negative");
    total += w;
  }
  COMMSCHED_ASSERT_MSG(total > 0.0, "discrete() weights must not all be zero");
  double x = uniform_real(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: fell off the end
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  COMMSCHED_ASSERT(k <= n);
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher–Yates: after k swaps the first k entries are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace commsched
