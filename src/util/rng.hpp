// Deterministic random number generation for workload synthesis and
// experiment sampling.
//
// All randomness in commsched flows through Rng so that every experiment is
// reproducible from a single seed.  The generator is xoshiro256**, seeded via
// SplitMix64, which is both fast and statistically strong — important when a
// single benchmark draws millions of variates for synthetic job logs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace commsched {

/// One SplitMix64 step as a stateless mixer: advance `x` by the golden-gamma
/// increment and return the finalized output. Used to derive decorrelated
/// child seeds from a base seed plus an index (e.g. one SA stream per job:
/// `splitmix64(base ^ splitmix64(job))`), so per-entity randomness is
/// reproducible without any shared generator state.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  std::uint64_t z = x + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic PRNG (xoshiro256**) with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator so it can also be handed to
/// <random> distributions, but the built-in helpers below are preferred:
/// they are guaranteed stable across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Next raw 64-bit value.
  std::uint64_t operator()() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Standard normal variate (Box–Muller, stable across platforms).
  double normal();

  /// Lognormal variate: exp(mu + sigma * N(0,1)).
  double lognormal(double mu, double sigma);

  /// Exponential variate with the given mean. Requires mean > 0.
  double exponential(double mean);

  /// Weibull variate with given shape k and scale lambda.
  double weibull(double shape, double scale);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Index drawn from the discrete distribution given by `weights`
  /// (non-negative, not all zero).
  std::size_t discrete(std::span<const double> weights);

  /// Fisher–Yates shuffle (stable across platforms, unlike std::shuffle).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Draw k distinct indices from [0, n) in random order. Requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  std::uint64_t state_[4];
};

}  // namespace commsched
