#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace commsched {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return sum(xs) / static_cast<double>(xs.size());
}

double sum(std::span<const double> xs) {
  double s = 0.0;
  for (const double x : xs) s += x;
  return s;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  COMMSCHED_ASSERT(!xs.empty());
  COMMSCHED_ASSERT(p >= 0.0 && p <= 100.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) {
  COMMSCHED_ASSERT(xs.size() == ys.size());
  COMMSCHED_ASSERT(xs.size() >= 2);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Histogram::Histogram(std::vector<double> bin_edges) : edges(std::move(bin_edges)) {
  COMMSCHED_ASSERT_MSG(edges.size() >= 2, "histogram needs at least one bin");
  COMMSCHED_ASSERT_MSG(std::is_sorted(edges.begin(), edges.end()),
                       "histogram edges must be sorted");
  counts.assign(edges.size() - 1, 0);
  sums.assign(edges.size() - 1, 0.0);
}

std::size_t Histogram::bin_of(double x) const {
  if (x < edges.front()) return 0;
  if (x >= edges.back()) return counts.size() - 1;
  const auto it = std::upper_bound(edges.begin(), edges.end(), x);
  const auto idx = static_cast<std::size_t>(it - edges.begin());
  return idx == 0 ? 0 : idx - 1;
}

void Histogram::add(double x, double weight) {
  const std::size_t b = bin_of(x);
  counts[b] += 1;
  sums[b] += weight;
}

double Histogram::bin_mean(std::size_t bin) const {
  COMMSCHED_ASSERT(bin < counts.size());
  return counts[bin] == 0 ? 0.0 : sums[bin] / static_cast<double>(counts[bin]);
}

}  // namespace commsched
