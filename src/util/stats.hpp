// Small descriptive-statistics toolkit used by the metrics and netsim layers:
// running summaries, percentiles, Pearson correlation, and histogram binning.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace commsched {

/// Single-pass running summary (Welford's algorithm for the variance).
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< sample variance (n-1 denominator)
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

double mean(std::span<const double> xs);
double sum(std::span<const double> xs);
double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
double percentile(std::span<const double> xs, double p);

/// Pearson correlation coefficient; 0 when either series is constant.
/// Requires xs.size() == ys.size() and size >= 2.
double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys);

/// A histogram over explicit bin edges: edges of size k+1 define k bins
/// [e0,e1), [e1,e2), ..., [e_{k-1}, e_k]. Values outside are clamped into
/// the first/last bin.
struct Histogram {
  std::vector<double> edges;
  std::vector<std::size_t> counts;
  std::vector<double> sums;  ///< per-bin sum of added values' weights

  explicit Histogram(std::vector<double> bin_edges);
  void add(double x, double weight = 1.0);
  std::size_t bin_of(double x) const;
  std::size_t bin_count() const { return counts.size(); }
  /// Mean weight in the bin, 0 if the bin is empty.
  double bin_mean(std::size_t bin) const;
};

}  // namespace commsched
