#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

#include "util/assert.hpp"

namespace commsched {

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::optional<long long> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

namespace {

// Expand one "prefix[ranges]" or plain-name expression into `out`.
void expand_one(std::string_view expr, std::vector<std::string>& out) {
  const auto lb = expr.find('[');
  if (lb == std::string_view::npos) {
    if (expr.find(']') != std::string_view::npos)
      throw ParseError("hostlist: ']' without '[' in '" + std::string(expr) + "'");
    if (!expr.empty()) out.emplace_back(expr);
    return;
  }
  const auto rb = expr.find(']', lb);
  if (rb == std::string_view::npos)
    throw ParseError("hostlist: unterminated '[' in '" + std::string(expr) + "'");
  if (rb != expr.size() - 1)
    throw ParseError("hostlist: trailing text after ']' in '" +
                     std::string(expr) + "'");
  const std::string prefix(expr.substr(0, lb));
  const std::string_view body = expr.substr(lb + 1, rb - lb - 1);
  if (body.empty())
    throw ParseError("hostlist: empty range in '" + std::string(expr) + "'");

  for (const auto& piece : split(body, ',')) {
    const auto dash = piece.find('-');
    const auto emit = [&](std::string_view numtext, long long value) {
      // Preserve zero padding of the low bound's textual width.
      std::string num = std::to_string(value);
      if (numtext.size() > num.size())
        num.insert(0, numtext.size() - num.size(), '0');
      out.push_back(prefix + num);
    };
    if (dash == std::string::npos) {
      const auto v = parse_int(piece);
      if (!v) throw ParseError("hostlist: bad index '" + piece + "'");
      emit(piece, *v);
    } else {
      const std::string_view lo_text = std::string_view(piece).substr(0, dash);
      const std::string_view hi_text = std::string_view(piece).substr(dash + 1);
      const auto lo = parse_int(lo_text);
      const auto hi = parse_int(hi_text);
      if (!lo || !hi || *lo > *hi)
        throw ParseError("hostlist: bad range '" + piece + "'");
      for (long long v = *lo; v <= *hi; ++v) emit(lo_text, v);
    }
  }
}

// Split a comma-separated list of hostlist expressions, respecting brackets.
std::vector<std::string> split_exprs(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (const char c : s) {
    if (c == '[') ++depth;
    if (c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

struct NameParts {
  std::string prefix;
  std::string numtext;  // textual digits (may be zero padded); empty if none
  long long value = -1;
};

NameParts parse_name(const std::string& name) {
  std::size_t i = name.size();
  while (i > 0 && std::isdigit(static_cast<unsigned char>(name[i - 1]))) --i;
  NameParts p;
  p.prefix = name.substr(0, i);
  p.numtext = name.substr(i);
  if (!p.numtext.empty()) p.value = *parse_int(p.numtext);
  return p;
}

}  // namespace

std::vector<std::string> expand_hostlist(std::string_view expr) {
  std::vector<std::string> out;
  for (const auto& piece : split_exprs(trim(expr))) {
    const auto t = trim(piece);
    if (!t.empty()) expand_one(t, out);
  }
  return out;
}

std::string compress_hostlist(const std::vector<std::string>& hosts) {
  if (hosts.empty()) return "";
  // Group consecutive entries with identical prefix and numeric width
  // pattern; emit bracket ranges for runs of consecutive values.
  std::string result;
  std::size_t i = 0;
  while (i < hosts.size()) {
    const NameParts first = parse_name(hosts[i]);
    if (first.numtext.empty()) {
      if (!result.empty()) result += ',';
      result += hosts[i];
      ++i;
      continue;
    }
    // Collect the run of same-prefix, same-padding hosts.
    std::vector<NameParts> run{first};
    std::size_t j = i + 1;
    while (j < hosts.size()) {
      const NameParts p = parse_name(hosts[j]);
      if (p.prefix != first.prefix || p.numtext.empty() ||
          p.numtext.size() != first.numtext.size())
        break;
      run.push_back(p);
      ++j;
    }
    if (!result.empty()) result += ',';
    result += first.prefix + "[";
    std::string ranges;
    std::size_t k = 0;
    while (k < run.size()) {
      std::size_t end = k;
      while (end + 1 < run.size() && run[end + 1].value == run[end].value + 1)
        ++end;
      if (!ranges.empty()) ranges += ',';
      ranges += run[k].numtext;
      if (end > k) ranges += "-" + run[end].numtext;
      k = end + 1;
    }
    result += ranges + "]";
    i = j;
  }
  return result;
}

std::string format_double(double v, int precision) {
  // std::to_chars is locale-independent; snprintf("%.*f") reads LC_NUMERIC
  // and would change the decimal point under e.g. de_DE, breaking
  // byte-stable CSV/JSONL output. Fixed notation needs up to ~310 digits
  // before the point, plus the requested fraction digits.
  char buf[1200];
  const int p = std::clamp(precision, 0, 800);
  const auto res = std::to_chars(buf, buf + sizeof buf, v,
                                 std::chars_format::fixed, p);
  COMMSCHED_ASSERT(res.ec == std::errc());
  return std::string(buf, res.ptr);
}

}  // namespace commsched
