// String utilities used across the library: tokenizing, trimming, numeric
// parsing with error reporting, and SLURM hostlist expressions.
//
// SLURM topology.conf (and its node lists in general) uses a compact
// "hostlist" notation such as "n[0-3,8,10-11]" that expands to
// n0 n1 n2 n3 n8 n10 n11.  expand_hostlist/compress_hostlist implement the
// subset of that grammar needed for topology files (a single bracket group,
// optionally zero-padded indices), which covers the files SLURM itself emits.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace commsched {

/// Thrown on malformed input text (topology.conf, SWF logs, hostlists, ...).
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Remove leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty tokens are kept.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on arbitrary whitespace runs; empty tokens are dropped.
std::vector<std::string> split_ws(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

/// Parse a non-negative integer; std::nullopt on malformed input.
std::optional<long long> parse_int(std::string_view s);

/// Parse a floating-point value; std::nullopt on malformed input.
std::optional<double> parse_double(std::string_view s);

/// Expand a SLURM hostlist expression ("n[0-3,7]", "gpu[01-03]", or a plain
/// name "login1") into the individual host names, preserving zero padding.
/// Comma-separated lists of such expressions are also accepted.
/// Throws ParseError on malformed expressions.
std::vector<std::string> expand_hostlist(std::string_view expr);

/// Compress host names sharing a common alphabetic prefix back into a
/// hostlist expression. Names that do not fit the prefix+number pattern are
/// emitted verbatim, comma-separated.
std::string compress_hostlist(const std::vector<std::string>& hosts);

/// printf-style double formatting helper ("%.2f" etc.) returning std::string.
std::string format_double(double v, int precision);

}  // namespace commsched
