#include "util/table.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace commsched {

void TextTable::set_header(std::vector<std::string> header) {
  COMMSCHED_ASSERT_MSG(rows_.empty(), "set_header before adding rows");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (!header_.empty())
    COMMSCHED_ASSERT_MSG(row.size() == header_.size(),
                         "row width must match header width");
  if (!rows_.empty())
    COMMSCHED_ASSERT_MSG(row.size() == rows_.front().size(),
                         "row width must match previous rows");
  rows_.push_back(std::move(row));
}

std::string TextTable::render(int indent) const {
  const std::size_t ncols =
      !header_.empty() ? header_.size() : (rows_.empty() ? 0 : rows_[0].size());
  if (ncols == 0) return "";

  std::vector<std::size_t> width(ncols, 0);
  const auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < ncols; ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const auto emit = [&](const std::vector<std::string>& row) {
    out << pad;
    for (std::size_t c = 0; c < ncols; ++c) {
      if (c) out << "  ";
      out << row[c];
      if (c + 1 < ncols)
        out << std::string(width[c] - row[c].size(), ' ');
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    out << pad;
    for (std::size_t c = 0; c < ncols; ++c) {
      if (c) out << "  ";
      out << std::string(width[c], '-');
    }
    out << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

namespace {
// RFC-4180 quoting, applied when the field contains a comma, quote, CR/LF,
// or leading/trailing whitespace (unquoted edge whitespace is legal per the
// RFC but silently stripped by several common readers — mix/machine/variant
// labels like " X (extension)" must survive a round trip unchanged).
std::string csv_escape(const std::string& s) {
  const bool edge_ws =
      !s.empty() && (s.front() == ' ' || s.back() == ' ' ||
                     s.front() == '\t' || s.back() == '\t');
  if (!edge_ws && s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TextTable::render_csv() const {
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool TextTable::write_csv(const std::string& path) const {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << render_csv();
  return static_cast<bool>(f);
}

std::string cell(double v, int precision) { return format_double(v, precision); }

}  // namespace commsched
