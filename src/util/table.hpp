// Text-table and CSV rendering for benchmark harnesses.
//
// Benchmark binaries print tables shaped like the paper's (Table 3, Table 4,
// ...) and also dump machine-readable CSV alongside.  TextTable handles
// alignment and separators; the same cell matrix feeds both renderers.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace commsched {

/// Column-aligned text table with an optional header row.
class TextTable {
 public:
  /// Set the header row (also fixes the column count).
  void set_header(std::vector<std::string> header);

  /// Append a data row; must match the header width if a header was set.
  void add_row(std::vector<std::string> row);

  /// Number of data rows.
  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with column alignment, a rule under the header, and `indent`
  /// leading spaces on every line.
  std::string render(int indent = 0) const;

  /// Render as CSV (RFC-4180 quoting where needed).
  std::string render_csv() const;

  /// Write the CSV rendering to a file, creating parent directories.
  /// Returns false (and leaves no partial file) on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convenience: "12.35" style fixed formatting (wraps format_double).
std::string cell(double v, int precision = 2);

}  // namespace commsched
