#include "util/thread_pool.hpp"

#include <cstdlib>
#include <string>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace commsched {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = default_thread_count();
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  COMMSCHED_ASSERT_MSG(static_cast<bool>(task), "cannot submit empty task");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    COMMSCHED_ASSERT_MSG(!stopping_, "submit after ThreadPool shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

int ThreadPool::default_thread_count() {
  if (const char* v = std::getenv("COMMSCHED_THREADS");
      v != nullptr && *v != '\0') {
    const auto parsed = parse_int(v);
    COMMSCHED_ASSERT_MSG(parsed.has_value() && *parsed > 0,
                         "COMMSCHED_THREADS must be a positive integer");
    return static_cast<int>(*parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // tasks are noexcept by contract (see header)
    bool now_idle = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      now_idle = --in_flight_ == 0;
    }
    if (now_idle) idle_.notify_all();
  }
}

}  // namespace commsched
