// Fixed-size worker pool for the campaign engine (src/exp) and any other
// embarrassingly parallel fan-out.
//
// Deliberately minimal: submit void() tasks, wait until all of them have
// drained. Determinism is the caller's job — the pool makes no ordering
// promises beyond "every submitted task runs exactly once", so callers that
// need reproducible output must write results into pre-indexed slots and
// reduce in index order (see DESIGN.md "Campaign engine & parallel
// execution").
//
// The pool size defaults to the COMMSCHED_THREADS environment variable,
// falling back to std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace commsched {

class ThreadPool {
 public:
  /// Spawn `threads` workers; <= 0 uses default_thread_count().
  explicit ThreadPool(int threads = 0);

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Enqueue a task. Tasks must not throw — wrap fallible work and capture
  /// the exception (std::exception_ptr) for rethrow on the calling thread.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  /// COMMSCHED_THREADS when set (must be a positive integer), otherwise
  /// std::thread::hardware_concurrency(), never below 1.
  static int default_thread_count();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing tasks
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Run `count` independent cells `fn(0..count-1)` on a pool of `threads`
/// workers and return the results in index order — bit-identical at any
/// thread count as long as `fn` itself is deterministic per index. The
/// first exception thrown by any cell (lowest index wins) is rethrown on
/// the calling thread after the pool drains. `threads` <= 0 uses
/// ThreadPool::default_thread_count().
template <typename T>
std::vector<T> run_indexed(int threads, std::size_t count,
                           const std::function<T(std::size_t)>& fn);

}  // namespace commsched

#include "util/thread_pool_impl.hpp"
