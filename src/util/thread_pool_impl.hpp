// Template implementation detail of util/thread_pool.hpp (run_indexed).
// Include thread_pool.hpp, not this file.
#pragma once

#include <exception>
#include <optional>
#include <utility>

#include "util/assert.hpp"

namespace commsched {

template <typename T>
std::vector<T> run_indexed(int threads, std::size_t count,
                           const std::function<T(std::size_t)>& fn) {
  COMMSCHED_ASSERT_MSG(static_cast<bool>(fn), "run_indexed needs a callable");
  std::vector<std::optional<T>> slots(count);
  std::vector<std::exception_ptr> errors(count);
  {
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < count; ++i) {
      pool.submit([&, i] {
        try {
          slots[i].emplace(fn(i));
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  for (std::size_t i = 0; i < count; ++i)
    if (errors[i]) std::rethrow_exception(errors[i]);
  std::vector<T> results;
  results.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    results.push_back(std::move(*slots[i]));
  return results;
}

}  // namespace commsched
