#include "util/wire.hpp"

#include <limits>

namespace commsched {

void WireWriter::u16(std::uint16_t v) {
  out_->push_back(static_cast<std::uint8_t>(v));
  out_->push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  out_->push_back(static_cast<std::uint8_t>(v));
  out_->push_back(static_cast<std::uint8_t>(v >> 8));
  out_->push_back(static_cast<std::uint8_t>(v >> 16));
  out_->push_back(static_cast<std::uint8_t>(v >> 24));
}

void WireWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out_->push_back(static_cast<std::uint8_t>(v >> shift));
}

void WireWriter::bytes(std::span<const std::uint8_t> data) {
  out_->insert(out_->end(), data.begin(), data.end());
}

std::size_t WireReader::take(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return std::numeric_limits<std::size_t>::max();
  }
  const std::size_t at = pos_;
  pos_ += n;
  return at;
}

std::uint8_t WireReader::u8() {
  const std::size_t at = take(1);
  return ok_ ? data_[at] : 0;
}

std::uint16_t WireReader::u16() {
  const std::size_t at = take(2);
  if (!ok_) return 0;
  return static_cast<std::uint16_t>(data_[at] |
                                    (std::uint16_t{data_[at + 1]} << 8));
}

std::uint32_t WireReader::u32() {
  const std::size_t at = take(4);
  if (!ok_) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[at + i];
  return v;
}

std::uint64_t WireReader::u64() {
  const std::size_t at = take(8);
  if (!ok_) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[at + i];
  return v;
}

}  // namespace commsched
