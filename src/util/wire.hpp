// Byte-level wire encoding for the allocator service protocol
// (DESIGN.md "Allocator service").
//
// Fixed-width little-endian primitives appended to a caller-owned byte
// vector (WireWriter) and read back with bounds checking (WireReader).
// The reader uses a *sticky failure* model: the first out-of-bounds read
// marks the reader failed, every subsequent read returns zero, and the
// caller checks ok() once at the end — decoding a torn or malicious frame
// can therefore never read past the buffer, throw, or leave the caller
// guessing which field failed mid-struct.
//
// Doubles travel as their IEEE-754 bit pattern (bit_cast via u64), so a
// decode(encode(x)) round trip is bit-exact — the allocator service's
// determinism contract compares response costs bitwise.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

namespace commsched {

/// Appends little-endian primitives to a byte vector owned by the caller.
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 bit pattern; round-trips bit-exactly (NaNs included).
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(std::span<const std::uint8_t> data);

  std::size_t size() const noexcept { return out_->size(); }

 private:
  std::vector<std::uint8_t>* out_;
};

/// Bounds-checked little-endian reads over a fixed buffer with sticky
/// failure: after the first short read every accessor returns 0 and ok()
/// stays false.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }

  /// True while every read so far was in bounds.
  bool ok() const noexcept { return ok_; }
  /// Bytes not yet consumed (0 after a failure).
  std::size_t remaining() const noexcept {
    return ok_ ? data_.size() - pos_ : 0;
  }

 private:
  /// Reserve `n` bytes: returns the read offset, or marks the reader
  /// failed and returns npos.
  std::size_t take(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace commsched
