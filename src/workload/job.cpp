#include "workload/job.hpp"

namespace commsched {

JobLog filter_power_of_two(const JobLog& log) {
  JobLog out;
  out.reserve(log.size());
  for (const auto& j : log)
    if (is_power_of_two(j.num_nodes)) out.push_back(j);
  return out;
}

double power_of_two_fraction(const JobLog& log) {
  if (log.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& j : log)
    if (is_power_of_two(j.num_nodes)) ++n;
  return static_cast<double>(n) / static_cast<double>(log.size());
}

}  // namespace commsched
