// Job-log records: everything the scheduler knows (or the paper assumes it
// knows, §4: the communication class and dominant collective are "additional
// input job parameters") about a submitted job.
#pragma once

#include <cstdint>
#include <vector>

#include "collectives/schedule.hpp"

namespace commsched {

using WorkloadJobId = std::int64_t;

struct JobRecord {
  WorkloadJobId id = 0;
  double submit_time = 0.0;  ///< seconds from the log's epoch
  int num_nodes = 0;         ///< whole-node request (select/linear)
  double runtime = 0.0;      ///< logged execution time, seconds
  double walltime = 0.0;     ///< user-requested limit, seconds (>= runtime)

  // Paper extensions (filled in by the mix builders, §5.1/§6.2):
  bool comm_intensive = false;
  Pattern pattern = Pattern::kRecursiveDoubling;
  double comm_fraction = 0.0;  ///< T_comm / T for communication-intensive jobs
  double msize = 1 << 20;      ///< base collective message size, bytes

  // §7 I/O-aware extension: comm_fraction + io_fraction <= 1.
  bool io_intensive = false;
  double io_fraction = 0.0;    ///< T_io / T for I/O-intensive jobs
};

using JobLog = std::vector<JobRecord>;

/// True iff x is a power of two (x >= 1).
constexpr bool is_power_of_two(int x) { return x >= 1 && (x & (x - 1)) == 0; }

/// Keep only jobs with power-of-two node requests (§5.1: "we consider jobs
/// with power-of-two node requirements ... also found in the logs").
JobLog filter_power_of_two(const JobLog& log);

/// Fraction of jobs with power-of-two requests (0 for an empty log).
double power_of_two_fraction(const JobLog& log);

}  // namespace commsched
