#include "workload/mixes.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace commsched {

MixSpec uniform_mix(Pattern pattern, double comm_percent,
                    double comm_fraction) {
  MixSpec spec;
  spec.name = pattern_name(pattern);
  spec.comm_percent = comm_percent;
  spec.comm_fraction = comm_fraction;
  spec.patterns = {{pattern, 1.0}};
  return spec;
}

MixSpec experiment_set(char which) {
  MixSpec spec;
  spec.comm_percent = 0.9;  // §6.2: "90% jobs ... spent significant time"
  switch (which) {
    case 'A':
      spec.name = "A (67% compute, 33% RHVD)";
      spec.comm_fraction = 0.33;
      spec.patterns = {{Pattern::kRecursiveHalvingVD, 1.0}};
      break;
    case 'B':
      spec.name = "B (50% compute, 50% RHVD)";
      spec.comm_fraction = 0.50;
      spec.patterns = {{Pattern::kRecursiveHalvingVD, 1.0}};
      break;
    case 'C':
      spec.name = "C (30% compute, 70% RHVD)";
      spec.comm_fraction = 0.70;
      spec.patterns = {{Pattern::kRecursiveHalvingVD, 1.0}};
      break;
    case 'D':
      spec.name = "D (50% compute, 15% RD + 35% Binomial)";
      spec.comm_fraction = 0.50;
      spec.patterns = {{Pattern::kRecursiveDoubling, 15.0},
                       {Pattern::kBinomial, 35.0}};
      break;
    case 'E':
      spec.name = "E (30% compute, 21% RD + 49% Binomial)";
      spec.comm_fraction = 0.70;
      spec.patterns = {{Pattern::kRecursiveDoubling, 21.0},
                       {Pattern::kBinomial, 49.0}};
      break;
    default:
      COMMSCHED_ASSERT_MSG(false, "experiment set must be 'A'..'E'");
  }
  return spec;
}

void apply_mix(JobLog& log, const MixSpec& spec, std::uint64_t seed) {
  COMMSCHED_ASSERT(spec.comm_percent >= 0.0 && spec.comm_percent <= 1.0);
  COMMSCHED_ASSERT(spec.comm_fraction >= 0.0 && spec.comm_fraction <= 1.0);
  COMMSCHED_ASSERT(spec.io_percent >= 0.0 && spec.io_percent <= 1.0);
  COMMSCHED_ASSERT(spec.io_fraction >= 0.0 && spec.io_fraction <= 1.0);
  COMMSCHED_ASSERT_MSG(spec.comm_fraction + spec.io_fraction <= 1.0,
                       "comm and I/O fractions exceed the runtime");
  COMMSCHED_ASSERT(!spec.patterns.empty());
  Rng rng(seed);

  const auto n_comm = static_cast<std::size_t>(
      std::lround(spec.comm_percent * static_cast<double>(log.size())));
  const auto chosen = rng.sample_without_replacement(log.size(), n_comm);
  std::vector<bool> is_comm(log.size(), false);
  for (const std::size_t idx : chosen) is_comm[idx] = true;
  std::vector<bool> is_io(log.size(), false);
  if (spec.io_percent > 0.0) {
    const auto n_io = static_cast<std::size_t>(
        std::lround(spec.io_percent * static_cast<double>(log.size())));
    for (const std::size_t idx :
         rng.sample_without_replacement(log.size(), n_io))
      is_io[idx] = true;
  }

  std::vector<double> weights;
  weights.reserve(spec.patterns.size());
  for (const auto& c : spec.patterns) weights.push_back(c.weight);

  for (std::size_t i = 0; i < log.size(); ++i) {
    auto& job = log[i];
    job.msize = spec.msize;
    if (is_comm[i]) {
      job.comm_intensive = true;
      job.comm_fraction = spec.comm_fraction;
      job.pattern = spec.patterns[rng.discrete(weights)].pattern;
    } else {
      job.comm_intensive = false;
      job.comm_fraction = 0.0;
      job.pattern = Pattern::kRecursiveDoubling;  // irrelevant, kept defined
    }
    job.io_intensive = is_io[i];
    job.io_fraction = is_io[i] ? spec.io_fraction : 0.0;
  }
}

}  // namespace commsched
