// Job-mix builders: mark a fraction of a log's jobs communication-intensive
// and assign each one a dominant collective pattern and a communication
// fraction (T_comm / T).
//
// Covers both evaluation axes of the paper:
//   - §5.1 / §6.5: the communication-intensive percentage sweep (30/60/90%),
//     with a uniform pattern per run (uniform_mix);
//   - §6.2: experiment sets A-E, mixing compute/communication ratios and
//     patterns within the log (CMC2D-like D/E combine RD and binomial).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/job.hpp"

namespace commsched {

/// One pattern option within a mix, with its share of the job's
/// communication time. Shares are normalized over the mix.
struct MixComponent {
  Pattern pattern = Pattern::kRecursiveDoubling;
  double weight = 1.0;
};

/// How to decorate a log with communication attributes.
struct MixSpec {
  std::string name;
  /// Fraction of jobs marked communication-intensive (paper: 0.3-0.9).
  double comm_percent = 0.9;
  /// T_comm / T within each communication-intensive job.
  double comm_fraction = 0.5;
  /// Pattern choices for communication-intensive jobs (weighted draw).
  std::vector<MixComponent> patterns{{Pattern::kRecursiveDoubling, 1.0}};
  /// Base collective message size in bytes.
  double msize = 1 << 20;

  // §7 I/O-aware extension: a further fraction of jobs (drawn independently
  // of the communication class) is marked I/O-intensive with the given
  // T_io / T share. For jobs that end up both communication- and
  // I/O-intensive, comm_fraction + io_fraction must stay <= 1.
  double io_percent = 0.0;
  double io_fraction = 0.0;
};

/// Every job with the same pattern: the Table 3 / Figure 8 / Figure 9 setup.
MixSpec uniform_mix(Pattern pattern, double comm_percent = 0.9,
                    double comm_fraction = 0.5);

/// The paper's §6.2 experiment sets:
///   A: 67% compute, 33% RHVD        B: 50% compute, 50% RHVD
///   C: 30% compute, 70% RHVD        D: 50% compute, 15% RD + 35% binomial
///   E: 30% compute, 21% RD + 49% binomial
/// All with 90% of jobs communication-intensive. `which` in 'A'..'E'.
MixSpec experiment_set(char which);

/// Apply a mix to a log in place, deterministically from `seed`: exactly
/// round(comm_percent * size) jobs (chosen uniformly) become
/// communication-intensive with the spec's comm_fraction, msize and a
/// weighted-random pattern; the rest become compute-intensive
/// (comm_fraction 0).
void apply_mix(JobLog& log, const MixSpec& spec, std::uint64_t seed);

}  // namespace commsched
