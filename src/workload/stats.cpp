#include "workload/stats.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/stats.hpp"
#include "util/strings.hpp"

namespace commsched {

LogStats compute_log_stats(const JobLog& log, int machine_nodes) {
  LogStats s;
  s.job_count = log.size();
  if (log.empty()) return s;

  std::vector<double> runtimes;
  runtimes.reserve(log.size());
  double node_sum = 0.0;
  double node_seconds = 0.0;
  double first_submit = log.front().submit_time;
  double last_submit = log.front().submit_time;
  std::size_t pow2 = 0, comm = 0;
  s.min_nodes = log.front().num_nodes;
  s.max_nodes = log.front().num_nodes;
  for (const JobRecord& j : log) {
    s.min_nodes = std::min(s.min_nodes, j.num_nodes);
    s.max_nodes = std::max(s.max_nodes, j.num_nodes);
    node_sum += j.num_nodes;
    runtimes.push_back(j.runtime);
    node_seconds += static_cast<double>(j.num_nodes) * j.runtime;
    first_submit = std::min(first_submit, j.submit_time);
    last_submit = std::max(last_submit, j.submit_time);
    if (is_power_of_two(j.num_nodes)) ++pow2;
    if (j.comm_intensive) ++comm;
  }
  const auto n = static_cast<double>(log.size());
  s.mean_nodes = node_sum / n;
  s.power_of_two_fraction = static_cast<double>(pow2) / n;
  s.comm_job_fraction = static_cast<double>(comm) / n;
  s.min_runtime = *std::min_element(runtimes.begin(), runtimes.end());
  s.max_runtime = *std::max_element(runtimes.begin(), runtimes.end());
  s.median_runtime = median(runtimes);
  s.span_seconds = last_submit - first_submit;
  if (machine_nodes > 0 && s.span_seconds > 0.0)
    s.offered_load =
        node_seconds / (s.span_seconds * static_cast<double>(machine_nodes));
  return s;
}

std::string format_log_stats(const std::string& name, const LogStats& stats) {
  std::ostringstream out;
  out << name << ": " << stats.job_count << " jobs\n"
      << "  nodes/job: " << stats.min_nodes << " - " << stats.max_nodes
      << " (mean " << format_double(stats.mean_nodes, 1) << ", "
      << format_double(stats.power_of_two_fraction * 100.0, 1)
      << "% power of two)\n"
      << "  runtime:   " << format_double(stats.min_runtime, 0) << " - "
      << format_double(stats.max_runtime, 0) << " s (median "
      << format_double(stats.median_runtime, 0) << " s)\n"
      << "  span:      " << format_double(stats.span_seconds / 3600.0, 1)
      << " h, offered load " << format_double(stats.offered_load, 2) << "\n"
      << "  comm jobs: " << format_double(stats.comm_job_fraction * 100.0, 1)
      << "%\n";
  return out.str();
}

}  // namespace commsched
