// Descriptive statistics of a job log — the §5.1 characterization the paper
// gives for its three logs (max request, power-of-two share, job counts),
// plus runtime/size distributions and offered load. Used by log_replay and
// the workload tests to verify synthetic logs match the paper's marginals.
#pragma once

#include <string>

#include "workload/job.hpp"

namespace commsched {

struct LogStats {
  std::size_t job_count = 0;
  int min_nodes = 0;
  int max_nodes = 0;
  double mean_nodes = 0.0;
  double power_of_two_fraction = 0.0;

  double min_runtime = 0.0;
  double median_runtime = 0.0;
  double max_runtime = 0.0;

  double span_seconds = 0.0;  ///< last submit - first submit
  /// Total node-seconds divided by (machine_nodes * span); the demand the
  /// log offers relative to machine capacity.
  double offered_load = 0.0;

  double comm_job_fraction = 0.0;
};

/// Compute statistics; machine_nodes sizes the offered load (pass 0 to skip
/// the load computation).
LogStats compute_log_stats(const JobLog& log, int machine_nodes);

/// Multi-line human-readable rendering.
std::string format_log_stats(const std::string& name, const LogStats& stats);

}  // namespace commsched
