// Standard Workload Format (SWF) reader/writer.
//
// The paper's Intrepid log comes from the Parallel Workloads Archive, which
// distributes logs in SWF: one job per line, 18 whitespace-separated fields,
// ';'-prefixed header comments.  This reader lets real archive logs (e.g.
// ANL-Intrepid-2009-1.swf) drive the simulator in place of the bundled
// synthetic generators; the writer round-trips logs for tests and lets users
// export synthetic logs.
//
// Field map (1-based, per the archive spec): 1 job id, 2 submit, 3 wait,
// 4 run time, 5 allocated processors, 8 requested processors, 9 requested
// time.  Processor counts convert to nodes via cores_per_node.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/job.hpp"

namespace commsched {

struct SwfOptions {
  /// Processors-per-node divisor (Intrepid 4, Mira 16, Theta 64).
  int cores_per_node = 1;
  /// Keep at most this many valid jobs (0 = no limit). The paper uses 1000
  /// jobs per log.
  std::size_t max_jobs = 0;
  /// Drop jobs whose runtime or processor count is missing/non-positive.
  bool drop_invalid = true;
  /// Drop jobs wider than this many nodes (after the cores_per_node
  /// conversion; 0 = keep everything). Archive logs occasionally contain
  /// jobs wider than the modelled machine, which the simulator rejects —
  /// set this to the tree's node count to replay such logs. Drops are
  /// counted in SwfLoadStats::dropped_too_wide, never silent.
  int max_nodes = 0;
  /// Stably sort the result by submit time. Archive logs are usually
  /// sorted already, but a handful of out-of-order records would otherwise
  /// trip the simulator's sorted-log precondition. Stable: equal submit
  /// times keep file order.
  bool sort_by_submit = false;
};

/// Where the jobs of a parse went: kept + dropped counts per reason.
/// parsed == kept + dropped_invalid + dropped_too_wide (+ not_reached when
/// max_jobs cut the parse short, which leaves parsed at the cut).
struct SwfLoadStats {
  std::size_t parsed = 0;            ///< well-formed job lines seen
  std::size_t kept = 0;              ///< jobs returned in the log
  std::size_t dropped_invalid = 0;   ///< non-positive runtime/processors
  std::size_t dropped_too_wide = 0;  ///< wider than options.max_nodes
};

/// Parse an SWF stream. Throws ParseError on malformed lines (field count
/// or non-numeric fields); invalid-but-well-formed jobs are dropped or kept
/// per options.drop_invalid. `stats`, when given, receives the kept/dropped
/// accounting.
JobLog parse_swf(std::istream& in, const SwfOptions& options = {},
                 SwfLoadStats* stats = nullptr);

/// Parse an SWF file from disk. Throws ParseError if unreadable.
JobLog load_swf(const std::string& path, const SwfOptions& options = {},
                SwfLoadStats* stats = nullptr);

/// Render a JobLog as SWF text (fields we do not model are written as -1).
/// Node counts are multiplied back by cores_per_node.
std::string write_swf(const JobLog& log, int cores_per_node = 1);

}  // namespace commsched
