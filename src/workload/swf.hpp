// Standard Workload Format (SWF) reader/writer.
//
// The paper's Intrepid log comes from the Parallel Workloads Archive, which
// distributes logs in SWF: one job per line, 18 whitespace-separated fields,
// ';'-prefixed header comments.  This reader lets real archive logs (e.g.
// ANL-Intrepid-2009-1.swf) drive the simulator in place of the bundled
// synthetic generators; the writer round-trips logs for tests and lets users
// export synthetic logs.
//
// Field map (1-based, per the archive spec): 1 job id, 2 submit, 3 wait,
// 4 run time, 5 allocated processors, 8 requested processors, 9 requested
// time.  Processor counts convert to nodes via cores_per_node.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/job.hpp"

namespace commsched {

struct SwfOptions {
  /// Processors-per-node divisor (Intrepid 4, Mira 16, Theta 64).
  int cores_per_node = 1;
  /// Keep at most this many valid jobs (0 = no limit). The paper uses 1000
  /// jobs per log.
  std::size_t max_jobs = 0;
  /// Drop jobs whose runtime or processor count is missing/non-positive.
  bool drop_invalid = true;
};

/// Parse an SWF stream. Throws ParseError on malformed lines (field count
/// or non-numeric fields); invalid-but-well-formed jobs are dropped or kept
/// per options.drop_invalid.
JobLog parse_swf(std::istream& in, const SwfOptions& options = {});

/// Parse an SWF file from disk. Throws ParseError if unreadable.
JobLog load_swf(const std::string& path, const SwfOptions& options = {});

/// Render a JobLog as SWF text (fields we do not model are written as -1).
/// Node counts are multiplied back by cores_per_node.
std::string write_swf(const JobLog& log, int cores_per_node = 1);

}  // namespace commsched
