#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace commsched {

LogProfile intrepid_profile() {
  LogProfile p;
  p.name = "Intrepid";
  p.machine_nodes = 40960;
  p.min_exp = 6;    // 64 nodes
  p.max_exp = 15;   // 32768 nodes (the log's 40960-node full-machine jobs
                    // are the non-power-of-two tail)
  p.pow2_fraction = 0.995;
  p.runtime_log_median = std::log(3600.0);  // 1 h median
  p.runtime_sigma = 1.2;
  p.target_load = 0.85;
  return p;
}

LogProfile theta_profile() {
  LogProfile p;
  p.name = "Theta";
  p.machine_nodes = 4392;
  p.min_exp = 5;   // 32 nodes
  p.max_exp = 9;   // 512 nodes (paper: Theta max request 512)
  p.pow2_fraction = 0.90;
  p.runtime_log_median = std::log(5400.0);  // 1.5 h median
  p.runtime_sigma = 1.0;
  // The paper's Theta slice is heavily backlogged (total waits ~45000 h for
  // 1000 jobs); an offered load above capacity reproduces that regime.
  p.target_load = 1.35;
  return p;
}

LogProfile mira_profile() {
  LogProfile p;
  p.name = "Mira";
  p.machine_nodes = 49152;
  p.min_exp = 9;   // 512 nodes, Mira's smallest partition
  p.max_exp = 14;  // 16384 nodes (paper: Mira max request 16384)
  p.pow2_fraction = 0.995;
  p.runtime_log_median = std::log(7200.0);  // 2 h median
  p.runtime_sigma = 1.0;
  // Moderate offered load: Mira's log mixes an often-slack machine with a
  // few giant (up to 16384-node) jobs that queue for a long time, which is
  // what produces the paper's large wait totals alongside real placement
  // freedom at allocation time.
  p.target_load = 0.7;
  return p;
}

std::vector<LogProfile> paper_profiles() {
  return {intrepid_profile(), theta_profile(), mira_profile()};
}

LogProfile scale_profile(LogProfile profile, int machine_nodes) {
  COMMSCHED_ASSERT(machine_nodes >= 1);
  profile.machine_nodes = machine_nodes;
  int max_exp = 0;
  while ((1 << (max_exp + 1)) <= machine_nodes) ++max_exp;
  profile.max_exp = std::min(profile.max_exp, max_exp);
  profile.min_exp = std::min(profile.min_exp, profile.max_exp);
  return profile;
}

JobLog generate_log(const LogProfile& profile, int n_jobs, std::uint64_t seed) {
  COMMSCHED_ASSERT(n_jobs >= 0);
  COMMSCHED_ASSERT(profile.machine_nodes >= (1 << profile.max_exp));
  COMMSCHED_ASSERT(profile.min_exp >= 0 && profile.min_exp <= profile.max_exp);
  Rng rng(seed);
  JobLog log;
  log.reserve(static_cast<std::size_t>(n_jobs));

  // First pass: sizes and runtimes, so the arrival rate can be calibrated
  // to the profile's target offered load.
  double total_node_seconds = 0.0;
  for (int i = 0; i < n_jobs; ++i) {
    JobRecord job;
    job.id = i + 1;
    if (rng.bernoulli(profile.pow2_fraction)) {
      const auto exp = rng.uniform_int(profile.min_exp, profile.max_exp);
      job.num_nodes = 1 << exp;
    } else {
      job.num_nodes = static_cast<int>(
          rng.uniform_int(1 << profile.min_exp, 1 << profile.max_exp));
    }
    job.runtime = std::clamp(
        rng.lognormal(profile.runtime_log_median, profile.runtime_sigma),
        profile.min_runtime, profile.max_runtime);
    if (profile.default_walltime_fraction > 0.0 &&
        rng.bernoulli(profile.default_walltime_fraction))
      job.walltime = std::max(profile.default_walltime, job.runtime);
    else
      job.walltime =
          job.runtime * rng.uniform_real(profile.walltime_factor_lo,
                                         profile.walltime_factor_hi);
    total_node_seconds += static_cast<double>(job.num_nodes) * job.runtime;
    log.push_back(job);
  }

  // Offered load L = total_node_seconds / (machine_nodes * span), so the
  // arrival span that realizes target_load is:
  const double span = total_node_seconds /
                      (static_cast<double>(profile.machine_nodes) *
                       profile.target_load);
  const double mean_gap =
      n_jobs > 0 ? span / static_cast<double>(n_jobs) : 0.0;
  COMMSCHED_ASSERT(profile.diurnal_amplitude >= 0.0 &&
                   profile.diurnal_amplitude < 1.0);
  double t = 0.0;
  for (auto& job : log) {
    job.submit_time = t;
    double gap = rng.exponential(std::max(mean_gap, 1.0));
    if (profile.diurnal_amplitude > 0.0) {
      // Thin the arrival rate by the daily cycle at the current time.
      const double phase = 2.0 * 3.14159265358979323846 * t / 86400.0;
      gap /= 1.0 + profile.diurnal_amplitude * std::sin(phase);
    }
    t += gap;
  }
  return log;
}

}  // namespace commsched
