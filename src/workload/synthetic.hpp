// Synthetic supercomputer job logs (DESIGN.md §3, substitution 2).
//
// The paper evaluates on 1000-job slices of the Intrepid (2009), Theta
// (2018) and Mira (2019) logs, which we cannot redistribute.  These
// generators produce logs with the marginals the paper states:
//   - Intrepid: 40K-node machine, requests up to 40960, >99% power of two;
//   - Theta:    4392-node machine, requests up to 512, ~90% power of two;
//   - Mira:     48K-node machine, requests up to 16384, >99% power of two;
// with heavy-tailed (lognormal) runtimes and Poisson arrivals whose rate is
// calibrated to a target offered load, so queueing behaviour (and therefore
// wait-time effects) resembles the corresponding machine.  Real SWF logs can
// replace these via workload/swf.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/job.hpp"

namespace commsched {

/// Statistical description of one machine's log.
struct LogProfile {
  std::string name;

  int machine_nodes = 0;  ///< cluster size the log belongs to

  // Node-request distribution: a power-of-two request draws its exponent
  // uniformly from [min_exp, max_exp]; with probability
  // (1 - pow2_fraction) the request is instead uniform in
  // [2^min_exp, 2^max_exp] (Theta's log has ~10% such jobs).
  int min_exp = 0;
  int max_exp = 0;
  double pow2_fraction = 1.0;

  // Runtime: lognormal(log_median, sigma) seconds, clamped.
  double runtime_log_median = 0.0;  ///< ln(median runtime in seconds)
  double runtime_sigma = 1.0;
  double min_runtime = 60.0;
  double max_runtime = 12.0 * 3600.0;

  // Requested walltime = runtime * U[factor_lo, factor_hi].
  double walltime_factor_lo = 1.1;
  double walltime_factor_hi = 3.0;

  // Arrivals: exponential inter-arrival gaps with the rate chosen so the
  // offered load (sum of node-seconds per wall-clock second, relative to
  // machine_nodes) equals target_load. >1 builds a backlog like Theta's.
  double target_load = 0.8;

  // Diurnal modulation of the arrival rate: gap lengths are scaled by
  // 1 / (1 + amplitude * sin(2*pi*t/day)), so amplitude 0 keeps Poisson
  // arrivals and amplitude near 1 concentrates submissions into daily
  // bursts (the shape real center logs show). Must be in [0, 1).
  double diurnal_amplitude = 0.0;

  // Walltime-accuracy realism: with this probability a job requests the
  // queue's default limit instead of an informed estimate — the classic
  // "users ask for the maximum" effect that degrades backfill quality.
  double default_walltime_fraction = 0.0;
  double default_walltime = 12.0 * 3600.0;
};

LogProfile intrepid_profile();
LogProfile theta_profile();
LogProfile mira_profile();

/// All three paper profiles, in paper row order (Intrepid, Theta, Mira).
std::vector<LogProfile> paper_profiles();

/// Shrink a profile onto a smaller machine: clamps machine_nodes and the
/// power-of-two request range so every generated job fits, while keeping
/// the runtime/walltime/arrival marginals (and target load) unchanged.
/// Lets the million-job replay benches run a paper profile's workload shape
/// on a tree small enough to build quickly.
LogProfile scale_profile(LogProfile profile, int machine_nodes);

/// Generate `n_jobs` jobs deterministically from `seed`. Jobs are returned
/// in submit-time order with ids 1..n; communication attributes are left for
/// the mix builders (workload/mixes.hpp).
JobLog generate_log(const LogProfile& profile, int n_jobs, std::uint64_t seed);

}  // namespace commsched
