#include "audit/auditor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "audit/level.hpp"
#include "cluster/state.hpp"
#include "collectives/comm_cache.hpp"
#include "collectives/schedule.hpp"
#include "core/cost_model.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"

namespace commsched {
namespace {

// Each invariant class gets a deliberate-corruption test proving the exact
// auditor check can fire, plus a matching happy-path check — the ISSUE's
// guarantee that a passing COMMSCHED_AUDIT=full run means something.

std::string violation_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const InvariantError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected an InvariantError";
  return {};
}

class AuditorTest : public ::testing::Test {
 protected:
  AuditorTest()
      : tree_(make_figure2_tree()),
        state_(tree_),
        auditor_(tree_, AuditLevel::kFull) {}

  Tree tree_;           // 8 nodes, 2 leaves
  ClusterState state_;
  StateAuditor auditor_;
};

TEST_F(AuditorTest, OffLevelChecksNothing) {
  StateAuditor off(tree_, AuditLevel::kOff);
  EXPECT_FALSE(off.enabled());
  off.on_event(5.0, "e1");
  off.on_event(1.0, "e2");  // would violate monotonicity when enabled
  off.check_cost(-1.0, 1, "cost");
  EXPECT_EQ(off.events_seen(), 0u);
  EXPECT_EQ(off.checks_run(), 0u);
}

TEST_F(AuditorTest, EventMonotonicityFires) {
  auditor_.on_event(5.0, "end job", 1);
  EXPECT_NO_THROW(auditor_.on_event(5.0, "submit job", 2));  // ties are fine
  const std::string msg = violation_message(
      [&] { auditor_.on_event(4.0, "submit job", 3); });
  EXPECT_NE(msg.find("event clock ran backwards"), std::string::npos);
  EXPECT_NE(msg.find("submit job 3"), std::string::npos);  // offending event
  EXPECT_NE(msg.find("submit job 2"), std::string::npos);  // prior context
}

TEST_F(AuditorTest, NonFiniteEventTimeFires) {
  const std::string msg = violation_message(
      [&] { auditor_.on_event(std::nan(""), "end job 1"); });
  EXPECT_NE(msg.find("non-finite time"), std::string::npos);
}

TEST_F(AuditorTest, AllocationDisjointnessFires) {
  state_.allocate(1, true, std::vector<NodeId>{0, 1});
  auditor_.on_allocate(state_, 1, state_.job_nodes(1));
  // Bypass the auditor: release in the cluster only, then hand the reused
  // node to another job. The shadow table still holds it for job 1.
  state_.release(1);
  state_.allocate(2, true, std::vector<NodeId>{1, 2});
  const std::string msg = violation_message(
      [&] { auditor_.on_allocate(state_, 2, state_.job_nodes(2)); });
  EXPECT_NE(msg.find("allocation disjointness broken"), std::string::npos);
  EXPECT_NE(msg.find("node 1"), std::string::npos);
  EXPECT_NE(msg.find("held by job 1"), std::string::npos);
}

TEST_F(AuditorTest, DoubleAllocationOfJobFires) {
  state_.allocate(1, true, std::vector<NodeId>{0});
  auditor_.on_allocate(state_, 1, state_.job_nodes(1));
  const std::string msg = violation_message(
      [&] { auditor_.on_allocate(state_, 1, state_.job_nodes(1)); });
  EXPECT_NE(msg.find("allocated twice"), std::string::npos);
}

TEST_F(AuditorTest, ClusterOwnerDisagreementFires) {
  // The auditor is told job 3 got node 5, but the cluster never did it.
  const std::vector<NodeId> claimed{5};
  const std::string msg = violation_message(
      [&] { auditor_.on_allocate(state_, 3, claimed); });
  EXPECT_NE(msg.find("cluster state disagrees"), std::string::npos);
}

TEST_F(AuditorTest, FreeCountDivergenceOnAllocateFires) {
  // Allocate two jobs in the cluster but report only one to the auditor:
  // total_free() then disagrees with the shadow count.
  state_.allocate(1, true, std::vector<NodeId>{0});
  state_.allocate(2, true, std::vector<NodeId>{1});
  const std::string msg = violation_message(
      [&] { auditor_.on_allocate(state_, 2, state_.job_nodes(2)); });
  EXPECT_NE(msg.find("free-node count diverged"), std::string::npos);
}

TEST_F(AuditorTest, ReleaseOfUnknownJobFires) {
  const std::vector<NodeId> freed{0};
  const std::string msg = violation_message(
      [&] { auditor_.on_release(state_, 9, freed); });
  EXPECT_NE(msg.find("never saw allocated"), std::string::npos);
}

TEST_F(AuditorTest, ReleaseSetMismatchFires) {
  state_.allocate(1, true, std::vector<NodeId>{0, 1, 2});
  auditor_.on_allocate(state_, 1, state_.job_nodes(1));
  const std::vector<NodeId> freed = state_.release(1);
  ASSERT_EQ(freed, (std::vector<NodeId>{0, 1, 2}));
  const std::vector<NodeId> partial{0, 1};  // claim fewer nodes came back
  const std::string msg = violation_message(
      [&] { auditor_.on_release(state_, 1, partial); });
  EXPECT_NE(msg.find("but the job allocated"), std::string::npos);
}

TEST_F(AuditorTest, ReleaseLeavingNodeBusyFires) {
  state_.allocate(1, true, std::vector<NodeId>{0, 1});
  auditor_.on_allocate(state_, 1, state_.job_nodes(1));
  // Release in the cluster, reallocate node 1 to someone else, then report
  // the original release: node 1 must be flagged as still busy.
  state_.release(1);
  state_.allocate(2, true, std::vector<NodeId>{1});
  const std::vector<NodeId> freed{0, 1};
  const std::string msg = violation_message(
      [&] { auditor_.on_release(state_, 1, freed); });
  EXPECT_NE(msg.find("still busy"), std::string::npos);
}

TEST_F(AuditorTest, BackfillGuardFires) {
  // Harmless cases: ends before the shadow time, or fits the spare nodes.
  EXPECT_NO_THROW(auditor_.check_backfill(10.0, 7, 5.0, 4, 15.0, 0));
  EXPECT_NO_THROW(auditor_.check_backfill(10.0, 7, 50.0, 4, 15.0, 4));
  const std::string msg = violation_message(
      [&] { auditor_.check_backfill(10.0, 7, 50.0, 4, 15.0, 2); });
  EXPECT_NE(msg.find("EASY backfill violated the head reservation"),
            std::string::npos);
  EXPECT_NE(msg.find("job 7"), std::string::npos);
}

TEST_F(AuditorTest, NegativeCostFires) {
  EXPECT_NO_THROW(auditor_.check_cost(0.0, 1, "Eq. 6 cost"));
  EXPECT_NO_THROW(auditor_.check_cost(12.5, 1, "Eq. 6 cost"));
  const std::string neg = violation_message(
      [&] { auditor_.check_cost(-0.25, 1, "Eq. 6 cost"); });
  EXPECT_NE(neg.find("finite and non-negative"), std::string::npos);
  const std::string nan = violation_message(
      [&] { auditor_.check_cost(std::nan(""), 1, "Eq. 6 cost"); });
  EXPECT_NE(nan.find("finite and non-negative"), std::string::npos);
}

TEST_F(AuditorTest, CostSymmetryHoldsOnRealModel) {
  state_.allocate(1, true, std::vector<NodeId>{0, 1, 4, 5});
  auditor_.on_allocate(state_, 1, state_.job_nodes(1));
  const CostModel model(tree_);
  EXPECT_NO_THROW(
      auditor_.check_cost_symmetry(model, state_, state_.job_nodes(1), 1));
}

TEST_F(AuditorTest, FlowCorruptionFires) {
  EXPECT_NO_THROW(auditor_.check_flow(1024.0, 1e9, 0.0, 0));
  EXPECT_NO_THROW(auditor_.check_flow(-1e-6, 0.0, 0.0, 0));  // byte epsilon
  const std::string msg = violation_message(
      [&] { auditor_.check_flow(-1.0, 1e9, 0.0, 3); });
  EXPECT_NE(msg.find("netsim flow of job 3 corrupted"), std::string::npos);
  EXPECT_THROW(auditor_.check_flow(10.0, -1.0, 0.0, 3), InvariantError);
  EXPECT_THROW(auditor_.check_flow(10.0, std::nan(""), 0.0, 3),
               InvariantError);
}

TEST_F(AuditorTest, CheckStateCrossValidationFires) {
  state_.allocate(1, true, std::vector<NodeId>{0, 1});
  auditor_.on_allocate(state_, 1, state_.job_nodes(1));
  EXPECT_NO_THROW(auditor_.check_state(state_));
  // Allocate behind the auditor's back: the job count diverges.
  state_.allocate(2, false, std::vector<NodeId>{4});
  const std::string msg =
      violation_message([&] { auditor_.check_state(state_); });
  EXPECT_NE(msg.find("live-job count diverged"), std::string::npos);
}

TEST_F(AuditorTest, CheckStateNodeSetDivergenceFires) {
  state_.allocate(1, true, std::vector<NodeId>{0, 1});
  auditor_.on_allocate(state_, 1, state_.job_nodes(1));
  // Swap the allocation for a different node set without telling the
  // auditor: same job count, different nodes.
  state_.release(1);
  state_.allocate(1, true, std::vector<NodeId>{2, 3});
  const std::string msg =
      violation_message([&] { auditor_.check_state(state_); });
  EXPECT_NE(msg.find("node sets diverged"), std::string::npos);
}

TEST_F(AuditorTest, CheckStateReportsLowestDivergedJobFirst) {
  // Three jobs diverge at once; the report must name the smallest id, not
  // whichever the shadow table's hash order visits first — audit failures
  // have to reproduce identically across libstdc++ versions.
  for (const JobId job : {7, 3, 5}) {
    state_.allocate(job, true, std::vector<NodeId>{NodeId(job % 3)});
    auditor_.on_allocate(state_, job, state_.job_nodes(job));
  }
  for (const JobId job : {7, 3, 5}) state_.release(job);
  for (const JobId job : {7, 3, 5})
    state_.allocate(job, true, std::vector<NodeId>{NodeId(job % 3 + 4)});
  const std::string msg =
      violation_message([&] { auditor_.check_state(state_); });
  EXPECT_NE(msg.find("job 3 node sets diverged"), std::string::npos);
}

TEST_F(AuditorTest, ProfileConsistencyPassesOnHonestProfile) {
  const std::vector<NodeId> nodes{0, 1, 4, 5};
  for (const Pattern pattern :
       {Pattern::kRecursiveDoubling, Pattern::kPairwiseAlltoall,
        Pattern::kRing}) {
    const LeafCommProfile profile = make_leaf_comm_profile(
        pattern, 1024.0, make_shape_key(tree_, nodes), /*ranks_per_node=*/2);
    EXPECT_NO_THROW(auditor_.check_profile(pattern, profile, nodes, 1));
  }
  EXPECT_GT(auditor_.checks_run(), 0u);
}

TEST_F(AuditorTest, ProfileRankCountMismatchFires) {
  const std::vector<NodeId> nodes{0, 1, 4, 5};
  const LeafCommProfile profile = make_leaf_comm_profile(
      Pattern::kRecursiveDoubling, 1.0, make_shape_key(tree_, nodes), 1);
  const std::vector<NodeId> fewer{0, 1, 4};
  const std::string msg = violation_message([&] {
    auditor_.check_profile(Pattern::kRecursiveDoubling, profile, fewer, 9);
  });
  EXPECT_NE(msg.find("covers 4 ranks"), std::string::npos);
  EXPECT_NE(msg.find("3 nodes"), std::string::npos);
}

TEST_F(AuditorTest, ProfileShapeMismatchFires) {
  // Profile built for a two-leaf shape, priced allocation sits on one leaf:
  // same node count, wrong canonical shape (the "stale ShapeKey" bug class).
  const LeafCommProfile profile = make_leaf_comm_profile(
      Pattern::kRecursiveDoubling, 1.0,
      make_shape_key(tree_, std::vector<NodeId>{0, 4}), 1);
  const std::vector<NodeId> one_leaf{0, 1};
  const std::string msg = violation_message([&] {
    auditor_.check_profile(Pattern::kRecursiveDoubling, profile, one_leaf, 9);
  });
  EXPECT_NE(msg.find("2 leaf slots"), std::string::npos);
  EXPECT_NE(msg.find("touches 1 leaves"), std::string::npos);
}

TEST_F(AuditorTest, ProfileCorruptionFires) {
  // Deliberately corrupt each audited field of the sampled step (a fresh
  // auditor has seen no events, so step 0 is sampled) and check the
  // re-derivation catches every one.
  const std::vector<NodeId> nodes{0, 1, 4, 5};
  const LeafCommProfile honest = make_leaf_comm_profile(
      Pattern::kPairwiseAlltoall, 1024.0, make_shape_key(tree_, nodes), 1);
  EXPECT_NO_THROW(auditor_.check_profile(Pattern::kPairwiseAlltoall, honest,
                                         nodes, 9));

  LeafCommProfile bad_pairs = honest;
  bad_pairs.classes[static_cast<std::size_t>(bad_pairs.steps[0].cls)]
      .leaf_pairs.emplace_back(0, 1);
  const std::string pairs_msg = violation_message([&] {
    auditor_.check_profile(Pattern::kPairwiseAlltoall, bad_pairs, nodes, 9);
  });
  EXPECT_NE(pairs_msg.find("diverges from the schedule"), std::string::npos);

  LeafCommProfile bad_counts = honest;
  bad_counts.steps[0].same_node_pairs += 1;
  EXPECT_THROW(auditor_.check_profile(Pattern::kPairwiseAlltoall, bad_counts,
                                      nodes, 9),
               InvariantError);

  LeafCommProfile bad_msize = honest;
  bad_msize.steps[0].msize *= 2.0;
  EXPECT_THROW(auditor_.check_profile(Pattern::kPairwiseAlltoall, bad_msize,
                                      nodes, 9),
               InvariantError);

  LeafCommProfile bad_class = honest;
  bad_class.steps[0].cls = 1'000'000;
  EXPECT_THROW(auditor_.check_profile(Pattern::kPairwiseAlltoall, bad_class,
                                      nodes, 9),
               InvariantError);
}

TEST_F(AuditorTest, ProfileWithPhantomStepsFires) {
  // Pad the profile with steps the schedule never produces; advance the
  // event counter so the rotating sample lands on a phantom step.
  const std::vector<NodeId> nodes{0, 4};
  LeafCommProfile padded = make_leaf_comm_profile(
      Pattern::kRecursiveDoubling, 1.0, make_shape_key(tree_, nodes), 1);
  ASSERT_EQ(padded.steps.size(), 1u);  // RD at p=2: a single step
  padded.steps.push_back(padded.steps[0]);
  auditor_.on_event(1.0, "tick");  // events_seen()=1 -> samples step 1
  const std::string msg = violation_message([&] {
    auditor_.check_profile(Pattern::kRecursiveDoubling, padded, nodes, 9);
  });
  EXPECT_NE(msg.find("records 2 steps"), std::string::npos);
  EXPECT_NE(msg.find("ended before step 1"), std::string::npos);
}

TEST_F(AuditorTest, ProfileCheckRunsAtCheapLevel) {
  StateAuditor cheap(tree_, AuditLevel::kCheap);
  const std::vector<NodeId> nodes{0, 1};
  LeafCommProfile profile = make_leaf_comm_profile(
      Pattern::kRecursiveDoubling, 1.0, make_shape_key(tree_, nodes), 1);
  EXPECT_NO_THROW(
      cheap.check_profile(Pattern::kRecursiveDoubling, profile, nodes, 1));
  const std::uint64_t before = cheap.checks_run();
  EXPECT_GT(before, 0u);
  profile.steps[0].same_leaf_pairs += 3;
  EXPECT_THROW(
      cheap.check_profile(Pattern::kRecursiveDoubling, profile, nodes, 1),
      InvariantError);
}

TEST_F(AuditorTest, CheapLevelSkipsFullChecks) {
  StateAuditor cheap(tree_, AuditLevel::kCheap);
  state_.allocate(1, true, std::vector<NodeId>{0, 1});
  cheap.on_allocate(state_, 1, state_.job_nodes(1));
  // Diverge the state behind the auditor's back: full would fire,
  // cheap's check_state is a documented no-op.
  state_.allocate(2, false, std::vector<NodeId>{4});
  EXPECT_NO_THROW(cheap.check_state(state_));
  EXPECT_NO_THROW(cheap.check_flow(-5.0, 0.0, 0.0, 0));
  // ... but the cheap event/ownership checks still run.
  cheap.on_event(3.0, "e1");
  EXPECT_THROW(cheap.on_event(2.0, "e2"), InvariantError);
  EXPECT_GT(cheap.checks_run(), 0u);
}

TEST_F(AuditorTest, LoadLedgerDivergenceOnAllocateFires) {
  // The cluster books 512 load units per node but the auditor is told 256:
  // the O(1) machine-total cross-check fires at allocation time.
  state_.allocate(1, true, std::vector<NodeId>{0, 1}, false,
                  /*comm_load=*/512);
  const std::string msg = violation_message([&] {
    auditor_.on_allocate(state_, 1, state_.job_nodes(1), /*load=*/256);
  });
  EXPECT_NE(msg.find("communication-load total diverged"), std::string::npos);
}

TEST_F(AuditorTest, LoadLedgerHappyPathAndReleaseRoundTrip) {
  state_.allocate(1, true, std::vector<NodeId>{0, 1}, false, 512);
  EXPECT_NO_THROW(auditor_.on_allocate(state_, 1, state_.job_nodes(1), 512));
  state_.allocate(2, true, std::vector<NodeId>{4}, false, 1024);
  EXPECT_NO_THROW(auditor_.on_allocate(state_, 2, state_.job_nodes(2), 1024));
  EXPECT_NO_THROW(auditor_.check_state(state_));
  const std::vector<NodeId> freed = state_.release(1);
  EXPECT_NO_THROW(auditor_.on_release(state_, 1, freed));
  EXPECT_NO_THROW(auditor_.check_state(state_));
}

TEST_F(AuditorTest, NegativeLoadReportFires) {
  state_.allocate(1, true, std::vector<NodeId>{0});
  const std::string msg = violation_message(
      [&] { auditor_.on_allocate(state_, 1, state_.job_nodes(1), -5); });
  EXPECT_NE(msg.find("negative load"), std::string::npos);
}

TEST_F(AuditorTest, LoadLedgerDivergenceOnReleaseFires) {
  // The auditor recorded the allocation-time load, so a release only fires
  // if the cluster's accumulators drifted in between — simulate the drift
  // by releasing a cluster-side job the auditor never saw carry load.
  state_.allocate(1, true, std::vector<NodeId>{0, 1}, false, 512);
  auditor_.on_allocate(state_, 1, state_.job_nodes(1), 512);
  state_.allocate(2, true, std::vector<NodeId>{4}, false, 256);
  auditor_.on_allocate(state_, 2, state_.job_nodes(2), 256);
  // Cluster releases job 2 (load 256 leaves the accumulators); the auditor
  // is told job 1 came back instead: totals disagree by 2*512 - 256.
  state_.release(2);
  state_.release(1);
  const std::vector<NodeId> freed{0, 1};
  const std::string msg = violation_message(
      [&] { auditor_.on_release(state_, 1, freed); });
  EXPECT_NE(msg.find("diverged"), std::string::npos);
}

TEST_F(AuditorTest, StaleEndEventFires) {
  state_.allocate(1, true, std::vector<NodeId>{0, 1});
  auditor_.on_allocate(state_, 1, state_.job_nodes(1));
  auditor_.on_end_scheduled(1, 50.0);
  // A re-evaluation moved the end to 60 but a stale heap entry pops at 50.
  auditor_.on_end_scheduled(1, 60.0);
  const std::string msg = violation_message(
      [&] { auditor_.check_end_event(state_, 1, 50.0); });
  EXPECT_NE(msg.find("stale completion event"), std::string::npos);
  // The rescheduled time itself passes.
  EXPECT_NO_THROW(auditor_.check_end_event(state_, 1, 60.0));
}

TEST_F(AuditorTest, EndEventForUnknownOrReleasedJobFires) {
  state_.allocate(1, true, std::vector<NodeId>{0});
  auditor_.on_allocate(state_, 1, state_.job_nodes(1));
  auditor_.on_end_scheduled(1, 50.0);
  // A completion for a job the shadow table never saw running.
  const std::string unknown = violation_message(
      [&] { auditor_.check_end_event(state_, 9, 50.0); });
  EXPECT_NE(unknown.find("does not hold as running"), std::string::npos);
  // After release the scheduled end is cleaned up too: a late completion
  // event for the released job fires.
  const std::vector<NodeId> freed = state_.release(1);
  auditor_.on_release(state_, 1, freed);
  EXPECT_THROW(auditor_.check_end_event(state_, 1, 50.0), InvariantError);
}

TEST_F(AuditorTest, EndEventWithoutScheduleFires) {
  state_.allocate(1, true, std::vector<NodeId>{0});
  auditor_.on_allocate(state_, 1, state_.job_nodes(1));
  state_.allocate(2, true, std::vector<NodeId>{1});
  auditor_.on_allocate(state_, 2, state_.job_nodes(2));
  auditor_.on_end_scheduled(1, 50.0);  // job 2 never announced an end
  const std::string msg = violation_message(
      [&] { auditor_.check_end_event(state_, 2, 50.0); });
  EXPECT_NE(msg.find("no end on record"), std::string::npos);
  // check_state also flags the count mismatch between running jobs and
  // scheduled ends.
  const std::string state_msg =
      violation_message([&] { auditor_.check_state(state_); });
  EXPECT_NE(state_msg.find("scheduled-end table"), std::string::npos);
}

TEST_F(AuditorTest, EndEventCheckSkippedWhenNeverScheduled) {
  // An engine that never calls on_end_scheduled opts out of the end-event
  // invariant instead of tripping on an empty table.
  state_.allocate(1, true, std::vector<NodeId>{0});
  auditor_.on_allocate(state_, 1, state_.job_nodes(1));
  EXPECT_NO_THROW(auditor_.check_end_event(state_, 1, 123.0));
  EXPECT_NO_THROW(auditor_.check_state(state_));
}

TEST(AuditLevelTest, NamesRoundTrip) {
  for (const AuditLevel level :
       {AuditLevel::kOff, AuditLevel::kCheap, AuditLevel::kFull})
    EXPECT_EQ(audit_level_from_string(audit_level_name(level)), level);
  EXPECT_EQ(audit_level_from_string("verbose"), std::nullopt);
  EXPECT_EQ(audit_level_from_string(""), std::nullopt);
}

TEST_F(AuditorTest, SaCostCrossCheckPassesOnHonestClaim) {
  // The claimed cost the search allocator reports is the full Eq. 6 price of
  // the placement on the pre-allocation state; re-deriving it through an
  // independent workspace must agree bit for bit.
  state_.allocate(1, true, std::vector<NodeId>{0, 1});
  const CostModel model(tree_, CostOptions{.hop_bytes = true});
  const std::vector<NodeId> nodes{2, 4, 5};
  const LeafCommProfile profile = make_leaf_comm_profile(
      Pattern::kPairwiseAlltoall, double{1 << 20},
      make_shape_key(tree_, nodes), 1);
  CostWorkspace ws;
  const double honest =
      model.candidate_cost(state_, nodes, true, profile, ws);
  const std::uint64_t before = auditor_.checks_run();
  EXPECT_NO_THROW(auditor_.check_sa_cost(model, state_, nodes, true, profile,
                                         honest, 7));
  EXPECT_GT(auditor_.checks_run(), before);
}

TEST_F(AuditorTest, SaCostDivergenceFires) {
  const CostModel model(tree_, CostOptions{.hop_bytes = true});
  const std::vector<NodeId> nodes{0, 1, 4};
  const LeafCommProfile profile = make_leaf_comm_profile(
      Pattern::kPairwiseAlltoall, double{1 << 20},
      make_shape_key(tree_, nodes), 1);
  CostWorkspace ws;
  const double honest =
      model.candidate_cost(state_, nodes, true, profile, ws);
  // Even a one-ulp drift is a violation: the delta kernel's contract is
  // bit-for-bit agreement, not approximate agreement.
  const double drifted =
      std::nextafter(honest, std::numeric_limits<double>::infinity());
  const std::string msg = violation_message([&] {
    auditor_.check_sa_cost(model, state_, nodes, true, profile, drifted, 7);
  });
  EXPECT_NE(msg.find("delta-evaluated cost diverges"), std::string::npos);
  EXPECT_NE(msg.find("job 7"), std::string::npos);
}

TEST_F(AuditorTest, SaCostCheckSkippedWhenOff) {
  StateAuditor off(tree_, AuditLevel::kOff);
  const CostModel model(tree_, CostOptions{.hop_bytes = true});
  const std::vector<NodeId> nodes{0, 1};
  const LeafCommProfile profile = make_leaf_comm_profile(
      Pattern::kPairwiseAlltoall, double{1 << 20},
      make_shape_key(tree_, nodes), 1);
  EXPECT_NO_THROW(
      off.check_sa_cost(model, state_, nodes, true, profile, -123.0, 7));
  EXPECT_EQ(off.checks_run(), 0u);
}

TEST(AuditLevelTest, EnvSelectsLevel) {
  ASSERT_EQ(setenv("COMMSCHED_AUDIT", "cheap", 1), 0);
  EXPECT_EQ(audit_level_from_env(), AuditLevel::kCheap);
  ASSERT_EQ(setenv("COMMSCHED_AUDIT", "full", 1), 0);
  EXPECT_EQ(audit_level_from_env(), AuditLevel::kFull);
  ASSERT_EQ(setenv("COMMSCHED_AUDIT", "", 1), 0);
  EXPECT_EQ(audit_level_from_env(), AuditLevel::kOff);
  ASSERT_EQ(setenv("COMMSCHED_AUDIT", "FULL", 1), 0);  // case-sensitive
  EXPECT_THROW(audit_level_from_env(), InvariantError);
  ASSERT_EQ(unsetenv("COMMSCHED_AUDIT"), 0);
  EXPECT_EQ(audit_level_from_env(), AuditLevel::kOff);
}

}  // namespace
}  // namespace commsched
