#include "cluster/state.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "topology/builders.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace commsched {

// Friend of ClusterState: corrupts one internal counter at a time so the
// validate() failure paths can be proven to fire (ISSUE 2 satellite).
struct ClusterStateTestPeer {
  static void corrupt_leaf_busy(ClusterState& s, SwitchId leaf, int delta) {
    s.leaf_busy_[static_cast<std::size_t>(leaf)] += delta;
  }
  static void corrupt_leaf_comm(ClusterState& s, SwitchId leaf, int delta) {
    s.leaf_comm_[static_cast<std::size_t>(leaf)] += delta;
  }
  static void corrupt_leaf_io(ClusterState& s, SwitchId leaf, int delta) {
    s.leaf_io_[static_cast<std::size_t>(leaf)] += delta;
  }
  static void corrupt_switch_free(ClusterState& s, SwitchId sw, int delta) {
    s.switch_free_[static_cast<std::size_t>(sw)] += delta;
  }
  static void corrupt_free_total(ClusterState& s, int delta) {
    s.free_total_ += delta;
  }
  static void corrupt_owner(ClusterState& s, NodeId n, JobId owner) {
    s.node_owner_[static_cast<std::size_t>(n)] = owner;
  }
  static void drop_job_node(ClusterState& s, JobId job) {
    const std::int32_t slot = s.find_slot(job);
    COMMSCHED_ASSERT_GE_MSG(slot, 0, "corrupting a job that is not live");
    s.job_pool_[static_cast<std::size_t>(slot)].nodes.pop_back();
  }
  // Swap the first two entries of a leaf's free index (breaks the ascending
  // order without touching any counter). Requires leaf_free(leaf) >= 2.
  static void corrupt_free_index_order(ClusterState& s, SwitchId leaf) {
    const auto off =
        static_cast<std::size_t>(s.leaf_off_[static_cast<std::size_t>(leaf)]);
    std::swap(s.free_list_[off], s.free_list_[off + 1]);
  }
  // Overwrite the first free-index entry of a leaf with an arbitrary node.
  static void corrupt_free_index_entry(ClusterState& s, SwitchId leaf,
                                       NodeId n) {
    const auto off =
        static_cast<std::size_t>(s.leaf_off_[static_cast<std::size_t>(leaf)]);
    s.free_list_[off] = n;
  }
  static void corrupt_leaf_load(ClusterState& s, SwitchId leaf,
                                LoadUnits delta) {
    s.leaf_load_[static_cast<std::size_t>(leaf)] += delta;
  }
  static void corrupt_switch_load(ClusterState& s, SwitchId sw,
                                  LoadUnits delta) {
    s.switch_load_[static_cast<std::size_t>(sw)] += delta;
  }
  static void corrupt_load_total(ClusterState& s, LoadUnits delta) {
    s.load_total_ += delta;
  }
};

namespace {

class ClusterStateTest : public ::testing::Test {
 protected:
  ClusterStateTest() : tree_(make_figure2_tree()), state_(tree_) {}
  Tree tree_;
  ClusterState state_;
};

TEST_F(ClusterStateTest, StartsAllFree) {
  EXPECT_EQ(state_.total_free(), 8);
  EXPECT_EQ(state_.job_count(), 0u);
  for (NodeId n = 0; n < 8; ++n) {
    EXPECT_TRUE(state_.is_free(n));
    EXPECT_EQ(state_.owner(n), kInvalidJob);
  }
  for (const SwitchId leaf : tree_.leaves()) {
    EXPECT_EQ(state_.leaf_busy(leaf), 0);
    EXPECT_EQ(state_.leaf_comm(leaf), 0);
    EXPECT_EQ(state_.leaf_free(leaf), 4);
    EXPECT_EQ(state_.leaf_nodes(leaf), 4);
  }
}

TEST_F(ClusterStateTest, AllocateUpdatesCounters) {
  const std::vector<NodeId> nodes{0, 1, 4};
  state_.allocate(7, /*comm_intensive=*/true, nodes);
  EXPECT_EQ(state_.total_free(), 5);
  EXPECT_FALSE(state_.is_free(0));
  EXPECT_EQ(state_.owner(0), 7);
  const SwitchId s0 = *tree_.switch_by_name("s0");
  const SwitchId s1 = *tree_.switch_by_name("s1");
  EXPECT_EQ(state_.leaf_busy(s0), 2);
  EXPECT_EQ(state_.leaf_comm(s0), 2);
  EXPECT_EQ(state_.leaf_busy(s1), 1);
  EXPECT_EQ(state_.leaf_comm(s1), 1);
  EXPECT_EQ(state_.free_under(tree_.root()), 5);
  EXPECT_EQ(state_.free_under(s0), 2);
  state_.validate();
}

TEST_F(ClusterStateTest, LoadAccumulatorsTrackAllocations) {
  const SwitchId s0 = *tree_.switch_by_name("s0");
  const SwitchId s1 = *tree_.switch_by_name("s1");
  state_.allocate(1, /*comm_intensive=*/true, std::vector<NodeId>{0, 1, 4},
                  /*io_intensive=*/false, /*comm_load=*/800);
  state_.allocate(2, /*comm_intensive=*/true, std::vector<NodeId>{2, 3},
                  /*io_intensive=*/false, /*comm_load=*/300);
  EXPECT_EQ(state_.job_load(1), 800);
  EXPECT_EQ(state_.job_load(2), 300);
  EXPECT_EQ(state_.leaf_load(s0), 2 * 800 + 2 * 300);  // nodes 0,1 + 2,3
  EXPECT_EQ(state_.leaf_load(s1), 800);                // node 4
  EXPECT_EQ(state_.load_under(s0), 2 * 800 + 2 * 300);
  EXPECT_EQ(state_.load_under(tree_.root()), 3 * 800 + 2 * 300);
  EXPECT_EQ(state_.total_load(), 3 * 800 + 2 * 300);
  state_.validate();
  state_.release(1);
  EXPECT_EQ(state_.leaf_load(s0), 2 * 300);
  EXPECT_EQ(state_.leaf_load(s1), 0);
  EXPECT_EQ(state_.total_load(), 2 * 300);
  state_.release(2);
  EXPECT_EQ(state_.total_load(), 0);
  for (const SwitchId leaf : tree_.leaves()) {
    EXPECT_EQ(state_.leaf_load(leaf), 0);
  }
  state_.validate();
}

TEST_F(ClusterStateTest, LoadViewsAreZeroCopyAndConsistent) {
  state_.allocate(9, /*comm_intensive=*/true, std::vector<NodeId>{0, 5},
                  /*io_intensive=*/false, /*comm_load=*/1024);
  const std::span<const LoadUnits> leaves = state_.leaf_loads();
  const std::span<const LoadUnits> switches = state_.switch_loads();
  LoadUnits leaf_sum = 0;
  for (const SwitchId leaf : tree_.leaves()) {
    EXPECT_EQ(leaves[static_cast<std::size_t>(leaf)], state_.leaf_load(leaf));
    leaf_sum += leaves[static_cast<std::size_t>(leaf)];
  }
  EXPECT_EQ(leaf_sum, state_.total_load());
  EXPECT_EQ(switches[static_cast<std::size_t>(tree_.root())],
            state_.total_load());
}

TEST_F(ClusterStateTest, NegativeLoadThrows) {
  EXPECT_THROW(state_.allocate(1, true, std::vector<NodeId>{0},
                               /*io_intensive=*/false, /*comm_load=*/-1),
               InvariantError);
}

TEST_F(ClusterStateTest, ComputeJobDoesNotCountAsComm) {
  state_.allocate(1, /*comm_intensive=*/false, std::vector<NodeId>{0, 1});
  const SwitchId s0 = *tree_.switch_by_name("s0");
  EXPECT_EQ(state_.leaf_busy(s0), 2);
  EXPECT_EQ(state_.leaf_comm(s0), 0);
}

TEST_F(ClusterStateTest, ReleaseRestoresEverything) {
  state_.allocate(1, true, std::vector<NodeId>{0, 1, 2});
  state_.allocate(2, false, std::vector<NodeId>{4, 5});
  state_.release(1);
  EXPECT_EQ(state_.total_free(), 6);
  EXPECT_TRUE(state_.is_free(0));
  const SwitchId s0 = *tree_.switch_by_name("s0");
  EXPECT_EQ(state_.leaf_busy(s0), 0);
  EXPECT_EQ(state_.leaf_comm(s0), 0);
  state_.release(2);
  EXPECT_EQ(state_.total_free(), 8);
  EXPECT_EQ(state_.job_count(), 0u);
  state_.validate();
}

TEST_F(ClusterStateTest, JobNodesPreservesOrder) {
  const std::vector<NodeId> nodes{5, 2, 7};
  state_.allocate(3, true, nodes);
  const auto got = state_.job_nodes(3);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), nodes.begin(), nodes.end()));
  EXPECT_TRUE(state_.job_is_comm(3));
}

TEST_F(ClusterStateTest, FreeNodesOfLeafAscending) {
  state_.allocate(1, true, std::vector<NodeId>{1, 2});
  const SwitchId s0 = *tree_.switch_by_name("s0");
  EXPECT_EQ(state_.free_nodes_of_leaf(s0), (std::vector<NodeId>{0, 3}));
}

TEST_F(ClusterStateTest, DoubleAllocationOfNodeThrows) {
  state_.allocate(1, true, std::vector<NodeId>{0});
  EXPECT_THROW(state_.allocate(2, true, std::vector<NodeId>{0}),
               InvariantError);
  // Failed allocation must not leak partial state.
  EXPECT_EQ(state_.total_free(), 7);
  state_.validate();
}

TEST_F(ClusterStateTest, DuplicateNodesInRequestThrow) {
  EXPECT_THROW(state_.allocate(1, true, std::vector<NodeId>{2, 2}),
               InvariantError);
  EXPECT_EQ(state_.total_free(), 8);
}

TEST_F(ClusterStateTest, ReusedJobIdThrows) {
  state_.allocate(1, true, std::vector<NodeId>{0});
  EXPECT_THROW(state_.allocate(1, true, std::vector<NodeId>{1}),
               InvariantError);
}

TEST_F(ClusterStateTest, ReleaseUnknownJobThrows) {
  EXPECT_THROW(state_.release(99), InvariantError);
}

TEST_F(ClusterStateTest, EmptyAllocationThrows) {
  EXPECT_THROW(state_.allocate(1, true, std::vector<NodeId>{}),
               InvariantError);
}

TEST_F(ClusterStateTest, OutOfRangeNodeThrows) {
  EXPECT_THROW(state_.allocate(1, true, std::vector<NodeId>{8}),
               InvariantError);
  EXPECT_THROW(state_.allocate(2, true, std::vector<NodeId>{-1}),
               InvariantError);
}

TEST(ClusterStateThreeLevelTest, SubtreeFreeCountsPropagate) {
  const Tree tree = make_three_level_tree(2, 2, 4);
  ClusterState state(tree);
  // Allocate 3 nodes on leaf 0 (nodes 0-3) and 1 on leaf 2 (nodes 8-11).
  state.allocate(1, true, std::vector<NodeId>{0, 1, 2});
  state.allocate(2, false, std::vector<NodeId>{8});
  const auto level2 = tree.switches_at_level(2);
  ASSERT_EQ(level2.size(), 2u);
  EXPECT_EQ(state.free_under(level2[0]), 5);  // 8 - 3
  EXPECT_EQ(state.free_under(level2[1]), 7);  // 8 - 1
  EXPECT_EQ(state.free_under(tree.root()), 12);
  state.validate();
}

TEST_F(ClusterStateTest, ReleaseReturnsExactAllocationSet) {
  const std::vector<NodeId> nodes{5, 2, 7};
  state_.allocate(1, true, nodes);
  EXPECT_EQ(state_.release(1), nodes);  // allocation order preserved
}

// Deliberate-corruption coverage: every counter validate() recomputes has a
// test that breaks it and asserts the InvariantError fires (ISSUE 2).
class ClusterStateCorruptionTest : public ClusterStateTest {
 protected:
  ClusterStateCorruptionTest() {
    state_.allocate(1, /*comm_intensive=*/true, std::vector<NodeId>{0, 1, 4},
                    /*io_intensive=*/true, /*comm_load=*/512);
    state_.validate();  // clean before each test corrupts one counter
    leaf_ = *tree_.switch_by_name("s0");
  }
  SwitchId leaf_ = kInvalidSwitch;
};

TEST_F(ClusterStateCorruptionTest, CorruptLeafBusyFires) {
  ClusterStateTestPeer::corrupt_leaf_busy(state_, leaf_, +1);
  EXPECT_THROW(state_.validate(), InvariantError);
}

TEST_F(ClusterStateCorruptionTest, CorruptLeafCommFires) {
  ClusterStateTestPeer::corrupt_leaf_comm(state_, leaf_, -1);
  EXPECT_THROW(state_.validate(), InvariantError);
}

TEST_F(ClusterStateCorruptionTest, CorruptLeafIoFires) {
  ClusterStateTestPeer::corrupt_leaf_io(state_, leaf_, +1);
  EXPECT_THROW(state_.validate(), InvariantError);
}

TEST_F(ClusterStateCorruptionTest, CorruptSubtreeFreeFires) {
  ClusterStateTestPeer::corrupt_switch_free(state_, tree_.root(), -1);
  EXPECT_THROW(state_.validate(), InvariantError);
}

TEST_F(ClusterStateCorruptionTest, CorruptFreeTotalFires) {
  ClusterStateTestPeer::corrupt_free_total(state_, +1);
  EXPECT_THROW(state_.validate(), InvariantError);
}

TEST_F(ClusterStateCorruptionTest, CorruptLeafLoadFires) {
  ClusterStateTestPeer::corrupt_leaf_load(state_, leaf_, +1);
  EXPECT_THROW(state_.validate(), InvariantError);
}

TEST_F(ClusterStateCorruptionTest, CorruptSubtreeLoadFires) {
  ClusterStateTestPeer::corrupt_switch_load(state_, tree_.root(), -512);
  EXPECT_THROW(state_.validate(), InvariantError);
}

TEST_F(ClusterStateCorruptionTest, CorruptLoadTotalFires) {
  ClusterStateTestPeer::corrupt_load_total(state_, +512);
  EXPECT_THROW(state_.validate(), InvariantError);
}

TEST_F(ClusterStateCorruptionTest, NodeOwnedByUnknownJobFires) {
  ClusterStateTestPeer::corrupt_owner(state_, 7, /*owner=*/42);
  EXPECT_THROW(state_.validate(), InvariantError);
}

TEST_F(ClusterStateCorruptionTest, OwnershipTableDisagreementFires) {
  // node_owner_ says node 4 belongs to job 1 but the job record no longer
  // lists it.
  ClusterStateTestPeer::drop_job_node(state_, 1);
  EXPECT_THROW(state_.validate(), InvariantError);
}

TEST_F(ClusterStateCorruptionTest, FreeIndexOutOfOrderFires) {
  // s1 has nodes {4..7}, node 4 busy -> free prefix {5, 6, 7}.
  ClusterStateTestPeer::corrupt_free_index_order(
      state_, *tree_.switch_by_name("s1"));
  EXPECT_THROW(state_.validate(), InvariantError);
}

TEST_F(ClusterStateCorruptionTest, FreeIndexForeignNodeFires) {
  // Put one of s0's nodes into s1's free index.
  ClusterStateTestPeer::corrupt_free_index_entry(
      state_, *tree_.switch_by_name("s1"), /*n=*/3);
  EXPECT_THROW(state_.validate(), InvariantError);
}

TEST_F(ClusterStateCorruptionTest, FreeIndexAllocatedNodeFires) {
  // Node 4 belongs to job 1; listing it as free must fire. 4 is below every
  // genuinely free node of s1, so the ascending-order check stays quiet and
  // the is-free check is what trips.
  ClusterStateTestPeer::corrupt_free_index_entry(
      state_, *tree_.switch_by_name("s1"), /*n=*/4);
  EXPECT_THROW(state_.validate(), InvariantError);
}

TEST_F(ClusterStateCorruptionTest, FreeIndexDesyncTripsTransition) {
  // An allocation over a node the free index no longer lists must fire the
  // transition-time cross-check, not corrupt the index silently. Overwriting
  // the first entry (node 5) evicts it from the index while node_owner_
  // still says free, so allocating node 5 passes the is_free precondition
  // and trips inside transition().
  ClusterStateTestPeer::corrupt_free_index_entry(
      state_, *tree_.switch_by_name("s1"), /*n=*/4);
  EXPECT_THROW(state_.allocate(2, false, std::vector<NodeId>{5}),
               InvariantError);
}

TEST_F(ClusterStateCorruptionTest, ViolationMessageCarriesValues) {
  ClusterStateTestPeer::corrupt_free_total(state_, +3);
  try {
    state_.validate();
    FAIL() << "expected InvariantError";
  } catch (const InvariantError& e) {
    // The comparison macros report both operand values.
    EXPECT_NE(std::string(e.what()).find("free_total_ = 8"),
              std::string::npos)
        << e.what();
  }
}

// Property sweep: random allocate/release sequences keep every incremental
// counter consistent with a from-scratch recomputation.
class ClusterStateRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterStateRandomOps, ValidateAfterEveryStep) {
  const Tree tree = make_three_level_tree(2, 4, 8);  // 64 nodes
  ClusterState state(tree);
  Rng rng(GetParam());
  std::vector<JobId> live;
  JobId next = 1;
  for (int step = 0; step < 300; ++step) {
    const bool do_alloc = live.empty() || (state.total_free() > 0 &&
                                           rng.bernoulli(0.6));
    if (do_alloc) {
      const int want = static_cast<int>(
          rng.uniform_int(1, std::min(state.total_free(), 12)));
      std::vector<NodeId> nodes;
      for (NodeId n = 0; n < tree.node_count() &&
                         static_cast<int>(nodes.size()) < want; ++n)
        if (state.is_free(n) && rng.bernoulli(0.5)) nodes.push_back(n);
      if (nodes.empty()) continue;
      state.allocate(next, rng.bernoulli(0.5), nodes);
      live.push_back(next++);
    } else {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      state.release(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    state.validate();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterStateRandomOps,
                         ::testing::Values(1, 7, 42, 1234, 987654));

}  // namespace
}  // namespace commsched
