#include "collectives/comm_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "collectives/schedule.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"

namespace commsched {
namespace {

using Runs = std::vector<std::pair<std::int32_t, std::int32_t>>;
using Pairs = std::vector<std::pair<std::int32_t, std::int32_t>>;

// --- ShapeKey canonicalization ---------------------------------------------

TEST(ShapeKeyTest, CanonicalizesAwayConcreteLeafIdentity) {
  // Figure 2 tree: n0..n3 under s0, n4..n7 under s1.
  const Tree tree = make_figure2_tree();
  const ShapeKey a = make_shape_key(tree, std::vector<NodeId>{0, 1});
  const ShapeKey b = make_shape_key(tree, std::vector<NodeId>{4, 5});
  EXPECT_EQ(a, b);  // "2 nodes under one leaf", whichever leaf it is
  EXPECT_EQ(a.runs, (Runs{{0, 2}}));
  EXPECT_EQ(a.total_nodes, 2);
  EXPECT_EQ(a.num_slots, 1);

  const ShapeKey c = make_shape_key(tree, std::vector<NodeId>{0, 1, 4, 5});
  const ShapeKey d = make_shape_key(tree, std::vector<NodeId>{4, 5, 0, 1});
  EXPECT_EQ(c, d);  // first-appearance slot naming hides which leaf is "0"
  EXPECT_EQ(c.runs, (Runs{{0, 2}, {1, 2}}));
  EXPECT_EQ(c.num_slots, 2);
}

TEST(ShapeKeyTest, DistinguishesDifferentRankToLeafStructures) {
  const Tree tree = make_figure2_tree();
  const ShapeKey block = make_shape_key(tree, std::vector<NodeId>{0, 1, 4, 5});
  const ShapeKey striped =
      make_shape_key(tree, std::vector<NodeId>{0, 4, 1, 5});
  EXPECT_NE(block, striped);
  EXPECT_EQ(striped.runs, (Runs{{0, 1}, {1, 1}, {0, 1}, {1, 1}}));
  EXPECT_EQ(striped.num_slots, 2);  // revisiting a leaf reuses its slot
}

TEST(ShapeKeyTest, RevisitedLeafKeepsItsFirstAppearanceSlot) {
  const Tree tree = make_figure2_tree();
  const ShapeKey key = make_shape_key(tree, std::vector<NodeId>{4, 0, 5});
  EXPECT_EQ(key.runs, (Runs{{0, 1}, {1, 1}, {0, 1}}));
  EXPECT_EQ(key.total_nodes, 3);
  EXPECT_EQ(key.num_slots, 2);
}

TEST(ShapeKeyTest, RejectsDuplicateNodes) {
  const Tree tree = make_figure2_tree();
  EXPECT_THROW(make_shape_key(tree, std::vector<NodeId>{0, 1, 0}),
               InvariantError);
}

// --- Profile construction, hand-checked ------------------------------------

TEST(LeafCommProfileTest, TwoRanksAcrossLeaves) {
  const Tree tree = make_figure2_tree();
  const ShapeKey shape = make_shape_key(tree, std::vector<NodeId>{0, 4});
  const LeafCommProfile profile =
      make_leaf_comm_profile(Pattern::kRecursiveDoubling, 256.0, shape, 1);
  EXPECT_EQ(profile.nprocs, 2);
  EXPECT_EQ(profile.num_slots, 2);
  EXPECT_EQ(profile.ranks_per_node, 1);
  ASSERT_EQ(profile.steps.size(), 1u);
  const ProfileStep& step = profile.steps[0];
  EXPECT_EQ(profile.classes.at(step.cls).leaf_pairs, (Pairs{{0, 1}}));
  EXPECT_EQ(step.rank_pairs, 1);
  EXPECT_EQ(step.same_node_pairs, 0);
  EXPECT_EQ(step.same_leaf_pairs, 0);
  EXPECT_DOUBLE_EQ(step.msize, 256.0);
  EXPECT_EQ(step.repeat, 1);
}

TEST(LeafCommProfileTest, MultirankStepCanBeEntirelyOnNode) {
  // 2 nodes x 2 ranks each, RD over 4 ranks: step 0 pairs ranks (0,1),(2,3)
  // — both within a node, so the step's leaf-pair class is empty; step 1
  // pairs (0,2),(1,3) both cross the two leaves.
  const Tree tree = make_figure2_tree();
  const ShapeKey shape = make_shape_key(tree, std::vector<NodeId>{0, 4});
  const LeafCommProfile profile =
      make_leaf_comm_profile(Pattern::kRecursiveDoubling, 64.0, shape, 2);
  EXPECT_EQ(profile.nprocs, 4);
  ASSERT_EQ(profile.steps.size(), 2u);
  EXPECT_TRUE(profile.classes.at(profile.steps[0].cls).leaf_pairs.empty());
  EXPECT_EQ(profile.steps[0].rank_pairs, 2);
  EXPECT_EQ(profile.steps[0].same_node_pairs, 2);
  EXPECT_EQ(profile.classes.at(profile.steps[1].cls).leaf_pairs,
            (Pairs{{0, 1}}));
  EXPECT_EQ(profile.steps[1].rank_pairs, 2);
  EXPECT_EQ(profile.steps[1].same_node_pairs, 0);
}

TEST(LeafCommProfileTest, SameLeafCrossNodePairsAppearAsDiagonal) {
  const Tree tree = make_figure2_tree();
  const ShapeKey shape = make_shape_key(tree, std::vector<NodeId>{0, 1});
  const LeafCommProfile profile =
      make_leaf_comm_profile(Pattern::kRecursiveDoubling, 1.0, shape, 1);
  ASSERT_EQ(profile.steps.size(), 1u);
  EXPECT_EQ(profile.classes.at(profile.steps[0].cls).leaf_pairs,
            (Pairs{{0, 0}}));
  EXPECT_EQ(profile.steps[0].same_leaf_pairs, 1);
}

TEST(LeafCommProfileTest, AlltoallStreamsFarBeyondMaterializationCap) {
  // 16 nodes block-contiguous over 2 leaves x 512 ranks/node = 8192 ranks,
  // twice the materialization cap. XOR matching has no carries, so step k's
  // structure depends only on k's high bits: k < 512 stays on-node (empty
  // class), 512 <= k < 4096 stays on-leaf ({(0,0),(1,1)}), k >= 4096
  // crosses ({(0,1)}). The profile must discover exactly those 3 classes.
  const Tree tree = make_two_level_tree(2, 8);
  std::vector<NodeId> nodes(16);
  for (int i = 0; i < 16; ++i) nodes[i] = static_cast<NodeId>(i);
  const ShapeKey shape = make_shape_key(tree, nodes);
  const LeafCommProfile profile =
      make_leaf_comm_profile(Pattern::kPairwiseAlltoall, 1.0, shape, 512);
  EXPECT_EQ(profile.nprocs, 8192);
  EXPECT_EQ(profile.steps.size(), 8191u);
  EXPECT_EQ(profile.classes.size(), 3u);
  std::int64_t rank_pairs = 0;
  for (const ProfileStep& step : profile.steps) rank_pairs += step.rank_pairs;
  EXPECT_EQ(rank_pairs, static_cast<std::int64_t>(8192) * 8191 / 2);
}

// --- CommCache memoization --------------------------------------------------

TEST(CommCacheTest, ProfileHitsOnCanonicallyEqualShapes) {
  const Tree tree = make_figure2_tree();
  CommCache cache(1.0);
  const ShapeKey a = make_shape_key(tree, std::vector<NodeId>{0, 1});
  const ShapeKey b = make_shape_key(tree, std::vector<NodeId>{6, 7});
  const LeafCommProfile& pa =
      cache.profile(Pattern::kRecursiveDoubling, 1, a);
  const LeafCommProfile& pb =
      cache.profile(Pattern::kRecursiveDoubling, 1, b);
  EXPECT_EQ(&pa, &pb);  // same canonical shape -> one cached profile
  EXPECT_EQ(cache.stats().profile_misses, 1u);
  EXPECT_EQ(cache.stats().profile_hits, 1u);

  // Different pattern, rpn, or shape each miss separately.
  cache.profile(Pattern::kBinomial, 1, a);
  cache.profile(Pattern::kRecursiveDoubling, 2, a);
  cache.profile(Pattern::kRecursiveDoubling, 1,
                make_shape_key(tree, std::vector<NodeId>{0, 4}));
  EXPECT_EQ(cache.stats().profile_misses, 4u);
  EXPECT_EQ(cache.stats().profile_hits, 1u);
}

TEST(CommCacheTest, ProfileReferencesSurviveRehash) {
  const Tree tree = make_two_level_tree(8, 4);
  CommCache cache(1.0);
  const ShapeKey first = make_shape_key(tree, std::vector<NodeId>{0, 1});
  const LeafCommProfile& pinned =
      cache.profile(Pattern::kRecursiveDoubling, 1, first);
  const ProfileStep recorded = pinned.steps.at(0);
  // Insert many distinct shapes to force table growth.
  for (int n = 2; n <= 30; ++n) {
    std::vector<NodeId> nodes;
    for (int i = 0; i < n; ++i) nodes.push_back(static_cast<NodeId>(i));
    cache.profile(Pattern::kRecursiveDoubling, 1, make_shape_key(tree, nodes));
  }
  EXPECT_EQ(&cache.profile(Pattern::kRecursiveDoubling, 1, first), &pinned);
  EXPECT_EQ(pinned.steps.at(0).rank_pairs, recorded.rank_pairs);
}

}  // namespace
}  // namespace commsched
